// Copyright 2026 MixQ-GNN Authors
// mixq_serve — the network front door as a process: an InferenceEngine
// behind the DESIGN.md §8 wire protocol. Links ZERO training code — bundles
// (tools/mixq_compile) are the only way models and graphs get in, the other
// half of the train-once/serve-anywhere split.
//
//   mixq_serve --model tab3=out/model.mqb --graph cora=out/graph.mqb
//   mixq_serve --port 7433 --watch out/bundles --watch-interval-ms 500
//
// Every --model/--graph flag is name=path.mqb, loaded before the socket
// opens (a failed load is fatal at startup — better than serving a partial
// registry). --watch names a directory polled for bundle rollouts: dropping
// a new *.mqb in (or overwriting one) hot-swaps it under its file stem with
// zero downtime. With --port 0 (default) the kernel picks the port; it is
// printed either way as "listening on HOST:PORT" so scripts can scrape it.
//
// SIGINT/SIGTERM shut down cleanly: stop accepting, finish every response
// owed, send each client a typed kGoodbye, print the final stats-endpoint
// JSON to stdout, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/inference_engine.h"
#include "net/server.h"

using namespace mixq;

namespace {

std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage() {
  std::fprintf(
      stderr,
      "usage: mixq_serve [--host H] [--port P] [--model name=path.mqb ...]\n"
      "                  [--graph name=path.mqb ...] [--watch DIR]\n"
      "                  [--watch-interval-ms N] [--queue-capacity N]\n"
      "                  [--max-connections N] [--no-cache]\n");
}

/// Splits "name=path"; false when '=' is missing or either side is empty.
bool SplitNameEqPath(const std::string& arg, std::string* name,
                     std::string* path) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) return false;
  *name = arg.substr(0, eq);
  *path = arg.substr(eq + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::pair<std::string, std::string>> models;
  std::vector<std::pair<std::string, std::string>> graphs;
  std::string watch_dir;
  int watch_interval_ms = 1000;
  engine::BatcherOptions batcher;
  net::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--model" || arg == "--graph") {
      std::string name, path;
      if (!SplitNameEqPath(next(), &name, &path)) {
        std::fprintf(stderr, "%s wants name=path.mqb\n", arg.c_str());
        return 2;
      }
      (arg == "--model" ? models : graphs).emplace_back(name, path);
    } else if (arg == "--watch") {
      watch_dir = next();
    } else if (arg == "--watch-interval-ms") {
      watch_interval_ms = std::atoi(next());
    } else if (arg == "--queue-capacity") {
      batcher.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--max-connections") {
      options.max_connections = std::atoi(next());
    } else if (arg == "--no-cache") {
      batcher.enable_cache = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  engine::InferenceEngine engine(batcher);
  for (const auto& [name, path] : models) {
    const Status status = engine.LoadModelFromFile(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "loading model %s from %s: %s\n", name.c_str(),
                   path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "model %s <- %s\n", name.c_str(), path.c_str());
  }
  for (const auto& [name, path] : graphs) {
    const Status status = engine.LoadGraphFromFile(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "loading graph %s from %s: %s\n", name.c_str(),
                   path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "graph %s <- %s\n", name.c_str(), path.c_str());
  }

  options.host = host;
  options.port = port;
  net::MixqServer server(&engine, options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!watch_dir.empty()) {
    status = server.StartWatching(
        watch_dir, std::chrono::milliseconds(watch_interval_ms));
    if (!status.ok()) {
      std::fprintf(stderr, "watch %s: %s\n", watch_dir.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "watching %s every %d ms\n", watch_dir.c_str(),
                 watch_interval_ms);
  }
  // stdout (not stderr) and flushed: scripts block on this line to learn
  // the ephemeral port.
  std::printf("listening on %s:%d\n", host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "shutting down\n");
  server.Shutdown();
  std::printf("%s\n", server.StatsEndpointJson().c_str());
  return 0;
}
