// Copyright 2026 MixQ-GNN Authors
// mixq_inspect — prints a bundle's manifest (format version, kind, scheme
// label, bit assignment, dimensions, section sizes and checksums) without
// loading the weight or feature payloads: only the header, the section
// table, and the small metadata section (INFO / GMET) are read.
//
//   mixq_inspect bundle.mqb [more.mqb ...]
#include <cstdio>
#include <string>

#include "engine/model_bundle.h"

using namespace mixq;
using namespace mixq::engine;

namespace {

int Inspect(const std::string& path) {
  Result<BundleManifest> manifest = InspectBundle(path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 manifest.status().ToString().c_str());
    return 1;
  }
  const BundleManifest& m = manifest.ValueOrDie();
  std::printf("%s: %s bundle, format %u.%u, %llu bytes\n", path.c_str(),
              m.kind == BundleKind::kModel ? "model" : "graph", m.format_major,
              m.format_minor, static_cast<unsigned long long>(m.file_bytes));
  if (m.kind == BundleKind::kModel) {
    std::printf("  backbone       %s\n",
                m.model_kind == NodeModelKind::kGcn ? "gcn" : "sage");
    std::printf("  scheme         %s\n", m.info.scheme_label.c_str());
    std::printf("  dims           %lld features -> %lld logits\n",
                static_cast<long long>(m.info.in_features),
                static_cast<long long>(m.info.out_dim));
    std::printf("  params         %lld frozen scalars, %.2f avg bits\n",
                static_cast<long long>(m.info.param_count), m.info.avg_bits);
    std::printf("  int8 plan      %s\n", m.info.lowered_int8 ? "yes" : "no");
    std::printf("  bit assignment (%zu components)\n",
                m.info.bit_assignment.size());
    for (const auto& [id, bits] : m.info.bit_assignment) {
      std::printf("    %-28s %d\n", id.c_str(), bits);
    }
  } else {
    std::printf("  graph          %lld nodes, %lld nnz, %lld features/node\n",
                static_cast<long long>(m.graph_nodes),
                static_cast<long long>(m.graph_nnz),
                static_cast<long long>(m.feature_dim));
  }
  std::printf("  sections\n");
  for (const BundleSection& s : m.sections) {
    std::printf("    %s  offset %8llu  size %10llu  crc32 %08x\n",
                s.tag.c_str(), static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.crc32);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s bundle.mqb [more.mqb ...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= Inspect(argv[i]);
    if (i + 1 < argc) std::printf("\n");
  }
  return rc;
}
