// Copyright 2026 MixQ-GNN Authors
// mixq_inspect — prints a bundle's manifest (format version, kind, scheme
// label, bit assignment, dimensions, section sizes and checksums) without
// loading the weight or feature payloads: only the header, the section
// table, and the small metadata section (INFO / GMET) are read.
//
// With --verify, additionally runs every check a load would — header parse,
// per-section CRC, full semantic decode, and (model bundles) the static
// plan verifier plus the value-range prover — printing a per-section verdict
// line and exiting non-zero on the first violation. --json (requires
// --verify) emits the same verdicts as a JSON array of check reports, one
// object per path — the identical format mixq_lint --json produces, so CI
// and external tooling parse one grammar.
//
//   mixq_inspect [--verify [--json]] bundle.mqb [more.mqb ...]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/model_bundle.h"

using namespace mixq;
using namespace mixq::engine;

namespace {

int Inspect(const std::string& path) {
  Result<BundleManifest> manifest = InspectBundle(path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 manifest.status().ToString().c_str());
    return 1;
  }
  const BundleManifest& m = manifest.ValueOrDie();
  std::printf("%s: %s bundle, format %u.%u, %llu bytes\n", path.c_str(),
              m.kind == BundleKind::kModel ? "model" : "graph", m.format_major,
              m.format_minor, static_cast<unsigned long long>(m.file_bytes));
  if (m.kind == BundleKind::kModel) {
    std::printf("  backbone       %s\n",
                m.model_kind == NodeModelKind::kGcn ? "gcn" : "sage");
    std::printf("  scheme         %s\n", m.info.scheme_label.c_str());
    std::printf("  dims           %lld features -> %lld logits\n",
                static_cast<long long>(m.info.in_features),
                static_cast<long long>(m.info.out_dim));
    std::printf("  params         %lld frozen scalars, %.2f avg bits\n",
                static_cast<long long>(m.info.param_count), m.info.avg_bits);
    std::printf("  int8 plan      %s\n", m.info.lowered_int8 ? "yes" : "no");
    std::printf("  bit assignment (%zu components)\n",
                m.info.bit_assignment.size());
    for (const auto& [id, bits] : m.info.bit_assignment) {
      std::printf("    %-28s %d\n", id.c_str(), bits);
    }
  } else {
    std::printf("  graph          %lld nodes, %lld nnz, %lld features/node\n",
                static_cast<long long>(m.graph_nodes),
                static_cast<long long>(m.graph_nnz),
                static_cast<long long>(m.feature_dim));
  }
  std::printf("  sections\n");
  for (const BundleSection& s : m.sections) {
    std::printf("    %s  offset %8llu  size %10llu  crc32 %08x\n",
                s.tag.c_str(), static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.crc32);
  }
  return 0;
}

int Verify(const std::string& path) {
  std::vector<BundleCheck> checks = VerifyBundleFile(path);
  std::printf("%s:\n", path.c_str());
  int rc = 0;
  for (const BundleCheck& c : checks) {
    if (c.status.ok()) {
      std::printf("  %-8s OK\n", c.section.c_str());
    } else {
      std::printf("  %-8s FAIL  %s\n", c.section.c_str(),
                  c.status.ToString().c_str());
      rc = 1;  // VerifyBundleFile stops at the first failure
    }
  }
  std::printf("verdict: %s\n", rc == 0 ? "VALID" : "INVALID");
  return rc;
}

/// --verify --json: one CheckReport object per path (shared grammar with
/// mixq_lint --json).
int VerifyJson(const std::vector<std::string>& paths) {
  int rc = 0;
  std::printf("[");
  for (size_t i = 0; i < paths.size(); ++i) {
    CheckReport report;
    report.subject = paths[i];
    report.checks = VerifyBundleFile(paths[i]);
    for (const BundleCheck& c : report.checks) {
      if (!c.status.ok()) rc = 1;
    }
    std::printf("%s%s", i == 0 ? "" : ",\n ",
                FormatCheckReportJson(report).c_str());
  }
  std::printf("]\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty() || (json && !verify)) {
    std::fprintf(stderr,
                 "usage: %s [--verify [--json]] bundle.mqb [more.mqb ...]\n",
                 argv[0]);
    return 2;
  }
  if (json) return VerifyJson(paths);
  int rc = 0;
  for (size_t i = 0; i < paths.size(); ++i) {
    rc |= verify ? Verify(paths[i]) : Inspect(paths[i]);
    if (i + 1 < paths.size()) std::printf("\n");
  }
  return rc;
}
