// Copyright 2026 MixQ-GNN Authors
// mixq_compile — the offline half of train-once/serve-anywhere: takes an
// experiment spec on the command line, runs search + quantized training
// through the Experiment facade, compiles the artifact, and writes a
// portable model bundle (plus, optionally, the training graph as a graph
// bundle and a logit digest for cross-process parity checks).
//
//   mixq_compile --scheme qat8 --out model.mqb
//       [--graph-out graph.mqb] [--digest-out model.digest]
//       [--model gcn|sage] [--nodes N] [--classes C] [--features F]
//       [--hidden H] [--layers L] [--epochs E] [--search-epochs E]
//       [--lambda L] [--seed S]
//
// Schemes: fp32, qat<bits>, dq<bits>, fixed<bits> (uniform width via the
// per-component scheme), random, random_int8, mixq, mixq_dq. Non-lowerable
// schemes (a2q, and any relaxed-search fallback) are rejected by SaveBundle
// with kNotImplemented — they need the live training pipeline.
//
// The digest file holds one line per served mode: "fp32 <fnv1a64-hex>" and,
// when the model lowers to the all-integer executor, "int8 <fnv1a64-hex>" —
// the hash of the full-graph logits on the training graph. A serving
// process that loads the bundle + graph bundle recomputes the same hashes
// (examples/offline_deploy.cpp) to prove bitwise parity across processes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/binary_io.h"
#include "core/experiment.h"
#include "engine/model_bundle.h"

using namespace mixq;

namespace {

/// Every flag the tool accepts; anything else is an error, not a silently
/// ignored typo that ships the wrong artifact.
const char* const kKnownFlags[] = {
    "scheme", "out",    "graph-out", "digest-out",    "model",  "nodes",
    "classes", "features", "hidden",  "layers", "epochs", "search-epochs",
    "lambda", "seed",
};

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out model.mqb [--scheme qat8] [--graph-out g.mqb] "
               "[--digest-out d] [--model gcn|sage] [--nodes N] [--classes C] "
               "[--features F] [--hidden H] [--layers L] [--epochs E] "
               "[--search-epochs E] [--lambda L] [--seed S]\n",
               argv0);
  return 2;
}

/// Parses the --scheme shorthand into a registry SchemeRef.
Result<SchemeRef> ParseScheme(const std::string& s, double lambda,
                              int64_t search_epochs) {
  auto suffix_bits = [&](size_t prefix_len) {
    return static_cast<int>(std::atoi(s.c_str() + prefix_len));
  };
  if (s == "fp32") return SchemeRef::Fp32();
  if (s == "random") return SchemeRef::Random();
  if (s == "random_int8") return SchemeRef::RandomInt8();
  if (s == "mixq" || s == "mixq_dq") {
    SchemeRef ref = s == "mixq" ? SchemeRef::MixQ(lambda) : SchemeRef::MixQDq(lambda);
    ref.params.SetInt("search_epochs", search_epochs);
    return ref;
  }
  if (s.rfind("qat", 0) == 0 && s.size() > 3) {
    const int bits = suffix_bits(3);
    if (bits >= 1 && bits <= 32) return SchemeRef::Qat(bits);
  }
  if (s.rfind("dq", 0) == 0 && s.size() > 2) {
    const int bits = suffix_bits(2);
    if (bits >= 1 && bits <= 32) return SchemeRef::Dq(bits);
  }
  if (s.rfind("fixed", 0) == 0 && s.size() > 5) {
    const int bits = suffix_bits(5);
    if (bits >= 1 && bits <= 32) {
      // Uniform per-component width: every component the model registers
      // falls back to default_bits.
      SchemeRef ref = SchemeRef::Fixed({{"model/x", bits}});
      ref.params.SetInt("default_bits", bits);
      return ref;
    }
  }
  return Status::InvalidArgument(
      "unknown scheme '" + s +
      "' (try fp32, qatN, dqN, fixedN, random, random_int8, mixq, mixq_dq)");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) {
      return Usage(argv[0]);
    }
    const std::string key = argv[i] + 2;
    bool known = false;
    for (const char* flag : kKnownFlags) known = known || key == flag;
    if (!known) {
      std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      return Usage(argv[0]);
    }
    flags.values[key] = argv[i + 1];
    ++i;
  }
  const std::string out_path = flags.Get("out", "");
  if (out_path.empty()) return Usage(argv[0]);

  // ---- dataset + spec -------------------------------------------------------
  CitationConfig data_cfg;
  data_cfg.name = "mixq-compile";
  data_cfg.num_nodes = flags.GetInt("nodes", 600);
  data_cfg.num_classes = flags.GetInt("classes", 4);
  data_cfg.feature_dim = flags.GetInt("features", 48);
  data_cfg.avg_degree = 3.0;
  data_cfg.homophily = 0.82;
  data_cfg.train_per_class = 8;
  data_cfg.val_count = data_cfg.num_nodes / 5;
  data_cfg.test_count = data_cfg.num_nodes / 5;
  data_cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 21));

  NodeExperimentConfig train_cfg;
  const std::string model_kind = flags.Get("model", "gcn");
  if (model_kind != "gcn" && model_kind != "sage") return Usage(argv[0]);
  train_cfg.model =
      model_kind == "gcn" ? NodeModelKind::kGcn : NodeModelKind::kSage;
  train_cfg.hidden = flags.GetInt("hidden", 32);
  train_cfg.num_layers = static_cast<int>(flags.GetInt("layers", 2));
  train_cfg.train.epochs = static_cast<int>(flags.GetInt("epochs", 40));
  train_cfg.train.lr = 0.02f;

  Result<SchemeRef> scheme =
      ParseScheme(flags.Get("scheme", "qat8"), flags.GetDouble("lambda", 0.05),
                  flags.GetInt("search-epochs", 30));
  if (!scheme.ok()) {
    std::fprintf(stderr, "error: %s\n", scheme.status().ToString().c_str());
    return 2;
  }

  ExperimentSpec spec = ExperimentSpec::NodeClassification(
      GenerateCitation(data_cfg), train_cfg, scheme.ValueOrDie());
  spec.seed = data_cfg.seed;
  spec.keep_artifact = true;

  // ---- train + compile ------------------------------------------------------
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  const ExperimentReport& r = report.ValueOrDie();
  std::printf("trained [%s]: test accuracy %.1f%%, %.2f avg bits\n",
              r.scheme_label.c_str(), r.node.test_metric * 100.0,
              r.node.avg_bits);

  Result<engine::CompiledModelPtr> compiled = engine::CompileModel(*r.artifact);
  MIXQ_CHECK(compiled.ok()) << compiled.status().ToString();
  const engine::CompiledModelPtr& model = compiled.ValueOrDie();

  // ---- bundle out -----------------------------------------------------------
  Status saved = engine::SaveBundle(*model, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: SaveBundle: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote model bundle %s\n", out_path.c_str());

  const std::string graph_out = flags.Get("graph-out", "");
  if (!graph_out.empty()) {
    Status graph_saved =
        engine::SaveGraph(r.artifact->features, r.artifact->op, graph_out);
    if (!graph_saved.ok()) {
      std::fprintf(stderr, "error: SaveGraph: %s\n",
                   graph_saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote graph bundle %s\n", graph_out.c_str());
  }

  const std::string digest_out = flags.Get("digest-out", "");
  if (!digest_out.empty()) {
    Result<Tensor> fp32 = model->Predict(r.artifact->features, r.artifact->op);
    MIXQ_CHECK(fp32.ok()) << fp32.status().ToString();
    const std::vector<float>& logits = fp32.ValueOrDie().data();
    std::string text = engine::FormatLogitDigestLine(
        "fp32", Fnv1a64(logits.data(), logits.size() * sizeof(float)));
    if (model->info().lowered_int8) {
      Result<Tensor> int8 =
          model->PredictQuantized(r.artifact->features, r.artifact->op);
      MIXQ_CHECK(int8.ok()) << int8.status().ToString();
      const std::vector<float>& q = int8.ValueOrDie().data();
      text += engine::FormatLogitDigestLine(
          "int8", Fnv1a64(q.data(), q.size() * sizeof(float)));
    }
    std::vector<uint8_t> bytes(text.begin(), text.end());
    Status digest_saved = WriteFileAtomic(digest_out, bytes);
    MIXQ_CHECK(digest_saved.ok()) << digest_saved.ToString();
    std::printf("wrote logit digest %s\n", digest_out.c_str());
  }
  return 0;
}
