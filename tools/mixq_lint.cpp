// Copyright 2026 MixQ-GNN Authors
// mixq_lint — the CI gate over serving artifacts: runs every machine-checked
// theorem the engine relies on over bundle files, offline.
//
// Per bundle path, the full load-equivalent check chain (VerifyBundleFile):
// header + section-table parse, per-section CRC, semantic decode, then for
// model bundles the static plan verifier (engine/plan_verifier.h) AND the
// value-range prover (engine/plan_analysis.h) — int32/int16 accumulator
// safety, requant clamp consistency, finite frozen constants; for graph
// bundles the value invariants (finite adjacency + features).
//
// When an invocation names both model and graph bundles, every model x graph
// combination additionally gets a "pairing" report: the model's symbolic
// range certificate (max per-row SpMM depth, refined by the graph's actual
// adjacency value range) checked against the graph's bounds — exactly the
// check the batcher's precision resolution performs before serving int8.
//
//   mixq_lint [--json] bundle.mqb [more.mqb ...]
//
// Human output mirrors mixq_inspect --verify plus a final CLEAN / NOT CLEAN
// verdict; --json emits an array of CheckReport objects (the same grammar as
// mixq_inspect --verify --json). Exit 1 on any non-clean verdict.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/model_bundle.h"
#include "engine/plan_analysis.h"

using namespace mixq;
using namespace mixq::engine;

namespace {

bool ReportClean(const CheckReport& report) {
  for (const BundleCheck& c : report.checks) {
    if (!c.status.ok()) return false;
  }
  return true;
}

void PrintHuman(const CheckReport& report) {
  std::printf("%s:\n", report.subject.c_str());
  for (const BundleCheck& c : report.checks) {
    if (c.status.ok()) {
      std::printf("  %-8s OK\n", c.section.c_str());
    } else {
      std::printf("  %-8s FAIL  %s\n", c.section.c_str(),
                  c.status.ToString().c_str());
    }
  }
}

/// Cheap kind probe so pairing only loads genuine model/graph combinations.
bool BundleIsKind(const std::string& path, BundleKind kind) {
  Result<BundleManifest> manifest = InspectBundle(path);
  return manifest.ok() && manifest.ValueOrDie().kind == kind;
}

/// The batcher's plan/graph pairing check, replayed offline: load both
/// artifacts, compute the graph's range bounds, check them against the
/// model's certificate.
CheckReport PairingReport(const std::string& model_path,
                          const std::string& graph_path) {
  CheckReport report;
  report.subject = model_path + " + " + graph_path;
  Status status = [&]() -> Status {
    Result<CompiledModelPtr> model = LoadBundle(model_path);
    if (!model.ok()) return model.status();
    Result<GraphBundle> graph = LoadGraph(graph_path);
    if (!graph.ok()) return graph.status();
    const PlanRangeCertificate* cert =
        model.ValueOrDie()->range_certificate();
    if (cert == nullptr) {
      // LoadBundle rejects plans that fail analysis, so a loaded model
      // always carries a certificate; belt and suspenders.
      return Status::Internal("loaded model has no range certificate");
    }
    return CheckGraphAgainstCertificate(
        *cert, ComputeGraphRangeBounds(*graph.ValueOrDie().op));
  }();
  report.checks.push_back({"pairing", status});
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: %s [--json] bundle.mqb [more.mqb ...]\n",
                 argv[0]);
    return 2;
  }

  std::vector<CheckReport> reports;
  std::vector<std::string> models, graphs;
  for (const std::string& path : paths) {
    CheckReport report;
    report.subject = path;
    report.checks = VerifyBundleFile(path);
    const bool clean = ReportClean(report);
    reports.push_back(std::move(report));
    // Only artifacts that lint clean on their own are worth pairing; a
    // corrupt bundle would just repeat its load error.
    if (clean && BundleIsKind(path, BundleKind::kModel)) models.push_back(path);
    if (clean && BundleIsKind(path, BundleKind::kGraph)) graphs.push_back(path);
  }
  for (const std::string& m : models) {
    for (const std::string& g : graphs) {
      reports.push_back(PairingReport(m, g));
    }
  }

  int rc = 0;
  for (const CheckReport& report : reports) {
    if (!ReportClean(report)) rc = 1;
  }

  if (json) {
    std::printf("[");
    for (size_t i = 0; i < reports.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ",\n ",
                  FormatCheckReportJson(reports[i]).c_str());
    }
    std::printf("]\n");
    return rc;
  }
  for (size_t i = 0; i < reports.size(); ++i) {
    PrintHuman(reports[i]);
    if (i + 1 < reports.size()) std::printf("\n");
  }
  std::printf("verdict: %s\n", rc == 0 ? "CLEAN" : "NOT CLEAN");
  return rc;
}
