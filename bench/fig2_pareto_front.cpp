// Copyright 2026 MixQ-GNN Authors
// Figure 2 + Figure 3: accuracy vs average bit-width over sampled bit-width
// combinations of the 9 components of a 2-layer GCN (full 3^9 = 19683 is
// enumerable but not trainable per-combo on CPU — we sample; MIXQ_COMBOS
// overrides), Pareto-front extraction, and the per-component bit-width
// histograms along the front.
#include "bench/bench_util.h"
#include "common/stats.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Figure 2/3 — Mixed-precision combinations & Pareto front");
  NodeDataset ds = QuickCitation("cora", 1);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn, 25, 60);
  const int combos = EnvInt("MIXQ_COMBOS", FullProfile() ? 300 : 48);
  const std::vector<int> bits = {2, 4, 8};

  // Component ids of the 2-layer GCN (paper's 9 components).
  std::vector<std::string> ids;
  {
    Rng rng(1);
    GcnNet net({ds.graph.feature_dim(), cfg.hidden, ds.graph.num_classes, 2, 0.5f},
               &rng);
    ids = net.ComponentIds();
  }

  // FP32 reference point.
  ExperimentResult fp32 = RunNode(ds, cfg, SchemeRef::Fp32());

  Rng combo_rng(97);
  std::vector<ParetoPoint> points;
  std::vector<std::map<std::string, int>> assignments;
  for (int c = 0; c < combos; ++c) {
    std::map<std::string, int> assign;
    for (const auto& id : ids) {
      assign[id] = bits[static_cast<size_t>(
          combo_rng.UniformInt(0, static_cast<int64_t>(bits.size()) - 1))];
    }
    ExperimentResult r = RunNode(ds, cfg, SchemeRef::Fixed(assign),
                                 /*seed=*/100 + static_cast<uint64_t>(c));
    points.push_back({r.avg_bits, r.test_metric, c});
    assignments.push_back(std::move(assign));
  }

  auto front = ParetoFront(points);
  std::cout << "Sampled " << combos << " of 19683 combinations; FP32 reference: "
            << Pct(fp32.test_metric) << " at 32 bits.\n\n";
  TablePrinter ptable({"Avg bits", "Accuracy", "On Pareto front"});
  int beats_fp32 = 0;
  for (const auto& p : points) {
    if (p.gain >= fp32.test_metric) ++beats_fp32;
  }
  for (const auto& p : front) {
    ptable.AddRow({FormatFloat(p.cost, 2), Pct(p.gain), "yes"});
  }
  ptable.Print();
  std::cout << beats_fp32 << "/" << combos
            << " quantized combinations matched or beat FP32 accuracy "
               "(paper: a visible set above the FP32 line).\n\n";

  // Figure 3: per-component histograms along the front.
  std::cout << "--- Figure 3: bit-width histograms on the Pareto front ("
            << front.size() << " configs) ---\n";
  TablePrinter htable({"Component", "#2-bit", "#4-bit", "#8-bit"});
  for (const auto& id : ids) {
    int h2 = 0, h4 = 0, h8 = 0;
    for (const auto& p : front) {
      const int b = assignments[static_cast<size_t>(p.tag)].at(id);
      (b == 2 ? h2 : b == 4 ? h4 : h8)++;
    }
    htable.AddRow({id, std::to_string(h2), std::to_string(h4), std::to_string(h8)});
  }
  htable.Print();
  std::cout << "\nExpected shape: non-uniform histograms with no single "
               "dominant pattern (paper Fig. 3) — optimal widths are "
               "component-dependent, motivating the search.\n";
  return 0;
}
