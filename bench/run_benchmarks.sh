#!/usr/bin/env bash
# Serving-performance benchmark runner: builds (if needed) and runs the
# kernel micro-suite plus the serving latency bench, collecting machine-
# readable results for the perf trajectory.
#
#   bench/run_benchmarks.sh [out_dir]
#
#   BUILD_DIR           cmake build tree       (default: build)
#   KERNELS_MIN_TIME    --benchmark_min_time   (default: 0.05; use 0.01 in CI)
#   MIXQ_SERVE_THREADS  QPS client threads     (default: 8)
#   MIXQ_PRUNED_NODES   pruned-scenario graph size (default: 100000)
#
# Outputs in out_dir (default: <BUILD_DIR>/benchout):
#   BENCH_serving.json  single-request latency + QPS (lowered vs reference)
#                       + batched-vs-unbatched QPS of the Submit API
#                       + "pruned": receptive-field-pruned vs full-forward
#                         QPS on a large power-law graph
#   BENCH_kernels.json  Google-Benchmark JSON for the GEMM/SpMM/quant and
#                       frontier-expansion/induced-slicing kernels
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT_DIR="${1:-$BUILD_DIR/benchout}"
KERNELS_MIN_TIME="${KERNELS_MIN_TIME:-0.05}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT"
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_serving_latency
if ! cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_kernels_micro; then
  echo "kernels_micro unavailable (Google Benchmark not installed); skipping"
fi

mkdir -p "$OUT_DIR"

echo "=== serving_latency ==="
MIXQ_BENCH_JSON="$OUT_DIR/BENCH_serving.json" "$BUILD_DIR/bench/serving_latency"

if [[ -x "$BUILD_DIR/bench/kernels_micro" ]]; then
  echo "=== kernels_micro ==="
  "$BUILD_DIR/bench/kernels_micro" \
    --benchmark_min_time="$KERNELS_MIN_TIME" \
    --benchmark_format=console \
    --benchmark_out_format=json \
    --benchmark_out="$OUT_DIR/BENCH_kernels.json"
fi

echo
echo "results in $OUT_DIR:"
ls -l "$OUT_DIR"
