// Copyright 2026 MixQ-GNN Authors
// Table 9: CSL synthetic dataset — 4-layer GCN with Laplacian positional
// encodings; FP32 / QAT-INT2 / QAT-INT4 / MixQ.
#include "bench/bench_util.h"
#include "graph/csl.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 9 — CSL (exact dataset; 4-layer GCN + Laplacian PE)");
  GraphDataset csl = MakeCslDataset(/*pe_dim=*/50, /*seed=*/1);

  GraphExperimentConfig cfg;
  cfg.gcn_backbone = true;
  cfg.gcn_layers = 4;
  cfg.hidden = FullProfile() ? 64 : 48;
  cfg.folds = FullProfile() ? 5 : 2;
  cfg.train.epochs = Epochs(100, 300);
  cfg.train.lr = 0.005f;
  cfg.train.weight_decay = 0.0f;

  SchemeRef mixq_eps = SchemeRef::MixQ(-1e-3, {2, 4, 8});
  SchemeRef mixq_0 = SchemeRef::MixQ(0.0, {2, 4, 8});
  for (SchemeRef* s : {&mixq_eps, &mixq_0}) {
    s->params.SetInt("search_epochs", cfg.train.epochs / 2);
  }
  struct Row {
    const char* label;
    SchemeRef scheme;
    const char* paper;
  };
  const Row rows[] = {
      {"FP32", SchemeRef::Fp32(), "99.4 ±1.3 (min 96.7, max 100)"},
      {"QAT-INT2", SchemeRef::Qat(2), "24.4 ±8.1 (min 6.7, max 46.7)"},
      {"QAT-INT4", SchemeRef::Qat(4), "94.4 ±5.9 (min 80, max 100)"},
      {"MixQ(l=-e)", mixq_eps, "95.0 ±5.1 (3.9 bits)"},
      {"MixQ(l=0)", mixq_0, "94.1 ±5.2 (3.5 bits)"},
  };

  TablePrinter table({"Method", "Paper Acc (5-fold x10)", "Measured Acc", "Min",
                      "Max", "Bits"});
  for (const Row& row : rows) {
    GraphExperimentResult r = RunGraph(csl, cfg, row.scheme);
    table.AddRow({row.label, row.paper,
                  FormatMeanStd(r.mean * 100.0, r.stddev * 100.0),
                  FormatFloat(r.min * 100.0, 1), FormatFloat(r.max * 100.0, 1),
                  FormatFloat(r.avg_bits, 2)});
  }
  table.Print();
  std::cout << "\nExpected shape: INT2 collapses toward chance (10%) — the "
               "paper's log2(41) = 5.36-bit information argument; wider "
               "widths recover. Our FP32 CSL accuracy is below the paper's "
               "(max pooling + sign-randomized PEs train slower on CPU "
               "budgets); the INT2-vs-rest gap is the reproduced claim.\n";
  return 0;
}
