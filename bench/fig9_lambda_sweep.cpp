// Copyright 2026 MixQ-GNN Authors
// Figure 9: effect of λ on the average bit-width and accuracy of MixQ
// (2-layer GCN, Cora analogue).
#include "bench/bench_util.h"
#include "common/stats.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Figure 9 — Lambda sweep (2-layer GCN, Cora analogue)");
  const int runs = Runs(2, 30);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);
  auto make = [](uint64_t seed) { return QuickCitation("cora", seed); };

  ExperimentResult fp32 = RunNode(QuickCitation("cora", 1), cfg, SchemeRef::Fp32());

  const double lambdas[] = {-0.1, -0.01, -1e-8, 0.001, 0.01, 0.05, 0.1};
  TablePrinter table({"Lambda", "Avg bits", "Accuracy", "GBitOPs"});
  std::vector<double> bits_series;
  for (double lambda : lambdas) {
    SchemeRef scheme = SchemeRef::MixQ(lambda);
    scheme.params.SetInt("search_epochs", cfg.train.epochs);
    RepeatedResult r = Repeat(make, cfg, scheme, runs);
    bits_series.push_back(r.mean_bits);
    table.AddRow({FormatFloat(lambda, 4), FormatFloat(r.mean_bits, 2),
                  FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                  FormatFloat(r.mean_gbitops, 2)});
  }
  table.Print();
  std::cout << "\nFP32 reference accuracy: " << Pct(fp32.test_metric) << "\n";
  // The paper's trend: negative lambda keeps ~8 bits; growing lambda drops
  // the average width and eventually accuracy.
  std::cout << "Expected shape: average bits non-increasing in lambda "
               "(measured first->last: " << FormatFloat(bits_series.front(), 2)
            << " -> " << FormatFloat(bits_series.back(), 2)
            << "); accuracy near FP32 for bits in [6.7, 8].\n";
  return 0;
}
