// Copyright 2026 MixQ-GNN Authors
// Ablation: range-observer choice (min-max vs EMA vs percentile) at INT4 on
// the Cora analogue — the design choice DQ's percentile clipping motivates.
#include "bench/bench_util.h"
#include "common/stats.h"
#include "train/metrics.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Ablation — observer choice at INT4 (GCN, Cora analogue)");
  const int runs = Runs(2, 10);
  auto make = [](uint64_t seed) { return QuickCitation("cora", seed); };

  struct Row {
    const char* label;
    ObserverKind kind;
  };
  const Row rows[] = {
      {"min-max", ObserverKind::kMinMax},
      {"EMA", ObserverKind::kEma},
      {"percentile (99.9)", ObserverKind::kPercentile},
  };

  TablePrinter table({"Observer", "Accuracy", "Bits"});
  for (const Row& row : rows) {
    // Reuse the node pipeline with a custom fixed scheme via QAT options:
    // implemented by running UniformQat through the kFixed path is not
    // exposed, so run the experiment manually per observer.
    NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);
    std::vector<double> accs;
    for (int r = 0; r < runs; ++r) {
      NodeDataset ds = make(1 + static_cast<uint64_t>(r));
      const Graph& g = ds.graph;
      auto op = MakeOperator(GcnNormalize(g.Adjacency()));
      Rng rng(7 + static_cast<uint64_t>(r)), drop(8);
      GcnNet net({g.feature_dim(), cfg.hidden, g.num_classes, 2, 0.5f}, &rng);
      QatOptions opts;
      opts.activation_observer = row.kind;
      UniformQatScheme scheme(4, opts);
      auto forward = [&](Rng* drng) {
        return net.Forward(g.features, op, &scheme, drng);
      };
      TrainResult tr = RunTrainingLoop(
          cfg.train, &net, &scheme, forward,
          [&](const Tensor& logits) {
            return CrossEntropyMasked(logits, g.labels, g.train_mask);
          },
          [&](const Tensor& logits, bool is_test) {
            return Accuracy(logits, g.labels, is_test ? g.test_mask : g.val_mask);
          });
      accs.push_back(tr.test_at_best_val);
    }
    table.AddRow({row.label, FormatMeanStd(Mean(accs) * 100.0, StdDev(accs) * 100.0),
                  "4"});
  }
  table.Print();
  std::cout << "\nExpected shape: EMA/percentile observers match or beat raw "
               "min-max at low widths — outlier aggregates otherwise inflate "
               "the scale (DQ's motivation).\n";
  return 0;
}
