// Copyright 2026 MixQ-GNN Authors
// Table 1: space/time complexity of DQ, A2Q, MixQ — analytic rows plus the
// measured quantization-parameter counts that drive the asymptotics.
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 1 — Complexity comparison (analytic + measured)");

  TablePrinter analytic({"Method", "Space", "Time"});
  analytic.AddRow({"DQ", "O(l + b n f l)", "O_FP32(f l) + O_INT((n^2 f + n f^2) l)"});
  analytic.AddRow({"A2Q", "O(n l + bbar n f l)",
                   "O_FP32(n f l) + O_INT((n^2 f + n f^2) l)"});
  analytic.AddRow({"MixQ", "O(l + bbar n f l)",
                   "O_FP32(f l) + O_INT((n^2 f + n f^2) l)"});
  analytic.Print();

  // Measured: A2Q's learnable quantization parameters grow with n; DQ and
  // MixQ stay O(components). The paper's §5.3 footnote: on OGB-Arxiv the A2Q
  // quantization parameters (2 per node per component) exceed the GCN's own
  // weights, while MixQ needs only |B| alphas per component.
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn, 8, 8);
  cfg.num_layers = 3;
  NodeDataset arxiv = QuickCitation("arxiv", 1);

  ExperimentResult ra = RunNode(arxiv, cfg, SchemeRef::A2q());
  SchemeRef mixq = SchemeRef::MixQ(0.05, {4, 8});
  mixq.params.SetInt("search_epochs", 8);
  ExperimentResult rm = RunNode(arxiv, cfg, mixq);

  TablePrinter measured({"Method", "Model params", "Quant params",
                         "Quant params / node"});
  measured.AddRow({"A2Q", std::to_string(ra.model_param_count),
                   std::to_string(ra.quant_param_count),
                   FormatFloat(static_cast<double>(ra.quant_param_count) /
                               static_cast<double>(arxiv.graph.num_nodes), 2)});
  measured.AddRow({"MixQ", std::to_string(rm.model_param_count),
                   std::to_string(rm.quant_param_count),
                   FormatFloat(static_cast<double>(rm.quant_param_count) /
                               static_cast<double>(arxiv.graph.num_nodes), 4)});
  std::cout << "\nMeasured on the OGB-Arxiv analogue (" << arxiv.graph.num_nodes
            << " nodes, 3-layer GCN):\n";
  measured.Print();
  std::cout << "\nExpected shape: A2Q quant params scale with n (>= 2 per node "
               "per component); MixQ's are O(|B| x components), independent "
               "of n.\n";
  return 0;
}
