// Copyright 2026 MixQ-GNN Authors
// Table 6: GraphSAGE + MixQ standalone (no advanced quantizers), with
// neighbour sampling bounding in-degrees (paper §5.3.2).
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 6 — GraphSAGE node classification");
  const int runs = Runs(2, 10);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kSage);
  cfg.sample_max_degree = 25;

  struct Row {
    const char* dataset;
    const char* method;
    double lambda;  // NaN-proxy: lambda < -1 means FP32
    const char* paper_acc;
    const char* paper_bits;
    const char* paper_g;
  };
  const Row rows[] = {
      {"cora", "FP32", -2.0, "76.7 ±0.3", "32", "7.8"},
      {"cora", "MixQ(l=0.1)", 0.05, "78.1 ±0.3", "6.9", "1.94"},
      {"cora", "MixQ(l=1)", 1.0, "75.4 ±0.7", "4.9", "0.9"},
      {"citeseer", "FP32", -2.0, "65.6 ±0.7", "32", "19.5"},
      {"citeseer", "MixQ(l=0.1)", 0.05, "65.8 ±0.6", "6.3", "4.2"},
      {"citeseer", "MixQ(l=1)", 1.0, "66.6 ±0.9", "4.7", "2.1"},
      {"pubmed", "FP32", -2.0, "77.9 ±0.2", "32", "5.6"},
      {"pubmed", "MixQ(l=0.1)", 0.05, "77.8 ±0.2", "6.9", "1.2"},
      {"pubmed", "MixQ(l=1)", 1.0, "77.9 ±0.1", "5.4", "0.7"},
  };

  TablePrinter table({"Dataset", "Method", "Paper Acc", "Paper Bits", "Paper G",
                      "Measured Acc", "Bits", "GBitOPs"});
  std::string last_ds;
  for (const Row& row : rows) {
    auto make = [&](uint64_t seed) { return QuickCitation(row.dataset, seed); };
    SchemeRef scheme =
        row.lambda < -1.0 ? SchemeRef::Fp32() : SchemeRef::MixQ(row.lambda);
    scheme.params.SetInt("search_epochs", cfg.train.epochs);
    RepeatedResult r = Repeat(make, cfg, scheme, runs);
    if (!last_ds.empty() && last_ds != row.dataset) table.AddSeparator();
    last_ds = row.dataset;
    table.AddRow({row.dataset, row.method, row.paper_acc, row.paper_bits,
                  row.paper_g,
                  FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                  FormatFloat(r.mean_bits, 2), FormatFloat(r.mean_gbitops, 2)});
  }
  table.Print();
  std::cout << "\nExpected shape: MixQ on sampled-neighbourhood SAGE keeps "
               "accuracy within noise of FP32 at ~4-8x fewer BitOPs.\n";
  return 0;
}
