// Copyright 2026 MixQ-GNN Authors
// Google-Benchmark micro suite for the compute kernels underlying every
// experiment: dense GEMM (float and int32), sparse SpMM (float and int),
// fake quantization, the Theorem-1 fused quantized SpMM, and the pruned
// serving path's frontier expansion / induced-CSR slicing.
#include <benchmark/benchmark.h>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "quant/fake_quant.h"
#include "quant/fused_mp.h"
#include "quant/requant.h"
#include "sparse/csr.h"
#include "sparse/frontier.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace mixq {
namespace {

CsrMatrix RandomGraph(int64_t n, int64_t avg_degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int64_t e = 0; e < n * avg_degree; ++e) {
    entries.push_back({rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                       rng.Uniform(-1.0f, 1.0f)});
  }
  return CsrMatrix::FromCoo(n, n, entries);
}

void BM_GemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomUniform(Shape(n, n), &rng, -1.0f, 1.0f);
  Tensor b = Tensor::RandomUniform(Shape(n, n), &rng, -1.0f, 1.0f);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmNN(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt32(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<int32_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int32_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int32_t>(rng.UniformInt(-127, 127));
  std::vector<int64_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt32(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(11);
  std::vector<int8_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int32_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt8(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

// The serving executor's dense kernel: int8 codes against pair-packed
// weights (packed once, as CompileModel does).
void BM_GemmInt8PackedB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(12);
  std::vector<int8_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int16_t> packed(static_cast<size_t>(PackedPairSize(n, n)));
  PackInt8PairB(b.data(), n, n, packed.data());
  std::vector<int32_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt8PackedB(a.data(), packed.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8PackedB)->Arg(64)->Arg(128)->Arg(256);

/// A representative serving epilogue: folded scale ratio + an int8 output
/// quantizer (no bias — the bias add is identical in both variants and would
/// only dilute the round-trip difference under test).
RequantEpilogue BenchEpilogue() {
  RequantEpilogue ep;
  ep.total = 0.004321;
  ep.emitter = CodeEmitter(ParamsFromRange(-1.0f, 1.0f, 8, true));
  return ep;
}

/// The pre-fusion executor shape: int8 GEMM into an int32 scratch matrix,
/// then a separate pass requantizing scratch rows to codes. The A/B partner
/// of BM_GemmInt8RequantFused — same inputs, same output codes.
void BM_GemmInt8RequantUnfused(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(16);
  std::vector<int8_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int16_t> packed(static_cast<size_t>(PackedPairSize(n, n)));
  PackInt8PairB(b.data(), n, n, packed.data());
  const RequantEpilogue ep = BenchEpilogue();
  std::vector<int32_t> acc(static_cast<size_t>(n * n));
  std::vector<int8_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt8PackedB(a.data(), packed.data(), acc.data(), n, n, n);
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t j0 = 0; j0 < n; j0 += kRequantBlock) {
        const int64_t len = std::min(kRequantBlock, n - j0);
        RequantBlock(acc.data() + r * n + j0, len, ep.total, nullptr, ep.emitter,
                     c.data() + r * n + j0);
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8RequantUnfused)->Arg(64)->Arg(128)->Arg(256);

/// The fused epilogue: requantizes register/row-block accumulators straight
/// to int8 codes — no int32 scratch matrix in the loop.
void BM_GemmInt8RequantFused(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(16);  // same seed as the unfused partner: identical inputs
  std::vector<int8_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int16_t> pair(static_cast<size_t>(PackedPairSize(n, n)));
  PackInt8PairB(b.data(), n, n, pair.data());
  std::vector<int8_t> quad(static_cast<size_t>(PackedQuadSize(n, n)));
  std::vector<int32_t> corr(static_cast<size_t>(n));
  PackInt8QuadB(b.data(), n, n, quad.data(), corr.data());
  Int8PackedWeights w;
  w.pair = pair.data();
  if (Int8VnniDepthOk(n)) {
    w.quad = quad.data();
    w.corr = corr.data();
    // Full-scale random codes: the coarse depth predicate IS the proof here.
    w.vnni_ok = true;
  }
  const RequantEpilogue ep = BenchEpilogue();
  std::vector<int8_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt8Requant(a.data(), w, n, n, n, n, ep, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmInt8RequantFused)->Arg(64)->Arg(128)->Arg(256);

/// VNNI (vpdpbusd) vs vpmaddwd vs scalar on the same fused int8 GEMM:
/// Arg encodes the KernelIsa tier; unsupported tiers are skipped. Restores
/// the ambient dispatch level afterwards.
void BM_GemmInt8ByIsa(benchmark::State& state) {
  const auto isa = static_cast<KernelIsa>(state.range(0));
  if (isa > BestSupportedIsa()) {
    state.SkipWithError("kernel tier not supported on this machine/build");
    return;
  }
  const KernelIsa ambient = ActiveKernelIsa();
  SetKernelIsa(isa);
  const int64_t n = 256;
  Rng rng(17);
  std::vector<int8_t> a(static_cast<size_t>(n * n)), b(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int16_t> pair(static_cast<size_t>(PackedPairSize(n, n)));
  PackInt8PairB(b.data(), n, n, pair.data());
  std::vector<int8_t> quad(static_cast<size_t>(PackedQuadSize(n, n)));
  std::vector<int32_t> corr(static_cast<size_t>(n));
  PackInt8QuadB(b.data(), n, n, quad.data(), corr.data());
  Int8PackedWeights w;
  w.pair = pair.data();
  w.quad = quad.data();
  w.corr = corr.data();
  w.vnni_ok = Int8VnniDepthOk(n);
  const RequantEpilogue ep = BenchEpilogue();
  std::vector<int8_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    GemmInt8Requant(a.data(), w, n, n, n, n, ep, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(KernelIsaName(isa));
  SetKernelIsa(ambient);
}
BENCHMARK(BM_GemmInt8ByIsa)->Arg(0)->Arg(1)->Arg(2);

void BM_SpmmFloat(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 3);
  Rng rng(4);
  Tensor x = Tensor::RandomUniform(Shape(n, 64), &rng, -1.0f, 1.0f);
  std::vector<float> y(static_cast<size_t>(n * 64));
  for (auto _ : state) {
    SpmmRaw(a, x.data().data(), 64, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmFloat)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SpmmInt(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 5);
  Rng rng(6);
  std::vector<int32_t> aq(static_cast<size_t>(a.nnz()));
  for (auto& v : aq) v = static_cast<int32_t>(rng.UniformInt(-127, 127));
  std::vector<int32_t> x(static_cast<size_t>(n * 64));
  for (auto& v : x) v = static_cast<int32_t>(rng.UniformInt(-127, 127));
  std::vector<int64_t> y(static_cast<size_t>(n * 64));
  for (auto _ : state) {
    SpmmInt(a, aq.data(), x.data(), 64, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmInt)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SpmmInt8(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 10);
  Rng rng(13);
  std::vector<int8_t> aq(static_cast<size_t>(a.nnz()));
  for (auto& v : aq) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int8_t> x(static_cast<size_t>(n * 64));
  for (auto& v : x) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int32_t> y(static_cast<size_t>(n * 64));
  for (auto _ : state) {
    SpmmInt8(a, aq.data(), x.data(), 64, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmInt8)->Arg(1000)->Arg(4000)->Arg(16000);

/// Pre-fusion integer aggregation: SpmmInt8 into an int32 scratch matrix,
/// then a separate row-major requant pass — the A/B partner of
/// BM_SpmmInt8RequantFused (same graph, same codes out).
void BM_SpmmInt8RequantUnfused(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 18);
  Rng rng(19);
  std::vector<int8_t> aq(static_cast<size_t>(a.nnz()));
  for (auto& v : aq) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int8_t> x(static_cast<size_t>(n * 64));
  for (auto& v : x) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  const RequantEpilogue ep = BenchEpilogue();
  std::vector<int32_t> acc(static_cast<size_t>(n * 64));
  std::vector<int8_t> y(static_cast<size_t>(n * 64));
  for (auto _ : state) {
    SpmmInt8(a, aq.data(), x.data(), 64, acc.data());
    for (int64_t r = 0; r < n; ++r) {
      RequantBlock(acc.data() + r * 64, 64, ep.total, nullptr, ep.emitter,
                   y.data() + r * 64);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmInt8RequantUnfused)->Arg(1000)->Arg(4000)->Arg(16000);

/// Fused aggregation epilogue: each row's feature tile accumulates in a
/// stack int32 block and requantizes from there — the scratch matrix (and
/// its second memory sweep) disappears.
void BM_SpmmInt8RequantFused(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 18);  // same seed: identical graph
  Rng rng(19);
  std::vector<int8_t> aq(static_cast<size_t>(a.nnz()));
  for (auto& v : aq) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<int8_t> x(static_cast<size_t>(n * 64));
  for (auto& v : x) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  const RequantEpilogue ep = BenchEpilogue();
  std::vector<int8_t> y(static_cast<size_t>(n * 64));
  for (auto _ : state) {
    SpmmInt8Requant(a, aq.data(), x.data(), 64, ep, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_SpmmInt8RequantFused)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_FusedQuantizedSpmm(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 7);
  Rng rng(8);
  Tensor x = Tensor::RandomUniform(Shape(n, 64), &rng, -1.0f, 1.0f);
  QuantParams pa = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams px = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams py;
  py.bits = 32;
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);
  for (auto _ : state) {
    auto out = FusedQuantizedSpmm(a, qa, qx, py);
    benchmark::DoNotOptimize(out.q.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * 64);
}
BENCHMARK(BM_FusedQuantizedSpmm)->Arg(1000)->Arg(4000)->Arg(16000);

// The pruned serving path's per-request analysis: expand the 2-hop
// receptive field of 64 seed nodes. Items processed = entries traversed.
void BM_ExpandFrontier(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 14);
  std::vector<int64_t> seeds;
  for (int64_t i = 0; i < 64; ++i) seeds.push_back((i * 9973) % n);
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  FrontierWorkspace ws;
  ws.EnsureSize(n);
  // Item count is deterministic: compute it outside the timed loop so the
  // per-item rate reflects only the expansion under test.
  const int64_t traversed =
      RowsNnz(a, seeds) +
      RowsNnz(a, ExpandFrontier(a, seeds, /*include_rows=*/true, &ws));
  for (auto _ : state) {
    std::vector<int64_t> hop1 = ExpandFrontier(a, seeds, /*include_rows=*/true, &ws);
    std::vector<int64_t> hop2 = ExpandFrontier(a, hop1, /*include_rows=*/true, &ws);
    benchmark::DoNotOptimize(hop2.data());
  }
  state.SetItemsProcessed(state.iterations() * traversed);
}
BENCHMARK(BM_ExpandFrontier)->Arg(16000)->Arg(65536);

// Slicing the frontier's rows out of the graph CSR with the old→new column
// remap — the setup cost a pruned forward pays instead of a full SpMM.
void BM_InducedRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  CsrMatrix a = RandomGraph(n, 8, 15);
  std::vector<int64_t> seeds;
  for (int64_t i = 0; i < 64; ++i) seeds.push_back((i * 9973) % n);
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  FrontierWorkspace ws;
  ws.EnsureSize(n);
  std::vector<int64_t> rows = ExpandFrontier(a, seeds, /*include_rows=*/true, &ws);
  std::vector<int64_t> frontier = ExpandFrontier(a, rows, /*include_rows=*/true, &ws);
  for (size_t j = 0; j < frontier.size(); ++j) ws.pos[frontier[j]] = j;
  int64_t sliced_nnz = 0;
  for (auto _ : state) {
    CsrMatrix induced =
        a.InducedRows(rows, ws.pos.data(), static_cast<int64_t>(frontier.size()));
    sliced_nnz = induced.nnz();
    benchmark::DoNotOptimize(induced.values().data());
  }
  state.SetItemsProcessed(state.iterations() * sliced_nnz);
}
BENCHMARK(BM_InducedRows)->Arg(16000)->Arg(65536);

void BM_FakeQuant(benchmark::State& state) {
  const int64_t numel = state.range(0);
  Rng rng(9);
  Tensor x = Tensor::RandomUniform(Shape(numel), &rng, -1.0f, 1.0f);
  QuantParams p = ParamsFromRange(-1.0f, 1.0f, 8, true);
  for (auto _ : state) {
    Tensor y = FakeQuantOp(x, p);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(state.iterations() * numel);
}
BENCHMARK(BM_FakeQuant)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace mixq

BENCHMARK_MAIN();
