// Copyright 2026 MixQ-GNN Authors
// Table 10 (additive ablation): Random bit assignment vs Random+INT8 output
// vs MixQ(λ=1), 2-layer GCN.
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 10 — Random assignment ablation");
  const int runs = Runs(3, 30);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);

  struct Row {
    const char* dataset;
    const char* paper_random;
    const char* paper_random8;
    const char* paper_mixq;
  };
  const Row rows[] = {
      {"cora", "36.9 ±19.5 (4.56b)", "57.4 ±21.4 (4.97b)", "68.7 ±2.7 (3.84b)"},
      {"citeseer", "46.1 ±15.6 (4.86b)", "54.2 ±14.9 (4.96b)", "60.9 ±8.7 (3.44b)"},
      {"pubmed", "45.5 ±21.9 (4.60b)", "50.8 ±21.0 (4.79b)", "71.0 ±1.8 (4.09b)"},
  };

  TablePrinter table({"Dataset", "Method", "Paper Acc (Bits)", "Measured Acc",
                      "Bits", "GBitOPs"});
  for (const Row& row : rows) {
    auto make = [&](uint64_t seed) { return QuickCitation(row.dataset, seed); };
    SchemeRef mixq = SchemeRef::MixQ(1.0);
    mixq.params.SetInt("search_epochs", cfg.train.epochs);
    struct M {
      const char* label;
      SchemeRef scheme;
      const char* paper;
    };
    const M methods[] = {{"Random", SchemeRef::Random(), row.paper_random},
                         {"Random+INT8", SchemeRef::RandomInt8(), row.paper_random8},
                         {"MixQ(l=1)", mixq, row.paper_mixq}};
    for (const M& m : methods) {
      RepeatedResult r = Repeat(make, cfg, m.scheme, runs);
      table.AddRow({row.dataset, m.label, m.paper,
                    FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                    FormatFloat(r.mean_bits, 2), FormatFloat(r.mean_gbitops, 2)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nExpected shape: Random << Random+INT8 << MixQ in accuracy, "
               "with Random's huge variance; MixQ wins at fewer bits.\n";
  return 0;
}
