// Copyright 2026 MixQ-GNN Authors
// Figure 8: BitOPs vs measured inference time for one message-passing layer
// (SpMM + GEMM) at INT8/INT16/INT32/FP32 across dataset shapes, plus the
// log-log Pearson correlation (paper: 0.59-0.95 across hardware).
#include <chrono>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "quant/fused_mp.h"
#include "tensor/gemm.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

struct Workload {
  const char* name;
  int64_t nodes;
  int64_t feat;
  int64_t hidden;
  double density;
};

double TimeSeconds(const std::function<void()>& fn, int iters) {
  fn();  // warm-up
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  PrintHeader("Figure 8 — BitOPs vs inference time (single message pass)");
  const bool full = FullProfile();
  const std::vector<Workload> workloads = {
      {"cora-like", full ? 2708 : 1354, 256, 64, 0.002},
      {"citeseer-like", full ? 3327 : 1663, 256, 64, 0.001},
      {"pubmed-like", full ? 8000 : 3000, 128, 64, 0.0008},
      {"arxiv-like", full ? 12000 : 4000, 128, 64, 0.0005},
  };
  const int iters = full ? 10 : 5;

  TablePrinter table({"Workload", "Precision", "GBitOPs", "Time (ms)"});
  std::vector<double> log_bitops, log_time;
  Rng rng(1);
  for (const Workload& w : workloads) {
    // Random sparse adjacency + dense features.
    std::vector<CooEntry> entries;
    const int64_t target_edges =
        static_cast<int64_t>(w.density * static_cast<double>(w.nodes) * w.nodes);
    for (int64_t e = 0; e < target_edges; ++e) {
      entries.push_back({rng.UniformInt(0, w.nodes - 1),
                         rng.UniformInt(0, w.nodes - 1), rng.Uniform(-1.0f, 1.0f)});
    }
    CsrMatrix a = CsrMatrix::FromCoo(w.nodes, w.nodes, entries);
    Tensor x = Tensor::RandomUniform(Shape(w.nodes, w.feat), &rng, -1.0f, 1.0f);
    Tensor theta = Tensor::RandomUniform(Shape(w.feat, w.hidden), &rng, -0.3f, 0.3f);
    const double macs =
        static_cast<double>(a.nnz()) * w.feat + static_cast<double>(w.nodes) * w.feat * w.hidden;
    const double ops = 2.0 * macs;

    // FP32 path.
    std::vector<float> xw(static_cast<size_t>(w.nodes * w.hidden));
    std::vector<float> y(static_cast<size_t>(w.nodes * w.hidden));
    const double t_fp32 = TimeSeconds(
        [&] {
          GemmNN(x.data().data(), theta.data().data(), xw.data(), w.nodes, w.feat,
                 w.hidden);
          SpmmRaw(a, xw.data(), w.hidden, y.data());
        },
        iters);
    // Integer paths (the Theorem-1 fused kernels; bit-width enters the BitOPs
    // model — the kernels share int32 storage, so times cluster while BitOPs
    // scale, exactly the regime the figure explores).
    QuantParams pa = ParamsFromRange(-1.0f, 1.0f, 8, true);
    QuantParams py;
    py.bits = 32;
    QuantizedSparse qa = QuantizeCsr(a, pa);
    struct P {
      const char* label;
      int bits;
    };
    for (P prec : {P{"INT8", 8}, P{"INT16", 16}, P{"INT32", 32}}) {
      QuantParams px = ParamsFromRange(-1.0f, 1.0f, prec.bits, true);
      QuantizedDense qx = QuantizeDense(x, px);
      QuantizedDense qtheta =
          QuantizeDense(theta, ParamsFromRange(-0.3f, 0.3f, prec.bits, true));
      const double t = TimeSeconds(
          [&] {
            QuantizedDense qxw = FusedQuantizedGemm(qx, qtheta, py);
            (void)FusedQuantizedSpmm(a, qa, qxw, py);
          },
          iters);
      const double gbitops = ops * prec.bits / 1e9;
      table.AddRow({w.name, prec.label, FormatFloat(gbitops, 2),
                    FormatFloat(t * 1e3, 2)});
      log_bitops.push_back(std::log10(gbitops));
      log_time.push_back(std::log10(t));
    }
    const double gbitops32 = ops * 32.0 / 1e9;
    table.AddRow({w.name, "FP32", FormatFloat(gbitops32, 2),
                  FormatFloat(t_fp32 * 1e3, 2)});
    log_bitops.push_back(std::log10(gbitops32));
    log_time.push_back(std::log10(t_fp32));
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nlog-log Pearson correlation (BitOPs vs time): "
            << FormatFloat(PearsonCorrelation(log_bitops, log_time), 2)
            << "  (paper: 0.59 AMD / 0.95 Apple M1 / 0.70 Intel)\n"
            << "Expected shape: positive correlation — more BitOPs, more time "
               "across workloads and precisions.\n";
  return 0;
}
