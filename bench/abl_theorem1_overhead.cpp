// Copyright 2026 MixQ-GNN Authors
// Ablation: Theorem-1 fused integer message passing vs the naive
// dequantize-then-float path — exactness plus wall-clock comparison.
#include <chrono>

#include "bench/bench_util.h"
#include "quant/fused_mp.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Ablation — Theorem-1 fused path vs dequantize-then-float");
  Rng rng(1);
  const int64_t n = FullProfile() ? 8000 : 3000;
  const int64_t f = 64;
  const int iters = 5;

  std::vector<CooEntry> entries;
  for (int64_t e = 0; e < n * 5; ++e) {
    entries.push_back({rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                       rng.Uniform(0.0f, 1.0f)});
  }
  CsrMatrix a = CsrMatrix::FromCoo(n, n, entries);
  Tensor x = Tensor::RandomUniform(Shape(n, f), &rng, -1.0f, 1.0f);
  QuantParams pa = ParamsFromRange(0.0f, 1.0f, 8, true);
  QuantParams px = ParamsFromRange(-1.0f, 1.0f, 8, true);
  QuantParams py = ParamsFromRange(-16.0f, 16.0f, 16, true);
  QuantizedSparse qa = QuantizeCsr(a, pa);
  QuantizedDense qx = QuantizeDense(x, px);

  auto time_it = [&](const std::function<void()>& fn) {
    fn();
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / iters * 1e3;
  };

  QuantizedDense fused_out;
  const double t_fused =
      time_it([&] { fused_out = FusedQuantizedSpmm(a, qa, qx, py); });

  // Naive: dequantize both operands to float, SpMM in float, requantize.
  QuantizedDense naive_out;
  const double t_naive = time_it([&] {
    std::vector<float> af(qa.q.size());
    for (size_t i = 0; i < af.size(); ++i) af[i] = DequantizeValue(qa.q[i], pa);
    QuantizedDense xtmp = qx;
    auto xf = xtmp.Dequantize();
    std::vector<float> y(static_cast<size_t>(n * f));
    SpmmPattern(a, af.data(), xf.data(), f, y.data());
    naive_out.rows = n;
    naive_out.cols = f;
    naive_out.params = py;
    naive_out.q.resize(y.size());
    for (size_t i = 0; i < y.size(); ++i) {
      naive_out.q[i] = QuantizeValue(y[i], py);
    }
  });

  int64_t mismatches = 0;
  for (size_t i = 0; i < fused_out.q.size(); ++i) {
    if (std::abs(fused_out.q[i] - naive_out.q[i]) > 1) ++mismatches;
  }

  TablePrinter table({"Path", "Time (ms)", "Output"});
  table.AddRow({"Theorem-1 fused (integer)", FormatFloat(t_fused, 2),
                "reference"});
  table.AddRow({"Dequantize-then-float", FormatFloat(t_naive, 2),
                mismatches == 0 ? "equal (<=1 ulp ties)"
                                : std::to_string(mismatches) + " mismatches"});
  table.Print();
  std::cout << "\nExpected shape: identical outputs (Theorem 1's numerical "
               "equality); the fused path avoids materializing float copies "
               "of both operands.\n";
  return mismatches == 0 ? 0 : 1;
}
