// Copyright 2026 MixQ-GNN Authors
// Table 8: graph classification — 5-layer GIN, k-fold CV on TU analogues;
// FP32 / DQ(4,8) / A2Q / MixQ(λ*, λ=1).
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

void RunDataset(const std::string& name, const GraphDataset& ds,
                const std::vector<int>& bit_options,
                const std::vector<std::array<const char*, 4>>& paper) {
  GraphExperimentConfig cfg;
  cfg.hidden = FullProfile() ? 64 : 32;
  cfg.num_layers = FullProfile() ? 5 : 4;
  cfg.folds = FullProfile() ? 10 : 3;
  cfg.train.epochs = Epochs(30, 80);
  cfg.train.lr = 0.01f;
  cfg.train.weight_decay = 0.0f;

  SchemeRef mixq_star = SchemeRef::MixQ(-1e-8, bit_options);
  SchemeRef mixq_1 = SchemeRef::MixQ(1.0, bit_options);
  for (SchemeRef* s : {&mixq_star, &mixq_1}) {
    s->params.SetInt("search_epochs", cfg.train.epochs / 2);
  }
  const std::vector<std::pair<std::string, SchemeRef>> methods = {
      {"FP32", SchemeRef::Fp32()},
      {"DQ-INT4", SchemeRef::Dq(bit_options.front())},
      {"DQ-INT8", SchemeRef::Dq(bit_options.back())},
      {"A2Q", SchemeRef::A2q()},
      {"MixQ(l*)", mixq_star},
      {"MixQ(l=1)", mixq_1},
  };

  TablePrinter table({"Method", "Paper Acc", "Paper Bits", "Paper GBitOPs",
                      "Measured Acc", "Bits", "GBitOPs"});
  for (size_t i = 0; i < methods.size(); ++i) {
    GraphExperimentResult r = RunGraph(ds, cfg, methods[i].second);
    const auto& p = i < paper.size()
                        ? paper[i]
                        : std::array<const char*, 4>{"", "-", "-", "-"};
    table.AddRow({methods[i].first, p[1], p[2], p[3],
                  FormatMeanStd(r.mean * 100.0, r.stddev * 100.0),
                  FormatFloat(r.avg_bits, 2), FormatFloat(r.gbitops, 2)});
  }
  std::cout << "--- " << name << " ---\n";
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Table 8 — Graph classification (GIN, k-fold CV)");
  const double scale = FullProfile() ? 0.5 : 0.12;

  RunDataset("IMDB-B analogue", ImdbBLike(1, scale), {4, 8},
             {{{"FP32", "75.2 ±4.0", "32", "5.47"}},
              {{"DQ4", "68.6 ±7.0", "4", "0.68"}},
              {{"DQ8", "71.1 ±3.9", "8", "1.36"}},
              {{"A2Q", "74.6 ±3.4", "4.48", "0.87"}},
              {{"MixQ*", "74.0 ±5.6", "7.83", "1.27"}},
              {{"MixQ1", "69.6 ±7.3", "5.96", "1.06"}}});
  RunDataset("PROTEINS analogue", ProteinsLike(1, scale), {4, 8},
             {{{"FP32", "70.5 ±4.2", "32", "7.62"}},
              {{"DQ4", "73.1 ±4.1", "4", "0.95"}},
              {{"DQ8", "72.9 ±3.5", "8", "1.90"}},
              {{"A2Q", "74.0 ±1.2", "4.44", "1.05"}},
              {{"MixQ*", "73.1 ±5.5", "5.81", "1.35"}},
              {{"MixQ1", "72.8 ±5.2", "5.42", "1.25"}}});
  RunDataset("D&D analogue", DdLike(1, scale * 0.6), {4, 8},
             {{{"FP32", "73.8 ±3.3", "32", "55.41"}},
              {{"DQ4", "72.7 ±2.9", "4", "6.92"}},
              {{"DQ8", "72.9 ±3.1", "8", "13.85"}},
              {{"A2Q", "72.2 ±1.0", "4.42", "10.13"}},
              {{"MixQ*", "73.7 ±6.9", "4.89", "8.92"}},
              {{"MixQ1", "69.6 ±10.8", "4.91", "9.02"}}});
  RunDataset("REDDIT-B analogue", RedditBLike(1, scale * 0.5), {8, 16},
             {{{"FP32", "89.5 ±1.4", "32", "75.68"}},
              {{"DQ8", "83.4 ±4.9", "4", "9.46"}},
              {{"DQ16", "90.5 ±2.0", "8", "18.92"}},
              {{"A2Q", "88.9 ±2.1", "4.35", "10.28"}},
              {{"MixQ*", "90.7 ±1.5", "14.97", "33.63"}},
              {{"MixQ1", "89.3 ±1.5", "10.32", "24.34"}}});
  RunDataset("REDDIT-M analogue", RedditMLike(1, scale * 0.25), {8, 16},
             {{{"FP32", "52.2 ±3.2", "32", "83.70"}},
              {{"DQ8", "42.7 ±2.2", "4", "10.46"}},
              {{"DQ16", "50.9 ±2.8", "8", "20.92"}},
              {{"A2Q", "54.4 ±1.8", "4.33", "11.32"}},
              {{"MixQ*", "53.7 ±2.4", "14.77", "35.62"}},
              {{"MixQ1", "51.7 ±1.9", "9.85", "25.46"}}});

  std::cout << "\nExpected shape: MixQ(l*) within noise of FP32 at much lower "
               "BitOPs; GBitOPs measured over one test-fold inference.\n";
  return 0;
}
