// Copyright 2026 MixQ-GNN Authors
// Table 2: dataset characteristics — the synthetic analogues vs the paper's
// originals (scaled entries are marked).
#include "bench/bench_util.h"
#include "graph/csl.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 2 — Dataset characteristics (paper vs generated)");

  TablePrinter table({"Dataset", "Paper |G|", "Paper |V|", "Paper |E|",
                      "Paper |X|", "Paper |Y|", "Gen |V|", "Gen |E|", "Gen |X|",
                      "Gen |Y|"});
  auto add_node = [&](const char* name, const char* pv, const char* pe,
                      const char* px, const char* py, const NodeDataset& ds) {
    table.AddRow({name, "1", pv, pe, px, py, std::to_string(ds.graph.num_nodes),
                  std::to_string(ds.graph.num_edges()),
                  std::to_string(ds.graph.feature_dim()),
                  std::to_string(ds.metric == "rocauc" ? ds.graph.label_matrix.cols()
                                                       : ds.graph.num_classes)});
  };
  add_node("CiteSeer", "3327", "9104", "3703", "6", CiteSeerLike(1));
  add_node("Cora", "2708", "10556", "1433", "7", CoraLike(1));
  add_node("PubMed*", "19717", "88648", "500", "3", PubMedLike(1));
  add_node("OGB-Arxiv*", "169343", "1166243", "128", "40", ArxivLike(1));
  add_node("IGB*", "1000000", "12070502", "1024", "19", IgbLike(1));
  add_node("OGB-Proteins*", "132534", "39561252", "112", "112", OgbProteinsLike(1));
  add_node("OGB-Products*", "2449029", "61859140", "100", "47", ProductsLike(1));
  add_node("Reddit*", "232965", "114615892", "602", "41", RedditLike(1));
  table.AddSeparator();

  const double scale = FullProfile() ? 1.0 : 0.1;
  auto add_graph = [&](const char* name, const char* pg, const char* pv,
                       const char* pe, const char* px, const char* py,
                       const GraphDataset& ds) {
    table.AddRow({name, pg, pv, pe, px, py, FormatFloat(ds.AverageNodes(), 1),
                  FormatFloat(ds.AverageEdges(), 1), std::to_string(ds.feature_dim),
                  std::to_string(ds.num_classes)});
  };
  add_graph("CSL", "150", "41.0", "164.0", "-", "10", MakeCslDataset(50, 1));
  add_graph("IMDB-B", "1000", "19.8", "193.1", "-", "2", ImdbBLike(1, scale));
  add_graph("PROTEINS", "1113", "39.1", "145.6", "3", "2", ProteinsLike(1, scale));
  add_graph("D&D*", "1178", "284.3", "715.6", "89", "2", DdLike(1, scale));
  add_graph("REDDIT-B*", "2000", "429.6", "497.7", "-", "2", RedditBLike(1, scale));
  add_graph("REDDIT-M*", "4999", "508.8", "594.9", "-", "5", RedditMLike(1, scale));
  table.Print();
  std::cout << "\n'*' = scaled analogue (node counts / graph counts reduced for "
               "the CPU budget; DESIGN.md §1). Generated |E| counts directed "
               "edges, matching PyG conventions. CSL is exact.\n";
  return 0;
}
