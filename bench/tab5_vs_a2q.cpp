// Copyright 2026 MixQ-GNN Authors
// Table 5: MixQ+DQ vs A2Q — both methods exploit graph structure.
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 5 — MixQ+DQ vs A2Q");
  const int runs = Runs(2, 10);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);

  struct Row {
    const char* dataset;
    const char* paper_a2q_acc;
    const char* paper_a2q_g;
    const char* paper_mixq_acc;
    const char* paper_mixq_g;
  };
  const Row rows[] = {
      {"cora", "80.9 ±0.6", "8.94", "81.8 ±0.3", "4.01"},
      {"citeseer", "70.6 ±1.1", "8.96", "66.2 ±1.2", "6.01"},
      {"pubmed", "77.5 ±0.1", "8.94", "77.6 ±0.3", "6.88"},
  };

  TablePrinter table({"Dataset", "Method", "Paper Acc", "Paper GBitOPs",
                      "Measured Acc", "GBitOPs"});
  for (const Row& row : rows) {
    auto make = [&](uint64_t seed) { return QuickCitation(row.dataset, seed); };
    RepeatedResult a2q = Repeat(make, cfg, SchemeRef::A2q(), runs);
    SchemeRef mixq_dq = SchemeRef::MixQDq(-1e-8);
    mixq_dq.params.SetInt("search_epochs", cfg.train.epochs);
    RepeatedResult mq = Repeat(make, cfg, mixq_dq, runs);
    table.AddRow({row.dataset, "A2Q", row.paper_a2q_acc, row.paper_a2q_g,
                  FormatMeanStd(a2q.mean_metric * 100.0, a2q.std_metric * 100.0),
                  FormatFloat(a2q.mean_gbitops, 2)});
    table.AddRow({row.dataset, "MixQ+DQ", row.paper_mixq_acc, row.paper_mixq_g,
                  FormatMeanStd(mq.mean_metric * 100.0, mq.std_metric * 100.0),
                  FormatFloat(mq.mean_gbitops, 2)});
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nExpected shape: comparable accuracy with roughly half the "
               "BitOPs for MixQ+DQ on cora/pubmed analogues.\n";
  return 0;
}
