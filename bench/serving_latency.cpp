// Copyright 2026 MixQ-GNN Authors
// Serving-path benchmark: single-request latency and multi-threaded QPS of
// the lowered executor (exact float and all-integer modes) against the
// pipeline-replay reference, plus the request/response API's dynamic
// micro-batching — K concurrent single-node clients through Submit vs. the
// unbatched loop (each client paying a full forward per query) — on the
// Table-3-sized citation graph. Emits BENCH_serving.json (override the path
// with MIXQ_BENCH_JSON) for the perf trajectory, alongside the usual table.
//
//   MIXQ_SERVE_THREADS  client threads for the QPS sections (default 8)
//   MIXQ_FULL=1         full-size graph (2708 nodes) instead of quick (1000)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "bench/bench_util.h"
#include "engine/inference_engine.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Mean microseconds per call: warm up, then run until ~0.5 s or 300 calls.
double MeasureLatencyUs(const std::function<void()>& fn) {
  for (int i = 0; i < 3; ++i) fn();
  const Clock::time_point start = Clock::now();
  int iters = 0;
  double elapsed = 0.0;
  while (iters < 300 && (elapsed = SecondsSince(start)) < 0.5) {
    fn();
    ++iters;
  }
  return SecondsSince(start) / iters * 1e6;
}

/// Aggregate requests/second from `threads` clients hammering fn for ~0.5 s.
double MeasureQps(int threads, const std::function<void()>& fn) {
  std::vector<int64_t> counts(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const Clock::time_point start = Clock::now();
      while (SecondsSince(start) < 0.5) {
        fn();
        ++counts[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& w : workers) w.join();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return static_cast<double>(total) / 0.5;
}

}  // namespace

int main() {
  PrintHeader("Serving latency — lowered executor vs pipeline replay");

  NodeDataset dataset = QuickCitation("cora", /*seed=*/1);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn,
                                                /*quick_epochs=*/10,
                                                /*full_epochs=*/30);
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(dataset, cfg, SchemeRef::Qat(8));
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  std::shared_ptr<ModelArtifact> artifact = report.ValueOrDie().artifact;
  MIXQ_CHECK(artifact != nullptr);

  Result<engine::CompiledModelPtr> compiled = engine::CompileModel(*artifact);
  MIXQ_CHECK(compiled.ok()) << compiled.status().ToString();
  engine::CompiledModelPtr model = compiled.ValueOrDie();
  MIXQ_CHECK(model->info().lowered) << "qat8 must lower";
  MIXQ_CHECK(model->info().lowered_int8) << "qat8 must lower to int8";

  const Tensor& x = artifact->features;
  const SparseOperatorPtr& op = artifact->op;
  const int64_t n = x.rows();
  const int64_t nnz = op->nnz();

  // ---- single-request latency ---------------------------------------------
  engine::PredictScratch scratch;
  const double ref_us = MeasureLatencyUs(
      [&] { MIXQ_CHECK(model->PredictReference(x, op).ok()); });
  const double lowered_us =
      MeasureLatencyUs([&] { MIXQ_CHECK(model->Predict(x, op, &scratch).ok()); });
  const double int8_us = MeasureLatencyUs(
      [&] { MIXQ_CHECK(model->PredictQuantized(x, op, &scratch).ok()); });
  const double speedup = ref_us / lowered_us;
  const double speedup_int8 = ref_us / int8_us;

  // ---- multi-threaded QPS --------------------------------------------------
  const int threads = EnvInt("MIXQ_SERVE_THREADS", 8);
  engine::InferenceEngine serving;
  MIXQ_CHECK(serving.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(serving.RegisterGraph("tab3", x, op).ok());
  const double lowered_qps =
      MeasureQps(threads, [&] { MIXQ_CHECK(serving.Predict("tab3-qat8", x, op).ok()); });
  const double ref_qps =
      MeasureQps(threads, [&] { MIXQ_CHECK(model->PredictReference(x, op).ok()); });

  // ---- batched vs unbatched: K concurrent single-node clients --------------
  // Unbatched loop = what single-node queries cost before the request API:
  // every client pays a full forward per query (lowered_qps above). Batched
  // = Submit(model, graph, one node) futures; the dispatcher coalesces
  // whatever queues up into one forward and serves repeats on this static
  // graph from the result cache. The no-cache engine isolates pure
  // coalescing (every batch still pays its forward).
  std::atomic<int64_t> next_node{0};
  auto batched_client = [&](engine::InferenceEngine& api) {
    engine::PredictRequest request;
    request.model = "tab3-qat8";
    request.graph = "tab3";
    request.node_ids = {next_node.fetch_add(1, std::memory_order_relaxed) % n};
    request.precision = engine::Precision::kFp32;
    Result<engine::PredictResponse> response = api.Submit(std::move(request)).get();
    MIXQ_CHECK(response.ok()) << response.status().ToString();
  };
  const double batched_qps = MeasureQps(threads, [&] { batched_client(serving); });

  engine::BatcherOptions nocache;
  nocache.enable_cache = false;
  engine::InferenceEngine serving_nocache(nocache);
  MIXQ_CHECK(serving_nocache.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(serving_nocache.RegisterGraph("tab3", x, op).ok());
  const double batched_nocache_qps =
      MeasureQps(threads, [&] { batched_client(serving_nocache); });

  const double batched_ratio = batched_qps / lowered_qps;
  const double batched_nocache_ratio = batched_nocache_qps / lowered_qps;
  const engine::InferenceEngine::Stats nocache_stats = serving_nocache.GetStats();
  const double avg_batch =
      nocache_stats.batcher.forwards > 0
          ? static_cast<double>(nocache_stats.per_model.at("tab3-qat8").successes) /
                static_cast<double>(nocache_stats.batcher.forwards)
          : 0.0;

  TablePrinter table({"Path", "Latency (us)", "Speedup", "QPS x" +
                                                             std::to_string(threads)});
  table.AddRow({"reference (pipeline replay)", FormatFloat(ref_us, 1), "1.00",
                FormatFloat(ref_qps, 0)});
  table.AddRow({"lowered (exact float)", FormatFloat(lowered_us, 1),
                FormatFloat(speedup, 2), FormatFloat(lowered_qps, 0)});
  table.AddRow({"lowered (int8)", FormatFloat(int8_us, 1),
                FormatFloat(speedup_int8, 2), "-"});
  table.AddRow({"Submit batched, no cache", "-", "-",
                FormatFloat(batched_nocache_qps, 0)});
  table.AddRow({"Submit batched + cache", "-", "-", FormatFloat(batched_qps, 0)});
  std::printf("graph: %lld nodes, %lld nnz, %lld features, hidden %lld\n",
              static_cast<long long>(n), static_cast<long long>(nnz),
              static_cast<long long>(x.cols()), static_cast<long long>(cfg.hidden));
  table.Print();
  std::printf("\nbatched/unbatched QPS ratio (%d single-node clients): "
              "%.2fx cached, %.2fx coalescing only (avg batch %.1f)\n",
              threads, batched_ratio, batched_nocache_ratio, avg_batch);

  // ---- JSON for the perf trajectory ---------------------------------------
  const char* json_path = std::getenv("MIXQ_BENCH_JSON");
  std::ofstream json(json_path != nullptr ? json_path : "BENCH_serving.json");
  json << "{\n"
       << "  \"bench\": \"serving_latency\",\n"
       << "  \"graph\": {\"nodes\": " << n << ", \"nnz\": " << nnz
       << ", \"features\": " << x.cols() << ", \"hidden\": " << cfg.hidden
       << "},\n"
       << "  \"scheme\": \"qat8\",\n"
       << "  \"single_thread\": {\n"
       << "    \"reference_us\": " << ref_us << ",\n"
       << "    \"lowered_us\": " << lowered_us << ",\n"
       << "    \"lowered_int8_us\": " << int8_us << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"speedup_int8\": " << speedup_int8 << "\n"
       << "  },\n"
       << "  \"concurrent\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"lowered_qps\": " << lowered_qps << ",\n"
       << "    \"reference_qps\": " << ref_qps << "\n"
       << "  },\n"
       << "  \"batched\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"unbatched_qps\": " << lowered_qps << ",\n"
       << "    \"batched_qps\": " << batched_qps << ",\n"
       << "    \"batched_nocache_qps\": " << batched_nocache_qps << ",\n"
       << "    \"qps_ratio\": " << batched_ratio << ",\n"
       << "    \"qps_ratio_nocache\": " << batched_nocache_ratio << ",\n"
       << "    \"avg_batch_size\": " << avg_batch << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote %s\n", json_path != nullptr ? json_path : "BENCH_serving.json");
  return 0;
}
