// Copyright 2026 MixQ-GNN Authors
// Serving-path benchmark: single-request latency and multi-threaded QPS of
// the lowered executor (exact float and all-integer modes) against the
// pipeline-replay reference, plus the request/response API's dynamic
// micro-batching — K concurrent single-node clients through Submit vs. the
// unbatched loop (each client paying a full forward per query) — on the
// Table-3-sized citation graph. Emits BENCH_serving.json (override the path
// with MIXQ_BENCH_JSON) for the perf trajectory, alongside the usual table.
//
// A final section measures receptive-field-pruned serving on a large
// power-law graph: single-node and 64-node clients against a pruning
// engine vs. the full-forward engine (cache disabled on both), recorded in
// the JSON's "pruned" section. Pruned rows are spot-checked bitwise against
// the full forward before timing.
//
// An "overload" section floods an fp32-only model with kAuto requests at a
// rate the drains cannot serve and records the degradation ladder's typed
// outcome mix (served / shed / rejected / expired) plus the served tail —
// the JSON's "overload" section.
//
// A "network" section puts the same paths behind the TCP front door
// (net/server.h) on loopback: blocking round-trips for the wire's latency
// tax, a pipelined load proving remote clients coalesce into shared forwards
// (cache off, avg batch must exceed 1), and the overload flood replayed
// through the wire with every outcome arriving as a typed kError frame. The
// stats snapshot embedded there is the exact JSON the remote metrics
// endpoint serves (engine/stats_json.h).
//
//   MIXQ_SERVE_THREADS  client threads for the QPS sections (default 8)
//   MIXQ_FULL=1         full-size graph (2708 nodes) instead of quick (1000)
//   MIXQ_PRUNED_NODES   node count of the pruned-serving scenario graph
//                       (default 100000; CI smoke uses a tiny value)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "bench/bench_util.h"
#include "engine/inference_engine.h"
#include "engine/model_bundle.h"
#include "engine/stats_json.h"
#include "net/client.h"
#include "net/server.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Mean microseconds per call: warm up, then run until ~0.5 s or 300 calls.
double MeasureLatencyUs(const std::function<void()>& fn) {
  for (int i = 0; i < 3; ++i) fn();
  const Clock::time_point start = Clock::now();
  int iters = 0;
  double elapsed = 0.0;
  while (iters < 300 && (elapsed = SecondsSince(start)) < 0.5) {
    fn();
    ++iters;
  }
  return SecondsSince(start) / iters * 1e6;
}

/// Aggregate requests/second from `threads` clients hammering fn for ~0.5 s.
double MeasureQps(int threads, const std::function<void()>& fn) {
  std::vector<int64_t> counts(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const Clock::time_point start = Clock::now();
      while (SecondsSince(start) < 0.5) {
        fn();
        ++counts[static_cast<size_t>(t)];
      }
    });
  }
  for (auto& w : workers) w.join();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return static_cast<double>(total) / 0.5;
}

}  // namespace

int main() {
  PrintHeader("Serving latency — lowered executor vs pipeline replay");

  NodeDataset dataset = QuickCitation("cora", /*seed=*/1);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn,
                                                /*quick_epochs=*/10,
                                                /*full_epochs=*/30);
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(dataset, cfg, SchemeRef::Qat(8));
  spec.keep_artifact = true;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  std::shared_ptr<ModelArtifact> artifact = report.ValueOrDie().artifact;
  MIXQ_CHECK(artifact != nullptr);

  Result<engine::CompiledModelPtr> compiled = engine::CompileModel(*artifact);
  MIXQ_CHECK(compiled.ok()) << compiled.status().ToString();
  engine::CompiledModelPtr model = compiled.ValueOrDie();
  MIXQ_CHECK(model->info().lowered) << "qat8 must lower";
  MIXQ_CHECK(model->info().lowered_int8) << "qat8 must lower to int8";

  const Tensor& x = artifact->features;
  const SparseOperatorPtr& op = artifact->op;
  const int64_t n = x.rows();
  const int64_t nnz = op->nnz();

  // ---- bundle cold start ---------------------------------------------------
  // Offline-deployment readiness: what a fresh serving process pays between
  // "bundle on disk" and "first logits out" (engine/model_bundle.h). Parity
  // is asserted bitwise before any number is recorded.
  const char* bundle_path = "serving_latency_model.mqb";
  Clock::time_point bundle_t0 = Clock::now();
  MIXQ_CHECK(engine::SaveBundle(*model, bundle_path).ok());
  const double bundle_save_ms = SecondsSince(bundle_t0) * 1e3;
  bundle_t0 = Clock::now();
  Result<engine::CompiledModelPtr> bundled = engine::LoadBundle(bundle_path);
  MIXQ_CHECK(bundled.ok()) << bundled.status().ToString();
  const double bundle_load_ms = SecondsSince(bundle_t0) * 1e3;
  bundle_t0 = Clock::now();
  Result<Tensor> bundle_first = bundled.ValueOrDie()->Predict(x, op);
  MIXQ_CHECK(bundle_first.ok()) << bundle_first.status().ToString();
  const double bundle_first_predict_ms = SecondsSince(bundle_t0) * 1e3;
  MIXQ_CHECK(bundle_first.ValueOrDie().data() ==
             model->Predict(x, op).ValueOrDie().data())
      << "bundle round-trip parity violated";
  const int64_t bundle_bytes = static_cast<int64_t>(
      engine::InspectBundle(bundle_path).ValueOrDie().file_bytes);
  std::remove(bundle_path);

  // ---- single-request latency ---------------------------------------------
  engine::PredictScratch scratch;
  const double ref_us = MeasureLatencyUs(
      [&] { MIXQ_CHECK(model->PredictReference(x, op).ok()); });
  const double lowered_us =
      MeasureLatencyUs([&] { MIXQ_CHECK(model->Predict(x, op, &scratch).ok()); });
  const double int8_us = MeasureLatencyUs(
      [&] { MIXQ_CHECK(model->PredictQuantized(x, op, &scratch).ok()); });
  const double speedup = ref_us / lowered_us;
  const double speedup_int8 = ref_us / int8_us;

  // ---- multi-threaded QPS --------------------------------------------------
  const int threads = EnvInt("MIXQ_SERVE_THREADS", 8);
  engine::BatcherOptions cached;
  cached.enable_pruning = false;  // measure cache + coalescing in isolation
  engine::InferenceEngine serving(cached);
  MIXQ_CHECK(serving.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(serving.RegisterGraph("tab3", x, op).ok());
  const double lowered_qps =
      MeasureQps(threads, [&] { MIXQ_CHECK(serving.Predict("tab3-qat8", x, op).ok()); });
  const double ref_qps =
      MeasureQps(threads, [&] { MIXQ_CHECK(model->PredictReference(x, op).ok()); });

  // ---- batched vs unbatched: K concurrent single-node clients --------------
  // Unbatched loop = what single-node queries cost before the request API:
  // every client pays a full forward per query (lowered_qps above). Batched
  // = Submit(model, graph, one node) futures; the dispatcher coalesces
  // whatever queues up into one forward and serves repeats on this static
  // graph from the result cache. The no-cache engine isolates pure
  // coalescing (every batch still pays its forward).
  std::atomic<int64_t> next_node{0};
  auto batched_client = [&](engine::InferenceEngine& api) {
    engine::PredictRequest request;
    request.model = "tab3-qat8";
    request.graph = "tab3";
    request.node_ids = {next_node.fetch_add(1, std::memory_order_relaxed) % n};
    request.precision = engine::Precision::kFp32;
    Result<engine::PredictResponse> response = api.Submit(std::move(request)).get();
    MIXQ_CHECK(response.ok()) << response.status().ToString();
  };
  const double batched_qps = MeasureQps(threads, [&] { batched_client(serving); });

  engine::BatcherOptions nocache;
  nocache.enable_cache = false;
  nocache.enable_pruning = false;  // this section isolates pure coalescing
  engine::InferenceEngine serving_nocache(nocache);
  MIXQ_CHECK(serving_nocache.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(serving_nocache.RegisterGraph("tab3", x, op).ok());
  const double batched_nocache_qps =
      MeasureQps(threads, [&] { batched_client(serving_nocache); });

  const double batched_ratio = batched_qps / lowered_qps;
  const double batched_nocache_ratio = batched_nocache_qps / lowered_qps;
  const engine::InferenceEngine::Stats nocache_stats = serving_nocache.GetStats();
  const double avg_batch =
      nocache_stats.batcher.forwards > 0
          ? static_cast<double>(nocache_stats.per_model.at("tab3-qat8").successes) /
                static_cast<double>(nocache_stats.batcher.forwards)
          : 0.0;

  // ---- receptive-field-pruned serving on a large power-law graph ----------
  // Point queries on a big graph are the pruning regime: the model is the
  // same trained qat8 GCN (cross-graph serving), the graph a ~100k-node
  // power-law citation analogue. Cache disabled on BOTH engines so the
  // comparison is pruned forward vs. full forward, not vs. a row gather.
  const int64_t pruned_nodes = EnvInt("MIXQ_PRUNED_NODES", 100000);
  CitationConfig big_cfg;
  big_cfg.name = "pruned-bench";
  big_cfg.num_nodes = pruned_nodes;
  big_cfg.feature_dim = x.cols();  // must match the compiled model
  big_cfg.num_classes = 7;
  big_cfg.avg_degree = 3.0;
  big_cfg.power_law_alpha = 2.1;  // heavy tail: hub frontiers stay honest
  big_cfg.train_per_class = 1;
  big_cfg.val_count = 10;
  big_cfg.test_count = 10;
  big_cfg.seed = 42;
  NodeDataset big_ds = GenerateCitation(big_cfg);
  const Tensor& big_x = big_ds.graph.features;
  SparseOperatorPtr big_op = MakeOperator(GcnNormalize(big_ds.graph.Adjacency()));
  const int64_t big_n = big_x.rows();
  const int64_t big_nnz = big_op->nnz();

  engine::BatcherOptions pruned_opts;
  pruned_opts.enable_cache = false;
  // The scenario exists to exercise the pruned path at ANY size the env
  // var asks for (CI smoke uses tiny graphs), so drop the small-graph
  // guard; the cost gate still routes wide unions full.
  pruned_opts.pruned_min_graph_nodes = 0;
  engine::InferenceEngine pruned_serving(pruned_opts);
  MIXQ_CHECK(pruned_serving.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(pruned_serving.RegisterGraph("big", big_x, big_op).ok());
  engine::BatcherOptions fullfwd_opts;
  fullfwd_opts.enable_cache = false;
  fullfwd_opts.enable_pruning = false;
  engine::InferenceEngine full_serving(fullfwd_opts);
  MIXQ_CHECK(full_serving.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(full_serving.RegisterGraph("big", big_x, big_op).ok());

  // Parity spot-check: pruned rows must be bitwise identical to the full
  // forward's before any timing is believed.
  engine::PredictScratch big_scratch;
  Tensor big_full = model->Predict(big_x, big_op, &big_scratch).ValueOrDie();
  int64_t frontier_rows_sample = 0;
  for (int64_t id : {int64_t{0}, big_n / 2, big_n - 1}) {
    engine::PredictRequest probe;
    probe.model = "tab3-qat8";
    probe.graph = "big";
    probe.node_ids = {id};
    probe.precision = engine::Precision::kFp32;
    Result<engine::PredictResponse> got =
        pruned_serving.Submit(std::move(probe)).get();
    MIXQ_CHECK(got.ok()) << got.status().ToString();
    MIXQ_CHECK(got.ValueOrDie().pruned) << "expected pruned routing for node " << id;
    frontier_rows_sample = got.ValueOrDie().frontier_rows;
    for (int64_t c = 0; c < big_full.cols(); ++c) {
      MIXQ_CHECK(got.ValueOrDie().rows.at(0, c) == big_full.at(id, c))
          << "pruned row mismatch at node " << id << " col " << c;
    }
  }

  std::atomic<int64_t> next_big{0};
  auto point_client = [&](engine::InferenceEngine& api) {
    engine::PredictRequest request;
    request.model = "tab3-qat8";
    request.graph = "big";
    request.node_ids = {(next_big.fetch_add(1, std::memory_order_relaxed) *
                         9973) % big_n};
    request.precision = engine::Precision::kFp32;
    Result<engine::PredictResponse> response = api.Submit(std::move(request)).get();
    MIXQ_CHECK(response.ok()) << response.status().ToString();
  };
  auto batch64_client = [&](engine::InferenceEngine& api) {
    engine::PredictRequest request;
    request.model = "tab3-qat8";
    request.graph = "big";
    request.node_ids.reserve(64);
    const int64_t base = next_big.fetch_add(64, std::memory_order_relaxed);
    for (int64_t j = 0; j < 64; ++j) {
      request.node_ids.push_back(((base + j) * 2654435761LL) % big_n);
    }
    request.precision = engine::Precision::kFp32;
    Result<engine::PredictResponse> response = api.Submit(std::move(request)).get();
    MIXQ_CHECK(response.ok()) << response.status().ToString();
  };
  const double pruned_point_qps =
      MeasureQps(threads, [&] { point_client(pruned_serving); });
  const double full_point_qps =
      MeasureQps(threads, [&] { point_client(full_serving); });
  const double pruned_b64_qps =
      MeasureQps(threads, [&] { batch64_client(pruned_serving); });
  const double full_b64_qps =
      MeasureQps(threads, [&] { batch64_client(full_serving); });
  const double pruned_point_ratio = pruned_point_qps / full_point_qps;
  const double pruned_b64_ratio = pruned_b64_qps / full_b64_qps;
  const engine::InferenceEngine::Stats pruned_stats = pruned_serving.GetStats();

  // ---- overload: the degradation ladder under sustained pressure ----------
  // An fp32-only model (kAuto has no int8 rung to degrade to, so past the
  // shed threshold a drained kAuto batch fails fast with kUnavailable)
  // behind a small admission queue, flooded faster than drains can serve
  // for ~1 s with ~250 ms deadlines. Every outcome is typed — served, shed
  // (kUnavailable), rejected at admission (kResourceExhausted), expired
  // (kDeadlineExceeded) — and served requests keep a bounded tail, which is
  // the point of shedding: fail the unpayable work fast instead of letting
  // it rot everyone's latency.
  ExperimentSpec overload_spec =
      ExperimentSpec::NodeClassification(dataset, cfg, SchemeRef::Fp32());
  overload_spec.keep_artifact = true;
  Result<Experiment> overload_exp = Experiment::Create(std::move(overload_spec));
  MIXQ_CHECK(overload_exp.ok()) << overload_exp.status().ToString();
  Result<ExperimentReport> overload_report = overload_exp.ValueOrDie().Run();
  MIXQ_CHECK(overload_report.ok()) << overload_report.status().ToString();
  std::shared_ptr<ModelArtifact> fp_artifact = overload_report.ValueOrDie().artifact;
  Result<engine::CompiledModelPtr> fp_compiled = engine::CompileModel(*fp_artifact);
  MIXQ_CHECK(fp_compiled.ok()) << fp_compiled.status().ToString();
  engine::CompiledModelPtr fp_model = fp_compiled.ValueOrDie();
  MIXQ_CHECK(!fp_model->info().lowered_int8) << "overload model must be fp32-only";

  engine::BatcherOptions overload_opts;
  overload_opts.queue_capacity = 128;
  overload_opts.enable_cache = false;   // every served request pays real work
  overload_opts.enable_pruning = false; // so kAuto's only rung left is shed
  overload_opts.degrade_batch_threshold = 16;
  overload_opts.shed_batch_threshold = 32;
  engine::InferenceEngine overload_engine(overload_opts);
  MIXQ_CHECK(overload_engine.RegisterModel("fp32", fp_model).ok());
  MIXQ_CHECK(
      overload_engine.RegisterGraph("quick", fp_artifact->features, fp_artifact->op)
          .ok());
  const int64_t fp_n = fp_artifact->features.rows();

  struct OverloadTally {
    int64_t submitted = 0;
    int64_t served = 0;
    int64_t shed = 0;
    int64_t rejected = 0;
    int64_t expired = 0;
    int64_t other = 0;
    std::vector<double> served_us;
  };
  const double overload_secs = 1.0;
  std::atomic<int64_t> overload_next{0};
  std::vector<OverloadTally> tallies(static_cast<size_t>(threads));
  std::vector<std::thread> producers;
  const Clock::time_point overload_t0 = Clock::now();
  for (int t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      OverloadTally& tally = tallies[static_cast<size_t>(t)];
      std::vector<std::future<Result<engine::PredictResponse>>> futures;
      const Clock::time_point start = Clock::now();
      while (SecondsSince(start) < overload_secs) {
        engine::PredictRequest request;
        request.model = "fp32";
        request.graph = "quick";
        request.node_ids = {
            overload_next.fetch_add(1, std::memory_order_relaxed) % fp_n};
        request.precision = engine::Precision::kAuto;
        request.deadline =
            engine::ServingClock::now() + std::chrono::milliseconds(250);
        futures.push_back(overload_engine.Submit(std::move(request)));
        ++tally.submitted;
        // Paced, not an unthrottled spin: ~20k submits/s per producer still
        // far outruns full-forward drains, so the queue stays saturated.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      for (auto& future : futures) {
        Result<engine::PredictResponse> response = future.get();
        if (response.ok()) {
          ++tally.served;
          tally.served_us.push_back(response.ValueOrDie().total_us);
          continue;
        }
        switch (response.status().code()) {
          case StatusCode::kUnavailable: ++tally.shed; break;
          case StatusCode::kResourceExhausted: ++tally.rejected; break;
          case StatusCode::kDeadlineExceeded: ++tally.expired; break;
          default: ++tally.other; break;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  const double overload_elapsed = SecondsSince(overload_t0);

  OverloadTally overload;
  for (const OverloadTally& tally : tallies) {
    overload.submitted += tally.submitted;
    overload.served += tally.served;
    overload.shed += tally.shed;
    overload.rejected += tally.rejected;
    overload.expired += tally.expired;
    overload.other += tally.other;
    overload.served_us.insert(overload.served_us.end(), tally.served_us.begin(),
                              tally.served_us.end());
  }
  MIXQ_CHECK(overload.served + overload.shed + overload.rejected +
                 overload.expired + overload.other ==
             overload.submitted)
      << "overload futures lost";  // the every-future-resolves invariant
  auto percentile = [](std::vector<double>* v, double p) {
    if (v->empty()) return 0.0;
    std::sort(v->begin(), v->end());
    return (*v)[static_cast<size_t>(p * static_cast<double>(v->size() - 1))];
  };
  const double overload_p50_us = percentile(&overload.served_us, 0.50);
  const double overload_p99_us = percentile(&overload.served_us, 0.99);
  const double overload_served_qps =
      static_cast<double>(overload.served) / overload_elapsed;
  const engine::InferenceEngine::Stats overload_stats = overload_engine.GetStats();

  // ---- network: the same serving paths behind the TCP front door -----------
  // The qat8 model behind MixqServer on loopback, one connection per client
  // thread. Cache and pruning off so the pipelined phase measures pure
  // remote coalescing — the server submits each decoded frame immediately,
  // so frames in flight from every connection share the admission queue and
  // the dispatcher batches them like in-process Submit calls.
  engine::BatcherOptions net_opts;
  net_opts.enable_cache = false;
  net_opts.enable_pruning = false;
  engine::InferenceEngine net_engine(net_opts);
  MIXQ_CHECK(net_engine.RegisterModel("tab3-qat8", model).ok());
  MIXQ_CHECK(net_engine.RegisterGraph("tab3", x, op).ok());
  net::ServerOptions net_server_opts;
  net_server_opts.max_connections = 2 * threads + 4;
  net::MixqServer net_server(&net_engine, net_server_opts);
  MIXQ_CHECK(net_server.Start().ok());
  const int net_port = net_server.port();

  auto connect_client = [&](int port) {
    Result<net::MixqClient> connected = net::MixqClient::Connect("127.0.0.1", port);
    MIXQ_CHECK(connected.ok()) << connected.status().ToString();
    return connected.MoveValueOrDie();
  };
  auto net_request = [&](int64_t node) {
    net::RemoteRequest request;
    request.model = "tab3-qat8";
    request.graph = "tab3";
    request.node_ids = {node};
    request.precision = engine::Precision::kFp32;
    return request;
  };

  // Blocking round trips: the per-request price of the wire.
  std::atomic<int64_t> net_next{0};
  std::vector<std::vector<double>> rtt_lists(static_cast<size_t>(threads));
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        net::MixqClient client = connect_client(net_port);
        std::vector<double>& rtts = rtt_lists[static_cast<size_t>(t)];
        const Clock::time_point start = Clock::now();
        while (SecondsSince(start) < 0.5) {
          const Clock::time_point t0 = Clock::now();
          Result<net::RemoteResponse> response = client.Predict(
              net_request(net_next.fetch_add(1, std::memory_order_relaxed) % n));
          MIXQ_CHECK(response.ok()) << response.status().ToString();
          rtts.push_back(SecondsSince(t0) * 1e6);
        }
        client.Close();
      });
    }
    for (auto& w : workers) w.join();
  }
  std::vector<double> net_rtts;
  for (const auto& list : rtt_lists) {
    net_rtts.insert(net_rtts.end(), list.begin(), list.end());
  }
  const double net_blocking_qps = static_cast<double>(net_rtts.size()) / 0.5;
  const double net_rtt_p50_us = percentile(&net_rtts, 0.50);
  const double net_rtt_p99_us = percentile(&net_rtts, 0.99);

  // Pipelined load: every window sits in the admission queue together, so
  // the reported batch sizes show remote micro-batching directly.
  constexpr int kNetWindow = 32;
  struct NetTally {
    int64_t served = 0;
    int64_t coalesced = 0;
    double batch_total = 0.0;
  };
  std::vector<NetTally> net_tallies(static_cast<size_t>(threads));
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        net::MixqClient client = connect_client(net_port);
        NetTally& tally = net_tallies[static_cast<size_t>(t)];
        const Clock::time_point start = Clock::now();
        while (SecondsSince(start) < 0.5) {
          for (int i = 0; i < kNetWindow; ++i) {
            uint64_t id = 0;
            Status sent = client.Send(
                net_request(net_next.fetch_add(1, std::memory_order_relaxed) % n),
                &id);
            MIXQ_CHECK(sent.ok()) << sent.ToString();
          }
          for (int i = 0; i < kNetWindow; ++i) {
            Result<net::RemoteReply> received = client.Receive();
            MIXQ_CHECK(received.ok()) << received.status().ToString();
            net::RemoteReply reply = received.MoveValueOrDie();
            MIXQ_CHECK(reply.status.ok()) << reply.status.ToString();
            ++tally.served;
            tally.batch_total += static_cast<double>(reply.response.batch_size);
            if (reply.response.batch_size > 1) ++tally.coalesced;
          }
        }
        client.Close();
      });
    }
    for (auto& w : workers) w.join();
  }
  int64_t net_served = 0, net_coalesced = 0;
  double net_batch_total = 0.0;
  for (const NetTally& tally : net_tallies) {
    net_served += tally.served;
    net_coalesced += tally.coalesced;
    net_batch_total += tally.batch_total;
  }
  const double net_pipelined_qps = static_cast<double>(net_served) / 0.5;
  const double net_avg_batch =
      net_served > 0 ? net_batch_total / static_cast<double>(net_served) : 0.0;
  MIXQ_CHECK(net_avg_batch > 1.0)
      << "pipelined remote requests were never coalesced";
  // The exact payload a remote kStatsRequest gets — engine stats in the
  // shared grammar plus transport counters — captured before shutdown.
  const std::string net_stats_json = net_server.StatsEndpointJson();
  net_server.Shutdown();

  // The overload flood, through the wire: same fp32-only engine recipe, a
  // fresh server, and pipelined clients holding ~64 requests in flight each
  // against a 128-slot queue with 250 ms deadlines. Every outcome is a
  // typed frame on a connection that stays up.
  engine::InferenceEngine net_overload_engine(overload_opts);
  MIXQ_CHECK(net_overload_engine.RegisterModel("fp32", fp_model).ok());
  MIXQ_CHECK(net_overload_engine
                 .RegisterGraph("quick", fp_artifact->features, fp_artifact->op)
                 .ok());
  net::MixqServer net_overload_server(&net_overload_engine, net::ServerOptions());
  MIXQ_CHECK(net_overload_server.Start().ok());
  std::vector<OverloadTally> net_ov_tallies(static_cast<size_t>(threads));
  const Clock::time_point net_ov_t0 = Clock::now();
  {
    std::vector<std::thread> producers;
    for (int t = 0; t < threads; ++t) {
      producers.emplace_back([&, t] {
        net::MixqClient client = connect_client(net_overload_server.port());
        OverloadTally& tally = net_ov_tallies[static_cast<size_t>(t)];
        constexpr int kOvWindow = 64;
        const Clock::time_point start = Clock::now();
        while (SecondsSince(start) < overload_secs) {
          for (int i = 0; i < kOvWindow; ++i) {
            net::RemoteRequest request;
            request.model = "fp32";
            request.graph = "quick";
            request.node_ids = {
                overload_next.fetch_add(1, std::memory_order_relaxed) % fp_n};
            request.precision = engine::Precision::kAuto;
            request.deadline_us = 250000;
            uint64_t id = 0;
            Status sent = client.Send(request, &id);
            MIXQ_CHECK(sent.ok()) << sent.ToString();
            ++tally.submitted;
          }
          for (int i = 0; i < kOvWindow; ++i) {
            Result<net::RemoteReply> received = client.Receive();
            MIXQ_CHECK(received.ok()) << received.status().ToString();
            net::RemoteReply reply = received.MoveValueOrDie();
            if (reply.status.ok()) {
              ++tally.served;
              tally.served_us.push_back(reply.response.server_us);
              continue;
            }
            switch (reply.status.code()) {
              case StatusCode::kUnavailable: ++tally.shed; break;
              case StatusCode::kResourceExhausted: ++tally.rejected; break;
              case StatusCode::kDeadlineExceeded: ++tally.expired; break;
              default: ++tally.other; break;
            }
          }
        }
        client.Close();
      });
    }
    for (auto& p : producers) p.join();
  }
  const double net_ov_elapsed = SecondsSince(net_ov_t0);
  OverloadTally net_overload;
  for (const OverloadTally& tally : net_ov_tallies) {
    net_overload.submitted += tally.submitted;
    net_overload.served += tally.served;
    net_overload.shed += tally.shed;
    net_overload.rejected += tally.rejected;
    net_overload.expired += tally.expired;
    net_overload.other += tally.other;
    net_overload.served_us.insert(net_overload.served_us.end(),
                                  tally.served_us.begin(),
                                  tally.served_us.end());
  }
  MIXQ_CHECK(net_overload.served + net_overload.shed + net_overload.rejected +
                 net_overload.expired + net_overload.other ==
             net_overload.submitted)
      << "wire overload replies lost";  // every frame sent got a typed reply
  const double net_ov_p50_us = percentile(&net_overload.served_us, 0.50);
  const double net_ov_p99_us = percentile(&net_overload.served_us, 0.99);
  const double net_ov_served_qps =
      static_cast<double>(net_overload.served) / net_ov_elapsed;
  // The shared Stats -> JSON serializer, applied directly (what the metrics
  // endpoint wraps); embedded raw in the bench JSON below.
  const std::string net_ov_engine_json =
      engine::FormatStatsJson(net_overload_engine.GetStats());
  net_overload_server.Shutdown();

  TablePrinter table({"Path", "Latency (us)", "Speedup", "QPS x" +
                                                             std::to_string(threads)});
  table.AddRow({"reference (pipeline replay)", FormatFloat(ref_us, 1), "1.00",
                FormatFloat(ref_qps, 0)});
  table.AddRow({"lowered (exact float)", FormatFloat(lowered_us, 1),
                FormatFloat(speedup, 2), FormatFloat(lowered_qps, 0)});
  table.AddRow({"lowered (int8)", FormatFloat(int8_us, 1),
                FormatFloat(speedup_int8, 2), "-"});
  table.AddRow({"Submit batched, no cache", "-", "-",
                FormatFloat(batched_nocache_qps, 0)});
  table.AddRow({"Submit batched + cache", "-", "-", FormatFloat(batched_qps, 0)});
  std::printf("graph: %lld nodes, %lld nnz, %lld features, hidden %lld\n",
              static_cast<long long>(n), static_cast<long long>(nnz),
              static_cast<long long>(x.cols()), static_cast<long long>(cfg.hidden));
  table.Print();
  std::printf("\nbatched/unbatched QPS ratio (%d single-node clients): "
              "%.2fx cached, %.2fx coalescing only (avg batch %.1f)\n",
              threads, batched_ratio, batched_nocache_ratio, avg_batch);

  std::printf("\nbundle cold start: %lld bytes on disk, save %.2f ms, "
              "load %.2f ms, first predict %.2f ms (bitwise == in-process)\n",
              static_cast<long long>(bundle_bytes), bundle_save_ms,
              bundle_load_ms, bundle_first_predict_ms);

  std::printf("\npruned serving on %lld-node power-law graph (%lld nnz, "
              "cache disabled):\n",
              static_cast<long long>(big_n), static_cast<long long>(big_nnz));
  std::printf("  single-node x%d : pruned %.0f qps vs full %.0f qps (%.1fx), "
              "sample frontier %lld rows\n",
              threads, pruned_point_qps, full_point_qps, pruned_point_ratio,
              static_cast<long long>(frontier_rows_sample));
  std::printf("  64-node    x%d : pruned %.0f qps vs full %.0f qps (%.1fx)\n",
              threads, pruned_b64_qps, full_b64_qps, pruned_b64_ratio);
  std::printf("  routing: %lld pruned forwards, %lld full forwards\n",
              static_cast<long long>(pruned_stats.batcher.pruned_forwards),
              static_cast<long long>(pruned_stats.batcher.full_forwards));

  std::printf("\noverload (fp32-only kAuto flood, queue %lld, %.1f s, "
              "250 ms deadlines):\n",
              static_cast<long long>(overload_opts.queue_capacity),
              overload_elapsed);
  std::printf("  submitted %lld: served %lld (%.0f qps), shed %lld, "
              "rejected %lld, expired %lld, other %lld\n",
              static_cast<long long>(overload.submitted),
              static_cast<long long>(overload.served), overload_served_qps,
              static_cast<long long>(overload.shed),
              static_cast<long long>(overload.rejected),
              static_cast<long long>(overload.expired),
              static_cast<long long>(overload.other));
  std::printf("  served latency p50 %.0f us, p99 %.0f us; %lld forwards, "
              "engine shed counter %lld\n",
              overload_p50_us, overload_p99_us,
              static_cast<long long>(overload_stats.batcher.forwards),
              static_cast<long long>(overload_stats.batcher.shed));

  std::printf("\nnetwork front door on loopback (x%d connections, cache off):\n",
              threads);
  std::printf("  blocking  : %.0f qps, rtt p50 %.0f us, p99 %.0f us "
              "(in-process lowered %.1f us)\n",
              net_blocking_qps, net_rtt_p50_us, net_rtt_p99_us, lowered_us);
  std::printf("  pipelined : %.0f qps at window %d, avg batch %.2f "
              "(%lld of %lld coalesced)\n",
              net_pipelined_qps, kNetWindow, net_avg_batch,
              static_cast<long long>(net_coalesced),
              static_cast<long long>(net_served));
  std::printf("  overload  : %lld frames -> served %lld (%.0f qps, server p50 "
              "%.0f us, p99 %.0f us), shed %lld, rejected %lld, expired %lld, "
              "other %lld — all typed, no connection dropped\n",
              static_cast<long long>(net_overload.submitted),
              static_cast<long long>(net_overload.served), net_ov_served_qps,
              net_ov_p50_us, net_ov_p99_us,
              static_cast<long long>(net_overload.shed),
              static_cast<long long>(net_overload.rejected),
              static_cast<long long>(net_overload.expired),
              static_cast<long long>(net_overload.other));

  // ---- JSON for the perf trajectory ---------------------------------------
  const char* json_path = std::getenv("MIXQ_BENCH_JSON");
  std::ofstream json(json_path != nullptr ? json_path : "BENCH_serving.json");
  json << "{\n"
       << "  \"bench\": \"serving_latency\",\n"
       << "  \"graph\": {\"nodes\": " << n << ", \"nnz\": " << nnz
       << ", \"features\": " << x.cols() << ", \"hidden\": " << cfg.hidden
       << "},\n"
       << "  \"scheme\": \"qat8\",\n"
       << "  \"single_thread\": {\n"
       << "    \"reference_us\": " << ref_us << ",\n"
       << "    \"lowered_us\": " << lowered_us << ",\n"
       << "    \"lowered_int8_us\": " << int8_us << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"speedup_int8\": " << speedup_int8 << "\n"
       << "  },\n"
       << "  \"concurrent\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"lowered_qps\": " << lowered_qps << ",\n"
       << "    \"reference_qps\": " << ref_qps << "\n"
       << "  },\n"
       << "  \"batched\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"unbatched_qps\": " << lowered_qps << ",\n"
       << "    \"batched_qps\": " << batched_qps << ",\n"
       << "    \"batched_nocache_qps\": " << batched_nocache_qps << ",\n"
       << "    \"qps_ratio\": " << batched_ratio << ",\n"
       << "    \"qps_ratio_nocache\": " << batched_nocache_ratio << ",\n"
       << "    \"avg_batch_size\": " << avg_batch << "\n"
       << "  },\n"
       << "  \"bundle\": {\n"
       << "    \"file_bytes\": " << bundle_bytes << ",\n"
       << "    \"save_ms\": " << bundle_save_ms << ",\n"
       << "    \"load_ms\": " << bundle_load_ms << ",\n"
       << "    \"first_predict_ms\": " << bundle_first_predict_ms << "\n"
       << "  },\n"
       << "  \"pruned\": {\n"
       << "    \"nodes\": " << big_n << ",\n"
       << "    \"nnz\": " << big_nnz << ",\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"single_node\": {\n"
       << "      \"pruned_qps\": " << pruned_point_qps << ",\n"
       << "      \"full_qps\": " << full_point_qps << ",\n"
       << "      \"qps_ratio\": " << pruned_point_ratio << "\n"
       << "    },\n"
       << "    \"batch64\": {\n"
       << "      \"pruned_qps\": " << pruned_b64_qps << ",\n"
       << "      \"full_qps\": " << full_b64_qps << ",\n"
       << "      \"qps_ratio\": " << pruned_b64_ratio << "\n"
       << "    },\n"
       << "    \"sample_frontier_rows\": " << frontier_rows_sample << ",\n"
       << "    \"pruned_forwards\": " << pruned_stats.batcher.pruned_forwards
       << ",\n"
       << "    \"full_forwards\": " << pruned_stats.batcher.full_forwards << "\n"
       << "  },\n"
       << "  \"overload\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"duration_s\": " << overload_elapsed << ",\n"
       << "    \"queue_capacity\": " << overload_opts.queue_capacity << ",\n"
       << "    \"degrade_batch_threshold\": "
       << overload_opts.degrade_batch_threshold << ",\n"
       << "    \"shed_batch_threshold\": " << overload_opts.shed_batch_threshold
       << ",\n"
       << "    \"submitted\": " << overload.submitted << ",\n"
       << "    \"served\": " << overload.served << ",\n"
       << "    \"shed\": " << overload.shed << ",\n"
       << "    \"rejected\": " << overload.rejected << ",\n"
       << "    \"expired\": " << overload.expired << ",\n"
       << "    \"served_qps\": " << overload_served_qps << ",\n"
       << "    \"served_p50_us\": " << overload_p50_us << ",\n"
       << "    \"served_p99_us\": " << overload_p99_us << ",\n"
       << "    \"forwards\": " << overload_stats.batcher.forwards << ",\n"
       << "    \"engine_shed\": " << overload_stats.batcher.shed << "\n"
       << "  },\n"
       << "  \"network\": {\n"
       << "    \"threads\": " << threads << ",\n"
       << "    \"blocking\": {\n"
       << "      \"qps\": " << net_blocking_qps << ",\n"
       << "      \"rtt_p50_us\": " << net_rtt_p50_us << ",\n"
       << "      \"rtt_p99_us\": " << net_rtt_p99_us << "\n"
       << "    },\n"
       << "    \"pipelined\": {\n"
       << "      \"window\": " << kNetWindow << ",\n"
       << "      \"qps\": " << net_pipelined_qps << ",\n"
       << "      \"served\": " << net_served << ",\n"
       << "      \"coalesced\": " << net_coalesced << ",\n"
       << "      \"avg_batch_size\": " << net_avg_batch << "\n"
       << "    },\n"
       << "    \"overload\": {\n"
       << "      \"duration_s\": " << net_ov_elapsed << ",\n"
       << "      \"submitted\": " << net_overload.submitted << ",\n"
       << "      \"served\": " << net_overload.served << ",\n"
       << "      \"shed\": " << net_overload.shed << ",\n"
       << "      \"rejected\": " << net_overload.rejected << ",\n"
       << "      \"expired\": " << net_overload.expired << ",\n"
       << "      \"other\": " << net_overload.other << ",\n"
       << "      \"served_qps\": " << net_ov_served_qps << ",\n"
       << "      \"server_p50_us\": " << net_ov_p50_us << ",\n"
       << "      \"server_p99_us\": " << net_ov_p99_us << ",\n"
       << "      \"engine_stats\": " << net_ov_engine_json << "\n"
       << "    },\n"
       << "    \"stats_endpoint\": " << net_stats_json << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote %s\n", json_path != nullptr ? json_path : "BENCH_serving.json");
  return 0;
}
