// Copyright 2026 MixQ-GNN Authors
// Figure 1: accuracy vs #operations for six GNN layer types at depths 1-5 on
// the Cora analogue, plus the Spearman rank correlation the paper reports
// (0.64, p = 1.6e-4).
#include "bench/bench_util.h"
#include "common/stats.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "tensor/ops.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

double TrainStack(Fp32StackNet::LayerType type, int depth, const NodeDataset& ds,
                  int epochs, uint64_t seed, double* ops, int64_t* params) {
  const Graph& g = ds.graph;
  auto gcn_op = MakeOperator(GcnNormalize(g.Adjacency()));
  auto raw_op = MakeOperator(g.Adjacency());
  Rng rng(seed), drop(seed + 1);
  Fp32StackNet net(type, g.feature_dim(), 64, g.num_classes, depth, &rng);
  auto model_params = net.Parameters();
  for (auto& p : model_params) p.SetRequiresGrad(true);
  Adam adam(model_params, 0.01f, 0.9f, 0.999f, 1e-8f, 5e-4f);
  double best_val = -1.0, test_at_best = 0.0;
  for (int e = 0; e < epochs; ++e) {
    net.SetTraining(true);
    adam.ZeroGrad();
    Tensor logits = net.Forward(g.features, gcn_op, raw_op, &drop);
    CrossEntropyMasked(logits, g.labels, g.train_mask).Backward();
    adam.Step();
    net.SetTraining(false);
    Tensor eval = net.Forward(g.features, gcn_op, raw_op, &drop);
    const double val = Accuracy(eval, g.labels, g.val_mask);
    if (val > best_val) {
      best_val = val;
      test_at_best = Accuracy(eval, g.labels, g.test_mask);
    }
  }
  *ops = net.CountOps(g.num_nodes, raw_op->nnz());
  *params = net.ParameterCount();
  return test_at_best;
}

}  // namespace

int main() {
  PrintHeader("Figure 1 — Accuracy vs #operations across GNN architectures");
  NodeDataset ds = QuickCitation("cora", 1);
  const int epochs = Epochs(30, 100);
  const int runs = Runs(1, 5);
  const int max_depth = FullProfile() ? 5 : 3;

  using LT = Fp32StackNet::LayerType;
  const LT types[] = {LT::kGcn, LT::kGat, LT::kGin, LT::kTransformer, LT::kTag,
                      LT::kSuperGat};

  TablePrinter table({"Layer", "Depth", "Ops (M)", "Params", "Accuracy"});
  std::vector<double> all_ops, all_acc;
  for (LT type : types) {
    for (int depth = 1; depth <= max_depth; ++depth) {
      std::vector<double> accs;
      double ops = 0.0;
      int64_t params = 0;
      for (int r = 0; r < runs; ++r) {
        accs.push_back(TrainStack(type, depth, ds, epochs,
                                  17 + static_cast<uint64_t>(r), &ops, &params));
      }
      const double mean_acc = Mean(accs);
      all_ops.push_back(ops);
      all_acc.push_back(mean_acc);
      table.AddRow({Fp32StackNet::LayerTypeName(type), std::to_string(depth),
                    FormatFloat(ops / 1e6, 1), std::to_string(params),
                    Pct(mean_acc)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nSpearman rank correlation (ops vs accuracy): "
            << FormatFloat(SpearmanCorrelation(all_ops, all_acc), 2)
            << "  (paper: 0.64 over its sweep)\n"
            << "Expected shape: positive correlation — heavier architectures "
               "tend to score higher on this homophilous task.\n";
  return 0;
}
