// Copyright 2026 MixQ-GNN Authors
// Shared helpers for the benchmark harnesses. Every bench binary runs with no
// arguments and prints a "paper vs measured" table. Two profiles:
//   * default (quick): scaled-down datasets / fewer runs so the whole bench
//     suite finishes in minutes on a laptop;
//   * MIXQ_FULL=1: full analogue sizes and the paper's run counts.
// MIXQ_RUNS / MIXQ_EPOCHS override run counts / epochs explicitly.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "core/experiment.h"

namespace mixq {
namespace bench {

/// Runs one node experiment through the Experiment facade. Bench binaries
/// have no error path: invalid specs abort with the validation message.
inline ExperimentResult RunNode(NodeDataset dataset,
                                const NodeExperimentConfig& config,
                                const SchemeRef& scheme, uint64_t seed = 1) {
  ExperimentSpec spec =
      ExperimentSpec::NodeClassification(std::move(dataset), config, scheme);
  spec.seed = seed;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  return std::move(report.ValueOrDie().node);
}

/// Graph-classification counterpart of RunNode().
inline GraphExperimentResult RunGraph(GraphDataset dataset,
                                      const GraphExperimentConfig& config,
                                      const SchemeRef& scheme, uint64_t seed = 1) {
  ExperimentSpec spec =
      ExperimentSpec::GraphClassification(std::move(dataset), config, scheme);
  spec.seed = seed;
  Result<Experiment> experiment = Experiment::Create(std::move(spec));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  return std::move(report.ValueOrDie().graph);
}

/// Repeated node runs with varied seeds (paper protocol), unwrapped.
inline RepeatedResult Repeat(const std::function<NodeDataset(uint64_t)>& make_dataset,
                             const NodeExperimentConfig& config,
                             const SchemeRef& scheme, int repeats,
                             uint64_t seed0 = 1) {
  Result<RepeatedResult> result =
      RepeatExperiment(make_dataset, config, scheme, repeats, seed0);
  MIXQ_CHECK(result.ok()) << result.status().ToString();
  return result.MoveValueOrDie();
}

inline bool FullProfile() {
  const char* env = std::getenv("MIXQ_FULL");
  return env != nullptr && std::atoi(env) != 0;
}

inline int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : fallback;
}

inline int Runs(int quick_default, int full_default) {
  return EnvInt("MIXQ_RUNS", FullProfile() ? full_default : quick_default);
}

inline int Epochs(int quick_default, int full_default) {
  return EnvInt("MIXQ_EPOCHS", FullProfile() ? full_default : quick_default);
}

/// Citation analogues, scaled down in the quick profile. The scale affects
/// node counts and feature dims but not class counts or split protocol.
inline NodeDataset QuickCitation(const std::string& which, uint64_t seed) {
  const bool full = FullProfile();
  CitationConfig c;
  if (which == "cora") {
    c.name = full ? "cora-like" : "cora-like(quick)";
    c.num_nodes = full ? 2708 : 1000;
    c.avg_degree = 1.95;
    c.num_classes = 7;
    c.feature_dim = full ? 256 : 96;
    c.homophily = 0.81;
    c.val_count = full ? 500 : 200;
    c.test_count = full ? 1000 : 400;
  } else if (which == "citeseer") {
    c.name = full ? "citeseer-like" : "citeseer-like(quick)";
    c.num_nodes = full ? 3327 : 1100;
    c.avg_degree = 1.37;
    c.num_classes = 6;
    c.feature_dim = full ? 256 : 96;
    c.homophily = 0.74;
    c.val_count = full ? 500 : 200;
    c.test_count = full ? 1000 : 400;
  } else if (which == "pubmed") {
    c.name = full ? "pubmed-like" : "pubmed-like(quick)";
    c.num_nodes = full ? 8000 : 2000;
    c.avg_degree = 2.25;
    c.num_classes = 3;
    c.feature_dim = full ? 128 : 64;
    c.homophily = 0.8;
    c.val_count = full ? 500 : 200;
    c.test_count = full ? 1000 : 400;
  } else if (which == "arxiv") {
    c.name = full ? "ogb-arxiv-like" : "ogb-arxiv-like(quick)";
    c.num_nodes = full ? 12000 : 3000;
    c.avg_degree = 3.44;
    c.num_classes = 40;
    c.feature_dim = full ? 128 : 64;
    c.homophily = 0.65;
    c.train_per_class = 40;
    c.val_count = full ? 2000 : 600;
    c.test_count = full ? 4000 : 1200;
  } else {
    MIXQ_CHECK(false) << "unknown dataset " << which;
  }
  c.seed = seed;
  return GenerateCitation(c);
}

/// Standard node-experiment configuration (GCN hidden 64 per the paper).
inline NodeExperimentConfig StandardNodeConfig(NodeModelKind model,
                                               int quick_epochs = 40,
                                               int full_epochs = 120) {
  NodeExperimentConfig cfg;
  cfg.model = model;
  cfg.hidden = 64;
  cfg.num_layers = 2;
  cfg.dropout = 0.5f;
  cfg.train.epochs = Epochs(quick_epochs, full_epochs);
  cfg.train.lr = 0.01f;
  cfg.train.weight_decay = 5e-4f;
  return cfg;
}

/// Prints a section header identifying the experiment and profile.
inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "profile: " << (FullProfile() ? "FULL (MIXQ_FULL=1)" : "quick")
            << " — synthetic analogues replace the paper's datasets"
            << " (DESIGN.md §1); compare *shape*, not absolute numbers.\n\n";
}

inline std::string Pct(double fraction, int precision = 1) {
  return FormatFloat(fraction * 100.0, precision) + "%";
}

}  // namespace bench
}  // namespace mixq
