// Copyright 2026 MixQ-GNN Authors
// Table 7: large-scale GraphSAGE + MixQ (Reddit / OGB-Proteins /
// OGB-Products / IGB analogues, scaled; DESIGN.md §1).
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

NodeDataset LargeAnalogue(const std::string& key, uint64_t seed) {
  const bool full = FullProfile();
  if (key == "reddit") {
    CitationConfig c;
    c.name = "reddit-like";
    c.num_nodes = full ? 8000 : 2500;
    c.avg_degree = full ? 25.0 : 12.0;
    c.num_classes = 41;
    c.feature_dim = full ? 128 : 64;
    c.homophily = 0.75;
    c.train_per_class = 20;
    c.val_count = 600;
    c.test_count = 1000;
    c.seed = seed;
    return GenerateCitation(c);
  }
  if (key == "proteins") {
    CitationConfig c;
    c.name = "ogb-proteins-like";
    c.num_nodes = full ? 8000 : 2500;
    c.avg_degree = full ? 30.0 : 12.0;
    c.num_classes = 8;
    c.feature_dim = full ? 112 : 64;
    c.homophily = 0.7;
    c.train_per_class = 80;
    c.val_count = 500;
    c.test_count = 900;
    c.seed = seed;
    return GenerateMultiLabelCitation(c, full ? 32 : 16);
  }
  if (key == "products") {
    CitationConfig c;
    c.name = "ogb-products-like";
    c.num_nodes = full ? 10000 : 3000;
    c.avg_degree = 12.0;
    c.num_classes = 47;
    c.feature_dim = full ? 100 : 64;
    c.homophily = 0.7;
    c.train_per_class = 20;
    c.val_count = 600;
    c.test_count = 1200;
    c.seed = seed;
    return GenerateCitation(c);
  }
  // igb
  CitationConfig c;
  c.name = "igb-like";
  c.num_nodes = full ? 10000 : 3000;
  c.avg_degree = 6.0;
  c.num_classes = 19;
  c.feature_dim = full ? 128 : 64;
  c.homophily = 0.7;
  c.train_per_class = 40;
  c.val_count = 600;
  c.test_count = 1200;
  c.seed = seed;
  return GenerateCitation(c);
}

struct PaperBlock {
  const char* dataset;
  const char* fp32;
  const char* l_eps;
  const char* l_01;
  const char* l_1;
};

}  // namespace

int main() {
  PrintHeader("Table 7 — Large-scale GraphSAGE + MixQ (scaled analogues)");
  const int runs = Runs(1, 3);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kSage, 30, 80);
  cfg.sample_max_degree = 25;

  const PaperBlock paper[] = {
      {"reddit", "86.72 ±0.38 (32b, 1103G)", "85.50 (6.91b, 129G)",
       "86.01 (5.70b, 111G)", "84.86 (5.21b, 80G)"},
      {"proteins", "0.63 AUC (32b, 3369G)", "0.61 (6.1b, 1299G)",
       "0.61 (2.8b, 643G)", "0.59 (2.4b, 391G)"},
      {"products", "66.60 ±1.30 (32b, 1862G)", "66.36 (7.5b, 425G)",
       "63.43 (7.2b, 403G)", "60.75 (5.0b, 305G)"},
      {"igb", "71.47 ±0.35 (32b, 14G)", "67.25 (6.91b, 1.5G)",
       "67.59 (6.18b, 1.4G)", "66.79 (5.45b, 1.2G)"},
  };

  TablePrinter table({"Dataset", "Method", "Paper (acc/AUC, bits, G)",
                      "Measured", "Bits", "GBitOPs"});
  for (const PaperBlock& block : paper) {
    auto make = [&](uint64_t seed) { return LargeAnalogue(block.dataset, seed); };
    struct M {
      const char* label;
      SchemeRef scheme;
      const char* paper;
    };
    SchemeRef eps = SchemeRef::MixQ(-1e-8), l01 = SchemeRef::MixQ(0.05),
              l1 = SchemeRef::MixQ(1.0);
    for (SchemeRef* s : {&eps, &l01, &l1}) {
      s->params.SetInt("search_epochs", cfg.train.epochs);
    }
    const M methods[] = {{"FP32", SchemeRef::Fp32(), block.fp32},
                         {"MixQ(l=-e)", eps, block.l_eps},
                         {"MixQ(l=0.1)", l01, block.l_01},
                         {"MixQ(l=1)", l1, block.l_1}};
    for (const M& m : methods) {
      RepeatedResult r = Repeat(make, cfg, m.scheme, runs);
      table.AddRow({block.dataset, m.label, m.paper,
                    FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                    FormatFloat(r.mean_bits, 2), FormatFloat(r.mean_gbitops, 2)});
    }
    table.AddSeparator();
  }
  table.Print();
  std::cout << "\nExpected shape: quantized rows near FP32 with ~5x fewer "
               "BitOPs; proteins row uses ROC-AUC (x100).\n";
  return 0;
}
