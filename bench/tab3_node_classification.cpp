// Copyright 2026 MixQ-GNN Authors
// Table 3: node classification with GCN — FP32 / DQ / A2Q / MixQ(λ) across
// the four citation datasets; Accuracy, average Bits, GBitOPs.
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

namespace {

struct PaperRow {
  const char* method;
  const char* acc;
  const char* bits;
  const char* gbitops;
};

void RunDataset(const std::string& key, const std::vector<int>& bit_options,
                const std::vector<PaperRow>& paper) {
  const int runs = Runs(2, 10);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);
  auto make = [&](uint64_t seed) { return QuickCitation(key, seed); };

  std::vector<std::pair<std::string, SchemeRef>> methods;
  methods.push_back({"FP32", SchemeRef::Fp32()});
  methods.push_back({"DQ-INT8", SchemeRef::Dq(8)});
  methods.push_back({"DQ-INT4", SchemeRef::Dq(4)});
  methods.push_back({"A2Q", SchemeRef::A2q()});
  SchemeRef m_eps = SchemeRef::MixQ(-1e-8, bit_options);
  SchemeRef m_01 = SchemeRef::MixQ(0.05, bit_options);
  SchemeRef m_1 = SchemeRef::MixQ(1.0, bit_options);
  for (SchemeRef* s : {&m_eps, &m_01, &m_1}) {
    s->params.SetInt("search_epochs", cfg.train.epochs);
  }
  methods.push_back({"MixQ(l=-e)", m_eps});
  methods.push_back({"MixQ(l=0.1)", m_01});
  methods.push_back({"MixQ(l=1)", m_1});

  TablePrinter table({"Method", "Paper Acc", "Paper Bits", "Paper GBitOPs",
                      "Measured Acc", "Bits", "GBitOPs"});
  for (size_t i = 0; i < methods.size(); ++i) {
    RepeatedResult r = Repeat(make, cfg, methods[i].second, runs);
    const PaperRow& p = i < paper.size() ? paper[i] : PaperRow{"", "-", "-", "-"};
    table.AddRow({methods[i].first, p.acc, p.bits, p.gbitops,
                  FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                  FormatFloat(r.mean_bits, 2), FormatFloat(r.mean_gbitops, 2)});
  }
  std::cout << "--- " << key << " (bit options:";
  for (int b : bit_options) std::cout << " " << b;
  std::cout << ") ---\n";
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Table 3 — Node classification accuracy (GCN)");
  RunDataset("cora", {2, 4, 8},
             {{"FP32", "81.5 ±0.7", "32", "16.11"},
              {"DQ-INT8", "81.7 ±0.7", "8", "4.03"},
              {"DQ-INT4", "78.3 ±1.7", "4", "2.01"},
              {"A2Q", "80.9 ±0.6", "1.70", "8.94"},
              {"MixQ(l=-e)", "81.6 ±0.7", "7.69", "3.95"},
              {"MixQ(l=0.1)", "77.7 ±2.8", "5.82", "3.35"},
              {"MixQ(l=1)", "68.7 ±2.7", "3.84", "1.68"}});
  RunDataset("citeseer", {2, 4, 8},
             {{"FP32", "71.1 ±0.7", "32", "50.68"},
              {"DQ-INT8", "71.0 ±0.9", "8", "12.67"},
              {"DQ-INT4", "66.9 ±2.4", "4", "6.33"},
              {"A2Q", "70.6 ±1.1", "1.87", "8.96"},
              {"MixQ(l=-e)", "69.0 ±1.1", "6.84", "12.44"},
              {"MixQ(l=0.1)", "66.5 ±1.8", "4.49", "5.18"},
              {"MixQ(l=1)", "60.9 ±8.7", "3.44", "4.23"}});
  RunDataset("pubmed", {2, 4, 8},
             {{"FP32", "78.9 ±0.7", "32", "41.7"},
              {"DQ-INT8", "NA", "NA", "NA"},
              {"DQ-INT4", "62.5 ±2.4", "4", "5.21"},
              {"A2Q", "77.5 ±0.1", "1.90", "8.94"},
              {"MixQ(l=-e)", "78.3 ±0.2", "7.36", "10.34"},
              {"MixQ(l=0.1)", "77.3 ±0.7", "5.49", "6.89"},
              {"MixQ(l=1)", "71.0 ±1.8", "4.09", "4.85"}});
  RunDataset("arxiv", {4, 8},
             {{"FP32", "71.7 ±0.3", "32", "692.87"},
              {"DQ-INT8", "NA", "NA", "NA"},
              {"DQ-INT4", "65.4 ±3.9", "4", "86.96"},
              {"A2Q", "71.1 ±0.3", "2.65", "141.93"},
              {"MixQ(l=-e)", "70.6 ±0.0", "8.00", "167.50"},
              {"MixQ(l=0.1)", "70.0 ±0.0", "7.08", "167.50"},
              {"MixQ(l=1)", "69.3 ±0.0", "7.08", "167.50"}});
  std::cout << "\nExpected shape: MixQ(l=-e) ~ FP32 accuracy at ~4-8x fewer "
               "BitOPs; larger lambda trades accuracy for bits; DQ-INT4 < "
               "DQ-INT8.\n";
  return 0;
}
