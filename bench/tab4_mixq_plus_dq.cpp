// Copyright 2026 MixQ-GNN Authors
// Table 4: native quantizer vs DQ quantizer under MixQ-selected bit-widths
// (2-layer GCN, Cora analogue).
#include "bench/bench_util.h"

using namespace mixq;
using namespace mixq::bench;

int main() {
  PrintHeader("Table 4 — MixQ vs MixQ+DQ (GCN, Cora analogue)");
  const int runs = Runs(2, 10);
  NodeExperimentConfig cfg = StandardNodeConfig(NodeModelKind::kGcn);
  auto make = [](uint64_t seed) { return QuickCitation("cora", seed); };

  struct Row {
    const char* label;
    double lambda;
    bool dq;
    const char* paper_acc;
    const char* paper_bits;
  };
  const Row rows[] = {
      {"MixQ(l=-e)", -1e-8, false, "81.6 ±0.7", "7.69"},
      {"MixQ(l=-e)+DQ", -1e-8, true, "81.8 ±0.3", "7.69"},
      {"MixQ(l=0.1)", 0.05, false, "77.7 ±2.8", "5.82"},
      {"MixQ(l=0.1)+DQ", 0.05, true, "79.9 ±0.6", "6.02"},
      {"MixQ(l=1)", 1.0, false, "68.7 ±2.7", "3.84"},
      {"MixQ(l=1)+DQ", 1.0, true, "72.3 ±1.2", "3.69"},
  };

  TablePrinter table({"Method", "Paper Acc", "Paper Bits", "Measured Acc", "Bits",
                      "GBitOPs"});
  for (const Row& row : rows) {
    SchemeRef scheme =
        row.dq ? SchemeRef::MixQDq(row.lambda) : SchemeRef::MixQ(row.lambda);
    scheme.params.SetInt("search_epochs", cfg.train.epochs);
    RepeatedResult r = Repeat(make, cfg, scheme, runs);
    table.AddRow({row.label, row.paper_acc, row.paper_bits,
                  FormatMeanStd(r.mean_metric * 100.0, r.std_metric * 100.0),
                  FormatFloat(r.mean_bits, 2), FormatFloat(r.mean_gbitops, 2)});
  }
  table.Print();
  std::cout << "\nExpected shape: +DQ rows match or beat the native-quantizer "
               "rows, most visibly at aggressive lambda.\n";
  return 0;
}
