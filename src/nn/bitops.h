// Copyright 2026 MixQ-GNN Authors
// BitOPs accounting (paper §5.1). BitOPs of a function = (scalar operations
// it executes) × (the bit-width it operates at); a MAC counts as 2 scalar
// ops. The architecture total is the sum over every function executed in one
// forward pass; the "Bits" column is the ops-weighted average bit-width.
// (Definitions reverse-engineered from the paper's own FP32 GBitOPs numbers;
// see DESIGN.md §2.)
#pragma once

#include <string>
#include <vector>

namespace mixq {

/// One executed function and its cost.
struct BitOpsEntry {
  std::string function;  ///< e.g. "gcn0/matmul"
  double ops = 0.0;      ///< scalar operations (MAC = 2)
  double bits = 32.0;    ///< operating bit-width
};

/// Aggregated BitOPs ledger for one forward pass.
struct BitOpsReport {
  std::vector<BitOpsEntry> entries;

  void Add(std::string function, double ops, double bits) {
    entries.push_back({std::move(function), ops, bits});
  }
  void Merge(const BitOpsReport& other) {
    entries.insert(entries.end(), other.entries.begin(), other.entries.end());
  }

  double TotalOps() const {
    double s = 0.0;
    for (const auto& e : entries) s += e.ops;
    return s;
  }
  double TotalBitOps() const {
    double s = 0.0;
    for (const auto& e : entries) s += e.ops * e.bits;
    return s;
  }
  /// Ops-weighted average bit-width (the paper's "Bits" column).
  double AverageBits() const {
    const double ops = TotalOps();
    return ops > 0.0 ? TotalBitOps() / ops : 32.0;
  }
  double GigaBitOps() const { return TotalBitOps() / 1e9; }
};

}  // namespace mixq
