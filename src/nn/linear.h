// Copyright 2026 MixQ-GNN Authors
// Scheme-aware linear layer and the small MLP used inside GIN.
#pragma once

#include <string>

#include "nn/module.h"
#include "quant/scheme.h"
#include "tensor/ops.h"

namespace mixq {

/// y = x·Θ (+ b). The weight and the product are quantization components
/// ("<id>/weight", "<id>/out") handed to the active QuantScheme.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, const std::string& id, Rng* rng,
         bool bias = true);

  /// Forward. `quantize_out` lets callers skip the output quantizer when the
  /// next operation re-quantizes anyway (the paper's multi-hop advice).
  Tensor Forward(const Tensor& x, QuantScheme* scheme, bool quantize_out = true);

  std::vector<Tensor> Parameters() override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const std::string& id() const { return id_; }
  /// Component ids for BitOPs accounting.
  std::string weight_component() const { return id_ + "/weight"; }
  std::string out_component() const { return id_ + "/out"; }
  /// Raw parameters, read by the engine's compile-time lowering pass.
  const Tensor& weight() const { return weight_; }
  /// Undefined tensor when the layer was built without a bias.
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  std::string id_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Two-layer MLP with batch norm + ReLU between, as used inside GIN layers
/// (paper §5.4: "five layers of GIN with MLP of two linear layers").
class Mlp : public Module {
 public:
  Mlp(int64_t in_features, int64_t hidden, int64_t out_features, const std::string& id,
      Rng* rng, bool batch_norm = true);

  Tensor Forward(const Tensor& x, QuantScheme* scheme);
  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;

  const Linear& fc1() const { return fc1_; }
  const Linear& fc2() const { return fc2_; }

 private:
  Linear fc1_;
  Linear fc2_;
  bool batch_norm_;
  Tensor gamma_, beta_;
  std::vector<float> running_mean_, running_var_;
};

}  // namespace mixq
