// Copyright 2026 MixQ-GNN Authors
// Custom autograd ops for attention-based message passing (GAT [18],
// TransformerConv [20], SuperGAT [22]). These layers are used FP32-only in
// this repo (Figure 1's architecture sweep); quantization applies to
// GCN/GIN/SAGE per the paper's evaluation.
#pragma once

#include "sparse/spmm.h"
#include "tensor/tensor.h"

namespace mixq {

/// GAT-style aggregation over `op`'s edges (row = target i, col = source j):
///   e_ij = LeakyReLU(s_i + t_j),  α_i· = softmax over i's in-edges,
///   h_i  = Σ_j α_ij · z_j.
/// s, t are rank-1 [n] score vectors; z is [n, f]. Rows without in-edges
/// produce zeros. Gradients flow into s, t, and z.
Tensor GatAggregate(const SparseOperatorPtr& op, const Tensor& s, const Tensor& t,
                    const Tensor& z, float negative_slope = 0.2f);

/// Scaled-dot-product attention aggregation (TransformerConv / SuperGAT-SD):
///   e_ij = scale · ⟨q_i, k_j⟩,  α softmax per target row,  h_i = Σ α_ij v_j.
/// q, k are [n, d]; v is [n, f]. Gradients flow into q, k, and v.
Tensor DotAttentionAggregate(const SparseOperatorPtr& op, const Tensor& q,
                             const Tensor& k, const Tensor& v, float scale);

}  // namespace mixq
