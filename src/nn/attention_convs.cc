// Copyright 2026 MixQ-GNN Authors
#include "nn/attention_convs.h"

#include <cmath>

namespace mixq {

GatConv::GatConv(int64_t in_features, int64_t out_features, const std::string& id,
                 Rng* rng)
    : id_(id) {
  weight_ = Tensor::GlorotUniform(in_features, out_features, rng);
  a_src_ = Tensor::GlorotUniform(out_features, 1, rng);
  a_dst_ = Tensor::GlorotUniform(out_features, 1, rng);
}

Tensor GatConv::Forward(const Tensor& x, const SparseOperatorPtr& op) {
  Tensor z = MatMul(x, weight_);           // [n, out]
  Tensor s = Flatten(MatMul(z, a_src_));   // [n]
  Tensor t = Flatten(MatMul(z, a_dst_));   // [n]
  return GatAggregate(op, s, t, z);
}

std::vector<Tensor> GatConv::Parameters() { return {weight_, a_src_, a_dst_}; }

TransformerConv::TransformerConv(int64_t in_features, int64_t out_features,
                                 const std::string& id, Rng* rng)
    : id_(id) {
  wq_ = Tensor::GlorotUniform(in_features, out_features, rng);
  wk_ = Tensor::GlorotUniform(in_features, out_features, rng);
  wv_ = Tensor::GlorotUniform(in_features, out_features, rng);
}

Tensor TransformerConv::Forward(const Tensor& x, const SparseOperatorPtr& op) {
  Tensor q = MatMul(x, wq_);
  Tensor k = MatMul(x, wk_);
  Tensor v = MatMul(x, wv_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(q.cols()));
  return DotAttentionAggregate(op, q, k, v, scale);
}

std::vector<Tensor> TransformerConv::Parameters() { return {wq_, wk_, wv_}; }

SuperGatConv::SuperGatConv(int64_t in_features, int64_t out_features,
                           const std::string& id, Rng* rng)
    : id_(id) {
  weight_ = Tensor::GlorotUniform(in_features, out_features, rng);
}

Tensor SuperGatConv::Forward(const Tensor& x, const SparseOperatorPtr& op) {
  Tensor z = MatMul(x, weight_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(z.cols()));
  return DotAttentionAggregate(op, z, z, z, scale);
}

std::vector<Tensor> SuperGatConv::Parameters() { return {weight_}; }

TagConv::TagConv(int64_t in_features, int64_t out_features, int hops,
                 const std::string& id, Rng* rng)
    : id_(id), hops_(hops) {
  MIXQ_CHECK_GE(hops, 0);
  for (int h = 0; h <= hops; ++h) {
    weights_.push_back(Tensor::GlorotUniform(in_features, out_features, rng));
  }
}

Tensor TagConv::Forward(const Tensor& x, const SparseOperatorPtr& op) {
  Tensor hop = x;
  Tensor out = MatMul(hop, weights_[0]);
  for (int h = 1; h <= hops_; ++h) {
    hop = Spmm(op, hop);
    out = Add(out, MatMul(hop, weights_[static_cast<size_t>(h)]));
  }
  return out;
}

std::vector<Tensor> TagConv::Parameters() { return weights_; }

}  // namespace mixq
