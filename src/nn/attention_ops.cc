// Copyright 2026 MixQ-GNN Authors
#include "nn/attention_ops.h"

#include <cmath>
#include <limits>

#include "tensor/op_utils.h"

namespace mixq {

using internal::MakeOpResult;
using internal::NeedsGrad;

Tensor GatAggregate(const SparseOperatorPtr& op, const Tensor& s, const Tensor& t,
                    const Tensor& z, float negative_slope) {
  MIXQ_CHECK(op != nullptr);
  const int64_t n = op->rows(), f = z.cols();
  MIXQ_CHECK_EQ(s.numel(), n);
  MIXQ_CHECK_EQ(t.numel(), op->cols());
  MIXQ_CHECK_EQ(z.rows(), op->cols());

  const CsrMatrix& a = op->matrix();
  auto alpha = std::make_shared<std::vector<float>>(static_cast<size_t>(a.nnz()));
  auto pre_positive =
      std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(a.nnz()));
  std::vector<float> out(static_cast<size_t>(n * f), 0.0f);

  for (int64_t i = 0; i < n; ++i) {
    const int64_t begin = a.row_ptr()[static_cast<size_t>(i)];
    const int64_t end = a.row_ptr()[static_cast<size_t>(i + 1)];
    if (begin == end) continue;
    // Row softmax over LeakyReLU(s_i + t_j) with max-subtraction.
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t k = begin; k < end; ++k) {
      const float pre =
          s.data()[static_cast<size_t>(i)] +
          t.data()[static_cast<size_t>(a.col_idx()[static_cast<size_t>(k)])];
      (*pre_positive)[static_cast<size_t>(k)] = pre > 0.0f ? 1 : 0;
      const float e = pre > 0.0f ? pre : negative_slope * pre;
      (*alpha)[static_cast<size_t>(k)] = e;  // reuse storage for logits first
      mx = std::max(mx, e);
    }
    double denom = 0.0;
    for (int64_t k = begin; k < end; ++k) {
      const float ex = std::exp((*alpha)[static_cast<size_t>(k)] - mx);
      (*alpha)[static_cast<size_t>(k)] = ex;
      denom += ex;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t k = begin; k < end; ++k) {
      (*alpha)[static_cast<size_t>(k)] *= inv;
      const float w = (*alpha)[static_cast<size_t>(k)];
      const float* zr =
          z.data().data() + a.col_idx()[static_cast<size_t>(k)] * f;
      float* yr = out.data() + i * f;
      for (int64_t j = 0; j < f; ++j) yr[j] += w * zr[j];
    }
  }

  auto si = s.impl_ptr();
  auto ti = t.impl_ptr();
  auto zi = z.impl_ptr();
  return MakeOpResult(
      Shape(n, f), std::move(out), {s, t, z},
      [op, si, ti, zi, alpha, pre_positive, negative_slope, n, f](TensorImpl& self) {
        const CsrMatrix& a = op->matrix();
        const bool need_s = NeedsGrad(*si), need_t = NeedsGrad(*ti),
                   need_z = NeedsGrad(*zi);
        if (need_s) si->EnsureGrad();
        if (need_t) ti->EnsureGrad();
        if (need_z) zi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const int64_t begin = a.row_ptr()[static_cast<size_t>(i)];
          const int64_t end = a.row_ptr()[static_cast<size_t>(i + 1)];
          if (begin == end) continue;
          const float* gy = self.grad.data() + i * f;
          // dα_k = <dH_i, z_ck>; dz_ck += α_k dH_i.
          std::vector<double> dalpha(static_cast<size_t>(end - begin), 0.0);
          double srow = 0.0;
          for (int64_t k = begin; k < end; ++k) {
            const int64_t c = a.col_idx()[static_cast<size_t>(k)];
            const float* zr = zi->data.data() + c * f;
            double acc = 0.0;
            const float w = (*alpha)[static_cast<size_t>(k)];
            for (int64_t j = 0; j < f; ++j) {
              acc += static_cast<double>(gy[j]) * zr[j];
              if (need_z) zi->grad[static_cast<size_t>(c * f + j)] += w * gy[j];
            }
            dalpha[static_cast<size_t>(k - begin)] = acc;
            srow += static_cast<double>(w) * acc;
          }
          // Softmax backward, then LeakyReLU backward into s and t.
          for (int64_t k = begin; k < end; ++k) {
            const float w = (*alpha)[static_cast<size_t>(k)];
            const double de =
                static_cast<double>(w) * (dalpha[static_cast<size_t>(k - begin)] - srow);
            const double dpre =
                de * ((*pre_positive)[static_cast<size_t>(k)] ? 1.0 : negative_slope);
            if (need_s) si->grad[static_cast<size_t>(i)] += static_cast<float>(dpre);
            if (need_t) {
              ti->grad[static_cast<size_t>(a.col_idx()[static_cast<size_t>(k)])] +=
                  static_cast<float>(dpre);
            }
          }
        }
      });
}

Tensor DotAttentionAggregate(const SparseOperatorPtr& op, const Tensor& q,
                             const Tensor& k, const Tensor& v, float scale) {
  MIXQ_CHECK(op != nullptr);
  const int64_t n = op->rows(), d = q.cols(), f = v.cols();
  MIXQ_CHECK_EQ(q.rows(), n);
  MIXQ_CHECK_EQ(k.rows(), op->cols());
  MIXQ_CHECK_EQ(k.cols(), d);
  MIXQ_CHECK_EQ(v.rows(), op->cols());

  const CsrMatrix& a = op->matrix();
  auto alpha = std::make_shared<std::vector<float>>(static_cast<size_t>(a.nnz()));
  std::vector<float> out(static_cast<size_t>(n * f), 0.0f);

  for (int64_t i = 0; i < n; ++i) {
    const int64_t begin = a.row_ptr()[static_cast<size_t>(i)];
    const int64_t end = a.row_ptr()[static_cast<size_t>(i + 1)];
    if (begin == end) continue;
    const float* qi = q.data().data() + i * d;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t e = begin; e < end; ++e) {
      const float* kr =
          k.data().data() + a.col_idx()[static_cast<size_t>(e)] * d;
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += static_cast<double>(qi[j]) * kr[j];
      const float logit = scale * static_cast<float>(dot);
      (*alpha)[static_cast<size_t>(e)] = logit;
      mx = std::max(mx, logit);
    }
    double denom = 0.0;
    for (int64_t e = begin; e < end; ++e) {
      const float ex = std::exp((*alpha)[static_cast<size_t>(e)] - mx);
      (*alpha)[static_cast<size_t>(e)] = ex;
      denom += ex;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t e = begin; e < end; ++e) {
      (*alpha)[static_cast<size_t>(e)] *= inv;
      const float w = (*alpha)[static_cast<size_t>(e)];
      const float* vr =
          v.data().data() + a.col_idx()[static_cast<size_t>(e)] * f;
      float* yr = out.data() + i * f;
      for (int64_t j = 0; j < f; ++j) yr[j] += w * vr[j];
    }
  }

  auto qi_ = q.impl_ptr();
  auto ki_ = k.impl_ptr();
  auto vi_ = v.impl_ptr();
  return MakeOpResult(
      Shape(n, f), std::move(out), {q, k, v},
      [op, qi_, ki_, vi_, alpha, scale, n, d, f](TensorImpl& self) {
        const CsrMatrix& a = op->matrix();
        const bool need_q = NeedsGrad(*qi_), need_k = NeedsGrad(*ki_),
                   need_v = NeedsGrad(*vi_);
        if (need_q) qi_->EnsureGrad();
        if (need_k) ki_->EnsureGrad();
        if (need_v) vi_->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const int64_t begin = a.row_ptr()[static_cast<size_t>(i)];
          const int64_t end = a.row_ptr()[static_cast<size_t>(i + 1)];
          if (begin == end) continue;
          const float* gy = self.grad.data() + i * f;
          std::vector<double> dalpha(static_cast<size_t>(end - begin), 0.0);
          double srow = 0.0;
          for (int64_t e = begin; e < end; ++e) {
            const int64_t c = a.col_idx()[static_cast<size_t>(e)];
            const float* vr = vi_->data.data() + c * f;
            const float w = (*alpha)[static_cast<size_t>(e)];
            double acc = 0.0;
            for (int64_t j = 0; j < f; ++j) {
              acc += static_cast<double>(gy[j]) * vr[j];
              if (need_v) vi_->grad[static_cast<size_t>(c * f + j)] += w * gy[j];
            }
            dalpha[static_cast<size_t>(e - begin)] = acc;
            srow += static_cast<double>(w) * acc;
          }
          const float* qrow = qi_->data.data() + i * d;
          for (int64_t e = begin; e < end; ++e) {
            const int64_t c = a.col_idx()[static_cast<size_t>(e)];
            const float w = (*alpha)[static_cast<size_t>(e)];
            const double de =
                static_cast<double>(w) * (dalpha[static_cast<size_t>(e - begin)] - srow);
            const double dlogit = de * scale;
            const float* krow = ki_->data.data() + c * d;
            for (int64_t j = 0; j < d; ++j) {
              if (need_q) {
                qi_->grad[static_cast<size_t>(i * d + j)] +=
                    static_cast<float>(dlogit * krow[j]);
              }
              if (need_k) {
                ki_->grad[static_cast<size_t>(c * d + j)] +=
                    static_cast<float>(dlogit * qrow[j]);
              }
            }
          }
        }
      });
}

}  // namespace mixq
