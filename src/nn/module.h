// Copyright 2026 MixQ-GNN Authors
// Module base class: parameter collection and train/eval mode.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mixq {

/// Base class for layers and models. Parameters() returns the leaf tensors an
/// optimizer should update; SetTraining toggles dropout/batch-norm/observer
/// behaviour.
class Module {
 public:
  virtual ~Module() = default;

  /// Leaf parameter tensors (shared handles; optimizers mutate in place).
  virtual std::vector<Tensor> Parameters() = 0;

  virtual void SetTraining(bool training) { training_ = training; }
  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

/// Concatenates parameter lists (helper for composite modules).
inline void AppendParameters(std::vector<Tensor>* dst, std::vector<Tensor> src) {
  for (auto& t : src) dst->push_back(std::move(t));
}

}  // namespace mixq
