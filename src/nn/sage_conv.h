// Copyright 2026 MixQ-GNN Authors
// GraphSAGE layer [28]: H' = H Θ1 + (A_mean H) Θ2, with A_mean the
// row-normalized adjacency (mean aggregator). The paper evaluates MixQ with
// GraphSAGE on Tables 6/7, using neighbour sampling to bound in-degrees.
// Scheme components: the two Linear sub-components, <id>/adj, <id>/agg,
// <id>/out (the summed output).
#pragma once

#include <string>

#include "nn/linear.h"
#include "nn/module.h"
#include "quant/scheme.h"
#include "sparse/spmm.h"

namespace mixq {

class SageConv : public Module {
 public:
  SageConv(int64_t in_features, int64_t out_features, const std::string& id, Rng* rng);

  /// `op` must be row-normalized (mean aggregator).
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op, QuantScheme* scheme);

  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;

  const std::string& id() const { return id_; }
  const Linear& root_linear() const { return root_; }
  const Linear& neighbor_linear() const { return neighbor_; }

 private:
  std::string id_;
  Linear root_;      // Θ1
  Linear neighbor_;  // Θ2
};

}  // namespace mixq
