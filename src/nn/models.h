// Copyright 2026 MixQ-GNN Authors
// Complete network architectures used across the paper's experiments.
// Every network is scheme-aware: pass NoQuantScheme for FP32,
// UniformQatScheme for DQ/QAT baselines, PerComponentScheme for a selected
// MixQ sequence, RelaxedMixQScheme (src/core) during the bit-width search,
// or A2qScheme for the A2Q baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "nn/attention_convs.h"
#include "nn/bitops.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/sage_conv.h"
#include "quant/scheme.h"

namespace mixq {

/// Multi-layer GCN for node classification (Tables 3/4/5/9, Figures 2/3/9).
class GcnNet : public Module {
 public:
  struct Config {
    int64_t in_features = 0;
    int64_t hidden = 64;
    int64_t num_classes = 0;
    int num_layers = 2;
    float dropout = 0.5f;
  };

  GcnNet(const Config& config, Rng* rng);

  /// Returns logits [n, classes]. `op` must be GCN-normalized.
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op, QuantScheme* scheme,
                 Rng* dropout_rng);

  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;

  /// Analytic BitOPs for one full-graph forward under `scheme`'s bit
  /// assignment (n nodes, nnz stored adjacency entries).
  BitOpsReport ComputeBitOps(int64_t num_nodes, int64_t nnz,
                             const QuantScheme& scheme) const;

  /// All quantizable component ids, in execution order (the 1 + 4L
  /// components; 9 for a 2-layer GCN as in the paper's Fig. 2 example).
  std::vector<std::string> ComponentIds() const;

  const Config& config() const { return config_; }
  /// Layers in execution order, read by the engine's lowering pass.
  const std::vector<std::unique_ptr<GcnConv>>& layers() const { return layers_; }

 private:
  Config config_;
  std::vector<std::unique_ptr<GcnConv>> layers_;
};

/// Multi-layer GraphSAGE for node classification (Tables 6/7).
class SageNet : public Module {
 public:
  struct Config {
    int64_t in_features = 0;
    int64_t hidden = 64;
    int64_t num_classes = 0;
    int num_layers = 2;
    float dropout = 0.5f;
  };

  SageNet(const Config& config, Rng* rng);

  /// `op` must be row-normalized (mean aggregator).
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op, QuantScheme* scheme,
                 Rng* dropout_rng);
  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;
  BitOpsReport ComputeBitOps(int64_t num_nodes, int64_t nnz,
                             const QuantScheme& scheme) const;
  std::vector<std::string> ComponentIds() const;
  const Config& config() const { return config_; }
  /// Layers in execution order, read by the engine's lowering pass.
  const std::vector<std::unique_ptr<SageConv>>& layers() const { return layers_; }

 private:
  Config config_;
  std::vector<std::unique_ptr<SageConv>> layers_;
};

/// 5-layer GIN + global max pooling + 2-layer head for graph classification
/// (Table 8) and the 4-layer-GCN-equivalent CSL protocol reuses GcnNet.
class GinGraphNet : public Module {
 public:
  struct Config {
    int64_t in_features = 0;
    int64_t hidden = 64;
    int64_t num_classes = 0;
    int num_layers = 5;
    bool batch_norm = true;
  };

  GinGraphNet(const Config& config, Rng* rng);

  /// `op` is the raw batched adjacency; `batch` maps nodes to graphs.
  /// Returns logits [num_graphs, classes]. Pooling is global max (the
  /// paper's overflow-safe choice for quantized GIN).
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op,
                 const std::vector<int64_t>& batch, int64_t num_graphs,
                 QuantScheme* scheme);

  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;
  BitOpsReport ComputeBitOps(int64_t num_nodes, int64_t nnz, int64_t num_graphs,
                             const QuantScheme& scheme) const;
  std::vector<std::string> ComponentIds() const;
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::unique_ptr<GinConv>> layers_;
  std::unique_ptr<Linear> head1_;
  std::unique_ptr<Linear> head2_;
};

/// Multi-layer GCN + global max pooling + linear head for graph-level tasks
/// (the Table 9 CSL protocol: 4 GCN layers on Laplacian PE features).
class GcnGraphNet : public Module {
 public:
  struct Config {
    int64_t in_features = 0;
    int64_t hidden = 64;
    int64_t num_classes = 0;
    int num_layers = 4;
  };

  GcnGraphNet(const Config& config, Rng* rng);

  /// `op` must be GCN-normalized (batched); returns logits [num_graphs, c].
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op,
                 const std::vector<int64_t>& batch, int64_t num_graphs,
                 QuantScheme* scheme);
  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;
  BitOpsReport ComputeBitOps(int64_t num_nodes, int64_t nnz, int64_t num_graphs,
                             const QuantScheme& scheme) const;
  std::vector<std::string> ComponentIds() const;
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::unique_ptr<GcnConv>> layers_;
  std::unique_ptr<Linear> head_;
};

/// FP32 architecture sweep for Figure 1: a stack of 1–5 identical layers of
/// one of the six layer types, evaluated on node classification.
class Fp32StackNet : public Module {
 public:
  enum class LayerType { kGcn, kGat, kGin, kTransformer, kTag, kSuperGat };

  static const char* LayerTypeName(LayerType type);

  Fp32StackNet(LayerType type, int64_t in_features, int64_t hidden,
               int64_t num_classes, int num_layers, Rng* rng);

  /// `gcn_op` is the GCN-normalized operator (used by GCN/TAG); `raw_op` the
  /// raw adjacency with self loops (attention layers and GIN).
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& gcn_op,
                 const SparseOperatorPtr& raw_op, Rng* dropout_rng);

  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;

  /// Scalar operation count of one forward pass (Figure 1's x-axis).
  double CountOps(int64_t num_nodes, int64_t nnz) const;
  /// Number of learnable scalars (Figure 1's circle radius).
  int64_t ParameterCount();

 private:
  LayerType type_;
  int num_layers_;
  int64_t in_features_, hidden_, num_classes_;
  std::vector<std::unique_ptr<Module>> layers_;
  std::unique_ptr<Linear> head_;         // hidden -> classes (FP32)
  std::shared_ptr<NoQuantScheme> fp32_;  // for scheme-aware sublayers
};

}  // namespace mixq
