// Copyright 2026 MixQ-GNN Authors
// Graph Isomorphism Network layer [19]:
//   H' = MLP( (1 + ε) H + A H ),  A unweighted, ε learnable.
// Scheme components: <id>/adj, <id>/agg (A·H), <id>/combined ((1+ε)H + AH),
// plus the MLP's weight/out components.
#pragma once

#include <string>

#include "nn/linear.h"
#include "nn/module.h"
#include "quant/scheme.h"
#include "sparse/spmm.h"

namespace mixq {

class GinConv : public Module {
 public:
  GinConv(int64_t in_features, int64_t hidden, int64_t out_features,
          const std::string& id, Rng* rng, bool batch_norm = true);

  /// `op` is the raw (unweighted) adjacency.
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op, QuantScheme* scheme);

  std::vector<Tensor> Parameters() override;
  void SetTraining(bool training) override;

  const std::string& id() const { return id_; }
  const Mlp& mlp() const { return mlp_; }
  float epsilon() const { return eps_.item(); }

 private:
  std::string id_;
  Tensor eps_;  // scalar learnable ε
  Mlp mlp_;
};

}  // namespace mixq
