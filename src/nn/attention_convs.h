// Copyright 2026 MixQ-GNN Authors
// FP32 attention-based GNN layers for the Figure-1 architecture sweep:
// GATConv [18], TransformerConv [20], SuperGATConv [22] (scaled-dot variant).
#pragma once

#include <string>

#include "nn/attention_ops.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace mixq {

/// Single-head Graph Attention layer: h_i = Σ_j α_ij W x_j with
/// α from LeakyReLU(a_src·Wx_i + a_dst·Wx_j).
class GatConv : public Module {
 public:
  GatConv(int64_t in_features, int64_t out_features, const std::string& id, Rng* rng);
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op);
  std::vector<Tensor> Parameters() override;

 private:
  std::string id_;
  Tensor weight_;  // [in, out]
  Tensor a_src_;   // [out, 1]
  Tensor a_dst_;   // [out, 1]
};

/// Single-head graph transformer layer: scaled dot-product attention with
/// separate query/key/value projections.
class TransformerConv : public Module {
 public:
  TransformerConv(int64_t in_features, int64_t out_features, const std::string& id,
                  Rng* rng);
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op);
  std::vector<Tensor> Parameters() override;

 private:
  std::string id_;
  Tensor wq_, wk_, wv_;
};

/// SuperGAT, scaled-dot (SD) attention variant: one shared projection W, with
/// attention logits ⟨Wx_i, Wx_j⟩/√d. (The self-supervised edge loss of the
/// full method is omitted — Figure 1 only measures supervised accuracy.)
class SuperGatConv : public Module {
 public:
  SuperGatConv(int64_t in_features, int64_t out_features, const std::string& id,
               Rng* rng);
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op);
  std::vector<Tensor> Parameters() override;

 private:
  std::string id_;
  Tensor weight_;
};

/// Topology-Adaptive GCN [21]: H' = Σ_{k=0..K} Â^k H Θ_k.
class TagConv : public Module {
 public:
  TagConv(int64_t in_features, int64_t out_features, int hops, const std::string& id,
          Rng* rng);
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op);
  std::vector<Tensor> Parameters() override;
  int hops() const { return hops_; }

 private:
  std::string id_;
  int hops_;
  std::vector<Tensor> weights_;  // K+1 matrices [in, out]
};

}  // namespace mixq
