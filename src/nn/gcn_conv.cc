// Copyright 2026 MixQ-GNN Authors
#include "nn/gcn_conv.h"

namespace mixq {

GcnConv::GcnConv(int64_t in_features, int64_t out_features, const std::string& id,
                 Rng* rng)
    : in_features_(in_features), out_features_(out_features), id_(id) {
  weight_ = Tensor::GlorotUniform(in_features, out_features, rng);
}

Tensor GcnConv::Forward(const Tensor& x, const SparseOperatorPtr& op,
                        QuantScheme* scheme) {
  MIXQ_CHECK(scheme != nullptr);
  MIXQ_CHECK_EQ(x.cols(), in_features_);
  Tensor w =
      scheme->Quantize(id_ + "/weight", weight_, ComponentKind::kWeight, training_);
  Tensor xw = MatMul(x, w);
  xw = scheme->Quantize(id_ + "/linear_out", xw, ComponentKind::kLinearOut, training_);

  // Adjacency values are constants; the scheme may fake-quantize or mix them.
  Tensor adj_values = Tensor::FromVector(Shape(op->nnz()), op->matrix().values());
  Tensor adj_q =
      scheme->Quantize(id_ + "/adj", adj_values, ComponentKind::kAdjacency, training_);
  Tensor y;
  if (adj_q.impl_ptr() == adj_values.impl_ptr()) {
    y = Spmm(op, xw);  // FP32 fast path: pattern values are untouched
  } else {
    y = SpmmValues(op, adj_q, xw);
  }
  return scheme->Quantize(id_ + "/agg", y, ComponentKind::kAggregate, training_);
}

std::vector<Tensor> GcnConv::Parameters() { return {weight_}; }

}  // namespace mixq
