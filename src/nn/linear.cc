// Copyright 2026 MixQ-GNN Authors
#include "nn/linear.h"

namespace mixq {

Linear::Linear(int64_t in_features, int64_t out_features, const std::string& id,
               Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features), id_(id) {
  MIXQ_CHECK_GT(in_features, 0);
  MIXQ_CHECK_GT(out_features, 0);
  weight_ = Tensor::GlorotUniform(in_features, out_features, rng);
  if (bias) bias_ = Tensor::Zeros(Shape(out_features), /*requires_grad=*/true);
}

Tensor Linear::Forward(const Tensor& x, QuantScheme* scheme, bool quantize_out) {
  MIXQ_CHECK(scheme != nullptr);
  Tensor w = scheme->Quantize(weight_component(), weight_, ComponentKind::kWeight,
                              training_);
  Tensor y = MatMul(x, w);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  if (quantize_out) {
    y = scheme->Quantize(out_component(), y, ComponentKind::kLinearOut, training_);
  }
  return y;
}

std::vector<Tensor> Linear::Parameters() {
  std::vector<Tensor> params{weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

Mlp::Mlp(int64_t in_features, int64_t hidden, int64_t out_features,
         const std::string& id, Rng* rng, bool batch_norm)
    : fc1_(in_features, hidden, id + "/fc1", rng),
      fc2_(hidden, out_features, id + "/fc2", rng),
      batch_norm_(batch_norm) {
  if (batch_norm_) {
    gamma_ = Tensor::Ones(Shape(hidden), /*requires_grad=*/true);
    beta_ = Tensor::Zeros(Shape(hidden), /*requires_grad=*/true);
    running_mean_.assign(static_cast<size_t>(hidden), 0.0f);
    running_var_.assign(static_cast<size_t>(hidden), 1.0f);
  }
}

Tensor Mlp::Forward(const Tensor& x, QuantScheme* scheme) {
  Tensor h = fc1_.Forward(x, scheme);
  if (batch_norm_) {
    h = BatchNormRows(h, gamma_, beta_, &running_mean_, &running_var_, training_);
  }
  h = Relu(h);
  return fc2_.Forward(h, scheme);
}

std::vector<Tensor> Mlp::Parameters() {
  std::vector<Tensor> params;
  AppendParameters(&params, fc1_.Parameters());
  AppendParameters(&params, fc2_.Parameters());
  if (batch_norm_) {
    params.push_back(gamma_);
    params.push_back(beta_);
  }
  return params;
}

void Mlp::SetTraining(bool training) {
  Module::SetTraining(training);
  fc1_.SetTraining(training);
  fc2_.SetTraining(training);
}

}  // namespace mixq
