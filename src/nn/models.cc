// Copyright 2026 MixQ-GNN Authors
#include "nn/models.h"

#include <algorithm>

#include "tensor/ops.h"

namespace mixq {

namespace {
constexpr double kFp32Bits = 32.0;
}  // namespace

// ---------------------------------------------------------------------------
// GcnNet
// ---------------------------------------------------------------------------

GcnNet::GcnNet(const Config& config, Rng* rng) : config_(config) {
  MIXQ_CHECK_GT(config.in_features, 0);
  MIXQ_CHECK_GT(config.num_classes, 0);
  MIXQ_CHECK_GE(config.num_layers, 1);
  for (int l = 0; l < config.num_layers; ++l) {
    const int64_t in = l == 0 ? config.in_features : config.hidden;
    const int64_t out = l == config.num_layers - 1 ? config.num_classes : config.hidden;
    layers_.push_back(
        std::make_unique<GcnConv>(in, out, "gcn" + std::to_string(l), rng));
  }
}

Tensor GcnNet::Forward(const Tensor& x, const SparseOperatorPtr& op,
                       QuantScheme* scheme, Rng* dropout_rng) {
  Tensor h = scheme->Quantize("model/x", x, ComponentKind::kInput, training_);
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Forward(h, op, scheme);
    if (l + 1 < layers_.size()) {
      h = Relu(h);
      if (config_.dropout > 0.0f) {
        h = Dropout(h, config_.dropout, training_, dropout_rng);
      }
    }
  }
  return h;
}

std::vector<Tensor> GcnNet::Parameters() {
  std::vector<Tensor> params;
  for (auto& l : layers_) AppendParameters(&params, l->Parameters());
  return params;
}

void GcnNet::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& l : layers_) l->SetTraining(training);
}

std::vector<std::string> GcnNet::ComponentIds() const {
  std::vector<std::string> ids{"model/x"};
  for (size_t l = 0; l < layers_.size(); ++l) {
    const std::string p = "gcn" + std::to_string(l);
    ids.push_back(p + "/weight");
    ids.push_back(p + "/linear_out");
    ids.push_back(p + "/adj");
    ids.push_back(p + "/agg");
  }
  return ids;
}

BitOpsReport GcnNet::ComputeBitOps(int64_t num_nodes, int64_t nnz,
                                   const QuantScheme& scheme) const {
  BitOpsReport report;
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(nnz);
  double cur = scheme.EffectiveBits("model/x", kFp32Bits);
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "gcn" + std::to_string(l);
    const double in = l == 0 ? static_cast<double>(config_.in_features)
                             : static_cast<double>(config_.hidden);
    const double out = l == config_.num_layers - 1
                           ? static_cast<double>(config_.num_classes)
                           : static_cast<double>(config_.hidden);
    const double wb = scheme.EffectiveBits(p + "/weight", kFp32Bits);
    report.Add(p + "/matmul", 2.0 * n * in * out, std::max(cur, wb));
    const double lin = scheme.EffectiveBits(p + "/linear_out", kFp32Bits);
    const double ab = scheme.EffectiveBits(p + "/adj", kFp32Bits);
    report.Add(p + "/spmm", 2.0 * m * out, std::max(lin, ab));
    cur = scheme.EffectiveBits(p + "/agg", kFp32Bits);
    if (l + 1 < config_.num_layers) {
      report.Add(p + "/relu", n * out, cur);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// SageNet
// ---------------------------------------------------------------------------

SageNet::SageNet(const Config& config, Rng* rng) : config_(config) {
  MIXQ_CHECK_GT(config.in_features, 0);
  MIXQ_CHECK_GT(config.num_classes, 0);
  for (int l = 0; l < config.num_layers; ++l) {
    const int64_t in = l == 0 ? config.in_features : config.hidden;
    const int64_t out = l == config.num_layers - 1 ? config.num_classes : config.hidden;
    layers_.push_back(
        std::make_unique<SageConv>(in, out, "sage" + std::to_string(l), rng));
  }
}

Tensor SageNet::Forward(const Tensor& x, const SparseOperatorPtr& op,
                        QuantScheme* scheme, Rng* dropout_rng) {
  Tensor h = scheme->Quantize("model/x", x, ComponentKind::kInput, training_);
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Forward(h, op, scheme);
    if (l + 1 < layers_.size()) {
      h = Relu(h);
      if (config_.dropout > 0.0f) {
        h = Dropout(h, config_.dropout, training_, dropout_rng);
      }
    }
  }
  return h;
}

std::vector<Tensor> SageNet::Parameters() {
  std::vector<Tensor> params;
  for (auto& l : layers_) AppendParameters(&params, l->Parameters());
  return params;
}

void SageNet::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& l : layers_) l->SetTraining(training);
}

std::vector<std::string> SageNet::ComponentIds() const {
  std::vector<std::string> ids{"model/x"};
  for (size_t l = 0; l < layers_.size(); ++l) {
    const std::string p = "sage" + std::to_string(l);
    ids.push_back(p + "/adj");
    ids.push_back(p + "/agg");
    ids.push_back(p + "/root/weight");
    ids.push_back(p + "/root/out");
    ids.push_back(p + "/neigh/weight");
    ids.push_back(p + "/neigh/out");
    ids.push_back(p + "/out");
  }
  return ids;
}

BitOpsReport SageNet::ComputeBitOps(int64_t num_nodes, int64_t nnz,
                                    const QuantScheme& scheme) const {
  BitOpsReport report;
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(nnz);
  double cur = scheme.EffectiveBits("model/x", kFp32Bits);
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "sage" + std::to_string(l);
    const double in = l == 0 ? static_cast<double>(config_.in_features)
                             : static_cast<double>(config_.hidden);
    const double out = l == config_.num_layers - 1
                           ? static_cast<double>(config_.num_classes)
                           : static_cast<double>(config_.hidden);
    const double ab = scheme.EffectiveBits(p + "/adj", kFp32Bits);
    report.Add(p + "/spmm", 2.0 * m * in, std::max(cur, ab));
    const double agg = scheme.EffectiveBits(p + "/agg", kFp32Bits);
    const double w1 = scheme.EffectiveBits(p + "/root/weight", kFp32Bits);
    report.Add(p + "/root_matmul", 2.0 * n * in * out, std::max(cur, w1));
    const double w2 = scheme.EffectiveBits(p + "/neigh/weight", kFp32Bits);
    report.Add(p + "/neigh_matmul", 2.0 * n * in * out, std::max(agg, w2));
    const double o1 = scheme.EffectiveBits(p + "/root/out", kFp32Bits);
    const double o2 = scheme.EffectiveBits(p + "/neigh/out", kFp32Bits);
    report.Add(p + "/sum", n * out, std::max(o1, o2));
    cur = scheme.EffectiveBits(p + "/out", kFp32Bits);
    if (l + 1 < config_.num_layers) {
      report.Add(p + "/relu", n * out, cur);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// GinGraphNet
// ---------------------------------------------------------------------------

GinGraphNet::GinGraphNet(const Config& config, Rng* rng) : config_(config) {
  MIXQ_CHECK_GT(config.in_features, 0);
  MIXQ_CHECK_GT(config.num_classes, 0);
  for (int l = 0; l < config.num_layers; ++l) {
    const int64_t in = l == 0 ? config.in_features : config.hidden;
    layers_.push_back(std::make_unique<GinConv>(in, config.hidden, config.hidden,
                                                "gin" + std::to_string(l), rng,
                                                config.batch_norm));
  }
  head1_ = std::make_unique<Linear>(config.hidden, config.hidden, "head/fc1", rng);
  head2_ = std::make_unique<Linear>(config.hidden, config.num_classes, "head/fc2", rng);
}

Tensor GinGraphNet::Forward(const Tensor& x, const SparseOperatorPtr& op,
                            const std::vector<int64_t>& batch, int64_t num_graphs,
                            QuantScheme* scheme) {
  Tensor h = scheme->Quantize("model/x", x, ComponentKind::kInput, training_);
  for (auto& layer : layers_) {
    h = layer->Forward(h, op, scheme);
    h = Relu(h);
  }
  // Global max pooling: overflow-safe under quantization (paper §5.4).
  Tensor pooled = GlobalPool(h, batch, num_graphs, PoolMode::kMax);
  pooled =
      scheme->Quantize("model/pool", pooled, ComponentKind::kAggregate, training_);
  Tensor z = Relu(head1_->Forward(pooled, scheme));
  return head2_->Forward(z, scheme);
}

std::vector<Tensor> GinGraphNet::Parameters() {
  std::vector<Tensor> params;
  for (auto& l : layers_) AppendParameters(&params, l->Parameters());
  AppendParameters(&params, head1_->Parameters());
  AppendParameters(&params, head2_->Parameters());
  return params;
}

void GinGraphNet::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& l : layers_) l->SetTraining(training);
  head1_->SetTraining(training);
  head2_->SetTraining(training);
}

std::vector<std::string> GinGraphNet::ComponentIds() const {
  std::vector<std::string> ids{"model/x"};
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "gin" + std::to_string(l);
    ids.push_back(p + "/adj");
    ids.push_back(p + "/agg");
    ids.push_back(p + "/combined");
    ids.push_back(p + "/mlp/fc1/weight");
    ids.push_back(p + "/mlp/fc1/out");
    ids.push_back(p + "/mlp/fc2/weight");
    ids.push_back(p + "/mlp/fc2/out");
  }
  ids.push_back("model/pool");
  ids.push_back("head/fc1/weight");
  ids.push_back("head/fc1/out");
  ids.push_back("head/fc2/weight");
  ids.push_back("head/fc2/out");
  return ids;
}

BitOpsReport GinGraphNet::ComputeBitOps(int64_t num_nodes, int64_t nnz,
                                        int64_t num_graphs,
                                        const QuantScheme& scheme) const {
  BitOpsReport report;
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(nnz);
  const double g = static_cast<double>(num_graphs);
  const double h = static_cast<double>(config_.hidden);
  double cur = scheme.EffectiveBits("model/x", kFp32Bits);
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "gin" + std::to_string(l);
    const double in = l == 0 ? static_cast<double>(config_.in_features) : h;
    const double ab = scheme.EffectiveBits(p + "/adj", kFp32Bits);
    report.Add(p + "/spmm", 2.0 * m * in, std::max(cur, ab));
    const double agg = scheme.EffectiveBits(p + "/agg", kFp32Bits);
    report.Add(p + "/combine", 3.0 * n * in, std::max(cur, agg));
    const double comb = scheme.EffectiveBits(p + "/combined", kFp32Bits);
    const double w1 = scheme.EffectiveBits(p + "/mlp/fc1/weight", kFp32Bits);
    report.Add(p + "/mlp_fc1", 2.0 * n * in * h, std::max(comb, w1));
    const double f1 = scheme.EffectiveBits(p + "/mlp/fc1/out", kFp32Bits);
    if (config_.batch_norm) report.Add(p + "/bn", 4.0 * n * h, f1);
    report.Add(p + "/mlp_relu", n * h, f1);
    const double w2 = scheme.EffectiveBits(p + "/mlp/fc2/weight", kFp32Bits);
    report.Add(p + "/mlp_fc2", 2.0 * n * h * h, std::max(f1, w2));
    cur = scheme.EffectiveBits(p + "/mlp/fc2/out", kFp32Bits);
    report.Add(p + "/relu", n * h, cur);
  }
  report.Add("model/pool_max", n * h, cur);
  const double pb = scheme.EffectiveBits("model/pool", kFp32Bits);
  const double hw1 = scheme.EffectiveBits("head/fc1/weight", kFp32Bits);
  report.Add("head/fc1", 2.0 * g * h * h, std::max(pb, hw1));
  const double h1 = scheme.EffectiveBits("head/fc1/out", kFp32Bits);
  report.Add("head/relu", g * h, h1);
  const double hw2 = scheme.EffectiveBits("head/fc2/weight", kFp32Bits);
  report.Add("head/fc2", 2.0 * g * h * static_cast<double>(config_.num_classes),
             std::max(h1, hw2));
  return report;
}

// ---------------------------------------------------------------------------
// GcnGraphNet (CSL, Table 9)
// ---------------------------------------------------------------------------

GcnGraphNet::GcnGraphNet(const Config& config, Rng* rng) : config_(config) {
  MIXQ_CHECK_GT(config.in_features, 0);
  MIXQ_CHECK_GT(config.num_classes, 0);
  for (int l = 0; l < config.num_layers; ++l) {
    const int64_t in = l == 0 ? config.in_features : config.hidden;
    layers_.push_back(std::make_unique<GcnConv>(in, config.hidden,
                                                "gcn" + std::to_string(l), rng));
  }
  head_ = std::make_unique<Linear>(config.hidden, config.num_classes, "head", rng);
}

Tensor GcnGraphNet::Forward(const Tensor& x, const SparseOperatorPtr& op,
                            const std::vector<int64_t>& batch, int64_t num_graphs,
                            QuantScheme* scheme) {
  Tensor h = scheme->Quantize("model/x", x, ComponentKind::kInput, training_);
  for (auto& layer : layers_) {
    h = Relu(layer->Forward(h, op, scheme));
  }
  Tensor pooled = GlobalPool(h, batch, num_graphs, PoolMode::kMax);
  pooled =
      scheme->Quantize("model/pool", pooled, ComponentKind::kAggregate, training_);
  return head_->Forward(pooled, scheme);
}

std::vector<Tensor> GcnGraphNet::Parameters() {
  std::vector<Tensor> params;
  for (auto& l : layers_) AppendParameters(&params, l->Parameters());
  AppendParameters(&params, head_->Parameters());
  return params;
}

void GcnGraphNet::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& l : layers_) l->SetTraining(training);
  head_->SetTraining(training);
}

std::vector<std::string> GcnGraphNet::ComponentIds() const {
  std::vector<std::string> ids{"model/x"};
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "gcn" + std::to_string(l);
    ids.push_back(p + "/weight");
    ids.push_back(p + "/linear_out");
    ids.push_back(p + "/adj");
    ids.push_back(p + "/agg");
  }
  ids.push_back("model/pool");
  ids.push_back("head/weight");
  ids.push_back("head/out");
  return ids;
}

BitOpsReport GcnGraphNet::ComputeBitOps(int64_t num_nodes, int64_t nnz,
                                        int64_t num_graphs,
                                        const QuantScheme& scheme) const {
  BitOpsReport report;
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(nnz);
  const double g = static_cast<double>(num_graphs);
  const double h = static_cast<double>(config_.hidden);
  double cur = scheme.EffectiveBits("model/x", kFp32Bits);
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "gcn" + std::to_string(l);
    const double in = l == 0 ? static_cast<double>(config_.in_features) : h;
    const double wb = scheme.EffectiveBits(p + "/weight", kFp32Bits);
    report.Add(p + "/matmul", 2.0 * n * in * h, std::max(cur, wb));
    const double lin = scheme.EffectiveBits(p + "/linear_out", kFp32Bits);
    const double ab = scheme.EffectiveBits(p + "/adj", kFp32Bits);
    report.Add(p + "/spmm", 2.0 * m * h, std::max(lin, ab));
    cur = scheme.EffectiveBits(p + "/agg", kFp32Bits);
    report.Add(p + "/relu", n * h, cur);
  }
  report.Add("model/pool_max", n * h, cur);
  const double pb = scheme.EffectiveBits("model/pool", kFp32Bits);
  const double hw = scheme.EffectiveBits("head/weight", kFp32Bits);
  report.Add("head/matmul", 2.0 * g * h * static_cast<double>(config_.num_classes),
             std::max(pb, hw));
  return report;
}

// ---------------------------------------------------------------------------
// Fp32StackNet (Figure 1)
// ---------------------------------------------------------------------------

const char* Fp32StackNet::LayerTypeName(LayerType type) {
  switch (type) {
    case LayerType::kGcn: return "GCN";
    case LayerType::kGat: return "GAT";
    case LayerType::kGin: return "GIN";
    case LayerType::kTransformer: return "Transformer";
    case LayerType::kTag: return "TAG";
    case LayerType::kSuperGat: return "SuperGAT";
  }
  return "?";
}

Fp32StackNet::Fp32StackNet(LayerType type, int64_t in_features, int64_t hidden,
                           int64_t num_classes, int num_layers, Rng* rng)
    : type_(type),
      num_layers_(num_layers),
      in_features_(in_features),
      hidden_(hidden),
      num_classes_(num_classes),
      fp32_(std::make_shared<NoQuantScheme>()) {
  MIXQ_CHECK_GE(num_layers, 1);
  for (int l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? in_features : hidden;
    const std::string id = "stack" + std::to_string(l);
    switch (type) {
      case LayerType::kGcn:
        layers_.push_back(std::make_unique<GcnConv>(in, hidden, id, rng));
        break;
      case LayerType::kGat:
        layers_.push_back(std::make_unique<GatConv>(in, hidden, id, rng));
        break;
      case LayerType::kGin:
        layers_.push_back(std::make_unique<GinConv>(in, hidden, hidden, id, rng,
                                                    /*batch_norm=*/false));
        break;
      case LayerType::kTransformer:
        layers_.push_back(std::make_unique<TransformerConv>(in, hidden, id, rng));
        break;
      case LayerType::kTag:
        layers_.push_back(std::make_unique<TagConv>(in, hidden, /*hops=*/2, id, rng));
        break;
      case LayerType::kSuperGat:
        layers_.push_back(std::make_unique<SuperGatConv>(in, hidden, id, rng));
        break;
    }
  }
  Rng head_rng(rng->UniformInt(1, 1 << 30));
  head_ = std::make_unique<Linear>(hidden, num_classes, "stack_head", &head_rng);
}

Tensor Fp32StackNet::Forward(const Tensor& x, const SparseOperatorPtr& gcn_op,
                             const SparseOperatorPtr& raw_op, Rng* dropout_rng) {
  Tensor h = x;
  for (int l = 0; l < num_layers_; ++l) {
    Module* layer = layers_[static_cast<size_t>(l)].get();
    switch (type_) {
      case LayerType::kGcn:
        h = static_cast<GcnConv*>(layer)->Forward(h, gcn_op, fp32_.get());
        break;
      case LayerType::kGat:
        h = static_cast<GatConv*>(layer)->Forward(h, raw_op);
        break;
      case LayerType::kGin:
        h = static_cast<GinConv*>(layer)->Forward(h, raw_op, fp32_.get());
        break;
      case LayerType::kTransformer:
        h = static_cast<TransformerConv*>(layer)->Forward(h, raw_op);
        break;
      case LayerType::kTag:
        h = static_cast<TagConv*>(layer)->Forward(h, gcn_op);
        break;
      case LayerType::kSuperGat:
        h = static_cast<SuperGatConv*>(layer)->Forward(h, raw_op);
        break;
    }
    h = Relu(h);
    h = Dropout(h, 0.5f, training_, dropout_rng);
  }
  return head_->Forward(h, fp32_.get());
}

std::vector<Tensor> Fp32StackNet::Parameters() {
  std::vector<Tensor> params;
  for (auto& l : layers_) AppendParameters(&params, l->Parameters());
  AppendParameters(&params, head_->Parameters());
  return params;
}

void Fp32StackNet::SetTraining(bool training) {
  Module::SetTraining(training);
  for (auto& l : layers_) l->SetTraining(training);
  head_->SetTraining(training);
}

double Fp32StackNet::CountOps(int64_t num_nodes, int64_t nnz) const {
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(nnz);
  const double h = static_cast<double>(hidden_);
  double total = 0.0;
  for (int l = 0; l < num_layers_; ++l) {
    const double in = l == 0 ? static_cast<double>(in_features_) : h;
    switch (type_) {
      case LayerType::kGcn:
        total += 2.0 * n * in * h + 2.0 * m * h;
        break;
      case LayerType::kGat:
        total += 2.0 * n * in * h + 4.0 * n * h + 6.0 * m + 2.0 * m * h;
        break;
      case LayerType::kGin:
        total += 2.0 * m * in + 3.0 * n * in + 2.0 * n * in * h + n * h +
                 2.0 * n * h * h;
        break;
      case LayerType::kTransformer:
        total += 6.0 * n * in * h + 2.0 * m * h + 3.0 * m + 2.0 * m * h;
        break;
      case LayerType::kTag:
        total += 3.0 * 2.0 * n * in * h + 2.0 * 2.0 * m * in;
        break;
      case LayerType::kSuperGat:
        total += 2.0 * n * in * h + 2.0 * m * h + 3.0 * m + 2.0 * m * h;
        break;
    }
    total += 2.0 * n * h;  // relu + dropout
  }
  total += 2.0 * n * h * static_cast<double>(num_classes_);
  return total;
}

int64_t Fp32StackNet::ParameterCount() {
  int64_t total = 0;
  for (auto& p : Parameters()) total += p.numel();
  return total;
}

}  // namespace mixq
