// Copyright 2026 MixQ-GNN Authors
// Graph Convolutional Network layer [17]: H' = Â (H Θ), with Â the
// renormalized adjacency (GcnNormalize). Every paper component of the layer
// is exposed to the QuantScheme:
//   <id>/weight      — Θ
//   <id>/linear_out  — HΘ
//   <id>/adj         — Â's edge weights
//   <id>/agg         — Â(HΘ)  (the layer output pre-activation)
#pragma once

#include <string>

#include "nn/module.h"
#include "quant/scheme.h"
#include "sparse/spmm.h"
#include "tensor/ops.h"

namespace mixq {

class GcnConv : public Module {
 public:
  GcnConv(int64_t in_features, int64_t out_features, const std::string& id, Rng* rng);

  /// `op` must already be GCN-normalized. Returns the pre-activation output.
  Tensor Forward(const Tensor& x, const SparseOperatorPtr& op, QuantScheme* scheme);

  std::vector<Tensor> Parameters() override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const std::string& id() const { return id_; }
  /// Θ, read by the engine's compile-time lowering pass.
  const Tensor& weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  std::string id_;
  Tensor weight_;
};

}  // namespace mixq
