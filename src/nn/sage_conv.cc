// Copyright 2026 MixQ-GNN Authors
#include "nn/sage_conv.h"

#include "tensor/ops.h"

namespace mixq {

SageConv::SageConv(int64_t in_features, int64_t out_features, const std::string& id,
                   Rng* rng)
    : id_(id),
      root_(in_features, out_features, id + "/root", rng, /*bias=*/true),
      neighbor_(in_features, out_features, id + "/neigh", rng, /*bias=*/false) {}

Tensor SageConv::Forward(const Tensor& x, const SparseOperatorPtr& op,
                         QuantScheme* scheme) {
  MIXQ_CHECK(scheme != nullptr);
  Tensor adj_values = Tensor::FromVector(Shape(op->nnz()), op->matrix().values());
  Tensor adj_q =
      scheme->Quantize(id_ + "/adj", adj_values, ComponentKind::kAdjacency, training_);
  Tensor agg;
  if (adj_q.impl_ptr() == adj_values.impl_ptr()) {
    agg = Spmm(op, x);
  } else {
    agg = SpmmValues(op, adj_q, x);
  }
  agg = scheme->Quantize(id_ + "/agg", agg, ComponentKind::kAggregate, training_);

  Tensor self_part = root_.Forward(x, scheme);
  Tensor neigh_part = neighbor_.Forward(agg, scheme);
  Tensor out = Add(self_part, neigh_part);
  return scheme->Quantize(id_ + "/out", out, ComponentKind::kLinearOut, training_);
}

std::vector<Tensor> SageConv::Parameters() {
  std::vector<Tensor> params;
  AppendParameters(&params, root_.Parameters());
  AppendParameters(&params, neighbor_.Parameters());
  return params;
}

void SageConv::SetTraining(bool training) {
  Module::SetTraining(training);
  root_.SetTraining(training);
  neighbor_.SetTraining(training);
}

}  // namespace mixq
