// Copyright 2026 MixQ-GNN Authors
#include "nn/gin_conv.h"

#include "tensor/ops.h"

namespace mixq {

GinConv::GinConv(int64_t in_features, int64_t hidden, int64_t out_features,
                 const std::string& id, Rng* rng, bool batch_norm)
    : id_(id), mlp_(in_features, hidden, out_features, id + "/mlp", rng, batch_norm) {
  eps_ = Tensor::Scalar(0.0f, /*requires_grad=*/true);
}

Tensor GinConv::Forward(const Tensor& x, const SparseOperatorPtr& op,
                        QuantScheme* scheme) {
  MIXQ_CHECK(scheme != nullptr);
  Tensor adj_values = Tensor::FromVector(Shape(op->nnz()), op->matrix().values());
  Tensor adj_q =
      scheme->Quantize(id_ + "/adj", adj_values, ComponentKind::kAdjacency, training_);
  Tensor agg;
  if (adj_q.impl_ptr() == adj_values.impl_ptr()) {
    agg = Spmm(op, x);
  } else {
    agg = SpmmValues(op, adj_q, x);
  }
  agg = scheme->Quantize(id_ + "/agg", agg, ComponentKind::kAggregate, training_);

  // (1 + ε)·x + A·x. ε is a scalar tensor; ScaleByElement keeps it learnable.
  Tensor self_term = Add(x, ScaleByElement(x, eps_, 0));
  Tensor combined = Add(self_term, agg);
  combined = scheme->Quantize(id_ + "/combined", combined, ComponentKind::kAggregate,
                              training_);
  return mlp_.Forward(combined, scheme);
}

std::vector<Tensor> GinConv::Parameters() {
  std::vector<Tensor> params{eps_};
  AppendParameters(&params, mlp_.Parameters());
  return params;
}

void GinConv::SetTraining(bool training) {
  Module::SetTraining(training);
  mlp_.SetTraining(training);
}

}  // namespace mixq
