// Copyright 2026 MixQ-GNN Authors
// Simulated (fake) quantization for QAT: Qf(x) = Q⁻¹(Q(x)) in the forward
// pass, Straight-Through Estimator [29] in the backward pass.
#pragma once

#include <vector>

#include "quant/observer.h"
#include "quant/quant_params.h"
#include "tensor/tensor.h"

namespace mixq {

/// Differentiable fake quantization of every element of x under `params`.
/// Backward: STE with range clipping — gradients pass through unchanged for
/// elements whose pre-clip integer fell inside [qmin, qmax], else zero.
Tensor FakeQuantOp(const Tensor& x, const QuantParams& params);

/// Degree-Quant variant: rows with protect_mask[i] != 0 bypass quantization
/// entirely (identity forward and backward). The mask is resampled per step
/// from a Bernoulli whose rate grows with in-degree (DQ [8]).
Tensor FakeQuantRowsMasked(const Tensor& x, const QuantParams& params,
                           const std::vector<uint8_t>& protect_mask);

/// Configuration of a trainable fake quantizer.
struct FakeQuantizerConfig {
  int bits = 8;
  bool symmetric = true;
  ObserverKind observer = ObserverKind::kEma;
  float ema_momentum = 0.9f;
  float percentile = 99.9f;
};

/// A stateful QAT quantizer: observes ranges while training, freezes them for
/// evaluation, and emits fake-quantized tensors. One per component-bit pair.
class FakeQuantizer {
 public:
  explicit FakeQuantizer(FakeQuantizerConfig config)
      : config_(config),
        observer_(config.observer, config.ema_momentum, config.percentile) {}

  /// Applies fake quantization. In training mode first folds x's range into
  /// the observer (so parameters track the data distribution, Eq. (3)).
  Tensor Apply(const Tensor& x, bool training) {
    if (training || !observer_.initialized()) observer_.Observe(x.data());
    return FakeQuantOp(x, params());
  }

  /// Degree-protected application (DQ integration).
  Tensor ApplyMasked(const Tensor& x, bool training,
                     const std::vector<uint8_t>& protect_mask) {
    if (training || !observer_.initialized()) observer_.Observe(x.data());
    return FakeQuantRowsMasked(x, params(), protect_mask);
  }

  QuantParams params() const {
    return observer_.MakeParams(config_.bits, config_.symmetric);
  }
  int bits() const { return config_.bits; }
  const FakeQuantizerConfig& config() const { return config_; }
  RangeObserver& observer() { return observer_; }
  const RangeObserver& observer() const { return observer_; }

 private:
  FakeQuantizerConfig config_;
  RangeObserver observer_;
};

}  // namespace mixq
