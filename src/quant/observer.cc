// Copyright 2026 MixQ-GNN Authors
#include "quant/observer.h"

#include <algorithm>
#include <limits>

#include "common/stats.h"

namespace mixq {

void RangeObserver::Observe(const std::vector<float>& values) {
  if (values.empty()) return;
  float batch_lo = std::numeric_limits<float>::infinity();
  float batch_hi = -std::numeric_limits<float>::infinity();
  if (kind_ == ObserverKind::kPercentile) {
    // Percentile clipping (DQ [8]): ignore extreme outliers so hub-node
    // aggregation spikes do not blow up the scale for everyone else.
    std::vector<double> vals(values.begin(), values.end());
    batch_lo = static_cast<float>(Percentile(vals, 100.0 - percentile_));
    batch_hi = static_cast<float>(Percentile(vals, percentile_));
  } else {
    for (float v : values) {
      batch_lo = std::min(batch_lo, v);
      batch_hi = std::max(batch_hi, v);
    }
  }
  if (!initialized_) {
    lo_ = batch_lo;
    hi_ = batch_hi;
    initialized_ = true;
    return;
  }
  switch (kind_) {
    case ObserverKind::kMinMax:
      lo_ = std::min(lo_, batch_lo);
      hi_ = std::max(hi_, batch_hi);
      break;
    case ObserverKind::kEma:
    case ObserverKind::kPercentile:
      lo_ = ema_momentum_ * lo_ + (1.0f - ema_momentum_) * batch_lo;
      hi_ = ema_momentum_ * hi_ + (1.0f - ema_momentum_) * batch_hi;
      break;
  }
}

}  // namespace mixq
