// Copyright 2026 MixQ-GNN Authors
// Quantization schemes: the strategy object injected into every GNN layer.
//
// A layer never hard-codes how (or whether) its components are quantized; it
// calls scheme->Quantize(component_id, tensor, kind) at each of the paper's
// quantization points (inputs, learnable parameters, message passing
// adjacency, aggregation outputs, function outputs). Concrete schemes:
//
//   * NoQuantScheme        — FP32 baseline (identity).
//   * UniformQatScheme     — classic QAT at one bit-width everywhere;
//                            optional Degree-Quant protective masking [8].
//   * PerComponentScheme   — a fixed bit-width per component: the quantized
//                            architecture instantiated from a MixQ-selected
//                            sequence S, or a random-assignment baseline.
//   * RelaxedMixQScheme    — (src/core/) the paper's contribution: per
//                            component, a softmax(α)-weighted mixture of
//                            candidate bit-widths, Eq. (6).
//   * A2QScheme            — (src/quant/a2q.h) per-node learnable scales and
//                            bit-widths with a memory penalty [16].
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "quant/fake_quant.h"
#include "tensor/tensor.h"

namespace mixq {

/// What role a component plays inside a layer. Observers and masking differ
/// per kind (weights use min-max symmetric; activations use EMA; DQ protects
/// node-feature rows only).
enum class ComponentKind {
  kInput,      ///< node features entering a layer
  kWeight,     ///< learnable parameter matrix Θ
  kLinearOut,  ///< output of a linear transformation XΘ
  kAdjacency,  ///< edge-weight values of Â (rank-1, aligned with CSR nnz)
  kAggregate,  ///< output of message aggregation ÂX
  kOutput,     ///< final prediction tensor
};

/// Returns a short name for logs/tables.
const char* ComponentKindName(ComponentKind kind);

/// What a scheme does to one component in eval mode, frozen for serving.
/// Produced by QuantScheme::TryLowerComponent and consumed by the engine's
/// compile-time lowering pass (src/engine/execution_plan.h).
struct LoweredComponent {
  bool identity = true;  ///< pass-through (FP32 component)
  QuantParams params;    ///< per-tensor affine fake-quantization otherwise
};

/// Strategy interface; see file comment.
class QuantScheme {
 public:
  virtual ~QuantScheme() = default;

  /// Quantizes (or passes through) one component tensor. `id` must be stable
  /// across steps (e.g. "layer0/weight"). Returning the input tensor handle
  /// unchanged signals "identity" so layers can keep fast FP32 paths.
  virtual Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                          bool training) = 0;

  /// Learnable tensors introduced by the scheme itself (relaxation α's,
  /// A2Q scale/bit parameters). Default: none.
  virtual std::vector<Tensor> SchemeParameters() { return {}; }

  /// Differentiable penalty added to the task loss (λ·ΣC(T) for MixQ, the
  /// memory penalty for A2Q). Undefined tensor when the scheme has none.
  virtual Tensor PenaltyLoss() { return Tensor(); }

  /// Effective bit-width of a component for BitOPs accounting. Components
  /// never seen return `fallback` (32 = FP32).
  virtual double EffectiveBits(const std::string& id, double fallback = 32.0) const = 0;

  /// Called once per optimization step before the forward pass; Degree-Quant
  /// resamples its Bernoulli protection mask here.
  virtual void BeginStep(bool /*training*/) {}

  /// All component ids seen so far, in first-use order.
  virtual std::vector<std::string> ComponentIds() const = 0;

  /// For schemes that search or randomize the bit assignment: the concrete
  /// per-component widths currently selected (MixQ's argmax-α sequence S, a
  /// random draw, a fixed map). Empty when not applicable. Lets pipelines
  /// report assignments without downcasting to concrete scheme types.
  virtual std::map<std::string, int> SelectedBits() const { return {}; }

  /// Number of learnable quantization scalars the scheme owns (Table 1's
  /// space-overhead accounting: α's for MixQ, 2n per component for A2Q).
  virtual int64_t QuantParameterCount() const { return 0; }

  /// Scheme-reported average bit-width for result tables; negative means
  /// "derive from BitOps accounting". A2Q overrides with its per-node
  /// learned average.
  virtual double ReportedAverageBits() const { return -1.0; }

  /// Serving-lowering contract: returns true iff the scheme's eval-mode
  /// treatment of component `id` is a *fixed* per-tensor transform — identity
  /// or affine fake-quantization with frozen parameters — and fills `out`
  /// with it. Schemes whose eval behaviour is data- or node-dependent (A2Q's
  /// per-node learned scales, the relaxed search mixture) return false, which
  /// makes the engine fall back to the pipeline-replay path. The default is
  /// conservative: not lowerable.
  virtual bool TryLowerComponent(const std::string& /*id*/,
                                 LoweredComponent* /*out*/) const {
    return false;
  }
};

using QuantSchemePtr = std::shared_ptr<QuantScheme>;

/// FP32 baseline: every component passes through untouched.
class NoQuantScheme : public QuantScheme {
 public:
  Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                  bool training) override;
  double EffectiveBits(const std::string&, double) const override { return 32.0; }
  std::vector<std::string> ComponentIds() const override { return ids_; }
  bool TryLowerComponent(const std::string& id,
                         LoweredComponent* out) const override;

 private:
  std::vector<std::string> ids_;
};

/// Options shared by the fixed-width schemes.
struct QatOptions {
  /// Observer for activations/aggregates; weights always use min-max.
  ObserverKind activation_observer = ObserverKind::kEma;
  float percentile = 99.9f;
  /// Degree-Quant protective masking of node-feature components [8].
  bool degree_protect = false;
  /// Per-node protection probability (size = num_nodes); required when
  /// degree_protect is set. Built by MakeDegreeProtectionProbs().
  std::vector<double> protect_probs;
  uint64_t mask_seed = 7;
};

/// Classic QAT: a single bit-width for every component.
class UniformQatScheme : public QuantScheme {
 public:
  UniformQatScheme(int bits, QatOptions options = {});

  Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                  bool training) override;
  double EffectiveBits(const std::string& id, double fallback) const override;
  void BeginStep(bool training) override;
  std::vector<std::string> ComponentIds() const override { return ids_; }
  bool TryLowerComponent(const std::string& id,
                         LoweredComponent* out) const override;

 private:
  friend class PerComponentScheme;
  int bits_;
  QatOptions options_;
  std::map<std::string, std::unique_ptr<FakeQuantizer>> quantizers_;
  std::vector<std::string> ids_;
  std::vector<uint8_t> current_mask_;
  Rng mask_rng_;
  bool mask_valid_ = false;
};

/// Fixed per-component bit-widths (a selected MixQ sequence S, or a random
/// baseline assignment). Components missing from the map use `default_bits`.
class PerComponentScheme : public QuantScheme {
 public:
  PerComponentScheme(std::map<std::string, int> bits_by_component, int default_bits,
                     QatOptions options = {});

  Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                  bool training) override;
  double EffectiveBits(const std::string& id, double fallback) const override;
  void BeginStep(bool training) override;
  std::vector<std::string> ComponentIds() const override { return ids_; }
  bool TryLowerComponent(const std::string& id,
                         LoweredComponent* out) const override;
  std::map<std::string, int> SelectedBits() const override {
    return bits_by_component_;
  }

  const std::map<std::string, int>& assignment() const { return bits_by_component_; }

 private:
  int BitsFor(const std::string& id) const;

  std::map<std::string, int> bits_by_component_;
  int default_bits_;
  QatOptions options_;
  std::map<std::string, std::unique_ptr<FakeQuantizer>> quantizers_;
  std::vector<std::string> ids_;
  std::vector<uint8_t> current_mask_;
  Rng mask_rng_;
  bool mask_valid_ = false;
};

/// Degree-Quant protection probabilities: nodes ranked by in-degree receive
/// Bernoulli protection rates interpolated in [p_min, p_max] (highest degree
/// → p_max). Matches DQ's stochastic full-precision masking [8].
std::vector<double> MakeDegreeProtectionProbs(const std::vector<int64_t>& in_degrees,
                                              double p_min = 0.0, double p_max = 0.2);

/// Shared helper: builds the FakeQuantizer configuration appropriate for a
/// component kind at a given width.
FakeQuantizerConfig MakeComponentConfig(ComponentKind kind, int bits,
                                        const QatOptions& options);

/// True if this kind is a per-node feature tensor eligible for DQ masking.
inline bool IsNodeFeatureKind(ComponentKind kind) {
  return kind == ComponentKind::kInput || kind == ComponentKind::kAggregate ||
         kind == ComponentKind::kLinearOut || kind == ComponentKind::kOutput;
}

}  // namespace mixq
