// Copyright 2026 MixQ-GNN Authors
#include "quant/fake_quant.h"

#include <cmath>

#include "tensor/op_utils.h"

namespace mixq {

using internal::MakeOpResult;
using internal::NeedsGrad;

Tensor FakeQuantOp(const Tensor& x, const QuantParams& params) {
  std::vector<float> out(x.data().size());
  // Clip mask: 1 where the STE passes the gradient (pre-clip value in range).
  auto pass = std::make_shared<std::vector<uint8_t>>(x.data().size());
  const double inv_scale = 1.0 / params.scale;
  const int64_t qmin = params.qmin(), qmax = params.qmax();
  for (size_t i = 0; i < out.size(); ++i) {
    const long q =
        std::lround(static_cast<double>(x.data()[i]) * inv_scale) + params.zero_point;
    const bool in_range = q >= qmin && q <= qmax;
    (*pass)[i] = in_range ? 1 : 0;
    const long qc = in_range ? q : (q < qmin ? qmin : qmax);
    out[i] = static_cast<float>(qc - params.zero_point) * params.scale;
  }
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, pass](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) {
      if ((*pass)[i]) xi->grad[i] += self.grad[i];
    }
  });
}

Tensor FakeQuantRowsMasked(const Tensor& x, const QuantParams& params,
                           const std::vector<uint8_t>& protect_mask) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  MIXQ_CHECK_EQ(static_cast<int64_t>(protect_mask.size()), x.rows());
  const int64_t n = x.rows(), f = x.cols();
  std::vector<float> out(x.data().size());
  auto pass = std::make_shared<std::vector<uint8_t>>(x.data().size());
  const double inv_scale = 1.0 / params.scale;
  const int64_t qmin = params.qmin(), qmax = params.qmax();
  for (int64_t i = 0; i < n; ++i) {
    const bool protect = protect_mask[static_cast<size_t>(i)] != 0;
    for (int64_t j = 0; j < f; ++j) {
      const size_t k = static_cast<size_t>(i * f + j);
      if (protect) {
        out[k] = x.data()[k];
        (*pass)[k] = 1;
        continue;
      }
      const long q =
          std::lround(static_cast<double>(x.data()[k]) * inv_scale) + params.zero_point;
      const bool in_range = q >= qmin && q <= qmax;
      (*pass)[k] = in_range ? 1 : 0;
      const long qc = in_range ? q : (q < qmin ? qmin : qmax);
      out[k] = static_cast<float>(qc - params.zero_point) * params.scale;
    }
  }
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, pass](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) {
      if ((*pass)[i]) xi->grad[i] += self.grad[i];
    }
  });
}

}  // namespace mixq
