// Copyright 2026 MixQ-GNN Authors
#include "quant/a2q.h"

#include <algorithm>
#include <cmath>

#include "tensor/op_utils.h"
#include "tensor/ops.h"

namespace mixq {

using internal::MakeOpResult;
using internal::NeedsGrad;

namespace {

inline double SigmoidD(double v) { return 1.0 / (1.0 + std::exp(-v)); }

// Continuous bits from the logit, and its rounded/clamped integer width.
inline double ContinuousBits(double beta) { return 1.0 + 7.0 * SigmoidD(beta); }
inline int RoundedBits(double beta) {
  int b = static_cast<int>(std::lround(ContinuousBits(beta)));
  return std::clamp(b, 1, 8);
}
inline int64_t QmaxForBits(int b) {
  return std::max<int64_t>(1, (int64_t{1} << (b - 1)) - 1);
}

}  // namespace

Tensor A2qFakeQuantRows(const Tensor& x, const Tensor& log_scale, const Tensor& beta) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t n = x.rows(), f = x.cols();
  MIXQ_CHECK_EQ(log_scale.numel(), n);
  MIXQ_CHECK_EQ(beta.numel(), n);

  std::vector<float> out(x.data().size());
  // Per-element records needed by backward: the clipped integer q and whether
  // the pre-clip value was in range.
  auto q_store = std::make_shared<std::vector<int32_t>>(x.data().size());
  auto in_range = std::make_shared<std::vector<uint8_t>>(x.data().size());
  for (int64_t i = 0; i < n; ++i) {
    const double s = std::exp(static_cast<double>(log_scale.data()[static_cast<size_t>(i)]));
    const int b = RoundedBits(beta.data()[static_cast<size_t>(i)]);
    const int64_t qmax = QmaxForBits(b);
    for (int64_t j = 0; j < f; ++j) {
      const size_t k = static_cast<size_t>(i * f + j);
      const long q0 = std::lround(static_cast<double>(x.data()[k]) / s);
      const bool ok = q0 >= -qmax && q0 <= qmax;
      const long q = ok ? q0 : (q0 < -qmax ? -qmax : qmax);
      (*q_store)[k] = static_cast<int32_t>(q);
      (*in_range)[k] = ok ? 1 : 0;
      out[k] = static_cast<float>(static_cast<double>(q) * s);
    }
  }

  auto xi = x.impl_ptr();
  auto si = log_scale.impl_ptr();
  auto bi = beta.impl_ptr();
  return MakeOpResult(
      x.shape(), std::move(out), {x, log_scale, beta},
      [xi, si, bi, q_store, in_range, n, f](TensorImpl& self) {
        if (NeedsGrad(*xi)) xi->EnsureGrad();
        if (NeedsGrad(*si)) si->EnsureGrad();
        if (NeedsGrad(*bi)) bi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const double s = std::exp(static_cast<double>(si->data[static_cast<size_t>(i)]));
          const double beta_v = bi->data[static_cast<size_t>(i)];
          const int b = RoundedBits(beta_v);
          double d_log_scale = 0.0;
          double d_beta = 0.0;
          const double sig = SigmoidD(beta_v);
          // d qmax / d beta (STE through the bit rounding):
          // qmax = 2^{b−1}−1, db/dbeta = 7σ(1−σ).
          const double dqmax_dbeta =
              std::log(2.0) * std::pow(2.0, static_cast<double>(b) - 1.0) * 7.0 * sig *
              (1.0 - sig);
          for (int64_t j = 0; j < f; ++j) {
            const size_t k = static_cast<size_t>(i * f + j);
            const float g = self.grad[k];
            if (g == 0.0f) continue;
            const double q = (*q_store)[k];
            if ((*in_range)[k]) {
              // out = round(x/s)·s: STE for x; LSQ for the scale:
              // d out/d s = q − x/s.
              if (NeedsGrad(*xi)) xi->grad[k] += g;
              d_log_scale += static_cast<double>(g) * (q - xi->data[k] / s) * s;
            } else {
              // out = ±qmax·s: no x gradient; scale and bit gradients via the
              // clip boundary.
              d_log_scale += static_cast<double>(g) * q * s;
              const double sign = q >= 0 ? 1.0 : -1.0;
              d_beta += static_cast<double>(g) * sign * s * dqmax_dbeta;
            }
          }
          if (NeedsGrad(*si)) {
            si->grad[static_cast<size_t>(i)] += static_cast<float>(d_log_scale);
          }
          if (NeedsGrad(*bi)) {
            bi->grad[static_cast<size_t>(i)] += static_cast<float>(d_beta);
          }
        }
      });
}

A2qScheme::A2qScheme(int64_t num_nodes, A2qOptions options)
    : num_nodes_(num_nodes), options_(options), rng_(options.seed) {
  MIXQ_CHECK_GT(num_nodes_, 0);
}

Tensor A2qScheme::Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                           bool training) {
  const bool per_node = IsNodeFeatureKind(kind) && x.shape().rank() == 2 &&
                        x.rows() == num_nodes_;
  if (std::find(ids_.begin(), ids_.end(), id) == ids_.end()) ids_.push_back(id);
  if (!per_node) {
    auto it = fallback_quantizers_.find(id);
    if (it == fallback_quantizers_.end()) {
      QatOptions qat;
      auto q = std::make_unique<FakeQuantizer>(
          MakeComponentConfig(kind, options_.weight_bits, qat));
      it = fallback_quantizers_.emplace(id, std::move(q)).first;
    }
    return it->second->Apply(x, training);
  }

  auto it = node_quantizers_.find(id);
  if (it == node_quantizers_.end()) {
    A2qNodeQuantizer nq;
    nq.feature_dim = x.cols();
    // Data-dependent init: per-row max-abs scaled by the initial qmax.
    const int b0 = std::clamp(static_cast<int>(std::lround(options_.initial_bits)), 1, 8);
    const double qmax0 = static_cast<double>(QmaxForBits(b0));
    nq.log_scale = Tensor::Zeros(Shape(num_nodes_), /*requires_grad=*/true);
    for (int64_t i = 0; i < num_nodes_; ++i) {
      double mx = 1e-4;
      for (int64_t j = 0; j < x.cols(); ++j) {
        mx = std::max(mx, std::fabs(static_cast<double>(x.at(i, j))));
      }
      nq.log_scale.data()[static_cast<size_t>(i)] =
          static_cast<float>(std::log(mx / qmax0 + 1e-12));
    }
    // β init so that 1 + 7σ(β) = initial_bits.
    const double target = std::clamp((options_.initial_bits - 1.0) / 7.0, 0.05, 0.95);
    const float beta0 = static_cast<float>(std::log(target / (1.0 - target)));
    nq.beta = Tensor::Full(Shape(num_nodes_), beta0, /*requires_grad=*/true);
    it = node_quantizers_.emplace(id, std::move(nq)).first;
  }
  return A2qFakeQuantRows(x, it->second.log_scale, it->second.beta);
}

std::vector<Tensor> A2qScheme::SchemeParameters() {
  std::vector<Tensor> params;
  for (auto& [id, nq] : node_quantizers_) {
    params.push_back(nq.log_scale);
    params.push_back(nq.beta);
  }
  return params;
}

Tensor A2qScheme::PenaltyLoss() {
  // Memory penalty: λ_m · Σ_components Σ_v b_v(β)·f_v  (in MB, like Eq. (8)).
  Tensor total;
  for (auto& [id, nq] : node_quantizers_) {
    Tensor bits = AddScalar(Scale(Sigmoid(nq.beta), 7.0f), 1.0f);  // [n]
    Tensor mem = Scale(Sum(bits),
                       static_cast<float>(options_.memory_lambda *
                                          static_cast<double>(nq.feature_dim) /
                                          (1024.0 * 8.0)));
    total = total.defined() ? Add(total, mem) : mem;
  }
  return total;
}

double A2qScheme::EffectiveBits(const std::string& id, double fallback) const {
  auto it = node_quantizers_.find(id);
  if (it != node_quantizers_.end()) {
    double s = 0.0;
    for (int64_t i = 0; i < num_nodes_; ++i) {
      s += RoundedBits(it->second.beta.data()[static_cast<size_t>(i)]);
    }
    return s / static_cast<double>(num_nodes_);
  }
  if (fallback_quantizers_.count(id)) return options_.weight_bits;
  return fallback;
}

double A2qScheme::AverageNodeBits() const {
  if (node_quantizers_.empty()) return 32.0;
  double s = 0.0;
  int64_t count = 0;
  for (const auto& [id, nq] : node_quantizers_) {
    for (int64_t i = 0; i < num_nodes_; ++i) {
      s += RoundedBits(nq.beta.data()[static_cast<size_t>(i)]);
      ++count;
    }
  }
  return s / static_cast<double>(count);
}

int64_t A2qScheme::QuantizationParameterCount() const {
  return static_cast<int64_t>(node_quantizers_.size()) * 2 * num_nodes_;
}

}  // namespace mixq
