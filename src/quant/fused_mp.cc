// Copyright 2026 MixQ-GNN Authors
#include "quant/fused_mp.h"

#include <cmath>

#include "common/parallel.h"
#include "tensor/gemm.h"

namespace mixq {

QuantizedDense QuantizeDense(const float* x, int64_t rows, int64_t cols,
                             const QuantParams& params) {
  QuantizedDense out;
  out.rows = rows;
  out.cols = cols;
  out.params = params;
  out.q.resize(static_cast<size_t>(rows * cols));
  for (size_t i = 0; i < out.q.size(); ++i) out.q[i] = QuantizeValue(x[i], params);
  return out;
}

QuantizedDense QuantizeDense(const Tensor& x, const QuantParams& params) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  return QuantizeDense(x.data().data(), x.rows(), x.cols(), params);
}

QuantizedSparse QuantizeCsr(const CsrMatrix& a, const QuantParams& params) {
  QuantizedSparse out;
  out.params = params;
  out.q.resize(a.values().size());
  for (size_t i = 0; i < out.q.size(); ++i) {
    out.q[i] = QuantizeValue(a.values()[i], params);
  }
  return out;
}

int32_t RequantizeReal(double y, const QuantParams& p) {
  const long q = std::lround(y / p.scale) + p.zero_point;
  const int64_t lo = p.qmin(), hi = p.qmax();
  if (q < lo) return static_cast<int32_t>(lo);
  if (q > hi) return static_cast<int32_t>(hi);
  return static_cast<int32_t>(q);
}


QuantizedDense FusedQuantizedSpmm(const CsrMatrix& pattern, const QuantizedSparse& qa,
                                  const QuantizedDense& qx,
                                  const QuantParams& y_params) {
  MIXQ_CHECK_EQ(pattern.cols(), qx.rows);
  MIXQ_CHECK_EQ(static_cast<int64_t>(qa.q.size()), pattern.nnz());
  const int64_t n = pattern.rows(), f = qx.cols;
  const double sa = qa.params.scale, sx = qx.params.scale;
  const int64_t za = qa.params.zero_point, zx = qx.params.zero_point;

  QuantizedDense out;
  out.rows = n;
  out.cols = f;
  out.params = y_params;
  out.q.resize(static_cast<size_t>(n * f));

  // Integer SpMM: P = Qa(A) · Qx(X), with per-row sums for the corrections.
  // C1 = Sa, C2 = Sx ⊘ Sy; C3 folds the zero-point terms. Because implicit
  // zeros of A quantize to Za, the k-sums in C3 reduce to sums over stored
  // entries only (both Qa−Za and the matching Qx terms vanish elsewhere):
  //   Y_ij = Sa·Sx · [ P_ij − Zx·R_i − Za·T_ij + nnz_i·Za·Zx ]
  // where R_i = Σ_stored Qa_ik and T_ij = Σ_{k ∈ row i} Qx_kj. The T term is
  // only needed for asymmetric adjacency quantization (Za ≠ 0).
  const bool need_t = za != 0;
  ParallelFor(
      n,
      [&](int64_t r0, int64_t r1) {
        std::vector<int64_t> p_row(static_cast<size_t>(f));
        std::vector<int64_t> t_row(static_cast<size_t>(f));
        for (int64_t r = r0; r < r1; ++r) {
          std::fill(p_row.begin(), p_row.end(), 0);
          if (need_t) std::fill(t_row.begin(), t_row.end(), 0);
          int64_t r_sum = 0;
          const int64_t begin = pattern.row_ptr()[static_cast<size_t>(r)];
          const int64_t end = pattern.row_ptr()[static_cast<size_t>(r + 1)];
          for (int64_t k = begin; k < end; ++k) {
            const int64_t aq = qa.q[static_cast<size_t>(k)];
            r_sum += aq;
            const int32_t* xq =
                qx.q.data() + pattern.col_idx()[static_cast<size_t>(k)] * f;
            for (int64_t j = 0; j < f; ++j) {
              p_row[static_cast<size_t>(j)] += aq * static_cast<int64_t>(xq[j]);
              if (need_t) t_row[static_cast<size_t>(j)] += xq[j];
            }
          }
          const int64_t nnz_i = end - begin;
          for (int64_t j = 0; j < f; ++j) {
            int64_t acc = p_row[static_cast<size_t>(j)] - zx * r_sum;
            if (need_t) {
              acc += -za * t_row[static_cast<size_t>(j)] + nnz_i * za * zx;
            }
            const double y = sa * sx * static_cast<double>(acc);
            out.q[static_cast<size_t>(r * f + j)] = RequantizeReal(y, y_params);
          }
        }
      },
      /*grain=*/32);
  return out;
}

QuantizedDense FusedQuantizedGemm(const QuantizedDense& qx, const QuantizedDense& qw,
                                  const QuantParams& y_params) {
  MIXQ_CHECK_EQ(qx.cols, qw.rows);
  const int64_t m = qx.rows, k = qx.cols, n = qw.cols;
  const double sx = qx.params.scale, sw = qw.params.scale;
  const int64_t zx = qx.params.zero_point, zw = qw.params.zero_point;

  QuantizedDense out;
  out.rows = m;
  out.cols = n;
  out.params = y_params;
  out.q.resize(static_cast<size_t>(m * n));

  // Column sums of Qw and row sums of Qx for the zero-point corrections:
  //   Y_ij = Sx·Sw · [ P_ij − Zw·RowSumX_i − Zx·ColSumW_j + k·Zx·Zw ]
  std::vector<int64_t> col_sum_w(static_cast<size_t>(n), 0);
  for (int64_t l = 0; l < k; ++l) {
    for (int64_t j = 0; j < n; ++j) {
      col_sum_w[static_cast<size_t>(j)] += qw.q[static_cast<size_t>(l * n + j)];
    }
  }
  std::vector<int64_t> p(static_cast<size_t>(m * n));
  GemmInt32(qx.q.data(), qw.q.data(), p.data(), m, k, n);
  ParallelFor(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int64_t row_sum_x = 0;
          for (int64_t l = 0; l < k; ++l) {
            row_sum_x += qx.q[static_cast<size_t>(i * k + l)];
          }
          for (int64_t j = 0; j < n; ++j) {
            const int64_t acc = p[static_cast<size_t>(i * n + j)] -
                                zw * row_sum_x -
                                zx * col_sum_w[static_cast<size_t>(j)] + k * zx * zw;
            const double y = sx * sw * static_cast<double>(acc);
            out.q[static_cast<size_t>(i * n + j)] = RequantizeReal(y, y_params);
          }
        }
      },
      /*grain=*/32);
  return out;
}

QuantizedDense ReferenceQuantizedSpmm(const CsrMatrix& pattern,
                                      const QuantizedSparse& qa,
                                      const QuantizedDense& qx,
                                      const QuantParams& y_params) {
  const int64_t n = pattern.rows(), f = qx.cols;
  QuantizedDense out;
  out.rows = n;
  out.cols = f;
  out.params = y_params;
  out.q.resize(static_cast<size_t>(n * f));
  // Double-precision fake-quantized operands, dense accumulation.
  for (int64_t r = 0; r < n; ++r) {
    std::vector<double> acc(static_cast<size_t>(f), 0.0);
    for (int64_t k = pattern.row_ptr()[static_cast<size_t>(r)];
         k < pattern.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      const double av =
          static_cast<double>(qa.q[static_cast<size_t>(k)] - qa.params.zero_point) *
          qa.params.scale;
      const int64_t c = pattern.col_idx()[static_cast<size_t>(k)];
      for (int64_t j = 0; j < f; ++j) {
        const double xv = static_cast<double>(qx.q[static_cast<size_t>(c * f + j)] -
                                              qx.params.zero_point) *
                          qx.params.scale;
        acc[static_cast<size_t>(j)] += av * xv;
      }
    }
    for (int64_t j = 0; j < f; ++j) {
      out.q[static_cast<size_t>(r * f + j)] =
          RequantizeReal(acc[static_cast<size_t>(j)], y_params);
    }
  }
  return out;
}

}  // namespace mixq
