// Copyright 2026 MixQ-GNN Authors
// Theorem 1: Quantized Message Passing Schema.
//
//   Qy(AX) = C1 ⊙ Qa(A)·Qx(X) ⊙ C2 + C3
//
// The aggregation A·X is executed entirely in integer arithmetic on the
// quantized operands; the scale/zero-point corrections C1..C3 are cheap
// vector post-processing. This file implements the fused path for both
// sparse (adjacency) and dense (weight) left operands, plus the float
// fake-quantization reference used to verify numerical equality
// (tests/fused_mp_test.cpp — the analogue of the paper's
// test_graph_conv_module.py / test_graph_iso_module.py).
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant_params.h"
#include "sparse/csr.h"
#include "tensor/tensor.h"

namespace mixq {

/// Dense matrix quantized to integers under per-tensor affine params.
struct QuantizedDense {
  std::vector<int32_t> q;
  int64_t rows = 0;
  int64_t cols = 0;
  QuantParams params;

  /// Dequantize to floats (Eq. (4)).
  std::vector<float> Dequantize() const {
    std::vector<float> out(q.size());
    for (size_t i = 0; i < q.size(); ++i) out[i] = DequantizeValue(q[i], params);
    return out;
  }
};

/// Sparse matrix whose stored values are quantized integers; the sparsity
/// pattern lives in the companion CsrMatrix.
struct QuantizedSparse {
  std::vector<int32_t> q;  ///< aligned with pattern.values()
  QuantParams params;
};

/// Requantizes an exact real-valued accumulator into `p`'s integer grid —
/// the final step of every Theorem-1 fused product. The lowered serving
/// executor (engine/execution_plan.cc) applies the same rule with the
/// division folded into a premultiplied factor.
int32_t RequantizeReal(double y, const QuantParams& p);

/// Quantizes a dense row-major matrix (Eq. (3)).
QuantizedDense QuantizeDense(const float* x, int64_t rows, int64_t cols,
                             const QuantParams& params);
QuantizedDense QuantizeDense(const Tensor& x, const QuantParams& params);

/// Quantizes the stored values of a CSR matrix. Implicit zeros quantize to
/// the zero point by construction (Q(0) = Z), which the fused kernel relies
/// on when folding C3.
QuantizedSparse QuantizeCsr(const CsrMatrix& a, const QuantParams& params);

/// Theorem-1 fused quantized sparse·dense product. Integer SpMM on the
/// quantized operands plus C1..C3 corrections; returns Qy(A·X) under
/// `y_params`. Set y_params = {scale=1, zero_point=0, bits=32} for the
/// multi-hop "no output quantization" mode the paper recommends.
QuantizedDense FusedQuantizedSpmm(const CsrMatrix& pattern, const QuantizedSparse& qa,
                                  const QuantizedDense& qx, const QuantParams& y_params);

/// Theorem-1 fused quantized dense·dense product Qy(X·W) (the linear
/// transformation components).
QuantizedDense FusedQuantizedGemm(const QuantizedDense& qx, const QuantizedDense& qw,
                                  const QuantParams& y_params);

/// Float reference: Qy( Qf_a(A) · Qf_x(X) ) computed with double-precision
/// fake-quantized operands. The fused integer path must match this exactly
/// (up to rounding ties on the final requantization).
QuantizedDense ReferenceQuantizedSpmm(const CsrMatrix& pattern,
                                      const QuantizedSparse& qa,
                                      const QuantizedDense& qx,
                                      const QuantParams& y_params);

}  // namespace mixq
