// Copyright 2026 MixQ-GNN Authors
#include "quant/scheme.h"

#include <algorithm>
#include <numeric>

namespace mixq {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kInput: return "input";
    case ComponentKind::kWeight: return "weight";
    case ComponentKind::kLinearOut: return "linear_out";
    case ComponentKind::kAdjacency: return "adjacency";
    case ComponentKind::kAggregate: return "aggregate";
    case ComponentKind::kOutput: return "output";
  }
  return "unknown";
}

Tensor NoQuantScheme::Quantize(const std::string& id, const Tensor& x, ComponentKind,
                               bool) {
  if (std::find(ids_.begin(), ids_.end(), id) == ids_.end()) ids_.push_back(id);
  return x;
}

bool NoQuantScheme::TryLowerComponent(const std::string&,
                                      LoweredComponent* out) const {
  out->identity = true;
  return true;
}

namespace {

// Shared lowering for the fixed-width QAT schemes: in eval mode both apply
// the frozen FakeQuantOp to every component (Degree-Quant masking is a
// training-only behaviour), so the lowered form is the quantizer's current
// params. A quantizer whose observer never saw data would *observe the
// serving input* on first use — that is not a frozen transform, so it is
// reported as not lowerable.
bool LowerFrozenQuantizer(
    const std::map<std::string, std::unique_ptr<FakeQuantizer>>& quantizers,
    const std::string& id, LoweredComponent* out) {
  auto it = quantizers.find(id);
  if (it == quantizers.end() || !it->second->observer().initialized()) {
    return false;
  }
  out->identity = false;
  out->params = it->second->params();
  return true;
}

}  // namespace

FakeQuantizerConfig MakeComponentConfig(ComponentKind kind, int bits,
                                        const QatOptions& options) {
  FakeQuantizerConfig config;
  config.bits = bits;
  switch (kind) {
    case ComponentKind::kWeight:
      // Weights are static per step; exact min-max symmetric is standard.
      config.symmetric = true;
      config.observer = ObserverKind::kMinMax;
      break;
    case ComponentKind::kAdjacency:
      // Symmetric keeps Za = 0, which makes the Theorem-1 C3 term cheap.
      config.symmetric = true;
      config.observer = ObserverKind::kMinMax;
      break;
    default:
      config.symmetric = true;
      config.observer = options.activation_observer;
      config.percentile = options.percentile;
      break;
  }
  return config;
}

std::vector<double> MakeDegreeProtectionProbs(const std::vector<int64_t>& in_degrees,
                                              double p_min, double p_max) {
  const size_t n = in_degrees.size();
  std::vector<double> probs(n, p_min);
  if (n == 0) return probs;
  // Rank nodes by in-degree; highest rank gets p_max.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return in_degrees[a] < in_degrees[b]; });
  for (size_t rank = 0; rank < n; ++rank) {
    const double frac = n > 1 ? static_cast<double>(rank) / static_cast<double>(n - 1)
                              : 1.0;
    probs[order[rank]] = p_min + frac * (p_max - p_min);
  }
  return probs;
}

namespace {

// Shared masked/unmasked application used by both fixed-width schemes.
Tensor ApplyQuantizer(FakeQuantizer* q, const Tensor& x, ComponentKind kind,
                      bool training, const QatOptions& options,
                      const std::vector<uint8_t>& mask) {
  const bool maskable = options.degree_protect && training &&
                        IsNodeFeatureKind(kind) && x.shape().rank() == 2 &&
                        x.rows() == static_cast<int64_t>(mask.size());
  if (maskable) return q->ApplyMasked(x, training, mask);
  return q->Apply(x, training);
}

void ResampleMask(const QatOptions& options, Rng* rng, std::vector<uint8_t>* mask) {
  mask->resize(options.protect_probs.size());
  for (size_t i = 0; i < mask->size(); ++i) {
    (*mask)[i] = rng->Bernoulli(options.protect_probs[i]) ? 1 : 0;
  }
}

}  // namespace

UniformQatScheme::UniformQatScheme(int bits, QatOptions options)
    : bits_(bits), options_(std::move(options)), mask_rng_(options_.mask_seed) {
  MIXQ_CHECK_GE(bits_, 1);
  MIXQ_CHECK_LE(bits_, 32);
  if (options_.degree_protect) {
    MIXQ_CHECK(!options_.protect_probs.empty())
        << "degree_protect requires protect_probs";
  }
}

void UniformQatScheme::BeginStep(bool training) {
  if (options_.degree_protect && training) {
    ResampleMask(options_, &mask_rng_, &current_mask_);
    mask_valid_ = true;
  }
}

Tensor UniformQatScheme::Quantize(const std::string& id, const Tensor& x,
                                  ComponentKind kind, bool training) {
  auto it = quantizers_.find(id);
  if (it == quantizers_.end()) {
    auto q = std::make_unique<FakeQuantizer>(MakeComponentConfig(kind, bits_, options_));
    it = quantizers_.emplace(id, std::move(q)).first;
    ids_.push_back(id);
  }
  if (options_.degree_protect && training && !mask_valid_) {
    ResampleMask(options_, &mask_rng_, &current_mask_);
    mask_valid_ = true;
  }
  return ApplyQuantizer(it->second.get(), x, kind, training, options_, current_mask_);
}

double UniformQatScheme::EffectiveBits(const std::string& id, double fallback) const {
  return quantizers_.count(id) ? static_cast<double>(bits_) : fallback;
}

bool UniformQatScheme::TryLowerComponent(const std::string& id,
                                         LoweredComponent* out) const {
  return LowerFrozenQuantizer(quantizers_, id, out);
}

PerComponentScheme::PerComponentScheme(std::map<std::string, int> bits_by_component,
                                       int default_bits, QatOptions options)
    : bits_by_component_(std::move(bits_by_component)),
      default_bits_(default_bits),
      options_(std::move(options)),
      mask_rng_(options_.mask_seed) {
  MIXQ_CHECK_GE(default_bits_, 1);
  if (options_.degree_protect) {
    MIXQ_CHECK(!options_.protect_probs.empty())
        << "degree_protect requires protect_probs";
  }
}

int PerComponentScheme::BitsFor(const std::string& id) const {
  auto it = bits_by_component_.find(id);
  return it == bits_by_component_.end() ? default_bits_ : it->second;
}

void PerComponentScheme::BeginStep(bool training) {
  if (options_.degree_protect && training) {
    ResampleMask(options_, &mask_rng_, &current_mask_);
    mask_valid_ = true;
  }
}

Tensor PerComponentScheme::Quantize(const std::string& id, const Tensor& x,
                                    ComponentKind kind, bool training) {
  auto it = quantizers_.find(id);
  if (it == quantizers_.end()) {
    auto q = std::make_unique<FakeQuantizer>(
        MakeComponentConfig(kind, BitsFor(id), options_));
    it = quantizers_.emplace(id, std::move(q)).first;
    ids_.push_back(id);
  }
  if (options_.degree_protect && training && !mask_valid_) {
    ResampleMask(options_, &mask_rng_, &current_mask_);
    mask_valid_ = true;
  }
  return ApplyQuantizer(it->second.get(), x, kind, training, options_, current_mask_);
}

double PerComponentScheme::EffectiveBits(const std::string& id, double fallback) const {
  return quantizers_.count(id) ? static_cast<double>(BitsFor(id)) : fallback;
}

bool PerComponentScheme::TryLowerComponent(const std::string& id,
                                           LoweredComponent* out) const {
  return LowerFrozenQuantizer(quantizers_, id, out);
}

}  // namespace mixq
