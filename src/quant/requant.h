// Copyright 2026 MixQ-GNN Authors
// The requantization code emitter shared by the lowered executors
// (engine/execution_plan.cc) and the fused GEMM/SpMM epilogue kernels
// (tensor/gemm.cc, sparse/csr.cc). Keeping ONE implementation of the
// round-and-clip is what lets the fused epilogues stay bitwise identical to
// the two-pass requant: both paths feed the same double through the same
// expressions.
//
// The lowered quantizers round half away from zero — the same rule as the
// reference quantizers' std::lround — with an inline, vectorizable
// `(int32)(x ± 0.5)`. The two can disagree only when x sits within half an
// ulp of a .5 tie, a ~2^-52 probability event that never arises from float
// inputs scaled by a float-derived reciprocal, so lowered results remain
// bitwise identical to the lround-based reference. Values are pre-clamped
// just outside the code grid (NaN maps to the low bound) so the integer
// conversion is always defined; the reference path's lround merely returns
// an unspecified value there, and both end at the same clipped code for
// anything finite.
#pragma once

#include <cstdint>

#include "quant/quant_params.h"

namespace mixq {

/// Round-and-clip a pre-scaled real value into an integer code. `v` is the
/// value in units of the output scale, before the zero point. The double
/// pre-clamp keeps the int32 conversion defined for out-of-grid inputs.
struct CodeEmitter {
  double vlo = -1.0, vhi = 1.0;  // pre-round clamp, in scale units
  int32_t zp = 0;
  int32_t lo = 0, hi = 0;

  /// Default-constructed emitters are placeholders (everything clips to 0);
  /// real ones are built from the step's output params at lowering.
  CodeEmitter() = default;

  explicit CodeEmitter(const QuantParams& p)
      : vlo(static_cast<double>(p.qmin() - p.zero_point) - 1.0),
        vhi(static_cast<double>(p.qmax() - p.zero_point) + 1.0),
        zp(p.zero_point),
        lo(static_cast<int32_t>(p.qmin())),
        hi(static_cast<int32_t>(p.qmax())) {}

  inline int32_t Code(double v) const {
    const double vc = !(v >= vlo) ? vlo : (v > vhi ? vhi : v);  // NaN -> vlo
    const int32_t q = static_cast<int32_t>(vc >= 0.0 ? vc + 0.5 : vc - 0.5) + zp;
    return q < lo ? lo : (q > hi ? hi : q);
  }
};

/// A fused requantization epilogue: codes = Code(total·acc (+ bias[j])).
/// `total` folds the operand scales over the output scale; `bias` (nullable)
/// is the per-output-column bias already divided by the output scale. Both
/// are frozen at lowering so the hot path allocates and recomputes nothing.
struct RequantEpilogue {
  double total = 1.0;
  const double* bias = nullptr;
  CodeEmitter emitter;
};

/// Column-block width of the fused epilogue kernels: int32 accumulators live
/// in a stack block of at most this many lanes and are requantized from
/// there, so they never round-trip through a scratch matrix.
inline constexpr int64_t kRequantBlock = 256;

/// Requantizes `count` (<= kRequantBlock) int32 accumulators into int8
/// codes. THE fused-epilogue arithmetic: identical expressions to the
/// two-pass requant helpers in engine/execution_plan.cc, which is what keeps
/// fused and unfused codes bitwise equal. Rounds into an int32 block first
/// and narrows in a second sweep (a direct scalar-narrowing store defeats
/// the vectorizer).
inline void RequantBlock(const int32_t* acc, int64_t count, double total,
                         const double* bias, const CodeEmitter& em, int8_t* dst) {
  // Local emitter copy + __restrict views: dst is a char-type pointer that
  // formally aliases everything (including em's fields), and without these
  // the compiler reloads the clamp bounds per element instead of hoisting
  // them and vectorizing the double math — a ~8x epilogue slowdown.
  const CodeEmitter e = em;
  const int32_t* __restrict ap = acc;
  const double* __restrict bp = bias;
  int8_t* __restrict dp = dst;
  int32_t tmp[kRequantBlock];
  if (bp != nullptr) {
    for (int64_t j = 0; j < count; ++j) {
      tmp[j] = e.Code(total * static_cast<double>(ap[j]) + bp[j]);
    }
  } else {
    for (int64_t j = 0; j < count; ++j) {
      tmp[j] = e.Code(total * static_cast<double>(ap[j]));
    }
  }
  for (int64_t j = 0; j < count; ++j) dp[j] = static_cast<int8_t>(tmp[j]);
}

/// Requantizes a register tile spilled as `rows` stack rows of 16 int32
/// accumulators into strided int8 output rows. One emitter copy serves the
/// whole tile — at 16-element trip counts the per-call RequantBlock setup
/// is a measurable fraction of the epilogue, so the GEMM kernels emit
/// through this instead of 4 separate calls.
inline void RequantTile16(const int32_t (*tile)[16], int64_t rows, int64_t emit,
                          double total, const double* bias,
                          const CodeEmitter& em, int8_t* dst, int64_t stride) {
  const CodeEmitter e = em;
  const double* __restrict bp = bias;
  int32_t tmp[16];
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* __restrict ap = tile[r];
    int8_t* __restrict dp = dst + r * stride;
    if (bp != nullptr) {
      for (int64_t j = 0; j < emit; ++j) {
        tmp[j] = e.Code(total * static_cast<double>(ap[j]) + bp[j]);
      }
    } else {
      for (int64_t j = 0; j < emit; ++j) {
        tmp[j] = e.Code(total * static_cast<double>(ap[j]));
      }
    }
    for (int64_t j = 0; j < emit; ++j) dp[j] = static_cast<int8_t>(tmp[j]);
  }
}

}  // namespace mixq
