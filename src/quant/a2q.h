// Copyright 2026 MixQ-GNN Authors
// A2Q-style baseline [16]: Aggregation-Aware Quantization with *per-node*
// learnable quantization scales and bit-widths, plus a memory-size penalty.
//
// Faithful to the reference design in the respects the paper's comparison
// relies on: (i) per-node parameters make the method's parameter count grow
// with the graph (Table 1's O(n·l) space overhead — what MixQ criticizes),
// (ii) bit-widths are learned via gradients with an STE through rounding,
// (iii) the memory penalty drives average bits low (A2Q reports ~1.7–2.7
// average bits on Planetoid). Weight/adjacency components fall back to
// standard 8-bit QAT, mirroring A2Q's focus on node-feature aggregation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "quant/scheme.h"
#include "tensor/tensor.h"

namespace mixq {

/// Differentiable per-row quantization with learnable log-scales and
/// bit-width logits:
///   b_i  = 1 + 7·σ(beta_i)          (continuous, rounded with an STE)
///   s_i  = exp(log_scale_i)
///   out  = clip(⌊x_i/s_i⌉, −qmax_i, qmax_i) · s_i,  qmax_i = 2^{b̂_i−1}−1
/// Gradients: STE for x, LSQ-style for log_scale, clip-boundary for beta.
Tensor A2qFakeQuantRows(const Tensor& x, const Tensor& log_scale, const Tensor& beta);

/// One per-node quantizer (per component).
struct A2qNodeQuantizer {
  Tensor log_scale;  ///< [n], learnable
  Tensor beta;       ///< [n], learnable bit logits
  int64_t feature_dim = 0;
};

struct A2qOptions {
  /// Initial bit-width (sets beta's init via σ⁻¹((b0−1)/7)).
  double initial_bits = 4.0;
  /// Weight/adjacency fallback bit-width.
  int weight_bits = 8;
  /// Memory penalty coefficient (the analogue of A2Q's λ_m).
  double memory_lambda = 5e-4;
  uint64_t seed = 11;
};

/// QuantScheme implementation of the A2Q baseline.
class A2qScheme : public QuantScheme {
 public:
  /// `num_nodes` fixes the size of per-node parameter vectors; node-feature
  /// components with a different row count fall back to plain QAT.
  A2qScheme(int64_t num_nodes, A2qOptions options = {});

  Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                  bool training) override;
  std::vector<Tensor> SchemeParameters() override;
  Tensor PenaltyLoss() override;
  double EffectiveBits(const std::string& id, double fallback) const override;
  std::vector<std::string> ComponentIds() const override { return ids_; }
  int64_t QuantParameterCount() const override {
    return QuantizationParameterCount();
  }
  double ReportedAverageBits() const override { return AverageNodeBits(); }

  /// Mean rounded bit-width across all per-node quantizers (the "Bits"
  /// column for A2Q rows in Tables 3/8).
  double AverageNodeBits() const;

  /// Number of learnable FP32 quantization parameters this scheme adds —
  /// 2·n per node component (Table 1's A2Q space overhead).
  int64_t QuantizationParameterCount() const;

 private:
  int64_t num_nodes_;
  A2qOptions options_;
  std::map<std::string, A2qNodeQuantizer> node_quantizers_;
  std::map<std::string, std::unique_ptr<FakeQuantizer>> fallback_quantizers_;
  std::vector<std::string> ids_;
  Rng rng_;
};

}  // namespace mixq
