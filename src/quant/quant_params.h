// Copyright 2026 MixQ-GNN Authors
// Affine quantization parameters and scalar quantize/dequantize helpers
// implementing Eqs. (3)-(4): Q(x) = clip(⌊x ⊘ S⌉ + Z, a, b),
// Q⁻¹(q) = (q − Z) ⊙ S.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace mixq {

/// Per-tensor affine quantization parameters for a given bit-width.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
  int bits = 8;
  /// Symmetric (signed, zero_point == 0) vs asymmetric (affine).
  bool symmetric = true;

  int64_t qmin() const {
    return symmetric ? -(int64_t{1} << (bits - 1)) + 1 : 0;
  }
  int64_t qmax() const {
    return symmetric ? (int64_t{1} << (bits - 1)) - 1 : (int64_t{1} << bits) - 1;
  }
};

/// Builds params covering [lo, hi] at `bits`. Symmetric mode centres on zero
/// using max(|lo|, |hi|); asymmetric stretches the full range.
inline QuantParams ParamsFromRange(float lo, float hi, int bits, bool symmetric) {
  MIXQ_CHECK_GE(bits, 1);
  MIXQ_CHECK_LE(bits, 32);
  QuantParams p;
  p.bits = bits;
  p.symmetric = symmetric;
  if (symmetric) {
    // A constant (even single-valued) range is representable as long as the
    // magnitude bound is positive — regular graphs produce exactly this for
    // their normalized adjacency (all values identical), and zeroing them
    // would erase the graph.
    const float bound = std::max(std::fabs(lo), std::fabs(hi));
    if (bound <= 0.0f) {  // all-zero tensor: any scale works
      p.scale = 1.0f;
      p.zero_point = 0;
      return p;
    }
    p.scale = bound / static_cast<float>(p.qmax());
    if (p.scale <= 0.0f) p.scale = 1e-8f;
    p.zero_point = 0;
  } else {
    // Asymmetric: stretch a degenerate range to include zero so that both
    // the constant value and implicit zeros stay representable.
    float a = std::min(lo, 0.0f);
    float b = std::max(hi, 0.0f);
    if (!(b > a)) {
      p.scale = 1.0f;
      p.zero_point = 0;
      return p;
    }
    p.scale = (b - a) / static_cast<float>(p.qmax() - p.qmin());
    if (p.scale <= 0.0f) p.scale = 1e-8f;
    p.zero_point =
        static_cast<int32_t>(std::lround(static_cast<double>(p.qmin()) - a / p.scale));
  }
  return p;
}

/// Eq. (3): quantize one value.
inline int32_t QuantizeValue(float x, const QuantParams& p) {
  const long q = std::lround(static_cast<double>(x) / p.scale) + p.zero_point;
  const int64_t lo = p.qmin(), hi = p.qmax();
  if (q < lo) return static_cast<int32_t>(lo);
  if (q > hi) return static_cast<int32_t>(hi);
  return static_cast<int32_t>(q);
}

/// Eq. (4): dequantize one value.
inline float DequantizeValue(int32_t q, const QuantParams& p) {
  return static_cast<float>(q - p.zero_point) * p.scale;
}

/// Fake quantization of one value: Q⁻¹(Q(x)).
inline float FakeQuantValue(float x, const QuantParams& p) {
  return DequantizeValue(QuantizeValue(x, p), p);
}

}  // namespace mixq
