// Copyright 2026 MixQ-GNN Authors
// Range observers for quantization-aware training. An observer watches the
// tensors flowing through a quantizer during training and yields the [lo, hi]
// range from which QuantParams are derived.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quant/quant_params.h"

namespace mixq {

/// Observer kinds supported by FakeQuantizer.
enum class ObserverKind {
  kMinMax,      ///< running min/max over everything seen
  kEma,         ///< exponential moving average of per-batch min/max
  kPercentile,  ///< per-batch percentile clipping (Degree-Quant's choice)
};

/// Watches value ranges during training. Not thread-safe (one per quantizer).
class RangeObserver {
 public:
  explicit RangeObserver(ObserverKind kind, float ema_momentum = 0.9f,
                         float percentile = 99.9f)
      : kind_(kind), ema_momentum_(ema_momentum), percentile_(percentile) {}

  /// Folds one batch of values into the running range estimate.
  void Observe(const std::vector<float>& values);

  /// Current range estimate. Valid after at least one Observe().
  float lo() const { return lo_; }
  float hi() const { return hi_; }
  bool initialized() const { return initialized_; }

  /// Derives QuantParams at the requested width from the current range.
  QuantParams MakeParams(int bits, bool symmetric) const {
    if (!initialized_) return ParamsFromRange(-1.0f, 1.0f, bits, symmetric);
    return ParamsFromRange(lo_, hi_, bits, symmetric);
  }

  ObserverKind kind() const { return kind_; }

 private:
  ObserverKind kind_;
  float ema_momentum_;
  float percentile_;
  float lo_ = 0.0f;
  float hi_ = 0.0f;
  bool initialized_ = false;
};

}  // namespace mixq
