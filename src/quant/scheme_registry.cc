// Copyright 2026 MixQ-GNN Authors
#include "quant/scheme_registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mixq {

namespace {

std::string FormatDouble(double v) {
  // %.17g round-trips every double exactly; %g would truncate to 6
  // significant digits and silently change e.g. a lambda on the way
  // through the string map.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits "a,b,c" into trimmed non-empty pieces.
std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, ',')) {
    size_t b = piece.find_first_not_of(" \t");
    size_t e = piece.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out.push_back(piece.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace

SchemeParams& SchemeParams::SetInt(const std::string& key, int64_t value) {
  return Set(key, std::to_string(value));
}

SchemeParams& SchemeParams::SetDouble(const std::string& key, double value) {
  return Set(key, FormatDouble(value));
}

SchemeParams& SchemeParams::SetIntList(const std::string& key,
                                       const std::vector<int>& values) {
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += std::to_string(values[i]);
  }
  return Set(key, std::move(joined));
}

SchemeParams& SchemeParams::SetBitsMap(const std::string& key,
                                       const std::map<std::string, int>& bits) {
  std::string joined;
  for (const auto& [id, b] : bits) {
    if (!joined.empty()) joined += ',';
    joined += id + '=' + std::to_string(b);
  }
  return Set(key, std::move(joined));
}

Result<int64_t> SchemeParams::GetInt(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("missing parameter '" + key + "'");
  try {
    size_t pos = 0;
    int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("parameter '" + key + "'='" + it->second +
                                   "' is not an integer");
  }
}

Result<double> SchemeParams::GetDouble(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("missing parameter '" + key + "'");
  try {
    size_t pos = 0;
    double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("parameter '" + key + "'='" + it->second +
                                   "' is not a number");
  }
}

Result<std::vector<int>> SchemeParams::GetIntList(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("missing parameter '" + key + "'");
  std::vector<int> out;
  for (const std::string& piece : SplitCsv(it->second)) {
    try {
      out.push_back(std::stoi(piece));
    } catch (const std::exception&) {
      return Status::InvalidArgument("parameter '" + key + "': '" + piece +
                                     "' is not an integer");
    }
  }
  return out;
}

Result<std::map<std::string, int>> SchemeParams::GetBitsMap(
    const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("missing parameter '" + key + "'");
  std::map<std::string, int> out;
  for (const std::string& piece : SplitCsv(it->second)) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("parameter '" + key + "': entry '" + piece +
                                     "' is not of the form id=bits");
    }
    try {
      out[piece.substr(0, eq)] = std::stoi(piece.substr(eq + 1));
    } catch (const std::exception&) {
      return Status::InvalidArgument("parameter '" + key + "': entry '" + piece +
                                     "' has a non-integer bit-width");
    }
  }
  return out;
}

int64_t SchemeParams::GetIntOr(const std::string& key, int64_t fallback) const {
  Result<int64_t> r = GetInt(key);
  return r.ok() ? r.ValueOrDie() : fallback;
}

double SchemeParams::GetDoubleOr(const std::string& key, double fallback) const {
  Result<double> r = GetDouble(key);
  return r.ok() ? r.ValueOrDie() : fallback;
}

std::vector<int> SchemeParams::GetIntListOr(const std::string& key,
                                            std::vector<int> fallback) const {
  Result<std::vector<int>> r = GetIntList(key);
  return r.ok() ? r.MoveValueOrDie() : std::move(fallback);
}

std::string SchemeParams::ToString() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ',';
    out += k + '=' + v;
  }
  return out;
}

Result<QuantSchemePtr> SchemeFamily::BuildSearch(const SchemeParams& params,
                                                 const SchemeBuildContext& ctx) const {
  (void)params;
  (void)ctx;
  return Status::NotImplemented("scheme family does not define a search phase");
}

// ---------------------------------------------------------------------------
// SchemeRef builders
// ---------------------------------------------------------------------------

SchemeRef SchemeRef::Qat(int bits) {
  SchemeRef r("qat");
  r.params.SetInt("bits", bits);
  return r;
}

SchemeRef SchemeRef::Dq(int bits) {
  SchemeRef r("dq");
  r.params.SetInt("bits", bits);
  return r;
}

SchemeRef SchemeRef::A2q(double memory_lambda) {
  SchemeRef r("a2q");
  r.params.SetDouble("memory_lambda", memory_lambda);
  return r;
}

SchemeRef SchemeRef::MixQ(double lambda, const std::vector<int>& bit_options) {
  SchemeRef r("mixq");
  r.params.SetDouble("lambda", lambda);
  r.params.SetIntList("bit_options", bit_options);
  return r;
}

SchemeRef SchemeRef::MixQDq(double lambda, const std::vector<int>& bit_options) {
  SchemeRef r = MixQ(lambda, bit_options);
  r.name = "mixq_dq";
  return r;
}

SchemeRef SchemeRef::Fixed(const std::map<std::string, int>& bits) {
  SchemeRef r("fixed");
  r.params.SetBitsMap("fixed_bits", bits);
  return r;
}

SchemeRef SchemeRef::Random(const std::vector<int>& bit_options) {
  SchemeRef r("random");
  r.params.SetIntList("bit_options", bit_options);
  return r;
}

SchemeRef SchemeRef::RandomInt8(const std::vector<int>& bit_options) {
  SchemeRef r("random_int8");
  r.params.SetIntList("bit_options", bit_options);
  return r;
}

// ---------------------------------------------------------------------------
// SchemeRegistry
// ---------------------------------------------------------------------------

SchemeRegistry& SchemeRegistry::Global() {
  static SchemeRegistry* registry = new SchemeRegistry();
  return *registry;
}

Status SchemeRegistry::Register(const std::string& name, SchemeFamilyPtr family) {
  if (name.empty()) return Status::InvalidArgument("scheme name must be non-empty");
  if (family == nullptr) {
    return Status::InvalidArgument("scheme family for '" + name + "' is null");
  }
  MutexLock lock(&mu_);
  if (!families_.emplace(name, std::move(family)).second) {
    return Status::InvalidArgument("scheme '" + name + "' is already registered");
  }
  return Status::OK();
}

Status SchemeRegistry::Unregister(const std::string& name) {
  MutexLock lock(&mu_);
  if (families_.erase(name) == 0) {
    return Status::NotFound("scheme '" + name + "' is not registered");
  }
  return Status::OK();
}

bool SchemeRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return families_.count(name) != 0;
}

Result<SchemeFamilyPtr> SchemeRegistry::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    std::string known;
    for (const auto& [n, f] : families_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown scheme '" + name + "' (registered: " + known +
                            ")");
  }
  return it->second;
}

std::vector<std::string> SchemeRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [n, f] : families_) names.push_back(n);
  return names;
}

Result<QuantSchemePtr> SchemeRegistry::Create(const SchemeRef& ref,
                                              const SchemeBuildContext& ctx) const {
  Result<SchemeFamilyPtr> family = Find(ref.name);
  if (!family.ok()) return family.status();
  MIXQ_RETURN_NOT_OK(family.ValueOrDie()->ValidateParams(ref.params));
  return family.ValueOrDie()->Build(ref.params, ctx);
}

std::string SchemeRegistry::Label(const SchemeRef& ref) const {
  Result<SchemeFamilyPtr> family = Find(ref.name);
  if (!family.ok()) return "?" + ref.name;
  return family.ValueOrDie()->Label(ref.params);
}

Status ValidateOptionalDoubleParams(const SchemeParams& params,
                                    std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    if (!params.Has(key)) continue;
    Result<double> value = params.GetDouble(key);
    if (!value.ok()) return value.status();
  }
  return Status::OK();
}

Status ValidateOptionalIntParams(const SchemeParams& params,
                                 std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    if (!params.Has(key)) continue;
    Result<int64_t> value = params.GetInt(key);
    if (!value.ok()) return value.status();
  }
  return Status::OK();
}

namespace internal {

SchemeRegistration::SchemeRegistration(const char* name, SchemeFamilyPtr family) {
  Status st = SchemeRegistry::Global().Register(name, std::move(family));
  MIXQ_CHECK(st.ok()) << st.ToString();
}

}  // namespace internal

}  // namespace mixq
