// Copyright 2026 MixQ-GNN Authors
// Built-in SchemeRegistry families for the fixed-assignment schemes:
// "fp32", "qat", "dq", "a2q", "fixed", "random", "random_int8".
//
// The search-based families ("mixq", "mixq_dq") register themselves from
// src/core/mixq_family.cc — the relaxed search scheme lives in core, and the
// split demonstrates the registry's point: each strategy registers from its
// own translation unit.
//
// Recognized parameters (all optional unless noted):
//   qat / dq:     bits (default 8)
//   dq:           p_min, p_max   — protection-probability range
//   a2q:          memory_lambda, initial_bits, weight_bits
//   fixed:        fixed_bits (required; "id=bits,…"), default_bits
//   random*:      bit_options (default "2,4,8")
#include <cstdio>

#include "quant/a2q.h"
#include "quant/scheme.h"
#include "quant/scheme_registry.h"

namespace mixq {
namespace {

std::string IntLabel(const char* prefix, int bits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-INT%d", prefix, bits);
  return buf;
}

Status ValidateBitsParam(const SchemeParams& params) {
  if (!params.Has("bits")) return Status::OK();
  Result<int64_t> bits = params.GetInt("bits");
  if (!bits.ok()) return bits.status();
  if (bits.ValueOrDie() < 1 || bits.ValueOrDie() > 32) {
    return Status::InvalidArgument("bits=" + std::to_string(bits.ValueOrDie()) +
                                   " out of range [1, 32]");
  }
  return Status::OK();
}

Status ValidateBitOptionsParam(const SchemeParams& params) {
  if (!params.Has("bit_options")) return Status::OK();
  Result<std::vector<int>> options = params.GetIntList("bit_options");
  if (!options.ok()) return options.status();
  if (options.ValueOrDie().empty()) {
    return Status::InvalidArgument("bit_options must be non-empty");
  }
  for (int b : options.ValueOrDie()) {
    if (b < 1 || b > 32) {
      return Status::InvalidArgument("bit_options entry " + std::to_string(b) +
                                     " out of range [1, 32]");
    }
  }
  return Status::OK();
}

// ---- fp32 ------------------------------------------------------------------

class Fp32Family : public SchemeFamily {
 public:
  Result<QuantSchemePtr> Build(const SchemeParams&,
                               const SchemeBuildContext&) const override {
    return QuantSchemePtr(std::make_shared<NoQuantScheme>());
  }
  std::string Label(const SchemeParams&) const override { return "FP32"; }
};

// ---- qat -------------------------------------------------------------------

class QatFamily : public SchemeFamily {
 public:
  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext&) const override {
    return QuantSchemePtr(std::make_shared<UniformQatScheme>(
        static_cast<int>(params.GetIntOr("bits", 8))));
  }
  Status ValidateParams(const SchemeParams& params) const override {
    return ValidateBitsParam(params);
  }
  std::string Label(const SchemeParams& params) const override {
    return IntLabel("QAT", static_cast<int>(params.GetIntOr("bits", 8)));
  }
};

// ---- dq --------------------------------------------------------------------

class DqFamily : public SchemeFamily {
 public:
  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext& ctx) const override {
    if (ctx.in_degrees.empty()) {
      return Status::InvalidArgument(
          "dq requires SchemeBuildContext::in_degrees (protection masking)");
    }
    QatOptions opts;
    opts.activation_observer = ObserverKind::kPercentile;
    opts.degree_protect = true;
    opts.protect_probs = MakeDegreeProtectionProbs(
        ctx.in_degrees, params.GetDoubleOr("p_min", 0.0),
        params.GetDoubleOr("p_max", 0.2));
    opts.mask_seed = ctx.seed;
    return QuantSchemePtr(std::make_shared<UniformQatScheme>(
        static_cast<int>(params.GetIntOr("bits", 8)), opts));
  }
  Status ValidateParams(const SchemeParams& params) const override {
    MIXQ_RETURN_NOT_OK(ValidateBitsParam(params));
    return ValidateOptionalDoubleParams(params, {"p_min", "p_max"});
  }
  std::string Label(const SchemeParams& params) const override {
    return IntLabel("DQ", static_cast<int>(params.GetIntOr("bits", 8)));
  }
};

// ---- a2q -------------------------------------------------------------------

class A2qFamily : public SchemeFamily {
 public:
  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext& ctx) const override {
    if (ctx.num_nodes <= 0) {
      return Status::InvalidArgument(
          "a2q requires SchemeBuildContext::num_nodes > 0 (per-node parameters)");
    }
    A2qOptions opts;
    opts.memory_lambda = params.GetDoubleOr("memory_lambda", 5e-4);
    opts.initial_bits = params.GetDoubleOr("initial_bits", 4.0);
    opts.weight_bits = static_cast<int>(params.GetIntOr("weight_bits", 8));
    opts.seed = ctx.seed;
    return QuantSchemePtr(std::make_shared<A2qScheme>(ctx.num_nodes, opts));
  }
  Status ValidateParams(const SchemeParams& params) const override {
    MIXQ_RETURN_NOT_OK(
        ValidateOptionalDoubleParams(params, {"memory_lambda", "initial_bits"}));
    return ValidateOptionalIntParams(params, {"weight_bits"});
  }
  std::string Label(const SchemeParams&) const override { return "A2Q"; }
};

// ---- fixed -----------------------------------------------------------------

class FixedFamily : public SchemeFamily {
 public:
  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext&) const override {
    Result<std::map<std::string, int>> bits = params.GetBitsMap("fixed_bits");
    if (!bits.ok()) return bits.status();
    return QuantSchemePtr(std::make_shared<PerComponentScheme>(
        bits.MoveValueOrDie(),
        static_cast<int>(params.GetIntOr("default_bits", 8))));
  }
  Status ValidateParams(const SchemeParams& params) const override {
    Result<std::map<std::string, int>> bits = params.GetBitsMap("fixed_bits");
    if (!bits.ok()) return bits.status();
    for (const auto& [id, b] : bits.ValueOrDie()) {
      if (b < 1 || b > 32) {
        return Status::InvalidArgument("fixed_bits['" + id + "']=" +
                                       std::to_string(b) + " out of range [1, 32]");
      }
    }
    return ValidateOptionalIntParams(params, {"default_bits"});
  }
  std::string Label(const SchemeParams&) const override { return "Fixed"; }
};

// ---- random / random_int8 --------------------------------------------------

// Random per-component assignment (Table 10's ablation baseline). The INT8
// variant pins the prediction output (last component) to 8 bits.
class RandomFamily : public SchemeFamily {
 public:
  explicit RandomFamily(bool force_output_int8) : force_output_int8_(force_output_int8) {}

  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext& ctx) const override {
    if (ctx.component_ids.empty()) {
      return Status::InvalidArgument(
          "random assignment requires SchemeBuildContext::component_ids");
    }
    std::vector<int> options = params.GetIntListOr("bit_options", {2, 4, 8});
    Rng rng(ctx.seed * 7919 + 13);
    std::map<std::string, int> bits;
    for (const auto& id : ctx.component_ids) {
      bits[id] = options[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
    }
    if (force_output_int8_) bits[ctx.component_ids.back()] = 8;
    return QuantSchemePtr(
        std::make_shared<PerComponentScheme>(std::move(bits), /*default=*/8));
  }
  Status ValidateParams(const SchemeParams& params) const override {
    return ValidateBitOptionsParam(params);
  }
  std::string Label(const SchemeParams&) const override {
    return force_output_int8_ ? "Random+INT8" : "Random";
  }

 private:
  bool force_output_int8_;
};

MIXQ_REGISTER_SCHEME("fp32", std::make_shared<const Fp32Family>());
MIXQ_REGISTER_SCHEME("qat", std::make_shared<const QatFamily>());
MIXQ_REGISTER_SCHEME("dq", std::make_shared<const DqFamily>());
MIXQ_REGISTER_SCHEME("a2q", std::make_shared<const A2qFamily>());
MIXQ_REGISTER_SCHEME("fixed", std::make_shared<const FixedFamily>());
MIXQ_REGISTER_SCHEME("random", std::make_shared<const RandomFamily>(false));
MIXQ_REGISTER_SCHEME("random_int8", std::make_shared<const RandomFamily>(true));

}  // namespace
}  // namespace mixq
