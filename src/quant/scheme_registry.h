// Copyright 2026 MixQ-GNN Authors
// Open, string-keyed registry of quantization schemes — the first layer of
// the public API (registry → Experiment facade → engine).
//
// A *scheme family* ("fp32", "qat", "dq", "a2q", "mixq", …) is a named
// factory that builds a concrete QuantScheme from a flat parameter map plus
// task context (component ids, degrees, node count). Families register
// themselves from their own translation unit via MIXQ_REGISTER_SCHEME, so
// adding a quantization strategy never touches core switch statements —
// the closed SchemeSpec::Kind enum this replaces survives only as a thin
// compatibility shim in core/pipelines.h.
//
// Families whose bit assignment is *searched* rather than fixed (MixQ's
// Algorithm 1) report RequiresSearch() and provide a relaxed search scheme
// via BuildSearch(); the Experiment facade runs the search phase, stores the
// selected widths in SchemeBuildContext::selected_bits, and calls Build()
// for the final training scheme.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "quant/scheme.h"

namespace mixq {

/// Flat string→string parameter map with typed accessors. Keeping values as
/// strings makes every scheme configurable from CLI flags / config files and
/// keeps the registry interface independent of any one family's knobs.
///
/// Encodings: integer lists are comma-separated ("2,4,8"); per-component bit
/// maps are comma-separated `id=bits` pairs ("gcn0/weight=4,gcn1/agg=8").
class SchemeParams {
 public:
  SchemeParams() = default;

  SchemeParams& Set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
    return *this;
  }
  SchemeParams& SetInt(const std::string& key, int64_t value);
  SchemeParams& SetDouble(const std::string& key, double value);
  SchemeParams& SetIntList(const std::string& key, const std::vector<int>& values);
  SchemeParams& SetBitsMap(const std::string& key,
                           const std::map<std::string, int>& bits);

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  /// Typed getters: kNotFound when the key is absent, kInvalidArgument when
  /// the stored string does not parse.
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::vector<int>> GetIntList(const std::string& key) const;
  Result<std::map<std::string, int>> GetBitsMap(const std::string& key) const;

  /// Fallback variants for optional keys; a present-but-unparsable value
  /// still surfaces as an error through the Result-returning getters, which
  /// ValidateParams implementations should prefer.
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  std::vector<int> GetIntListOr(const std::string& key,
                                std::vector<int> fallback) const;

  const std::map<std::string, std::string>& raw() const { return values_; }

  /// "k1=v1,k2=v2" — for labels and error messages.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Everything a factory may need from the task to instantiate a scheme.
/// Populated by the Experiment facade; hand-rolled callers fill what their
/// family uses (the built-ins degrade gracefully on missing fields).
struct SchemeBuildContext {
  /// Quantizable component ids of the model, in execution order (random
  /// assignment draws from these).
  std::vector<std::string> component_ids;
  /// In-degrees of the (possibly sampled) graph — Degree-Quant protection.
  std::vector<int64_t> in_degrees;
  /// Node count of the graph/batch — sizes A2Q's per-node parameter vectors.
  int64_t num_nodes = 0;
  /// Base seed for stochastic construction (random assignment, DQ masks).
  uint64_t seed = 1;
  /// Search-phase output: the selected per-component widths handed to
  /// Build() of a RequiresSearch() family.
  std::map<std::string, int> selected_bits;
};

/// A named, registrable quantization strategy: validates its parameters and
/// constructs QuantScheme instances.
class SchemeFamily {
 public:
  virtual ~SchemeFamily() = default;

  /// Builds the concrete (training/eval) scheme. For RequiresSearch()
  /// families this is the phase-2 scheme over ctx.selected_bits.
  virtual Result<QuantSchemePtr> Build(const SchemeParams& params,
                                       const SchemeBuildContext& ctx) const = 0;

  /// True when the family selects bit-widths via a differentiable search
  /// phase before the final training (MixQ's Algorithm 1).
  virtual bool RequiresSearch() const { return false; }

  /// Phase-1 relaxed scheme for search families; the default refuses.
  virtual Result<QuantSchemePtr> BuildSearch(const SchemeParams& params,
                                             const SchemeBuildContext& ctx) const;

  /// Parameter sanity check, run up front by ExperimentSpec::Validate() so
  /// misconfiguration fails before any training starts.
  virtual Status ValidateParams(const SchemeParams& params) const {
    (void)params;
    return Status::OK();
  }

  /// Human-readable label for result tables ("MixQ(l=0.1)", "DQ-INT4", …).
  virtual std::string Label(const SchemeParams& params) const = 0;
};

using SchemeFamilyPtr = std::shared_ptr<const SchemeFamily>;

/// Reference to a registered family plus its parameters — the open
/// replacement for the closed SchemeSpec struct. The static builders cover
/// the paper's schemes; anything registered by name works the same way.
struct SchemeRef {
  std::string name = "fp32";
  SchemeParams params;

  SchemeRef() = default;
  explicit SchemeRef(std::string n, SchemeParams p = {})
      : name(std::move(n)), params(std::move(p)) {}

  static SchemeRef Fp32() { return SchemeRef("fp32"); }
  static SchemeRef Qat(int bits);
  static SchemeRef Dq(int bits);
  static SchemeRef A2q(double memory_lambda = 5e-4);
  static SchemeRef MixQ(double lambda, const std::vector<int>& bit_options = {2, 4, 8});
  static SchemeRef MixQDq(double lambda, const std::vector<int>& bit_options = {2, 4, 8});
  static SchemeRef Fixed(const std::map<std::string, int>& bits);
  static SchemeRef Random(const std::vector<int>& bit_options = {2, 4, 8});
  static SchemeRef RandomInt8(const std::vector<int>& bit_options = {2, 4, 8});
};

/// Thread-safe name → SchemeFamily map. Process-wide singleton; families
/// register during static initialization (MIXQ_REGISTER_SCHEME) or at
/// runtime (tests, plugins).
class SchemeRegistry {
 public:
  static SchemeRegistry& Global();

  /// Registers a family under `name`; kInvalidArgument on duplicates.
  Status Register(const std::string& name, SchemeFamilyPtr family);

  /// Removes a family (tests); kNotFound when absent.
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;

  /// kNotFound (listing the known names) when `name` is not registered.
  Result<SchemeFamilyPtr> Find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// One-step construction: Find + ValidateParams + Build.
  Result<QuantSchemePtr> Create(const SchemeRef& ref,
                                const SchemeBuildContext& ctx) const;

  /// Label for a reference; "?name" when unregistered.
  std::string Label(const SchemeRef& ref) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, SchemeFamilyPtr> families_ MIXQ_GUARDED_BY(mu_);
};

/// Convenience adapter: a family from plain functions, for schemes that do
/// not need search or custom validation.
class LambdaSchemeFamily : public SchemeFamily {
 public:
  using BuildFn =
      std::function<Result<QuantSchemePtr>(const SchemeParams&, const SchemeBuildContext&)>;
  using LabelFn = std::function<std::string(const SchemeParams&)>;
  using ValidateFn = std::function<Status(const SchemeParams&)>;

  LambdaSchemeFamily(BuildFn build, LabelFn label, ValidateFn validate = nullptr)
      : build_(std::move(build)), label_(std::move(label)),
        validate_(std::move(validate)) {}

  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext& ctx) const override {
    return build_(params, ctx);
  }
  std::string Label(const SchemeParams& params) const override {
    return label_(params);
  }
  Status ValidateParams(const SchemeParams& params) const override {
    return validate_ ? validate_(params) : Status::OK();
  }

 private:
  BuildFn build_;
  LabelFn label_;
  ValidateFn validate_;
};

/// ValidateParams helpers: every *present* key among `keys` must parse as
/// the given type; absent keys pass (the parameters are optional). Keeps a
/// typo'd optional value from silently falling back to its default.
Status ValidateOptionalDoubleParams(const SchemeParams& params,
                                    std::initializer_list<const char*> keys);
Status ValidateOptionalIntParams(const SchemeParams& params,
                                 std::initializer_list<const char*> keys);

namespace internal {
/// Static-initializer hook used by MIXQ_REGISTER_SCHEME.
struct SchemeRegistration {
  SchemeRegistration(const char* name, SchemeFamilyPtr family);
};
}  // namespace internal

/// Registers `family_expr` (a SchemeFamilyPtr expression) under `name` at
/// program start, from whatever translation unit the scheme lives in:
///   MIXQ_REGISTER_SCHEME("mixq", std::make_shared<const MixQFamily>());
#define MIXQ_SCHEME_CONCAT_INNER(a, b) a##b
#define MIXQ_SCHEME_CONCAT(a, b) MIXQ_SCHEME_CONCAT_INNER(a, b)
#define MIXQ_REGISTER_SCHEME(name, family_expr)                               \
  static const ::mixq::internal::SchemeRegistration MIXQ_SCHEME_CONCAT(       \
      mixq_scheme_registration_, __COUNTER__)(name, family_expr)

}  // namespace mixq
