// Copyright 2026 MixQ-GNN Authors
// Compressed Sparse Row matrix. The adjacency operator of every GNN layer in
// this repo is a CsrMatrix; SpMM against node-feature tensors is the dominant
// message-passing kernel (Eq. (2) of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "quant/requant.h"

namespace mixq {

/// A single COO entry used when assembling matrices.
struct CooEntry {
  int64_t row = 0;
  int64_t col = 0;
  float value = 1.0f;
};

/// Immutable CSR sparse matrix (FP32 values).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO entries. Duplicate (row, col) entries are summed.
  static CsrMatrix FromCoo(int64_t rows, int64_t cols, std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  /// Adopts pre-built CSR arrays, e.g. read back from a graph bundle
  /// (engine/model_bundle.h). Unlike FromCoo this validates instead of
  /// CHECK-crashing — the arrays may come from an untrusted file:
  /// kInvalidArgument unless row_ptr has rows+1 monotone entries starting at
  /// 0, col_idx/values both have row_ptr.back() entries, and every row's
  /// columns are strictly ascending and within [0, cols) (the entry-order
  /// invariant FromCoo establishes and the SpMM kernels' bitwise contracts
  /// rely on). Values are adopted bit-for-bit.
  static Result<CsrMatrix> FromParts(int64_t rows, int64_t cols,
                                     std::vector<int64_t> row_ptr,
                                     std::vector<int64_t> col_idx,
                                     std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Number of stored entries in row r (the in-neighbourhood size when this
  /// matrix maps messages from columns to rows).
  int64_t RowNnz(int64_t r) const {
    MIXQ_CHECK_GE(r, 0);
    MIXQ_CHECK_LT(r, rows_);
    return row_ptr_[static_cast<size_t>(r + 1)] - row_ptr_[static_cast<size_t>(r)];
  }

  /// Materialized transpose (CSR of A^T). Used for SpMM backward.
  CsrMatrix Transpose() const;

  /// Row-induced slice for receptive-field-pruned forwards: a CSR whose row
  /// i is this matrix's row `rows[i]`, entries kept in their original
  /// (ascending-column) order so per-row SpMM accumulation — and hence the
  /// float result — is bitwise identical to the full matrix. When
  /// `col_remap` is non-null, every stored column id c is rewritten to
  /// col_remap[c] (the old→new frontier position map; each referenced
  /// column must have a valid entry) and the slice has `new_cols` columns;
  /// when null, column ids stay global and `new_cols` is ignored.
  CsrMatrix InducedRows(const std::vector<int64_t>& rows,
                        const int64_t* col_remap, int64_t new_cols) const;

  /// Returns a copy with every stored value replaced by `value`.
  CsrMatrix WithConstantValues(float value) const;

  /// Dense row-major materialization (tests and small examples only).
  std::vector<float> ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int64_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
};

/// GCN renormalization: Â = D^{-1/2} (I + A) D^{-1/2}, with
/// d_v = 1 + Σ_u w_vu (paper §2). `adjacency` must be square.
CsrMatrix GcnNormalize(const CsrMatrix& adjacency);

/// Row-normalization: D^{-1} A (mean aggregator, used by GraphSAGE).
CsrMatrix RowNormalize(const CsrMatrix& adjacency);

/// Raw SpMM kernel: Y[n,f] (+)= A[n,m] * X[m,f], parallel over rows.
void SpmmRaw(const CsrMatrix& a, const float* x, int64_t f, float* y,
             bool accumulate = false);

/// Integer SpMM with int64 accumulation: quantized adjacency values `a_q`
/// (aligned with a.col_idx()) times quantized features. Implements the
/// integer product Q_a(A)·Q_x(X) inside Theorem 1.
void SpmmInt(const CsrMatrix& a, const int32_t* a_q, const int32_t* x, int64_t f,
             int64_t* y);

/// Int8-specialized integer SpMM with int32 accumulation: the serving-path
/// variant of SpmmInt for symmetric codes of width <= 8 bits. Safe against
/// overflow for rows with < 2^31 / 127^2 (~133k) stored entries. The row
/// loop is cache-blocked over feature-column tiles (kRequantBlock wide):
/// gathered X row slices and the Y slice stay inside one L1-sized window
/// per tile. Blocking never touches per-element k-order, so results are
/// bitwise identical to the unblocked loop.
void SpmmInt8(const CsrMatrix& a, const int8_t* a_q, const int8_t* x, int64_t f,
              int32_t* y);

/// Fused int8 SpMM + requantization: accumulates each feature-column tile of
/// a row into a stack int32 block and requantizes it straight to int8 codes
/// through `ep` (ep.bias is ignored; adjacency requant has no bias). The
/// int32 accumulators never touch a scratch matrix. Codes are bitwise
/// identical to SpmmInt8 + a separate requant pass: accumulators are exact
/// integers and the epilogue applies the same double-precision arithmetic.
void SpmmInt8Requant(const CsrMatrix& a, const int8_t* a_q, const int8_t* x,
                     int64_t f, const RequantEpilogue& ep, int8_t* y);

/// Pattern-level SpMM: Y[n,f] (+)= P·X where P shares `pattern`'s sparsity
/// but takes its numeric values from `values` (size nnz). Lets callers swap
/// values (e.g. fake-quantized adjacency mixtures) without rebuilding CSR.
void SpmmPattern(const CsrMatrix& pattern, const float* values, const float* x,
                 int64_t f, float* y, bool accumulate = false);

}  // namespace mixq
