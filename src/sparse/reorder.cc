// Copyright 2026 MixQ-GNN Authors
#include "sparse/reorder.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mixq {

std::vector<int64_t> DegreeSortOrder(const CsrMatrix& a) {
  const int64_t n = a.rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::stable_sort(order.begin(), order.end(), [&a](int64_t x, int64_t y) {
    return a.RowNnz(x) > a.RowNnz(y);
  });
  return order;
}

std::vector<int64_t> RcmOrder(const CsrMatrix& a) {
  MIXQ_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);
  // Seeds scanned in ascending-degree order so each component starts from a
  // peripheral (minimum-degree) node, the classic CM heuristic.
  std::vector<int64_t> seeds(static_cast<size_t>(n));
  std::iota(seeds.begin(), seeds.end(), int64_t{0});
  std::stable_sort(seeds.begin(), seeds.end(), [&a](int64_t x, int64_t y) {
    return a.RowNnz(x) < a.RowNnz(y);
  });
  std::vector<int64_t> neighbours;
  for (const int64_t seed : seeds) {
    if (visited[static_cast<size_t>(seed)]) continue;
    // BFS; `order` itself is the queue (head chases the tail).
    visited[static_cast<size_t>(seed)] = 1;
    size_t head = order.size();
    order.push_back(seed);
    while (head < order.size()) {
      const int64_t v = order[head++];
      neighbours.clear();
      for (int64_t k = a.row_ptr()[static_cast<size_t>(v)];
           k < a.row_ptr()[static_cast<size_t>(v + 1)]; ++k) {
        const int64_t c = a.col_idx()[static_cast<size_t>(k)];
        if (!visited[static_cast<size_t>(c)]) {
          visited[static_cast<size_t>(c)] = 1;
          neighbours.push_back(c);
        }
      }
      std::stable_sort(neighbours.begin(), neighbours.end(),
                       [&a](int64_t x, int64_t y) { return a.RowNnz(x) < a.RowNnz(y); });
      order.insert(order.end(), neighbours.begin(), neighbours.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

CsrMatrix PermuteSquare(const CsrMatrix& a, const std::vector<int64_t>& new_to_old) {
  MIXQ_CHECK_EQ(a.rows(), a.cols());
  const int64_t n = a.rows();
  MIXQ_CHECK_EQ(static_cast<int64_t>(new_to_old.size()), n);
  std::vector<int64_t> old_to_new(static_cast<size_t>(n), -1);
  for (int64_t p = 0; p < n; ++p) {
    const int64_t old = new_to_old[static_cast<size_t>(p)];
    MIXQ_CHECK_GE(old, 0);
    MIXQ_CHECK_LT(old, n);
    MIXQ_CHECK_EQ(old_to_new[static_cast<size_t>(old)], -1);  // must be a permutation
    old_to_new[static_cast<size_t>(old)] = p;
  }
  return a.InducedRows(new_to_old, old_to_new.data(), n);
}

}  // namespace mixq
