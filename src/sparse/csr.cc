// Copyright 2026 MixQ-GNN Authors
#include "sparse/csr.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/parallel.h"

namespace mixq {

CsrMatrix CsrMatrix::FromCoo(int64_t rows, int64_t cols, std::vector<CooEntry> entries) {
  MIXQ_CHECK_GE(rows, 0);
  MIXQ_CHECK_GE(cols, 0);
  for (const auto& e : entries) {
    MIXQ_CHECK_GE(e.row, 0);
    MIXQ_CHECK_LT(e.row, rows);
    MIXQ_CHECK_GE(e.col, 0);
    MIXQ_CHECK_LT(e.col, cols);
  }
  std::sort(entries.begin(), entries.end(), [](const CooEntry& a, const CooEntry& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows + 1), 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  size_t i = 0;
  while (i < entries.size()) {
    // Merge duplicates by summing.
    int64_t r = entries[i].row, c = entries[i].col;
    float v = entries[i].value;
    size_t j = i + 1;
    while (j < entries.size() && entries[j].row == r && entries[j].col == c) {
      v += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[static_cast<size_t>(r + 1)]++;
    i = j;
  }
  for (size_t r = 1; r < m.row_ptr_.size(); ++r) m.row_ptr_[r] += m.row_ptr_[r - 1];
  return m;
}

Result<CsrMatrix> CsrMatrix::FromParts(int64_t rows, int64_t cols,
                                       std::vector<int64_t> row_ptr,
                                       std::vector<int64_t> col_idx,
                                       std::vector<float> values) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("CSR dimensions must be non-negative");
  }
  // Unsigned arithmetic: `rows` is untrusted, and rows + 1 would be signed
  // overflow UB at INT64_MAX.
  if (static_cast<uint64_t>(row_ptr.size()) != static_cast<uint64_t>(rows) + 1) {
    return Status::InvalidArgument(
        "CSR row_ptr has " + std::to_string(row_ptr.size()) +
        " entries for " + std::to_string(rows) + " rows");
  }
  if (row_ptr.front() != 0) {
    return Status::InvalidArgument("CSR row_ptr must start at 0");
  }
  for (size_t r = 1; r < row_ptr.size(); ++r) {
    if (row_ptr[r] < row_ptr[r - 1]) {
      return Status::InvalidArgument("CSR row_ptr must be non-decreasing");
    }
  }
  const int64_t nnz = row_ptr.back();
  if (static_cast<int64_t>(col_idx.size()) != nnz ||
      static_cast<int64_t>(values.size()) != nnz) {
    return Status::InvalidArgument(
        "CSR arrays disagree: row_ptr implies " + std::to_string(nnz) +
        " entries, col_idx has " + std::to_string(col_idx.size()) +
        ", values has " + std::to_string(values.size()));
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = row_ptr[static_cast<size_t>(r)];
         k < row_ptr[static_cast<size_t>(r + 1)]; ++k) {
      const int64_t c = col_idx[static_cast<size_t>(k)];
      if (c < 0 || c >= cols) {
        return Status::InvalidArgument("CSR column " + std::to_string(c) +
                                       " out of range [0, " +
                                       std::to_string(cols) + ")");
      }
      if (k > row_ptr[static_cast<size_t>(r)] &&
          c <= col_idx[static_cast<size_t>(k - 1)]) {
        return Status::InvalidArgument(
            "CSR columns must be strictly ascending within row " +
            std::to_string(r));
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) entries.push_back({i, i, 1.0f});
  return FromCoo(n, n, std::move(entries));
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<CooEntry> entries;
  entries.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r + 1)]; ++k) {
      entries.push_back({col_idx_[static_cast<size_t>(k)], r,
                         values_[static_cast<size_t>(k)]});
    }
  }
  return FromCoo(cols_, rows_, std::move(entries));
}

CsrMatrix CsrMatrix::InducedRows(const std::vector<int64_t>& rows,
                                 const int64_t* col_remap, int64_t new_cols) const {
  CsrMatrix m;
  m.rows_ = static_cast<int64_t>(rows.size());
  m.cols_ = col_remap != nullptr ? new_cols : cols_;
  m.row_ptr_.assign(rows.size() + 1, 0);
  int64_t nnz = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    MIXQ_CHECK_GE(r, 0);
    MIXQ_CHECK_LT(r, rows_);
    nnz += row_ptr_[static_cast<size_t>(r + 1)] - row_ptr_[static_cast<size_t>(r)];
    m.row_ptr_[i + 1] = nnz;
  }
  m.col_idx_.resize(static_cast<size_t>(nnz));
  m.values_.resize(static_cast<size_t>(nnz));
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    const int64_t k0 = row_ptr_[static_cast<size_t>(r)];
    const int64_t count = row_ptr_[static_cast<size_t>(r + 1)] - k0;
    if (count == 0) continue;  // all-empty slices hold data() == nullptr
    int64_t* cols_out = m.col_idx_.data() + m.row_ptr_[i];
    std::memcpy(m.values_.data() + m.row_ptr_[i], values_.data() + k0,
                sizeof(float) * static_cast<size_t>(count));
    if (col_remap == nullptr) {
      std::memcpy(cols_out, col_idx_.data() + k0,
                  sizeof(int64_t) * static_cast<size_t>(count));
    } else {
      for (int64_t k = 0; k < count; ++k) {
        cols_out[k] = col_remap[col_idx_[static_cast<size_t>(k0 + k)]];
      }
    }
  }
  return m;
}

CsrMatrix CsrMatrix::WithConstantValues(float value) const {
  CsrMatrix copy = *this;
  std::fill(copy.values_.begin(), copy.values_.end(), value);
  return copy;
}

std::vector<float> CsrMatrix::ToDense() const {
  std::vector<float> dense(static_cast<size_t>(rows_ * cols_), 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r + 1)]; ++k) {
      dense[static_cast<size_t>(r * cols_ + col_idx_[static_cast<size_t>(k)])] +=
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

CsrMatrix GcnNormalize(const CsrMatrix& adjacency) {
  MIXQ_CHECK_EQ(adjacency.rows(), adjacency.cols());
  const int64_t n = adjacency.rows();
  // d_v = 1 + sum of row v of A (the +1 accounts for the added self loop).
  std::vector<double> degree(static_cast<size_t>(n), 1.0);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t k = adjacency.row_ptr()[static_cast<size_t>(r)];
         k < adjacency.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      degree[static_cast<size_t>(r)] += adjacency.values()[static_cast<size_t>(k)];
    }
  }
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(adjacency.nnz() + n));
  auto inv_sqrt = [&](int64_t v) {
    return static_cast<float>(1.0 / std::sqrt(std::max(degree[static_cast<size_t>(v)], 1e-12)));
  };
  for (int64_t r = 0; r < n; ++r) {
    entries.push_back({r, r, inv_sqrt(r) * inv_sqrt(r)});  // self loop of I + A
    for (int64_t k = adjacency.row_ptr()[static_cast<size_t>(r)];
         k < adjacency.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      const int64_t c = adjacency.col_idx()[static_cast<size_t>(k)];
      const float w = adjacency.values()[static_cast<size_t>(k)];
      entries.push_back({r, c, w * inv_sqrt(r) * inv_sqrt(c)});
    }
  }
  return CsrMatrix::FromCoo(n, n, std::move(entries));
}

CsrMatrix RowNormalize(const CsrMatrix& adjacency) {
  const int64_t n = adjacency.rows();
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(adjacency.nnz()));
  for (int64_t r = 0; r < n; ++r) {
    double deg = 0.0;
    for (int64_t k = adjacency.row_ptr()[static_cast<size_t>(r)];
         k < adjacency.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      deg += adjacency.values()[static_cast<size_t>(k)];
    }
    if (deg <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / deg);
    for (int64_t k = adjacency.row_ptr()[static_cast<size_t>(r)];
         k < adjacency.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      entries.push_back({r, adjacency.col_idx()[static_cast<size_t>(k)],
                         adjacency.values()[static_cast<size_t>(k)] * inv});
    }
  }
  return CsrMatrix::FromCoo(n, adjacency.cols(), std::move(entries));
}

namespace {

// Feature-column tile width of the SpMM row loops. For wide feature
// matrices, walking a row's whole neighbourhood one column tile at a time
// keeps the Y slice and every gathered X slice inside an L1-sized window
// (a 256-lane tile is 1 KiB of floats) instead of streaming full rows past
// each other. Per output element the k-order is untouched, so tiled results
// are bitwise identical to the unblocked loop; for f <= kSpmmColBlock the
// loop degenerates to the original single pass. Matches kRequantBlock so
// the fused int8 epilogue requantizes exactly one tile at a time.
constexpr int64_t kSpmmColBlock = kRequantBlock;

}  // namespace

void SpmmRaw(const CsrMatrix& a, const float* x, int64_t f, float* y, bool accumulate) {
  const int64_t n = a.rows();
  ParallelFor(
      n,
      [&a, x, f, y, accumulate](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t k0 = a.row_ptr()[static_cast<size_t>(r)];
          const int64_t k1 = a.row_ptr()[static_cast<size_t>(r + 1)];
          for (int64_t j0 = 0; j0 < f; j0 += kSpmmColBlock) {
            const int64_t jw = std::min<int64_t>(kSpmmColBlock, f - j0);
            float* yr = y + r * f + j0;
            if (!accumulate) std::memset(yr, 0, sizeof(float) * static_cast<size_t>(jw));
            for (int64_t k = k0; k < k1; ++k) {
              const float w = a.values()[static_cast<size_t>(k)];
              const float* xr = x + a.col_idx()[static_cast<size_t>(k)] * f + j0;
              for (int64_t j = 0; j < jw; ++j) yr[j] += w * xr[j];
            }
          }
        }
      },
      /*grain=*/64);
}

void SpmmPattern(const CsrMatrix& pattern, const float* values, const float* x,
                 int64_t f, float* y, bool accumulate) {
  const int64_t n = pattern.rows();
  ParallelFor(
      n,
      [&pattern, values, x, f, y, accumulate](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t k0 = pattern.row_ptr()[static_cast<size_t>(r)];
          const int64_t k1 = pattern.row_ptr()[static_cast<size_t>(r + 1)];
          for (int64_t j0 = 0; j0 < f; j0 += kSpmmColBlock) {
            const int64_t jw = std::min<int64_t>(kSpmmColBlock, f - j0);
            float* yr = y + r * f + j0;
            if (!accumulate) std::memset(yr, 0, sizeof(float) * static_cast<size_t>(jw));
            for (int64_t k = k0; k < k1; ++k) {
              const float w = values[k];
              if (w == 0.0f) continue;
              const float* xr = x + pattern.col_idx()[static_cast<size_t>(k)] * f + j0;
              for (int64_t j = 0; j < jw; ++j) yr[j] += w * xr[j];
            }
          }
        }
      },
      /*grain=*/64);
}

void SpmmInt(const CsrMatrix& a, const int32_t* a_q, const int32_t* x, int64_t f,
             int64_t* y) {
  const int64_t n = a.rows();
  ParallelFor(
      n,
      [&a, a_q, x, f, y](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          int64_t* yr = y + r * f;
          std::memset(yr, 0, sizeof(int64_t) * static_cast<size_t>(f));
          for (int64_t k = a.row_ptr()[static_cast<size_t>(r)];
               k < a.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
            const int64_t w = a_q[k];
            if (w == 0) continue;
            const int32_t* xr = x + a.col_idx()[static_cast<size_t>(k)] * f;
            for (int64_t j = 0; j < f; ++j) yr[j] += w * static_cast<int64_t>(xr[j]);
          }
        }
      },
      /*grain=*/64);
}

void SpmmInt8(const CsrMatrix& a, const int8_t* a_q, const int8_t* x, int64_t f,
              int32_t* y) {
  const int64_t n = a.rows();
  ParallelFor(
      n,
      [&a, a_q, x, f, y](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t k0 = a.row_ptr()[static_cast<size_t>(r)];
          const int64_t k1 = a.row_ptr()[static_cast<size_t>(r + 1)];
          for (int64_t j0 = 0; j0 < f; j0 += kSpmmColBlock) {
            const int64_t jw = std::min<int64_t>(kSpmmColBlock, f - j0);
            int32_t* yr = y + r * f + j0;
            std::memset(yr, 0, sizeof(int32_t) * static_cast<size_t>(jw));
            for (int64_t k = k0; k < k1; ++k) {
              const int32_t w = a_q[k];
              if (w == 0) continue;
              const int8_t* xr = x + a.col_idx()[static_cast<size_t>(k)] * f + j0;
              for (int64_t j = 0; j < jw; ++j) yr[j] += w * static_cast<int32_t>(xr[j]);
            }
          }
        }
      },
      /*grain=*/64);
}

void SpmmInt8Requant(const CsrMatrix& a, const int8_t* a_q, const int8_t* x,
                     int64_t f, const RequantEpilogue& ep, int8_t* y) {
  const int64_t n = a.rows();
  ParallelFor(
      n,
      [&a, a_q, x, f, &ep, y](int64_t r0, int64_t r1) {
        int32_t buf[kRequantBlock];
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t k0 = a.row_ptr()[static_cast<size_t>(r)];
          const int64_t k1 = a.row_ptr()[static_cast<size_t>(r + 1)];
          for (int64_t j0 = 0; j0 < f; j0 += kSpmmColBlock) {
            const int64_t jw = std::min<int64_t>(kSpmmColBlock, f - j0);
            std::memset(buf, 0, sizeof(int32_t) * static_cast<size_t>(jw));
            for (int64_t k = k0; k < k1; ++k) {
              const int32_t w = a_q[k];
              if (w == 0) continue;
              const int8_t* xr = x + a.col_idx()[static_cast<size_t>(k)] * f + j0;
              for (int64_t j = 0; j < jw; ++j) buf[j] += w * static_cast<int32_t>(xr[j]);
            }
            RequantBlock(buf, jw, ep.total, /*bias=*/nullptr, ep.emitter,
                         y + r * f + j0);
          }
        }
      },
      /*grain=*/64);
}

}  // namespace mixq
