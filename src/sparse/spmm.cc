// Copyright 2026 MixQ-GNN Authors
#include "sparse/spmm.h"

#include "tensor/op_utils.h"

namespace mixq {

void SparseOperator::BuildTranspose() const {
  if (transpose_) return;
  const CsrMatrix& m = matrix_;
  const int64_t rows = m.rows(), cols = m.cols(), nnz = m.nnz();
  // Counting-sort CSR transpose that also records the entry permutation.
  std::vector<int64_t> t_row_ptr(static_cast<size_t>(cols + 1), 0);
  for (int64_t k = 0; k < nnz; ++k) {
    t_row_ptr[static_cast<size_t>(m.col_idx()[static_cast<size_t>(k)] + 1)]++;
  }
  for (size_t i = 1; i < t_row_ptr.size(); ++i) t_row_ptr[i] += t_row_ptr[i - 1];
  std::vector<int64_t> t_col_idx(static_cast<size_t>(nnz));
  std::vector<float> t_values(static_cast<size_t>(nnz));
  auto perm = std::make_shared<std::vector<int64_t>>(static_cast<size_t>(nnz));
  std::vector<int64_t> cursor = t_row_ptr;
  auto entry_rows = std::make_shared<std::vector<int64_t>>(static_cast<size_t>(nnz));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = m.row_ptr()[static_cast<size_t>(r)];
         k < m.row_ptr()[static_cast<size_t>(r + 1)]; ++k) {
      (*entry_rows)[static_cast<size_t>(k)] = r;
      const int64_t c = m.col_idx()[static_cast<size_t>(k)];
      const int64_t pos = cursor[static_cast<size_t>(c)]++;
      t_col_idx[static_cast<size_t>(pos)] = r;
      t_values[static_cast<size_t>(pos)] = m.values()[static_cast<size_t>(k)];
      (*perm)[static_cast<size_t>(pos)] = k;
    }
  }
  // Assemble the transposed CSR via COO round-trip-free construction.
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(nnz));
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t k = t_row_ptr[static_cast<size_t>(c)];
         k < t_row_ptr[static_cast<size_t>(c + 1)]; ++k) {
      entries.push_back({c, t_col_idx[static_cast<size_t>(k)],
                         t_values[static_cast<size_t>(k)]});
    }
  }
  transpose_ = std::make_shared<CsrMatrix>(CsrMatrix::FromCoo(cols, rows, entries));
  // FromCoo sorts by (row, col); our fill order is already (col-major of A) =
  // (row-major of A^T) with ties in original row order, i.e. sorted — so the
  // permutation aligns with the rebuilt CSR as long as there are no duplicate
  // (row, col) pairs, which CsrMatrix::FromCoo would have merged upstream.
  MIXQ_CHECK_EQ(transpose_->nnz(), nnz) << "duplicate entries in sparse pattern";
  transpose_perm_ = std::move(perm);
  entry_rows_ = std::move(entry_rows);
}

const CsrMatrix& SparseOperator::transpose() const {
  BuildTranspose();
  return *transpose_;
}

const std::vector<int64_t>& SparseOperator::transpose_permutation() const {
  BuildTranspose();
  return *transpose_perm_;
}

const std::vector<int64_t>& SparseOperator::entry_rows() const {
  BuildTranspose();
  return *entry_rows_;
}

Tensor Spmm(const SparseOperatorPtr& a, const Tensor& x) {
  MIXQ_CHECK(a != nullptr);
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  MIXQ_CHECK_EQ(a->cols(), x.rows())
      << "spmm dims " << a->rows() << "x" << a->cols() << " * " << x.shape().ToString();
  const int64_t n = a->rows(), f = x.cols();
  std::vector<float> out(static_cast<size_t>(n * f));
  SpmmRaw(a->matrix(), x.data().data(), f, out.data());
  auto xi = x.impl_ptr();
  return internal::MakeOpResult(
      Shape(n, f), std::move(out), {x}, [a, xi, f](TensorImpl& self) {
        if (!internal::NeedsGrad(*xi)) return;
        xi->EnsureGrad();
        SpmmRaw(a->transpose(), self.grad.data(), f, xi->grad.data(),
                /*accumulate=*/true);
      });
}

Tensor SpmmValues(const SparseOperatorPtr& a, const Tensor& values, const Tensor& x) {
  MIXQ_CHECK(a != nullptr);
  MIXQ_CHECK_EQ(values.numel(), a->nnz());
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  MIXQ_CHECK_EQ(a->cols(), x.rows());
  const int64_t n = a->rows(), f = x.cols();
  std::vector<float> out(static_cast<size_t>(n * f));
  SpmmPattern(a->matrix(), values.data().data(), x.data().data(), f, out.data());
  auto vi = values.impl_ptr();
  auto xi = x.impl_ptr();
  return internal::MakeOpResult(
      Shape(n, f), std::move(out), {values, x}, [a, vi, xi, f](TensorImpl& self) {
        if (internal::NeedsGrad(*xi)) {
          xi->EnsureGrad();
          // dX += P(values)^T · dY: re-thread the current values through the
          // cached transpose permutation.
          const auto& perm = a->transpose_permutation();
          std::vector<float> vt(static_cast<size_t>(a->nnz()));
          for (size_t i = 0; i < vt.size(); ++i) {
            vt[i] = vi->data[static_cast<size_t>(perm[i])];
          }
          SpmmPattern(a->transpose(), vt.data(), self.grad.data(), f,
                      xi->grad.data(), /*accumulate=*/true);
        }
        if (internal::NeedsGrad(*vi)) {
          vi->EnsureGrad();
          const auto& rows = a->entry_rows();
          const auto& cols = a->matrix().col_idx();
          for (int64_t k = 0; k < a->nnz(); ++k) {
            const float* gy = self.grad.data() + rows[static_cast<size_t>(k)] * f;
            const float* xr = xi->data.data() + cols[static_cast<size_t>(k)] * f;
            double acc = 0.0;
            for (int64_t j = 0; j < f; ++j) acc += static_cast<double>(gy[j]) * xr[j];
            vi->grad[static_cast<size_t>(k)] += static_cast<float>(acc);
          }
        }
      });
}

}  // namespace mixq
