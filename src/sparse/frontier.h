// Copyright 2026 MixQ-GNN Authors
// Receptive-field frontier utilities for pruned serving. A point query on an
// L-layer message-passing network needs logit rows for a handful of nodes,
// and Eq. (2) makes the dependency structure explicit: row v of layer l
// depends only on the in-neighbourhood of v in the adjacency operator. These
// helpers compute that dependency set (frontier expansion) and give it O(1)
// per-entry lookup structure (marks / positions) so per-layer induced CSR
// slices can be built without touching the rest of the graph.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace mixq {

/// Reusable graph-sized scratch for frontier expansion and induced-CSR
/// construction: an epoch-stamped visited array (no O(N) clear per use) and
/// a global→local position map. One workspace serves one graph at a time;
/// it is NOT thread-safe — the serving engine keeps one per registered
/// graph, used only from the batcher's single dispatcher thread.
struct FrontierWorkspace {
  std::vector<uint32_t> mark;  ///< epoch stamps, size >= n
  std::vector<int64_t> pos;    ///< global id -> local frontier position
  uint32_t epoch = 0;

  /// Grows the arrays to cover ids in [0, n). Existing stamps stay valid.
  void EnsureSize(int64_t n) {
    if (static_cast<int64_t>(mark.size()) < n) {
      mark.resize(static_cast<size_t>(n), 0);
      pos.resize(static_cast<size_t>(n), 0);
    }
  }

  /// Starts a fresh visited generation; handles the (theoretical) epoch
  /// wraparound by clearing the stamps once every 2^32 uses.
  uint32_t NextEpoch() {
    if (++epoch == 0) {
      std::fill(mark.begin(), mark.end(), 0u);
      epoch = 1;
    }
    return epoch;
  }
};

/// The in-frontier of `rows` under `a`: the sorted, deduplicated set of
/// column ids stored in those rows (i.e. the nodes whose features the next
/// SpMM over `rows` reads), optionally united with `rows` itself
/// (`include_rows`, the closed neighbourhood GraphSAGE's root path needs).
/// `rows` must be sorted unique and in range; the workspace is grown as
/// needed. O(|rows| + frontier nnz + output log output).
std::vector<int64_t> ExpandFrontier(const CsrMatrix& a,
                                    const std::vector<int64_t>& rows,
                                    bool include_rows, FrontierWorkspace* ws);

/// Total stored entries across `rows` of `a` — the SpMM work an induced
/// slice over those rows would cost. `rows` must be in range.
int64_t RowsNnz(const CsrMatrix& a, const std::vector<int64_t>& rows);

/// Sorted union of two sorted unique id lists.
std::vector<int64_t> SortedUnion(const std::vector<int64_t>& a,
                                 const std::vector<int64_t>& b);

/// Positions of each element of `subset` within sorted unique `superset`
/// (two-pointer merge; every element of `subset` must be present).
std::vector<int64_t> SortedPositions(const std::vector<int64_t>& subset,
                                     const std::vector<int64_t>& superset);

}  // namespace mixq
