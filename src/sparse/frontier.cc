// Copyright 2026 MixQ-GNN Authors
#include "sparse/frontier.h"

#include <algorithm>

namespace mixq {

std::vector<int64_t> ExpandFrontier(const CsrMatrix& a,
                                    const std::vector<int64_t>& rows,
                                    bool include_rows, FrontierWorkspace* ws) {
  ws->EnsureSize(std::max(a.rows(), a.cols()));
  const uint32_t e = ws->NextEpoch();
  const std::vector<int64_t>& row_ptr = a.row_ptr();
  const std::vector<int64_t>& col_idx = a.col_idx();
  // Range-check up front: the marking loops below index ws->mark directly,
  // so a bad id must die here, not corrupt the workspace first.
  for (int64_t r : rows) {
    MIXQ_CHECK_GE(r, 0);
    MIXQ_CHECK_LT(r, a.rows());
  }
  std::vector<int64_t> out;
  out.reserve(rows.size());
  if (include_rows) {
    for (int64_t r : rows) {
      ws->mark[static_cast<size_t>(r)] = e;
      out.push_back(r);
    }
  }
  for (int64_t r : rows) {
    for (int64_t k = row_ptr[static_cast<size_t>(r)];
         k < row_ptr[static_cast<size_t>(r + 1)]; ++k) {
      const int64_t c = col_idx[static_cast<size_t>(k)];
      if (ws->mark[static_cast<size_t>(c)] != e) {
        ws->mark[static_cast<size_t>(c)] = e;
        out.push_back(c);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t RowsNnz(const CsrMatrix& a, const std::vector<int64_t>& rows) {
  const std::vector<int64_t>& row_ptr = a.row_ptr();
  int64_t total = 0;
  for (int64_t r : rows) {
    total += row_ptr[static_cast<size_t>(r + 1)] - row_ptr[static_cast<size_t>(r)];
  }
  return total;
}

std::vector<int64_t> SortedUnion(const std::vector<int64_t>& a,
                                 const std::vector<int64_t>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<int64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<int64_t> SortedPositions(const std::vector<int64_t>& subset,
                                     const std::vector<int64_t>& superset) {
  std::vector<int64_t> out;
  out.reserve(subset.size());
  size_t j = 0;
  for (int64_t id : subset) {
    while (j < superset.size() && superset[j] < id) ++j;
    MIXQ_CHECK(j < superset.size() && superset[j] == id)
        << "id " << id << " missing from superset";
    out.push_back(static_cast<int64_t>(j));
  }
  return out;
}

}  // namespace mixq
