// Copyright 2026 MixQ-GNN Authors
// Differentiable sparse-dense matrix multiplication (message passing).
#pragma once

#include <memory>

#include "sparse/csr.h"
#include "tensor/tensor.h"

namespace mixq {

/// An adjacency operator shared across layers/epochs. Caches the transpose
/// needed by backward so it is built once per graph, not once per call.
class SparseOperator {
 public:
  explicit SparseOperator(CsrMatrix matrix) : matrix_(std::move(matrix)) {}

  const CsrMatrix& matrix() const { return matrix_; }
  /// Lazily built and cached A^T.
  const CsrMatrix& transpose() const;

  /// Permutation mapping transposed-entry order to original entry order:
  /// transpose().values()[i] corresponds to matrix().values()[perm[i]].
  /// Used to re-thread external value vectors through the backward SpMM.
  const std::vector<int64_t>& transpose_permutation() const;

  /// row index of each stored entry k (inverse of row_ptr); cached.
  const std::vector<int64_t>& entry_rows() const;

  int64_t rows() const { return matrix_.rows(); }
  int64_t cols() const { return matrix_.cols(); }
  int64_t nnz() const { return matrix_.nnz(); }

 private:
  void BuildTranspose() const;

  CsrMatrix matrix_;
  mutable std::shared_ptr<CsrMatrix> transpose_;  // built on first use
  mutable std::shared_ptr<std::vector<int64_t>> transpose_perm_;
  mutable std::shared_ptr<std::vector<int64_t>> entry_rows_;
};

using SparseOperatorPtr = std::shared_ptr<SparseOperator>;

/// Wraps a CSR matrix in a shared operator.
inline SparseOperatorPtr MakeOperator(CsrMatrix m) {
  return std::make_shared<SparseOperator>(std::move(m));
}

/// Y = A · X with autograd through X (A is a constant graph operator;
/// dX += A^T · dY). This is the FP32 message-passing primitive of Eq. (2).
Tensor Spmm(const SparseOperatorPtr& a, const Tensor& x);

/// Y = P(values) · X where P shares `a`'s sparsity pattern and `values` is a
/// rank-1 differentiable tensor of size nnz. Gradients flow into both
/// `values` (d/dv_k = <dY[row_k,:], X[col_k,:]>) and `x`. This is how the
/// relaxed quantizer mixes fake-quantized adjacency candidates (Fig. 6)
/// while keeping α differentiable.
Tensor SpmmValues(const SparseOperatorPtr& a, const Tensor& values, const Tensor& x);

}  // namespace mixq
