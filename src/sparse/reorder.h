// Copyright 2026 MixQ-GNN Authors
// Locality-improving row orders for square adjacency operators. Serving
// registers a graph once and then runs thousands of SpMMs against it, so it
// pays to spend registration time putting topologically-close nodes at close
// row ids: gathered X rows then hit warm cache lines instead of striding the
// whole feature matrix.
//
// The bitwise contract: PermuteSquare keeps every row's stored entries in
// their ORIGINAL order (columns remapped old→new, NOT re-sorted). Per-row
// SpMM accumulation follows entry order, so row p of the permuted operator
// against row-permuted features is bitwise identical to row new_to_old[p]
// of the original — reordering is invisible in served values, only in where
// rows live. The permuted matrix therefore does not satisfy the
// ascending-column invariant of CsrMatrix::FromParts; it exists only inside
// a GraphContext and is never serialized.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.h"

namespace mixq {

/// Descending-degree order (ties broken by old id, so the order is
/// deterministic): hub rows and their mostly-hub neighbourhoods cluster at
/// the front. Returns new→old: order[p] is the old id living at new row p.
std::vector<int64_t> DegreeSortOrder(const CsrMatrix& a);

/// Reverse Cuthill-McKee order: per connected component, BFS from a
/// minimum-degree seed visiting neighbours in ascending-degree order, then
/// reverse the whole sequence. Clusters each neighbourhood into a narrow
/// band of row ids. Returns new→old. `a` must be square.
std::vector<int64_t> RcmOrder(const CsrMatrix& a);

/// Symmetric permutation P·A·P^T of a square operator: row p of the result
/// is row new_to_old[p] of `a` with every stored column c rewritten to its
/// new position, entries kept in original order (see the bitwise contract
/// above). `new_to_old` must be a permutation of [0, a.rows()).
CsrMatrix PermuteSquare(const CsrMatrix& a, const std::vector<int64_t>& new_to_old);

}  // namespace mixq
