// Copyright 2026 MixQ-GNN Authors
// Graph container shared by node- and graph-level tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.h"
#include "sparse/spmm.h"
#include "tensor/tensor.h"

namespace mixq {

/// A graph G = (V, E, X, W) following the paper's notation. Edges are stored
/// directed (undirected graphs store both directions); `value` is the edge
/// weight w_ij. Node features live in `features` [n, f].
struct Graph {
  int64_t num_nodes = 0;
  std::vector<CooEntry> edges;

  /// Node features X [num_nodes, f]. Always defined for usable graphs.
  Tensor features;

  /// Node labels for node-level tasks (-1 = unlabeled); empty for graph tasks.
  std::vector<int64_t> labels;
  /// Multi-label targets [num_nodes, num_tasks] (OGB-Proteins-like); optional.
  Tensor label_matrix;

  /// Node masks for semi-supervised node classification.
  std::vector<uint8_t> train_mask, val_mask, test_mask;

  int64_t num_classes = 0;
  /// Graph-level label for graph classification datasets; -1 otherwise.
  int64_t graph_label = -1;

  int64_t num_edges() const { return static_cast<int64_t>(edges.size()); }
  int64_t feature_dim() const { return features.defined() ? features.cols() : 0; }

  /// Raw adjacency A as CSR: row = target, col = source, so A·X aggregates
  /// messages from in-neighbours (Eq. (2)).
  CsrMatrix Adjacency() const { return CsrMatrix::FromCoo(num_nodes, num_nodes, edges); }

  /// In-degree (unweighted) per node — drives Degree-Quant's protection mask.
  std::vector<int64_t> InDegrees() const {
    std::vector<int64_t> deg(static_cast<size_t>(num_nodes), 0);
    for (const auto& e : edges) deg[static_cast<size_t>(e.row)]++;
    return deg;
  }
};

/// A node-classification dataset: one graph plus bookkeeping.
struct NodeDataset {
  std::string name;
  Graph graph;
  /// Metric: "accuracy" or "rocauc" (multi-label).
  std::string metric = "accuracy";
};

/// A graph-classification dataset: many small graphs.
struct GraphDataset {
  std::string name;
  std::vector<Graph> graphs;
  int64_t num_classes = 0;
  int64_t feature_dim = 0;

  /// Dataset-level statistics used by the Table 2 bench.
  double AverageNodes() const {
    if (graphs.empty()) return 0.0;
    double s = 0.0;
    for (const auto& g : graphs) s += static_cast<double>(g.num_nodes);
    return s / static_cast<double>(graphs.size());
  }
  double AverageEdges() const {
    if (graphs.empty()) return 0.0;
    double s = 0.0;
    for (const auto& g : graphs) s += static_cast<double>(g.num_edges());
    return s / static_cast<double>(graphs.size());
  }
};

/// Disjoint union of a set of graphs into one block-diagonal graph for
/// batched graph classification. `batch[i]` maps node i to its source graph.
struct GraphBatch {
  Graph merged;
  std::vector<int64_t> batch;       ///< node -> graph index
  std::vector<int64_t> graph_labels;
  int64_t num_graphs = 0;
};

/// Builds a GraphBatch from dataset graphs selected by `indices`.
GraphBatch MakeBatch(const GraphDataset& dataset, const std::vector<int64_t>& indices);

}  // namespace mixq
