// Copyright 2026 MixQ-GNN Authors
// Circular Skip Link (CSL) synthetic dataset [68] — implemented exactly, not
// approximated: R_{n,k} is an n-node cycle plus skip links of length k; the
// class is the (isomorphism type of the) skip length. The paper uses n = 41,
// 10 skip classes, 150 graphs, with 50-dim Laplacian positional encodings.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace mixq {

/// Builds one R_{n,k} graph: nodes 0..n−1 on a cycle, plus edges {i, i+k mod n}.
/// Node ids are then relabelled by a random permutation (seeded) so copies of
/// a class are distinct-but-isomorphic instances.
Graph MakeCslGraph(int64_t num_nodes, int64_t skip, int64_t label, uint64_t seed);

/// The standard CSL benchmark: 150 graphs on 41 nodes, skip lengths
/// {2,3,4,5,6,9,11,12,13,16} (10 classes, 15 instances each), node features
/// set to `pe_dim`-dimensional Laplacian positional encodings (paper: 50).
GraphDataset MakeCslDataset(int64_t pe_dim = 50, uint64_t seed = 1);

}  // namespace mixq
