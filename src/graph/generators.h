// Copyright 2026 MixQ-GNN Authors
// Synthetic dataset generators standing in for the paper's public benchmarks
// (offline substitution; see DESIGN.md §1). Each named factory matches the
// corresponding dataset's key statistics: node/edge counts (scaled where CPU
// budgets require — the scale is recorded in the returned name), class count,
// homophily, degree skew, and split protocol.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace mixq {

/// Parameters of the citation-network-like generator (planted partition with
/// power-law degree skew and class-correlated sparse binary features).
struct CitationConfig {
  std::string name = "citation";
  int64_t num_nodes = 1000;
  /// Mean number of undirected edge stubs per node (|E|_directed ≈ 2·n·deg).
  double avg_degree = 2.0;
  int64_t num_classes = 5;
  int64_t feature_dim = 64;
  /// Fraction of edges that connect same-class endpoints.
  double homophily = 0.8;
  /// Degree power-law exponent; lower = heavier tail (more hub nodes, the
  /// regime where quantized aggregation hurts most — DQ's motivation).
  double power_law_alpha = 2.3;
  int64_t max_degree = 200;
  /// Probability that a non-prototype feature word is active (noise).
  double feature_noise = 0.02;
  /// Probability that a prototype word of the node's class is active.
  double feature_signal = 0.5;
  /// Planetoid split sizes. train_per_class*num_classes + val + test <= n.
  int64_t train_per_class = 20;
  int64_t val_count = 500;
  int64_t test_count = 1000;
  uint64_t seed = 1;
};

/// Generates a node-classification dataset from `config`.
NodeDataset GenerateCitation(const CitationConfig& config);

/// Multi-label variant (OGB-Proteins-like): labels become a [n, num_tasks]
/// 0/1 matrix with class-task affinities; metric is ROC-AUC.
NodeDataset GenerateMultiLabelCitation(CitationConfig config, int64_t num_tasks);

// ---- Named node-classification analogues (Table 2 statistics) ---------------
// Feature dims are reduced vs the originals (CPU budget); all methods see the
// same inputs so relative comparisons are preserved.

NodeDataset CoraLike(uint64_t seed = 1);       ///< 2708 nodes, 7 classes
NodeDataset CiteSeerLike(uint64_t seed = 1);   ///< 3327 nodes, 6 classes
NodeDataset PubMedLike(uint64_t seed = 1);     ///< scaled to 8000 nodes, 3 classes
NodeDataset ArxivLike(uint64_t seed = 1);      ///< scaled to 12000 nodes, 40 classes
NodeDataset RedditLike(uint64_t seed = 1);     ///< scaled to 8000 nodes, 41 classes
NodeDataset ProductsLike(uint64_t seed = 1);   ///< scaled to 10000 nodes, 47 classes
NodeDataset IgbLike(uint64_t seed = 1);        ///< scaled to 10000 nodes, 19 classes
NodeDataset OgbProteinsLike(uint64_t seed = 1);///< scaled, multi-label ROC-AUC

// ---- Graph-classification (TUDataset-like) -----------------------------------

/// Parameters of the structural graph-classification generator. The class
/// signal is planted via density and clustering differences, learnable by a
/// GIN with degree-based features (the paper's protocol for featureless TU
/// datasets).
struct TuConfig {
  std::string name = "tu";
  int64_t num_graphs = 200;
  double avg_nodes = 30.0;
  int64_t num_classes = 2;
  /// Average degree of class 0; class c gets base_degree * (1 + degree_step*c).
  double base_degree = 3.0;
  double degree_step = 0.6;
  /// Fraction of edges rewired to close triangles (clustering signal),
  /// per class: base_clustering + clustering_step * c.
  double base_clustering = 0.05;
  double clustering_step = 0.15;
  /// 0 => degree one-hot features (capped); >0 => categorical one-hot with a
  /// weak class-dependent distribution (PROTEINS/D&D-like).
  int64_t feature_dim = 0;
  int64_t degree_onehot_cap = 32;
  uint64_t seed = 1;
};

/// Generates a graph-classification dataset from `config`.
GraphDataset GenerateTu(const TuConfig& config);

// Named TU analogues (Table 2 statistics; graph counts scaled via `scale`
// in (0,1] to shrink CV cost — stats per graph stay faithful).
GraphDataset ImdbBLike(uint64_t seed = 1, double scale = 1.0);
GraphDataset ProteinsLike(uint64_t seed = 1, double scale = 1.0);
GraphDataset DdLike(uint64_t seed = 1, double scale = 1.0);
GraphDataset RedditBLike(uint64_t seed = 1, double scale = 1.0);
GraphDataset RedditMLike(uint64_t seed = 1, double scale = 1.0);

// ---- Utilities ----------------------------------------------------------------

/// Replaces features with a one-hot encoding of (capped) node degree.
void SetDegreeOneHotFeatures(Graph* graph, int64_t cap);

/// GraphSAGE-style static neighbour sampling: keeps at most `max_degree`
/// in-edges per node (uniformly sampled). Reduces in-degree and hence
/// aggregation quantization error (paper §5.3.2).
Graph SampleNeighbors(const Graph& graph, int64_t max_degree, uint64_t seed);

}  // namespace mixq
