// Copyright 2026 MixQ-GNN Authors
#include "graph/graph.h"

namespace mixq {

GraphBatch MakeBatch(const GraphDataset& dataset, const std::vector<int64_t>& indices) {
  GraphBatch out;
  out.num_graphs = static_cast<int64_t>(indices.size());
  int64_t total_nodes = 0;
  int64_t total_edges = 0;
  for (int64_t idx : indices) {
    MIXQ_CHECK_GE(idx, 0);
    MIXQ_CHECK_LT(idx, static_cast<int64_t>(dataset.graphs.size()));
    total_nodes += dataset.graphs[static_cast<size_t>(idx)].num_nodes;
    total_edges += dataset.graphs[static_cast<size_t>(idx)].num_edges();
  }
  const int64_t f = dataset.feature_dim;
  out.merged.num_nodes = total_nodes;
  out.merged.num_classes = dataset.num_classes;
  out.merged.edges.reserve(static_cast<size_t>(total_edges));
  out.batch.resize(static_cast<size_t>(total_nodes));
  out.merged.features = Tensor::Zeros(Shape(total_nodes, f));

  int64_t offset = 0;
  int64_t graph_pos = 0;
  for (int64_t idx : indices) {
    const Graph& g = dataset.graphs[static_cast<size_t>(idx)];
    MIXQ_CHECK_EQ(g.feature_dim(), f) << "inconsistent feature dim in dataset";
    for (const auto& e : g.edges) {
      out.merged.edges.push_back({e.row + offset, e.col + offset, e.value});
    }
    std::copy(g.features.data().begin(), g.features.data().end(),
              out.merged.features.data().begin() + offset * f);
    for (int64_t i = 0; i < g.num_nodes; ++i) {
      out.batch[static_cast<size_t>(offset + i)] = graph_pos;
    }
    out.graph_labels.push_back(g.graph_label);
    offset += g.num_nodes;
    ++graph_pos;
  }
  return out;
}

}  // namespace mixq
