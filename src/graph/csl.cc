// Copyright 2026 MixQ-GNN Authors
#include "graph/csl.h"

#include <set>

#include "common/rng.h"
#include "graph/laplacian_pe.h"

namespace mixq {

Graph MakeCslGraph(int64_t num_nodes, int64_t skip, int64_t label, uint64_t seed) {
  MIXQ_CHECK_GE(num_nodes, 3);
  MIXQ_CHECK_GE(skip, 2);
  MIXQ_CHECK_LT(skip, num_nodes);
  Rng rng(seed);
  std::vector<int64_t> perm(static_cast<size_t>(num_nodes));
  for (int64_t i = 0; i < num_nodes; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);

  Graph g;
  g.num_nodes = num_nodes;
  g.graph_label = label;
  std::set<std::pair<int64_t, int64_t>> seen;
  auto add_edge = [&](int64_t a, int64_t b) {
    a = perm[static_cast<size_t>(a)];
    b = perm[static_cast<size_t>(b)];
    if (a == b) return;
    auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) return;
    g.edges.push_back({a, b, 1.0f});
    g.edges.push_back({b, a, 1.0f});
  };
  for (int64_t i = 0; i < num_nodes; ++i) {
    add_edge(i, (i + 1) % num_nodes);
    add_edge(i, (i + skip) % num_nodes);
  }
  return g;
}

GraphDataset MakeCslDataset(int64_t pe_dim, uint64_t seed) {
  // The canonical CSL configuration from [68] as used by Benchmarking GNNs [71].
  const int64_t kNumNodes = 41;
  const int64_t kSkips[] = {2, 3, 4, 5, 6, 9, 11, 12, 13, 16};
  const int64_t kPerClass = 15;

  GraphDataset ds;
  ds.name = "csl";
  ds.num_classes = 10;
  ds.feature_dim = pe_dim;
  Rng pe_rng(seed + 999);
  uint64_t graph_seed = seed;
  for (int64_t c = 0; c < 10; ++c) {
    for (int64_t r = 0; r < kPerClass; ++r) {
      Graph g = MakeCslGraph(kNumNodes, kSkips[c], c, graph_seed++);
      g.num_classes = 10;
      SetLaplacianPositionalEncoding(&g, pe_dim, &pe_rng);
      ds.graphs.push_back(std::move(g));
    }
  }
  return ds;
}

}  // namespace mixq
