// Copyright 2026 MixQ-GNN Authors
#include "graph/laplacian_pe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mixq {

EigenDecomposition JacobiEigenSymmetric(std::vector<double> a, int64_t n,
                                        int max_sweeps, double tol) {
  MIXQ_CHECK_EQ(static_cast<int64_t>(a.size()), n * n);
  EigenDecomposition out;
  out.n = n;
  out.eigenvectors.assign(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) out.eigenvectors[static_cast<size_t>(i * n + i)] = 1.0;

  auto at = [&](std::vector<double>& m, int64_t r, int64_t c) -> double& {
    return m[static_cast<size_t>(r * n + c)];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm for convergence.
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += at(a, p, q) * at(a, p, q);
    }
    if (off < tol) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = at(a, p, p), aqq = at(a, q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A.
        for (int64_t k = 0; k < n; ++k) {
          const double akp = at(a, k, p), akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = at(a, p, k), aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = out.eigenvectors[static_cast<size_t>(k * n + p)];
          const double vkq = out.eigenvectors[static_cast<size_t>(k * n + q)];
          out.eigenvectors[static_cast<size_t>(k * n + p)] = c * vkp - s * vkq;
          out.eigenvectors[static_cast<size_t>(k * n + q)] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect eigenvalues and sort ascending, permuting eigenvector columns.
  std::vector<double> values(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values[static_cast<size_t>(i)] = at(a, i, i);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return values[static_cast<size_t>(x)] < values[static_cast<size_t>(y)]; });
  out.eigenvalues.resize(static_cast<size_t>(n));
  std::vector<double> sorted_vecs(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    out.eigenvalues[static_cast<size_t>(i)] = values[static_cast<size_t>(order[static_cast<size_t>(i)])];
    for (int64_t k = 0; k < n; ++k) {
      sorted_vecs[static_cast<size_t>(k * n + i)] =
          out.eigenvectors[static_cast<size_t>(k * n + order[static_cast<size_t>(i)])];
    }
  }
  out.eigenvectors = std::move(sorted_vecs);
  return out;
}

std::vector<double> NormalizedLaplacianDense(const Graph& graph) {
  const int64_t n = graph.num_nodes;
  std::vector<double> adj(static_cast<size_t>(n * n), 0.0);
  std::vector<double> deg(static_cast<size_t>(n), 0.0);
  for (const auto& e : graph.edges) {
    if (adj[static_cast<size_t>(e.row * n + e.col)] == 0.0) {
      adj[static_cast<size_t>(e.row * n + e.col)] = 1.0;
      deg[static_cast<size_t>(e.row)] += 1.0;
    }
  }
  std::vector<double> lap(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    lap[static_cast<size_t>(i * n + i)] = deg[static_cast<size_t>(i)] > 0 ? 1.0 : 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (adj[static_cast<size_t>(i * n + j)] > 0.0 && deg[static_cast<size_t>(i)] > 0 &&
          deg[static_cast<size_t>(j)] > 0) {
        lap[static_cast<size_t>(i * n + j)] -=
            1.0 / std::sqrt(deg[static_cast<size_t>(i)] * deg[static_cast<size_t>(j)]);
      }
    }
  }
  return lap;
}

void SetLaplacianPositionalEncoding(Graph* graph, int64_t dim, Rng* rng) {
  MIXQ_CHECK(graph != nullptr);
  MIXQ_CHECK(rng != nullptr);
  const int64_t n = graph->num_nodes;
  auto lap = NormalizedLaplacianDense(*graph);
  auto eig = JacobiEigenSymmetric(std::move(lap), n);
  graph->features = Tensor::Zeros(Shape(n, dim));
  // Skip the trivial (near-zero eigenvalue) first eigenvector.
  const int64_t available = std::min<int64_t>(dim, n - 1);
  for (int64_t j = 0; j < available; ++j) {
    const double sign = rng->Bernoulli(0.5) ? -1.0 : 1.0;
    for (int64_t i = 0; i < n; ++i) {
      graph->features.at(i, j) = static_cast<float>(
          sign * eig.eigenvectors[static_cast<size_t>(i * n + (j + 1))]);
    }
  }
}

}  // namespace mixq
