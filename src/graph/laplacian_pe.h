// Copyright 2026 MixQ-GNN Authors
// Laplacian positional encodings [71] used by the CSL experiment (Table 9),
// plus the dense symmetric eigensolver they require.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace mixq {

/// Dense symmetric eigendecomposition via cyclic Jacobi rotations.
/// `matrix` is row-major n×n and must be symmetric. On return, eigenvalues
/// are sorted ascending and eigenvectors[:, i] (column i of the row-major
/// `eigenvectors` buffer) corresponds to eigenvalues[i].
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;  // row-major n×n, columns are vectors
  int64_t n = 0;
};

EigenDecomposition JacobiEigenSymmetric(std::vector<double> matrix, int64_t n,
                                        int max_sweeps = 64, double tol = 1e-12);

/// Computes the symmetric normalized Laplacian L = I − D^{-1/2} A D^{-1/2}
/// of `graph` (unweighted view of its edges) as a dense row-major matrix.
std::vector<double> NormalizedLaplacianDense(const Graph& graph);

/// Sets graph->features to the first `dim` non-trivial Laplacian eigenvectors
/// (ascending eigenvalue order), zero-padded when dim > n−1. Signs are
/// randomized per instance (the standard augmentation — eigenvectors are only
/// defined up to sign).
void SetLaplacianPositionalEncoding(Graph* graph, int64_t dim, Rng* rng);

}  // namespace mixq
