// Copyright 2026 MixQ-GNN Authors
#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace mixq {

namespace {

// Draws per-node stub counts with a power-law tail, rescaled so the sample
// mean matches `target_mean`.
std::vector<int64_t> DrawDegrees(int64_t n, double target_mean, double alpha,
                                 int64_t max_degree, Rng* rng) {
  std::vector<double> raw(static_cast<size_t>(n));
  double sum = 0.0;
  for (auto& d : raw) {
    d = static_cast<double>(rng->PowerLaw(alpha, max_degree));
    sum += d;
  }
  const double scale = target_mean * static_cast<double>(n) / std::max(sum, 1.0);
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double want = raw[static_cast<size_t>(i)] * scale;
    int64_t k = static_cast<int64_t>(want);
    if (rng->Uniform() < want - static_cast<double>(k)) ++k;
    out[static_cast<size_t>(i)] = std::min<int64_t>(std::max<int64_t>(k, 0), max_degree);
  }
  return out;
}

// Builds class-correlated sparse binary features, then row-normalizes
// (the standard Planetoid preprocessing).
Tensor MakeClassFeatures(const std::vector<int64_t>& classes, int64_t num_classes,
                         int64_t feature_dim, double signal, double noise, Rng* rng) {
  const int64_t n = static_cast<int64_t>(classes.size());
  // Prototype: each class owns a contiguous block of "words" plus a shared
  // overlap region, mimicking bag-of-words topical clustering.
  const int64_t block = std::max<int64_t>(feature_dim / std::max<int64_t>(num_classes, 1), 1);
  Tensor x = Tensor::Zeros(Shape(n, feature_dim));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = classes[static_cast<size_t>(i)];
    const int64_t lo = std::min(c * block, feature_dim - block);
    for (int64_t j = 0; j < feature_dim; ++j) {
      const bool in_proto = j >= lo && j < lo + block;
      const double p = in_proto ? signal : noise;
      if (rng->Bernoulli(p)) x.at(i, j) = 1.0f;
    }
    // Row-normalize.
    double s = 0.0;
    for (int64_t j = 0; j < feature_dim; ++j) s += x.at(i, j);
    if (s > 0.0) {
      const float inv = static_cast<float>(1.0 / s);
      for (int64_t j = 0; j < feature_dim; ++j) x.at(i, j) *= inv;
    }
  }
  return x;
}

// Stub-matching edge construction with homophily. Produces undirected edges
// (both directions), no self loops, duplicates merged downstream by FromCoo.
std::vector<CooEntry> MakeHomophilousEdges(const std::vector<int64_t>& classes,
                                           int64_t num_classes,
                                           const std::vector<int64_t>& stubs,
                                           double homophily, Rng* rng) {
  const int64_t n = static_cast<int64_t>(classes.size());
  std::vector<std::vector<int64_t>> by_class(static_cast<size_t>(num_classes));
  for (int64_t i = 0; i < n; ++i) {
    by_class[static_cast<size_t>(classes[static_cast<size_t>(i)])].push_back(i);
  }
  std::vector<CooEntry> edges;
  std::set<std::pair<int64_t, int64_t>> seen;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = classes[static_cast<size_t>(i)];
    for (int64_t s = 0; s < stubs[static_cast<size_t>(i)]; ++s) {
      int64_t j = -1;
      for (int attempt = 0; attempt < 8 && j < 0; ++attempt) {
        int64_t cand;
        if (rng->Bernoulli(homophily) && by_class[static_cast<size_t>(c)].size() > 1) {
          const auto& pool = by_class[static_cast<size_t>(c)];
          cand = pool[static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
        } else {
          cand = rng->UniformInt(0, n - 1);
        }
        if (cand == i) continue;
        auto key = std::minmax(i, cand);
        if (seen.count({key.first, key.second})) continue;
        j = cand;
        seen.insert({key.first, key.second});
      }
      if (j < 0) continue;
      edges.push_back({i, j, 1.0f});
      edges.push_back({j, i, 1.0f});
    }
  }
  return edges;
}

void AssignPlanetoidSplit(Graph* g, int64_t train_per_class, int64_t val_count,
                          int64_t test_count, Rng* rng) {
  const int64_t n = g->num_nodes;
  g->train_mask.assign(static_cast<size_t>(n), 0);
  g->val_mask.assign(static_cast<size_t>(n), 0);
  g->test_mask.assign(static_cast<size_t>(n), 0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  std::vector<int64_t> taken_per_class(static_cast<size_t>(g->num_classes), 0);
  std::vector<int64_t> rest;
  for (int64_t i : order) {
    const int64_t c = g->labels[static_cast<size_t>(i)];
    if (c >= 0 && taken_per_class[static_cast<size_t>(c)] < train_per_class) {
      g->train_mask[static_cast<size_t>(i)] = 1;
      taken_per_class[static_cast<size_t>(c)]++;
    } else {
      rest.push_back(i);
    }
  }
  int64_t vi = 0;
  for (; vi < std::min<int64_t>(val_count, static_cast<int64_t>(rest.size())); ++vi) {
    g->val_mask[static_cast<size_t>(rest[static_cast<size_t>(vi)])] = 1;
  }
  for (int64_t ti = 0;
       ti < test_count && vi + ti < static_cast<int64_t>(rest.size()); ++ti) {
    g->test_mask[static_cast<size_t>(rest[static_cast<size_t>(vi + ti)])] = 1;
  }
}

}  // namespace

NodeDataset GenerateCitation(const CitationConfig& config) {
  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  MIXQ_CHECK_GT(n, 0);
  MIXQ_CHECK_GT(config.num_classes, 0);

  Graph g;
  g.num_nodes = n;
  g.num_classes = config.num_classes;
  g.labels.resize(static_cast<size_t>(n));
  for (auto& c : g.labels) c = rng.UniformInt(0, config.num_classes - 1);

  auto stubs = DrawDegrees(n, config.avg_degree, config.power_law_alpha,
                           config.max_degree, &rng);
  g.edges = MakeHomophilousEdges(g.labels, config.num_classes, stubs,
                                 config.homophily, &rng);
  g.features = MakeClassFeatures(g.labels, config.num_classes, config.feature_dim,
                                 config.feature_signal, config.feature_noise, &rng);
  AssignPlanetoidSplit(&g, config.train_per_class, config.val_count,
                       config.test_count, &rng);

  NodeDataset ds;
  ds.name = config.name;
  ds.graph = std::move(g);
  return ds;
}

NodeDataset GenerateMultiLabelCitation(CitationConfig config, int64_t num_tasks) {
  NodeDataset ds = GenerateCitation(config);
  Graph& g = ds.graph;
  Rng rng(config.seed + 77);
  // Class-task affinity matrix: each latent class switches each task on with
  // a class-specific probability, so ROC-AUC rewards structure-aware models.
  std::vector<double> affinity(
      static_cast<size_t>(config.num_classes * num_tasks));
  for (auto& a : affinity) a = rng.Uniform(0.05, 0.95);
  g.label_matrix = Tensor::Zeros(Shape(g.num_nodes, num_tasks));
  for (int64_t i = 0; i < g.num_nodes; ++i) {
    const int64_t c = g.labels[static_cast<size_t>(i)];
    for (int64_t t = 0; t < num_tasks; ++t) {
      const double p = affinity[static_cast<size_t>(c * num_tasks + t)];
      if (rng.Bernoulli(p)) g.label_matrix.at(i, t) = 1.0f;
    }
  }
  ds.metric = "rocauc";
  return ds;
}

NodeDataset CoraLike(uint64_t seed) {
  CitationConfig c;
  c.name = "cora-like";
  c.num_nodes = 2708;
  c.avg_degree = 10556.0 / (2.0 * 2708.0);
  c.num_classes = 7;
  c.feature_dim = 256;  // original 1433, reduced for CPU budget (DESIGN.md §1)
  c.homophily = 0.81;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset CiteSeerLike(uint64_t seed) {
  CitationConfig c;
  c.name = "citeseer-like";
  c.num_nodes = 3327;
  c.avg_degree = 9104.0 / (2.0 * 3327.0);
  c.num_classes = 6;
  c.feature_dim = 256;  // original 3703
  c.homophily = 0.74;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset PubMedLike(uint64_t seed) {
  CitationConfig c;
  c.name = "pubmed-like";
  c.num_nodes = 8000;  // original 19717, scaled (DESIGN.md §1)
  c.avg_degree = 88648.0 / (2.0 * 19717.0);
  c.num_classes = 3;
  c.feature_dim = 128;  // original 500
  c.homophily = 0.80;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset ArxivLike(uint64_t seed) {
  CitationConfig c;
  c.name = "ogb-arxiv-like";
  c.num_nodes = 12000;  // original 169343, scaled
  c.avg_degree = 1166243.0 / (2.0 * 169343.0);
  c.num_classes = 40;
  c.feature_dim = 128;
  c.homophily = 0.65;
  c.train_per_class = 60;
  c.val_count = 2000;
  c.test_count = 4000;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset RedditLike(uint64_t seed) {
  CitationConfig c;
  c.name = "reddit-like";
  c.num_nodes = 8000;  // original 232965, scaled
  c.avg_degree = 25.0;  // original ~246 avg degree, capped for CPU budget
  c.num_classes = 41;
  c.feature_dim = 128;  // original 602
  c.homophily = 0.75;
  c.train_per_class = 40;
  c.val_count = 1500;
  c.test_count = 3000;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset ProductsLike(uint64_t seed) {
  CitationConfig c;
  c.name = "ogb-products-like";
  c.num_nodes = 10000;  // original 2449029, scaled
  c.avg_degree = 12.0;
  c.num_classes = 47;
  c.feature_dim = 100;
  c.homophily = 0.7;
  c.train_per_class = 40;
  c.val_count = 1500;
  c.test_count = 3000;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset IgbLike(uint64_t seed) {
  CitationConfig c;
  c.name = "igb-like";
  c.num_nodes = 10000;  // original 1000000, scaled
  c.avg_degree = 12070502.0 / (2.0 * 1000000.0);
  c.num_classes = 19;
  c.feature_dim = 128;  // original 1024
  c.homophily = 0.7;
  c.train_per_class = 60;
  c.val_count = 1500;
  c.test_count = 3000;
  c.seed = seed;
  return GenerateCitation(c);
}

NodeDataset OgbProteinsLike(uint64_t seed) {
  CitationConfig c;
  c.name = "ogb-proteins-like";
  c.num_nodes = 8000;  // original 132534, scaled
  c.avg_degree = 30.0;  // original ~298, capped
  c.num_classes = 8;    // latent classes driving the multi-label affinities
  c.feature_dim = 112;
  c.homophily = 0.7;
  c.train_per_class = 100;
  c.val_count = 1500;
  c.test_count = 3000;
  c.seed = seed;
  return GenerateMultiLabelCitation(c, /*num_tasks=*/32);  // original 112 tasks
}

namespace {

// One synthetic TU-style graph: ER-like with degree target and triangle
// closure proportion controlled by the class.
Graph MakeTuGraph(int64_t num_nodes, double avg_degree, double clustering,
                  int64_t label, Rng* rng) {
  Graph g;
  g.num_nodes = num_nodes;
  g.graph_label = label;
  std::set<std::pair<int64_t, int64_t>> seen;
  auto add_edge = [&](int64_t a, int64_t b) {
    if (a == b) return;
    auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) return;
    g.edges.push_back({a, b, 1.0f});
    g.edges.push_back({b, a, 1.0f});
  };
  // Ring backbone keeps every graph connected (max pooling requires no
  // isolated empty graphs; also mirrors the small-world flavour of the
  // social TU datasets).
  for (int64_t i = 0; i < num_nodes; ++i) add_edge(i, (i + 1) % num_nodes);
  const int64_t extra =
      std::max<int64_t>(0, static_cast<int64_t>(avg_degree * num_nodes / 2.0) - num_nodes);
  for (int64_t e = 0; e < extra; ++e) {
    const int64_t a = rng->UniformInt(0, num_nodes - 1);
    if (rng->Bernoulli(clustering) && !g.edges.empty()) {
      // Close a triangle: pick one of a's current neighbours' neighbours.
      const auto& pick = g.edges[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(g.edges.size()) - 1))];
      add_edge(a, pick.col);
    } else {
      add_edge(a, rng->UniformInt(0, num_nodes - 1));
    }
  }
  return g;
}

}  // namespace

void SetDegreeOneHotFeatures(Graph* graph, int64_t cap) {
  MIXQ_CHECK(graph != nullptr);
  MIXQ_CHECK_GT(cap, 0);
  auto deg = graph->InDegrees();
  graph->features = Tensor::Zeros(Shape(graph->num_nodes, cap));
  for (int64_t i = 0; i < graph->num_nodes; ++i) {
    const int64_t d = std::min<int64_t>(deg[static_cast<size_t>(i)], cap - 1);
    graph->features.at(i, d) = 1.0f;
  }
}

GraphDataset GenerateTu(const TuConfig& config) {
  Rng rng(config.seed);
  GraphDataset ds;
  ds.name = config.name;
  ds.num_classes = config.num_classes;
  for (int64_t i = 0; i < config.num_graphs; ++i) {
    const int64_t label = i % config.num_classes;  // balanced classes
    const double jitter =
        std::max(5.0, static_cast<double>(rng.Normal(
                          static_cast<float>(config.avg_nodes),
                          static_cast<float>(config.avg_nodes / 3.0))));
    const int64_t n = static_cast<int64_t>(jitter);
    const double deg = config.base_degree * (1.0 + config.degree_step * label);
    const double clus = config.base_clustering + config.clustering_step * label;
    Graph g = MakeTuGraph(n, deg, std::min(clus, 0.9), label, &rng);
    g.num_classes = config.num_classes;
    if (config.feature_dim == 0) {
      SetDegreeOneHotFeatures(&g, config.degree_onehot_cap);
    } else {
      // Weakly class-correlated categorical one-hot features.
      g.features = Tensor::Zeros(Shape(g.num_nodes, config.feature_dim));
      for (int64_t v = 0; v < g.num_nodes; ++v) {
        int64_t cat;
        if (rng.Bernoulli(0.3)) {
          cat = label % config.feature_dim;  // class-indicative category
        } else {
          cat = rng.UniformInt(0, config.feature_dim - 1);
        }
        g.features.at(v, cat) = 1.0f;
      }
    }
    ds.graphs.push_back(std::move(g));
  }
  ds.feature_dim =
      config.feature_dim == 0 ? config.degree_onehot_cap : config.feature_dim;
  return ds;
}

namespace {
int64_t Scaled(int64_t count, double scale) {
  return std::max<int64_t>(20, static_cast<int64_t>(count * scale));
}
}  // namespace

GraphDataset ImdbBLike(uint64_t seed, double scale) {
  TuConfig c;
  c.name = "imdb-b-like";
  c.num_graphs = Scaled(1000, scale);
  c.avg_nodes = 19.8;
  c.num_classes = 2;
  c.base_degree = 9.7 / 1.6;  // yields ~193 directed edges/graph at class avg
  c.degree_step = 0.6;
  c.seed = seed;
  return GenerateTu(c);
}

GraphDataset ProteinsLike(uint64_t seed, double scale) {
  TuConfig c;
  c.name = "proteins-like";
  c.num_graphs = Scaled(1113, scale);
  c.avg_nodes = 39.1;
  c.num_classes = 2;
  c.base_degree = 3.7 / 1.3;
  c.degree_step = 0.5;
  c.feature_dim = 3;
  c.seed = seed;
  return GenerateTu(c);
}

GraphDataset DdLike(uint64_t seed, double scale) {
  TuConfig c;
  c.name = "dd-like";
  c.num_graphs = Scaled(1178, scale);
  c.avg_nodes = 120.0;  // original 284.3, scaled for CPU budget
  c.num_classes = 2;
  c.base_degree = 2.5 / 1.3;
  c.degree_step = 0.5;
  c.feature_dim = 89;
  c.seed = seed;
  return GenerateTu(c);
}

GraphDataset RedditBLike(uint64_t seed, double scale) {
  TuConfig c;
  c.name = "reddit-b-like";
  c.num_graphs = Scaled(2000, scale);
  c.avg_nodes = 120.0;  // original 429.6, scaled
  c.num_classes = 2;
  c.base_degree = 1.2;
  c.degree_step = 0.8;
  c.degree_onehot_cap = 64;
  c.seed = seed;
  return GenerateTu(c);
}

GraphDataset RedditMLike(uint64_t seed, double scale) {
  TuConfig c;
  c.name = "reddit-m-like";
  c.num_graphs = Scaled(4999, scale);
  c.avg_nodes = 120.0;  // original 508.8, scaled
  c.num_classes = 5;
  c.base_degree = 1.1;
  c.degree_step = 0.35;
  c.degree_onehot_cap = 64;
  c.seed = seed;
  return GenerateTu(c);
}

Graph SampleNeighbors(const Graph& graph, int64_t max_degree, uint64_t seed) {
  MIXQ_CHECK_GT(max_degree, 0);
  Rng rng(seed);
  // Group directed edges by target row, then subsample each group.
  std::vector<std::vector<size_t>> by_row(static_cast<size_t>(graph.num_nodes));
  for (size_t k = 0; k < graph.edges.size(); ++k) {
    by_row[static_cast<size_t>(graph.edges[k].row)].push_back(k);
  }
  Graph out = graph;
  out.edges.clear();
  for (int64_t r = 0; r < graph.num_nodes; ++r) {
    auto& bucket = by_row[static_cast<size_t>(r)];
    if (static_cast<int64_t>(bucket.size()) > max_degree) {
      rng.Shuffle(&bucket);
      bucket.resize(static_cast<size_t>(max_degree));
    }
    for (size_t k : bucket) out.edges.push_back(graph.edges[k]);
  }
  return out;
}

}  // namespace mixq
