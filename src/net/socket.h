// Copyright 2026 MixQ-GNN Authors
// RAII POSIX TCP primitives for the network front door (src/net/server.h,
// src/net/client.h). Everything fallible returns a typed Status — a peer
// reset, a timeout, or an injected fault surfaces as an error the framing
// layer can translate, never as UB or a hang:
//
//   kNotFound          peer closed cleanly before any byte of the read
//   kUnavailable       connection reset / closed mid-transfer
//   kDeadlineExceeded  no progress within the configured stall budget
//   kInternal          unexpected errno, or an injected fault
//
// Fault-injection sites (common/fault_injection.h): every ReadFull hit asks
// "net.read", every WriteAll hit asks "net.write"; a fire fails the call
// with a typed kInternal exactly like a syscall error. The server layers
// "net.accept" over Accept. The chaos suite (tests/net_test.cpp) storms
// these sites and asserts the serving invariant holds on the wire.
//
// Blocking discipline: reads poll() in `poll_interval` slices and consult an
// optional stop flag between slices, so a server connection thread can be
// shut down without closing its socket out from under it; `stall_timeout`
// bounds how long a transfer may sit with NO progress (a trickling or wedged
// peer), which is what keeps the frame fuzz tests hang-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mixq {
namespace net {

/// Movable owner of one file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// Transfer pacing for TcpConnection reads/writes.
struct IoOptions {
  /// poll() slice between stop-flag checks.
  std::chrono::milliseconds poll_interval{100};
  /// Longest a transfer may make zero progress before kDeadlineExceeded.
  std::chrono::milliseconds stall_timeout{10000};
};

/// One established stream connection. Not thread-safe per direction pair —
/// the intended shape is one reader thread and one writer thread (reads and
/// writes never block each other on a socket).
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(Socket socket, IoOptions options = IoOptions())
      : socket_(std::move(socket)), options_(options) {}

  bool valid() const { return socket_.valid(); }

  /// Reads exactly `size` bytes. kNotFound when the peer closed cleanly
  /// before the first byte (a frame boundary — the caller decides whether
  /// that is normal); kUnavailable when the stream ends mid-transfer. When
  /// `stop` is non-null and becomes true between poll slices, returns
  /// kUnavailable("stopped").
  Status ReadFull(void* buffer, size_t size,
                  const std::atomic<bool>* stop = nullptr);

  /// Writes exactly `size` bytes; same stop/stall semantics as ReadFull.
  Status WriteAll(const void* buffer, size_t size,
                  const std::atomic<bool>* stop = nullptr);

  /// shutdown(2) both directions — unblocks a peer (or our own reader
  /// thread) without racing the fd's lifetime.
  void ShutdownBoth();
  /// shutdown(2) the write side only: the peer sees EOF after everything
  /// already sent, while this side can still read its replies (how a fuzz
  /// client says "that was my whole frame" without hanging either end).
  void ShutdownWrite();
  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  IoOptions options_;
};

/// Connects to host:port (numeric IPv4 or a resolvable name) with a bounded
/// connect timeout. The returned connection uses `io` pacing.
Result<TcpConnection> TcpConnect(const std::string& host, int port,
                                 std::chrono::milliseconds connect_timeout,
                                 IoOptions io = IoOptions());

/// Listening socket bound to host:port (port 0 = ephemeral; port() reports
/// the bound value).
class TcpListener {
 public:
  TcpListener() = default;

  static Result<TcpListener> Listen(const std::string& host, int port,
                                    int backlog = 64);

  int port() const { return port_; }
  bool valid() const { return socket_.valid(); }

  /// Waits up to `timeout` for a connection. On success sets `*accepted`;
  /// on timeout returns OK with `*accepted` left invalid — callers loop and
  /// check a stop flag between calls. kInternal on accept errors (including
  /// a fired "net.accept" fault site).
  Status Accept(Socket* accepted, std::chrono::milliseconds timeout);

  void Close() { socket_.Close(); }

 private:
  TcpListener(Socket socket, int port) : socket_(std::move(socket)), port_(port) {}
  Socket socket_;
  int port_ = 0;
};

}  // namespace net
}  // namespace mixq
