// Copyright 2026 MixQ-GNN Authors
#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injection.h"

namespace mixq {
namespace net {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Waits for `events` on `fd` for up to `timeout`. Returns +1 ready,
/// 0 timeout, -1 error (errno set). EINTR counts as a timeout slice.
int PollFd(int fd, short events, std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (r < 0 && errno == EINTR) return 0;
  if (r <= 0) return r;
  // POLLERR/POLLHUP surface through the subsequent read/write returning an
  // error or EOF, which is where they get their typed Status.
  return 1;
}

Status ResolveAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1) {
    return Status::OK();
  }
  // Not a numeric address: resolve (IPv4 only — the serving deployments
  // this targets sit behind loopback or a load balancer's v4 VIP).
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "': " + gai_strerror(rc));
  }
  addr->sin_addr =
      reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Status TcpConnection::ReadFull(void* buffer, size_t size,
                               const std::atomic<bool>* stop) {
  if (!socket_.valid()) return Status::Unavailable("connection is closed");
  uint8_t* out = static_cast<uint8_t*>(buffer);
  size_t got = 0;
  auto last_progress = std::chrono::steady_clock::now();
  while (got < size) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Unavailable("stopped");
    }
    MIXQ_RETURN_NOT_OK(fault::CheckPoint("net.read"));
    const int ready = PollFd(socket_.fd(), POLLIN, options_.poll_interval);
    if (ready < 0) return Status::Internal(ErrnoString("poll"));
    if (ready == 0) {
      if (std::chrono::steady_clock::now() - last_progress >
          options_.stall_timeout) {
        return Status::DeadlineExceeded("read stalled past " +
                                        std::to_string(options_.stall_timeout.count()) +
                                        " ms");
      }
      continue;
    }
    const ssize_t r = ::recv(socket_.fd(), out + got, size - got, 0);
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed by peer");
      return Status::Unavailable("connection closed mid-transfer after " +
                                 std::to_string(got) + " of " +
                                 std::to_string(size) + " bytes");
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable(ErrnoString("recv"));
      }
      return Status::Internal(ErrnoString("recv"));
    }
    got += static_cast<size_t>(r);
    last_progress = std::chrono::steady_clock::now();
  }
  return Status::OK();
}

Status TcpConnection::WriteAll(const void* buffer, size_t size,
                               const std::atomic<bool>* stop) {
  if (!socket_.valid()) return Status::Unavailable("connection is closed");
  const uint8_t* in = static_cast<const uint8_t*>(buffer);
  size_t sent = 0;
  auto last_progress = std::chrono::steady_clock::now();
  while (sent < size) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Unavailable("stopped");
    }
    MIXQ_RETURN_NOT_OK(fault::CheckPoint("net.write"));
    const int ready = PollFd(socket_.fd(), POLLOUT, options_.poll_interval);
    if (ready < 0) return Status::Internal(ErrnoString("poll"));
    if (ready == 0) {
      if (std::chrono::steady_clock::now() - last_progress >
          options_.stall_timeout) {
        return Status::DeadlineExceeded("write stalled past " +
                                        std::to_string(options_.stall_timeout.count()) +
                                        " ms");
      }
      continue;
    }
    // MSG_NOSIGNAL: a peer that closed mid-write must come back as a typed
    // Status, not SIGPIPE taking the process down.
    const ssize_t r =
        ::send(socket_.fd(), in + sent, size - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable(ErrnoString("send"));
      }
      return Status::Internal(ErrnoString("send"));
    }
    sent += static_cast<size_t>(r);
    last_progress = std::chrono::steady_clock::now();
  }
  return Status::OK();
}

void TcpConnection::ShutdownBoth() {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
}

void TcpConnection::ShutdownWrite() {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

Result<TcpConnection> TcpConnect(const std::string& host, int port,
                                 std::chrono::milliseconds connect_timeout,
                                 IoOptions io) {
  sockaddr_in addr;
  MIXQ_RETURN_NOT_OK(ResolveAddr(host, port, &addr));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Status::Internal(ErrnoString("socket"));

  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               std::strerror(errno));
  }
  if (rc != 0) {
    const int ready = PollFd(socket.fd(), POLLOUT, connect_timeout);
    if (ready < 0) return Status::Internal(ErrnoString("poll"));
    if (ready == 0) {
      return Status::DeadlineExceeded("connect to " + host + ":" +
                                      std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(socket.fd(), F_SETFL, flags);  // back to blocking; IO paces via poll

  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(std::move(socket), io);
}

Result<TcpListener> TcpListener::Listen(const std::string& host, int port,
                                        int backlog) {
  sockaddr_in addr;
  MIXQ_RETURN_NOT_OK(ResolveAddr(host, port, &addr));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Status::Internal(ErrnoString("socket"));
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(socket.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable("bind to " + host + ":" + std::to_string(port) +
                               " failed: " + std::strerror(errno));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    return Status::Internal(ErrnoString("listen"));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Internal(ErrnoString("getsockname"));
  }
  return TcpListener(std::move(socket), ntohs(bound.sin_port));
}

Status TcpListener::Accept(Socket* accepted, std::chrono::milliseconds timeout) {
  if (!socket_.valid()) return Status::Unavailable("listener is closed");
  const int ready = PollFd(socket_.fd(), POLLIN, timeout);
  if (ready < 0) return Status::Internal(ErrnoString("poll"));
  if (ready == 0) return Status::OK();  // timeout: *accepted stays invalid
  MIXQ_RETURN_NOT_OK(fault::CheckPoint("net.accept"));
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return Status::OK();  // transient: treat like a timeout slice
    }
    return Status::Internal(ErrnoString("accept"));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *accepted = Socket(fd);
  return Status::OK();
}

}  // namespace net
}  // namespace mixq
