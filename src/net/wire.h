// Copyright 2026 MixQ-GNN Authors
// The mixq remote-serving wire protocol: length-prefixed, CRC-guarded binary
// frames on the bounds-checked common/binary_io.h reader/writer — the same
// primitives (and the same hardening posture) as the bundle format. DESIGN.md
// §8 is the NORMATIVE spec; this header is its implementation.
//
// Frame layout (all integers little-endian):
//
//   frame  := header payload
//   header := magic "MQRF" | u8 major | u8 minor | u8 type | u8 reserved(0)
//             | u64 request_id | u32 payload_bytes | u32 crc32(payload)
//
// 24-byte fixed header; payload decoded per `type` with ByteReader, so a
// corrupt or truncated body is a typed error, never UB. Versioning mirrors
// the bundle rule: a peer rejects a MAJOR newer than its own
// (kNotImplemented, connection-fatal), accepts any minor, and ignores
// trailing payload bytes it does not understand — future minors may append
// fields without breaking old peers. Unknown frame TYPES get a typed kError
// reply (kNotImplemented) and the connection stays up.
//
// Error transport: application failures (kDeadlineExceeded expiry,
// kResourceExhausted admission rejects, kUnavailable breaker/shed, kNotFound
// unknown names, ...) travel as kError frames echoing the request id — the
// overload semantics of the engine become cheap typed wire rejections, never
// dropped connections. Connection-fatal conditions (bad magic, CRC mismatch,
// oversize frame, version mismatch, server shutdown, connection limit) are
// announced with a terminal kGoodbye frame carrying the typed status, then
// the connection closes: once framing cannot be trusted, closing is the only
// safe resync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "engine/batcher.h"

namespace mixq {
namespace net {

/// Protocol version spoken by this build. Bump the major for incompatible
/// frame-layout changes, the minor when only appending fields or types.
constexpr uint8_t kProtocolMajor = 1;
constexpr uint8_t kProtocolMinor = 0;

/// Fixed frame-header size in bytes.
constexpr size_t kFrameHeaderBytes = 24;

/// Hard payload cap: a length prefix is attacker-chosen input, so it must
/// never drive an unbounded allocation. 256 MiB comfortably holds full-graph
/// logits for millions of nodes; anything larger is a protocol error.
constexpr uint32_t kMaxFramePayload = 256u << 20;

enum class FrameType : uint8_t {
  kPredictRequest = 1,   ///< client -> server: one PredictRequest
  kPredictResponse = 2,  ///< server -> client: logit rows (success only)
  kStatsRequest = 3,     ///< client -> server: metrics snapshot request
  kStatsResponse = 4,    ///< server -> client: engine + server stats JSON
  kPing = 5,             ///< client -> server: liveness / version handshake
  kPong = 6,             ///< server -> client: ping echo
  kError = 7,            ///< server -> client: typed per-request failure
  kGoodbye = 8,          ///< either -> peer: typed terminal frame, then close
};

/// Parsed frame header (magic validated, fields decoded, not yet
/// CRC-checked — the payload has not been read at this point).
struct FrameHeader {
  uint8_t major = 0;
  uint8_t minor = 0;
  uint8_t type = 0;  ///< raw on purpose: unknown values must survive parsing
  uint64_t request_id = 0;
  uint32_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

/// The request body as it crosses the wire. `deadline_us` is a RELATIVE
/// budget in microseconds from server receipt (clocks are not shared across
/// machines); <= 0 means no deadline.
struct WirePredictRequest {
  std::string model;
  std::string graph;
  std::vector<int64_t> node_ids;
  engine::Precision precision = engine::Precision::kAuto;
  int64_t deadline_us = 0;
};

/// The success-response body: the requested logit rows plus the serving
/// metadata of engine::PredictResponse, and `server_us` — receipt-to-reply
/// wall time on the server, so clients can split network from serving time.
struct WirePredictResponse {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> data;  ///< row-major [rows x cols]
  std::vector<int64_t> node_ids;
  engine::Precision precision = engine::Precision::kFp32;
  bool cache_hit = false;
  bool pruned = false;
  int64_t batch_size = 0;
  int64_t frontier_rows = 0;
  double queue_us = 0.0;
  double forward_us = 0.0;
  double total_us = 0.0;
  double server_us = 0.0;
};

// ---- frames ---------------------------------------------------------------

/// Builds one complete frame: header (with payload CRC) + body bytes.
std::vector<uint8_t> BuildFrame(FrameType type, uint64_t request_id,
                                const ByteWriter& body);

/// Parses and validates a frame header from exactly kFrameHeaderBytes:
/// magic, reserved byte, `major` not newer than ours, payload under
/// kMaxFramePayload. All failures are connection-fatal by protocol
/// (kInvalidArgument for structure, kNotImplemented for a future major).
Status DecodeFrameHeader(const uint8_t* bytes, FrameHeader* out);

/// Verifies the stored payload CRC; kInvalidArgument on mismatch
/// (connection-fatal: the stream cannot be trusted after a corrupt frame).
Status CheckFramePayload(const FrameHeader& header, const uint8_t* payload,
                         size_t size);

// ---- bodies ---------------------------------------------------------------
// Every decoder is safe on arbitrary bytes and ignores trailing payload it
// does not understand (minor-version forward compatibility).

void EncodePredictRequest(const WirePredictRequest& request, ByteWriter* out);
Status DecodePredictRequest(ByteReader* in, WirePredictRequest* out);

void EncodePredictResponse(const WirePredictResponse& response,
                           ByteWriter* out);
Status DecodePredictResponse(ByteReader* in, WirePredictResponse* out);

/// kError / kGoodbye body: u8 code | string message. Encoding an OK status
/// is legal (a clean-shutdown kGoodbye carries kOk).
void EncodeStatusBody(const Status& status, ByteWriter* out);
Status DecodeStatusBody(ByteReader* in, Status* out);

/// kStatsResponse body: one JSON string (engine/stats_json.h grammar,
/// wrapped by the server with transport counters).
void EncodeStatsBody(const std::string& json, ByteWriter* out);
Status DecodeStatsBody(ByteReader* in, std::string* out);

}  // namespace net
}  // namespace mixq
