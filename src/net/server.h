// Copyright 2026 MixQ-GNN Authors
// MixqServer — the network front door over an InferenceEngine.
//
// A TCP acceptor plus two threads per connection (reader, writer) map the
// wire protocol (net/wire.h, DESIGN.md §8) onto the engine's asynchronous
// Submit: the reader decodes each kPredictRequest frame and submits it
// immediately — WITHOUT waiting for the result — so every in-flight request
// from every connection sits in the same admission queue and the dispatcher's
// micro-batcher coalesces concurrent remote clients exactly like in-process
// ones. The writer completes each socket write when the matching future
// resolves, in submission order per connection (pipelining with in-order
// replies, the HTTP/1.1 shape — request ids are still echoed so clients
// never match by position alone).
//
// Overload semantics end to end: the engine's typed rejections
// (kResourceExhausted queue overflow, kDeadlineExceeded expiry, kUnavailable
// breaker/shed) travel as cheap kError frames — a flooded server answers
// every frame, it never drops connections. Connection-level limits behave
// the same way: past `max_connections` an accepted socket gets a typed
// kGoodbye(kResourceExhausted) and a clean close.
//
// A kStatsRequest frame answers with engine stats (engine/stats_json.h)
// wrapped alongside the server's transport counters — the metrics endpoint
// an operator dashboard polls.
//
// Zero-downtime rollout: StartWatching(dir) polls a bundle directory and
// LoadBundle/ReplaceModel (or LoadGraph/ReplaceGraph) on any added or
// modified *.mqb file — drop a new bundle into the directory and traffic
// moves to it at the next poll, while in-flight requests finish on the old
// version (registry versions make the swap atomic; see net/bundle_watcher.h).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/inference_engine.h"
#include "net/bundle_watcher.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mixq {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; MixqServer::port() reports the bound one
  /// Accepted connections beyond this answer kGoodbye(kResourceExhausted)
  /// and close — a typed rejection, not a SYN backlog drop.
  int max_connections = 64;
  /// Acceptor poll slice (shutdown responsiveness).
  std::chrono::milliseconds accept_poll{100};
  /// Transfer pacing for every connection (see IoOptions). The stall budget
  /// is what turns a wedged or trickling peer into a typed close instead of
  /// a leaked thread.
  IoOptions io;
};

class MixqServer {
 public:
  /// `engine` must outlive the server. Nothing starts until Start().
  MixqServer(engine::InferenceEngine* engine, ServerOptions options);

  /// Joins every thread; equivalent to Shutdown() if still running.
  ~MixqServer();

  MixqServer(const MixqServer&) = delete;
  MixqServer& operator=(const MixqServer&) = delete;

  /// Binds, listens, and starts the acceptor thread. kUnavailable when the
  /// port is taken.
  Status Start();

  /// Stops accepting, stops reading new frames, finishes writing every
  /// response already owed (their futures resolve — the engine guarantees
  /// it), sends each surviving connection a terminal kGoodbye, joins all
  /// threads. Idempotent.
  void Shutdown();

  /// Begins polling `dir` for bundle rollouts (see BundleWatcher). Call
  /// after Start(); kInvalidArgument when already watching.
  Status StartWatching(const std::string& dir,
                       std::chrono::milliseconds poll_interval =
                           std::chrono::milliseconds(1000));

  /// Bound port (valid after Start()).
  int port() const { return port_; }

  /// Transport-level counters (the engine's serving counters live in
  /// InferenceEngine::GetStats and are reported over the wire next to
  /// these; see stats endpoint).
  struct Stats {
    int64_t connections_accepted = 0;
    int64_t connections_rejected = 0;  ///< typed kGoodbye at the limit
    int64_t connections_active = 0;
    int64_t frames_read = 0;
    int64_t frames_written = 0;
    int64_t protocol_errors = 0;  ///< connection-fatal framing failures
    int64_t predict_requests = 0;
    int64_t stats_requests = 0;
    int64_t watcher_loads = 0;     ///< successful bundle (re)registrations
    int64_t watcher_failures = 0;  ///< bundle files that failed to load
  };
  Stats GetStats() const;

  /// The stats-endpoint payload: {"engine": <FormatStatsJson>, "server":
  /// {transport counters}}. Public so bench/examples can print the exact
  /// JSON remote clients receive.
  std::string StatsEndpointJson() const;

 private:
  /// One live connection: a reader thread decoding frames and submitting,
  /// a writer thread completing responses as futures resolve.
  struct Connection {
    TcpConnection conn;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> stop{false};
    std::atomic<bool> finished{false};

    /// Reader -> writer handoff. `pending` holds responses owed, in order.
    struct OutItem {
      uint64_t request_id = 0;
      bool is_predict = false;
      std::future<Result<engine::PredictResponse>> future;  ///< predict only
      std::vector<uint8_t> frame;  ///< pre-encoded for everything else
      bool goodbye_after = false;  ///< close the connection after writing
      std::chrono::steady_clock::time_point received;
    };
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutItem> out;
    bool reader_done = false;
  };

  void AcceptorLoop();
  void ReaderLoop(Connection* connection);
  void WriterLoop(Connection* connection);
  /// Decodes and dispatches one frame body; returns false when the
  /// connection must close (protocol-fatal — a kGoodbye has been queued).
  bool HandleFrame(Connection* connection, const FrameHeader& header,
                   const std::vector<uint8_t>& payload);
  void Enqueue(Connection* connection, Connection::OutItem item);
  void QueueGoodbye(Connection* connection, const Status& status);
  /// Joins finished connections; with `all`, joins every connection.
  void Reap(bool all);

  engine::InferenceEngine* const engine_;
  const ServerOptions options_;
  TcpListener listener_;
  int port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> connections_active_{0};
  std::atomic<int64_t> frames_read_{0};
  std::atomic<int64_t> frames_written_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> predict_requests_{0};
  std::atomic<int64_t> stats_requests_{0};

  std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::unique_ptr<BundleWatcher> watcher_;
  std::thread acceptor_;
};

}  // namespace net
}  // namespace mixq
