// Copyright 2026 MixQ-GNN Authors
#include "net/server.h"

#include <utility>

#include "common/json_util.h"
#include "engine/stats_json.h"

namespace mixq {
namespace net {

namespace {

std::vector<uint8_t> StatusFrame(FrameType type, uint64_t request_id,
                                 const Status& status) {
  ByteWriter body;
  EncodeStatusBody(status, &body);
  return BuildFrame(type, request_id, body);
}

}  // namespace

MixqServer::MixqServer(engine::InferenceEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

MixqServer::~MixqServer() { Shutdown(); }

Status MixqServer::Start() {
  if (started_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("server already started");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  MIXQ_RETURN_NOT_OK(listener.status());
  listener_ = listener.MoveValueOrDie();
  port_ = listener_.port();
  started_.store(true, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::OK();
}

Status MixqServer::StartWatching(const std::string& dir,
                                 std::chrono::milliseconds poll_interval) {
  if (watcher_ != nullptr) {
    return Status::InvalidArgument("already watching a bundle directory");
  }
  auto watcher = std::make_unique<BundleWatcher>(engine_, dir, poll_interval);
  MIXQ_RETURN_NOT_OK(watcher->Start());
  watcher_ = std::move(watcher);
  return Status::OK();
}

void MixqServer::Shutdown() {
  if (!started_.load(std::memory_order_relaxed)) return;
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  if (watcher_ != nullptr) watcher_->Stop();
  // Stop every reader; writers drain the responses already owed (their
  // futures resolve — the engine serves or expires everything admitted),
  // send a terminal kGoodbye, and shut the socket down.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      connection->stop.store(true, std::memory_order_relaxed);
      connection->cv.notify_all();
    }
  }
  Reap(/*all=*/true);
  started_.store(false, std::memory_order_relaxed);
}

void MixqServer::AcceptorLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket accepted;
    const Status status = listener_.Accept(&accepted, options_.accept_poll);
    if (!status.ok()) {
      // Accept failed (possibly an injected "net.accept" fault) before any
      // connection was taken off the queue: the pending peer — if any — is
      // picked up on the next loop, so serving continues.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!accepted.valid()) {  // timeout slice
      Reap(/*all=*/false);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Typed rejection, not a dropped connection: the peer learns WHY.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      TcpConnection reject(std::move(accepted), options_.io);
      const auto frame = StatusFrame(
          FrameType::kGoodbye, 0,
          Status::ResourceExhausted(
              "server at its connection limit (" +
              std::to_string(options_.max_connections) + ")"));
      reject.WriteAll(frame.data(), frame.size(), &stop_);
      frames_written_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->conn = TcpConnection(std::move(accepted), options_.io);
    Connection* raw = connection.get();
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    connection->reader = std::thread([this, raw] { ReaderLoop(raw); });
    connection->writer = std::thread([this, raw] { WriterLoop(raw); });
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.push_back(std::move(connection));
  }
}

void MixqServer::ReaderLoop(Connection* connection) {
  while (!connection->stop.load(std::memory_order_relaxed) &&
         !stop_.load(std::memory_order_relaxed)) {
    uint8_t header_bytes[kFrameHeaderBytes];
    Status status = connection->conn.ReadFull(
        header_bytes, kFrameHeaderBytes, &connection->stop);
    if (!status.ok()) break;  // clean close, reset, stall, or stop — done
    FrameHeader header;
    status = DecodeFrameHeader(header_bytes, &header);
    if (!status.ok()) {
      // Framing cannot be trusted: announce why, then close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueGoodbye(connection, status);
      break;
    }
    std::vector<uint8_t> payload(header.payload_bytes);
    if (header.payload_bytes > 0) {
      status = connection->conn.ReadFull(payload.data(), payload.size(),
                                         &connection->stop);
      if (!status.ok()) break;
    }
    status = CheckFramePayload(header, payload.data(), payload.size());
    if (!status.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueGoodbye(connection, status);
      break;
    }
    frames_read_.fetch_add(1, std::memory_order_relaxed);
    if (!HandleFrame(connection, header, payload)) break;
  }
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->reader_done = true;
  }
  connection->cv.notify_all();
}

bool MixqServer::HandleFrame(Connection* connection, const FrameHeader& header,
                             const std::vector<uint8_t>& payload) {
  ByteReader reader(payload.data(), payload.size());
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kPredictRequest: {
      predict_requests_.fetch_add(1, std::memory_order_relaxed);
      WirePredictRequest wire;
      const Status status = DecodePredictRequest(&reader, &wire);
      if (!status.ok()) {
        // The frame itself was intact (CRC passed) — a malformed BODY is a
        // per-request failure, the stream stays up.
        Connection::OutItem item;
        item.request_id = header.request_id;
        item.frame = StatusFrame(FrameType::kError, header.request_id, status);
        Enqueue(connection, std::move(item));
        return true;
      }
      engine::PredictRequest request;
      request.model = std::move(wire.model);
      request.graph = std::move(wire.graph);
      request.node_ids = std::move(wire.node_ids);
      request.precision = wire.precision;
      if (wire.deadline_us > 0) {
        // Relative on the wire (no shared clocks); absolute from receipt.
        request.deadline = engine::ServingClock::now() +
                           std::chrono::microseconds(wire.deadline_us);
      }
      Connection::OutItem item;
      item.request_id = header.request_id;
      item.is_predict = true;
      item.received = std::chrono::steady_clock::now();
      // Submit NOW, before the previous response was even written: every
      // pipelined request from every connection sits in the admission queue
      // together, which is what lets the dispatcher coalesce them.
      item.future = engine_->Submit(std::move(request));
      Enqueue(connection, std::move(item));
      return true;
    }
    case FrameType::kStatsRequest: {
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      ByteWriter body;
      EncodeStatsBody(StatsEndpointJson(), &body);
      Connection::OutItem item;
      item.request_id = header.request_id;
      item.frame = BuildFrame(FrameType::kStatsResponse, header.request_id,
                              body);
      Enqueue(connection, std::move(item));
      return true;
    }
    case FrameType::kPing: {
      Connection::OutItem item;
      item.request_id = header.request_id;
      item.frame = BuildFrame(FrameType::kPong, header.request_id,
                              ByteWriter());
      Enqueue(connection, std::move(item));
      return true;
    }
    case FrameType::kGoodbye:
      // The peer is leaving; stop reading, let the writer drain what is owed.
      return false;
    default: {
      // Unknown frame type: typed kError, connection stays up (a future
      // minor may add types an old server answers this way).
      Connection::OutItem item;
      item.request_id = header.request_id;
      item.frame = StatusFrame(
          FrameType::kError, header.request_id,
          Status::NotImplemented("unknown frame type " +
                                 std::to_string(header.type)));
      Enqueue(connection, std::move(item));
      return true;
    }
  }
}

void MixqServer::Enqueue(Connection* connection, Connection::OutItem item) {
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->out.push_back(std::move(item));
  }
  connection->cv.notify_all();
}

void MixqServer::QueueGoodbye(Connection* connection, const Status& status) {
  Connection::OutItem item;
  item.frame = StatusFrame(FrameType::kGoodbye, 0, status);
  item.goodbye_after = true;
  Enqueue(connection, std::move(item));
}

void MixqServer::WriterLoop(Connection* connection) {
  bool sent_goodbye = false;
  bool write_ok = true;
  while (write_ok) {
    Connection::OutItem item;
    {
      std::unique_lock<std::mutex> lock(connection->mu);
      connection->cv.wait(lock, [&] {
        return !connection->out.empty() || connection->reader_done ||
               connection->stop.load(std::memory_order_relaxed);
      });
      if (connection->out.empty()) {
        // Nothing owed. Exit once no more can arrive (reader finished) or
        // shutdown was requested — owed items above are always drained first.
        if (connection->reader_done ||
            connection->stop.load(std::memory_order_relaxed)) {
          break;
        }
        continue;
      }
      item = std::move(connection->out.front());
      connection->out.pop_front();
    }
    std::vector<uint8_t> frame;
    if (item.is_predict) {
      auto result = item.future.get();  // resolves: the engine guarantees it
      const double server_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - item.received)
              .count();
      if (result.ok()) {
        const engine::PredictResponse& response = result.ValueOrDie();
        WirePredictResponse wire;
        wire.rows = response.rows.rows();
        wire.cols = response.rows.cols();
        wire.data = response.rows.data();
        wire.node_ids = response.node_ids;
        wire.precision = response.precision;
        wire.cache_hit = response.cache_hit;
        wire.pruned = response.pruned;
        wire.batch_size = response.batch_size;
        wire.frontier_rows = response.frontier_rows;
        wire.queue_us = response.queue_us;
        wire.forward_us = response.forward_us;
        wire.total_us = response.total_us;
        wire.server_us = server_us;
        ByteWriter body;
        EncodePredictResponse(wire, &body);
        frame = BuildFrame(FrameType::kPredictResponse, item.request_id, body);
      } else {
        // THE overload path: queue overflow, deadline expiry, breaker shed —
        // each becomes one cheap typed frame on a healthy connection.
        frame = StatusFrame(FrameType::kError, item.request_id,
                            result.status());
      }
    } else {
      frame = std::move(item.frame);
    }
    // No stop flag here: responses owed are written even during shutdown
    // (the stall budget bounds a wedged peer).
    write_ok = connection->conn.WriteAll(frame.data(), frame.size()).ok();
    if (write_ok) {
      frames_written_.fetch_add(1, std::memory_order_relaxed);
    }
    if (item.goodbye_after) {
      sent_goodbye = true;
      break;
    }
  }
  if (write_ok && !sent_goodbye &&
      stop_.load(std::memory_order_relaxed)) {
    // Server-initiated shutdown: announce it instead of going silent.
    const auto frame =
        StatusFrame(FrameType::kGoodbye, 0, Status::OK());
    if (connection->conn.WriteAll(frame.data(), frame.size()).ok()) {
      frames_written_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Unblocks a reader still parked in ReadFull; it exits within one slice.
  connection->conn.ShutdownBoth();
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  connection->finished.store(true, std::memory_order_relaxed);
}

void MixqServer::Reap(bool all) {
  std::list<std::unique_ptr<Connection>> done;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->finished.load(std::memory_order_relaxed)) {
        done.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : done) {
    if (connection->writer.joinable()) connection->writer.join();
    if (connection->reader.joinable()) connection->reader.join();
    connection->conn.Close();
  }
}

MixqServer::Stats MixqServer::GetStats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  stats.frames_read = frames_read_.load(std::memory_order_relaxed);
  stats.frames_written = frames_written_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.predict_requests = predict_requests_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  if (watcher_ != nullptr) {
    stats.watcher_loads = watcher_->loads();
    stats.watcher_failures = watcher_->failures();
  }
  return stats;
}

std::string MixqServer::StatsEndpointJson() const {
  const Stats stats = GetStats();
  std::string out = "{\"engine\": ";
  out += engine::FormatStatsJson(engine_->GetStats());
  out += ", \"server\": {";
  const auto field = [&out](const char* name, int64_t value, bool last = false) {
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(value);
    if (!last) out += ", ";
  };
  field("connections_accepted", stats.connections_accepted);
  field("connections_rejected", stats.connections_rejected);
  field("connections_active", stats.connections_active);
  field("frames_read", stats.frames_read);
  field("frames_written", stats.frames_written);
  field("protocol_errors", stats.protocol_errors);
  field("predict_requests", stats.predict_requests);
  field("stats_requests", stats.stats_requests);
  field("watcher_loads", stats.watcher_loads);
  field("watcher_failures", stats.watcher_failures, /*last=*/true);
  out += "}}";
  return out;
}

}  // namespace net
}  // namespace mixq
