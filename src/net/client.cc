// Copyright 2026 MixQ-GNN Authors
#include "net/client.h"

#include <utility>

namespace mixq {
namespace net {

Result<MixqClient> MixqClient::Connect(const std::string& host, int port,
                                       ClientOptions options) {
  auto conn = TcpConnect(host, port, options.connect_timeout, options.io);
  MIXQ_RETURN_NOT_OK(conn.status());
  return MixqClient(conn.MoveValueOrDie());
}

void MixqClient::Close() {
  if (closed_) return;
  closed_ = true;
  if (conn_.valid() && !broken()) {
    // Best effort: tell the server we are leaving so its reader sees a
    // protocol-level close instead of a bare EOF.
    ByteWriter body;
    EncodeStatusBody(Status::OK(), &body);
    const auto frame = BuildFrame(FrameType::kGoodbye, 0, body);
    conn_.WriteAll(frame.data(), frame.size());
  }
  conn_.Close();
}

Status MixqClient::Break(Status status) {
  if (!broken()) broken_status_ = std::move(status);
  conn_.ShutdownBoth();
  return broken_status_;
}

Status MixqClient::WriteFrame(const std::vector<uint8_t>& frame) {
  return conn_.WriteAll(frame.data(), frame.size());
}

Status MixqClient::ReadFrame(FrameHeader* header,
                             std::vector<uint8_t>* payload) {
  uint8_t bytes[kFrameHeaderBytes];
  Status status = conn_.ReadFull(bytes, kFrameHeaderBytes);
  if (status.code() == StatusCode::kNotFound) {
    // EOF without a goodbye frame: the server vanished.
    return Status::Unavailable("connection closed without a goodbye");
  }
  MIXQ_RETURN_NOT_OK(status);
  MIXQ_RETURN_NOT_OK(DecodeFrameHeader(bytes, header));
  payload->resize(header->payload_bytes);
  if (!payload->empty()) {
    MIXQ_RETURN_NOT_OK(conn_.ReadFull(payload->data(), payload->size()));
  }
  return CheckFramePayload(*header, payload->data(), payload->size());
}

Status MixqClient::Send(const RemoteRequest& request, uint64_t* request_id) {
  if (broken()) return broken_status_;
  WirePredictRequest wire;
  wire.model = request.model;
  wire.graph = request.graph;
  wire.node_ids = request.node_ids;
  wire.precision = request.precision;
  wire.deadline_us = request.deadline_us;
  ByteWriter body;
  EncodePredictRequest(wire, &body);
  const uint64_t id = next_request_id_++;
  const auto frame = BuildFrame(FrameType::kPredictRequest, id, body);
  Status status = WriteFrame(frame);
  if (!status.ok()) return Break(std::move(status));
  ++outstanding_;
  *request_id = id;
  return Status::OK();
}

Result<RemoteReply> MixqClient::Receive() {
  if (broken()) return broken_status_;
  if (outstanding_ == 0) {
    return Status::InvalidArgument(
        "Receive with no outstanding request (Send first)");
  }
  FrameHeader header;
  std::vector<uint8_t> payload;
  Status status = ReadFrame(&header, &payload);
  if (!status.ok()) return Break(std::move(status));

  ByteReader reader(payload.data(), payload.size());
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kPredictResponse: {
      WirePredictResponse wire;
      status = DecodePredictResponse(&reader, &wire);
      if (!status.ok()) {
        return Break(Status::Internal("undecodable response from server: " +
                                      status.message()));
      }
      --outstanding_;
      RemoteReply reply;
      reply.request_id = header.request_id;
      reply.response.rows = Tensor::FromVector(
          Shape(wire.rows, wire.cols), std::move(wire.data));
      reply.response.node_ids = std::move(wire.node_ids);
      reply.response.precision = wire.precision;
      reply.response.cache_hit = wire.cache_hit;
      reply.response.pruned = wire.pruned;
      reply.response.batch_size = wire.batch_size;
      reply.response.frontier_rows = wire.frontier_rows;
      reply.response.queue_us = wire.queue_us;
      reply.response.forward_us = wire.forward_us;
      reply.response.total_us = wire.total_us;
      reply.response.server_us = wire.server_us;
      return reply;
    }
    case FrameType::kError: {
      Status remote;
      status = DecodeStatusBody(&reader, &remote);
      if (!status.ok()) {
        return Break(Status::Internal("undecodable error from server: " +
                                      status.message()));
      }
      --outstanding_;
      RemoteReply reply;
      reply.request_id = header.request_id;
      reply.status = std::move(remote);
      return reply;
    }
    case FrameType::kGoodbye: {
      Status remote;
      if (!DecodeStatusBody(&reader, &remote).ok()) {
        remote = Status::Unavailable("server said goodbye");
      }
      // A goodbye is connection-fatal by protocol; the pending requests die
      // with the typed reason the server gave.
      if (remote.ok()) {
        remote = Status::Unavailable("server closed the connection");
      }
      return Break(std::move(remote));
    }
    default:
      return Break(Status::Internal("unexpected frame type " +
                                    std::to_string(header.type) +
                                    " while awaiting a prediction"));
  }
}

Result<RemoteResponse> MixqClient::Predict(const RemoteRequest& request) {
  if (outstanding_ != 0) {
    return Status::InvalidArgument(
        "Predict while pipelined requests are outstanding");
  }
  uint64_t id = 0;
  MIXQ_RETURN_NOT_OK(Send(request, &id));
  auto reply = Receive();
  MIXQ_RETURN_NOT_OK(reply.status());
  RemoteReply value = reply.MoveValueOrDie();
  if (value.request_id != id) {
    return Break(Status::Internal(
        "reply id " + std::to_string(value.request_id) +
        " does not match request id " + std::to_string(id)));
  }
  MIXQ_RETURN_NOT_OK(value.status);
  return std::move(value.response);
}

Status MixqClient::Ping() {
  if (broken()) return broken_status_;
  if (outstanding_ != 0) {
    return Status::InvalidArgument(
        "Ping while pipelined requests are outstanding");
  }
  const uint64_t id = next_request_id_++;
  const auto frame = BuildFrame(FrameType::kPing, id, ByteWriter());
  Status status = WriteFrame(frame);
  if (!status.ok()) return Break(std::move(status));
  FrameHeader header;
  std::vector<uint8_t> payload;
  status = ReadFrame(&header, &payload);
  if (!status.ok()) return Break(std::move(status));
  if (static_cast<FrameType>(header.type) == FrameType::kGoodbye) {
    ByteReader reader(payload.data(), payload.size());
    Status remote;
    if (!DecodeStatusBody(&reader, &remote).ok() || remote.ok()) {
      remote = Status::Unavailable("server closed the connection");
    }
    return Break(std::move(remote));
  }
  if (static_cast<FrameType>(header.type) != FrameType::kPong ||
      header.request_id != id) {
    return Break(Status::Internal("unexpected reply to ping"));
  }
  return Status::OK();
}

Result<std::string> MixqClient::StatsJson() {
  if (broken()) return broken_status_;
  if (outstanding_ != 0) {
    return Status::InvalidArgument(
        "StatsJson while pipelined requests are outstanding");
  }
  const uint64_t id = next_request_id_++;
  const auto frame = BuildFrame(FrameType::kStatsRequest, id, ByteWriter());
  Status status = WriteFrame(frame);
  if (!status.ok()) return Break(std::move(status));
  FrameHeader header;
  std::vector<uint8_t> payload;
  status = ReadFrame(&header, &payload);
  if (!status.ok()) return Break(std::move(status));
  ByteReader reader(payload.data(), payload.size());
  if (static_cast<FrameType>(header.type) == FrameType::kGoodbye) {
    Status remote;
    if (!DecodeStatusBody(&reader, &remote).ok() || remote.ok()) {
      remote = Status::Unavailable("server closed the connection");
    }
    return Break(std::move(remote));
  }
  if (static_cast<FrameType>(header.type) != FrameType::kStatsResponse ||
      header.request_id != id) {
    return Break(Status::Internal("unexpected reply to stats request"));
  }
  std::string json;
  status = DecodeStatsBody(&reader, &json);
  if (!status.ok()) {
    return Break(Status::Internal("undecodable stats from server: " +
                                  status.message()));
  }
  return json;
}

}  // namespace net
}  // namespace mixq
