// Copyright 2026 MixQ-GNN Authors
#include "net/bundle_watcher.h"

#include <dirent.h>
#include <sys/stat.h>

#include <utility>
#include <vector>

#include "engine/model_bundle.h"

namespace mixq {
namespace net {

namespace {

bool HasMqbSuffix(const std::string& name) {
  static const std::string kSuffix = ".mqb";
  return name.size() > kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

std::string Stem(const std::string& name) {
  return name.substr(0, name.size() - 4);  // strip ".mqb"
}

}  // namespace

BundleWatcher::BundleWatcher(engine::InferenceEngine* engine, std::string dir,
                             std::chrono::milliseconds poll_interval)
    : engine_(engine), dir_(std::move(dir)), poll_interval_(poll_interval) {}

BundleWatcher::~BundleWatcher() { Stop(); }

Status BundleWatcher::Start() {
  DIR* probe = ::opendir(dir_.c_str());
  if (probe == nullptr) {
    return Status::NotFound("cannot open watch directory '" + dir_ + "'");
  }
  ::closedir(probe);
  ScanOnce();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

void BundleWatcher::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void BundleWatcher::PollLoop() {
  // Sleep in small slices so Stop() is responsive at long poll intervals.
  const auto slice = std::chrono::milliseconds(50);
  while (!stop_.load(std::memory_order_relaxed)) {
    auto remaining = poll_interval_;
    while (remaining.count() > 0 && !stop_.load(std::memory_order_relaxed)) {
      const auto nap = remaining < slice ? remaining : slice;
      std::this_thread::sleep_for(nap);
      remaining -= nap;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    ScanOnce();
  }
}

void BundleWatcher::ScanOnce() {
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return;  // transient: retry next poll
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (HasMqbSuffix(name)) names.push_back(name);
  }
  ::closedir(dir);

  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;  // raced a rename
    FileState now;
    now.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                   st.st_mtim.tv_nsec;
    now.size = static_cast<int64_t>(st.st_size);
    auto it = seen_.find(name);
    if (it != seen_.end() && it->second.mtime_ns == now.mtime_ns &&
        it->second.size == now.size) {
      continue;  // unchanged
    }
    // Record the state before loading: a bundle that fails to load is not
    // retried until the FILE changes again, so a bad artifact cannot spin
    // the poll loop on load attempts.
    seen_[name] = now;
    if (LoadOne(Stem(name), path).ok()) {
      loads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status BundleWatcher::LoadOne(const std::string& name,
                              const std::string& path) {
  auto manifest = engine::InspectBundle(path);
  MIXQ_RETURN_NOT_OK(manifest.status());
  if (manifest.ValueOrDie().kind == engine::BundleKind::kModel) {
    auto model = engine::LoadBundle(path);
    MIXQ_RETURN_NOT_OK(model.status());
    return engine_->ReplaceModel(name, model.MoveValueOrDie());
  }
  auto graph = engine::LoadGraph(path);
  MIXQ_RETURN_NOT_OK(graph.status());
  engine::GraphBundle bundle = graph.MoveValueOrDie();
  return engine_->ReplaceGraph(name, std::move(bundle.features),
                               std::move(bundle.op));
}

}  // namespace net
}  // namespace mixq
