// Copyright 2026 MixQ-GNN Authors
// BundleWatcher — zero-downtime rollout for a serving process.
//
// Watches one directory for `*.mqb` bundle files (engine/model_bundle.h) and
// keeps the engine's registries in sync: a new or modified file is inspected
// (InspectBundle reads only the header + metadata section), classified as a
// model or graph bundle, loaded, and registered under its file stem via
// ReplaceModel / ReplaceGraph — the atomic hot-swap path, so in-flight
// requests finish on the version they resolved and the result cache
// invalidates through the registry version bump. Dropping `tab3_qat8.mqb`
// into the watched directory moves traffic to it at the next poll with no
// restart and no dropped request.
//
// Change detection is (mtime, size) polling: bundles are written with
// WriteFileAtomic (rename into place), so a file is never observed
// half-written. A bundle that fails to load is counted and retried on the
// next change to the file — a bad rollout never takes down serving, the old
// version simply keeps serving. Deletions are deliberately ignored:
// unregistering a live model on an operator's `rm` is a availability
// hazard, not a rollout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/inference_engine.h"

namespace mixq {
namespace net {

class BundleWatcher {
 public:
  /// `engine` must outlive the watcher. Nothing starts until Start().
  BundleWatcher(engine::InferenceEngine* engine, std::string dir,
                std::chrono::milliseconds poll_interval);

  /// Stops the poll thread; equivalent to Stop().
  ~BundleWatcher();

  BundleWatcher(const BundleWatcher&) = delete;
  BundleWatcher& operator=(const BundleWatcher&) = delete;

  /// Performs one synchronous scan (so bundles already present are served
  /// before Start returns), then starts the poll thread. kNotFound when the
  /// directory cannot be listed.
  Status Start();

  /// Joins the poll thread. Idempotent.
  void Stop();

  /// Runs one scan immediately on the caller's thread (also what the poll
  /// thread calls). Safe concurrently with the poll thread only by accident
  /// of timing — intended for tests and the pre-Start initial scan.
  void ScanOnce();

  int64_t loads() const { return loads_.load(std::memory_order_relaxed); }
  int64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  struct FileState {
    int64_t mtime_ns = 0;
    int64_t size = 0;
  };

  void PollLoop();
  /// Loads `path` (stem `name`) as whatever kind it inspects to and
  /// hot-swaps it into the engine.
  Status LoadOne(const std::string& name, const std::string& path);

  engine::InferenceEngine* const engine_;
  const std::string dir_;
  const std::chrono::milliseconds poll_interval_;

  std::map<std::string, FileState> seen_;  ///< poll thread only after Start
  std::atomic<int64_t> loads_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace net
}  // namespace mixq
