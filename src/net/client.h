// Copyright 2026 MixQ-GNN Authors
// MixqClient — the client half of the network front door (DESIGN.md §8).
//
// Two usage shapes over one connection:
//
//   blocking:   auto r = client.Predict(request);          // send + wait
//   pipelined:  for (...) ids.push_back(client.Send(req)); // all in flight
//               for (...) auto reply = client.Receive();   // in-order
//
// Pipelining is what makes remote micro-batching work: every frame written
// before the first Receive sits in the server's admission queue together, so
// the dispatcher coalesces them into shared forwards exactly like concurrent
// in-process Submit calls. Replies arrive in send order (the protocol
// guarantees per-connection FIFO) and each echoes its request id.
//
// Every failure is typed. An application error travels back as a kError
// frame and surfaces as the reply's Result status — kResourceExhausted queue
// overflow, kDeadlineExceeded expiry, kUnavailable breaker/shed, kNotFound
// unknown names — with the connection still healthy. A kGoodbye (server
// shutdown, connection limit, protocol violation) or a transport failure
// marks the client broken: the call that observed it and every later call
// return the same typed status, never a hang or a crash.
//
// Not thread-safe: one MixqClient per thread (connections are cheap; the
// server coalesces across them anyway).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/batcher.h"
#include "net/socket.h"
#include "net/wire.h"
#include "tensor/tensor.h"

namespace mixq {
namespace net {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{5000};
  /// Transfer pacing; `io.stall_timeout` bounds every Receive, so a wedged
  /// server yields kDeadlineExceeded, never a hang.
  IoOptions io;
};

/// A remote prediction request. `deadline_us` is the serving budget in
/// microseconds, measured from SERVER receipt (relative on the wire — client
/// and server clocks are never compared); <= 0 means no deadline.
struct RemoteRequest {
  std::string model;
  std::string graph;
  std::vector<int64_t> node_ids;
  engine::Precision precision = engine::Precision::kAuto;
  int64_t deadline_us = 0;
};

/// A successful remote prediction: the logit rows (bitwise identical to the
/// in-process PredictResponse — the parity test holds the server to that)
/// plus the serving metadata, and `server_us` for splitting network from
/// serving time.
struct RemoteResponse {
  Tensor rows;  ///< [node_ids.size() (or all nodes), out_dim]
  std::vector<int64_t> node_ids;
  engine::Precision precision = engine::Precision::kFp32;
  bool cache_hit = false;
  bool pruned = false;
  int64_t batch_size = 0;
  int64_t frontier_rows = 0;
  double queue_us = 0.0;
  double forward_us = 0.0;
  double total_us = 0.0;
  double server_us = 0.0;
};

/// One pipelined reply: which request it answers and its typed outcome.
struct RemoteReply {
  uint64_t request_id = 0;
  Status status;             ///< OK iff `response` holds the prediction
  RemoteResponse response;   ///< valid only when status.ok()
};

class MixqClient {
 public:
  /// Connects and returns a ready client. kUnavailable when nothing listens,
  /// kDeadlineExceeded on connect timeout.
  static Result<MixqClient> Connect(const std::string& host, int port,
                                    ClientOptions options = ClientOptions());

  MixqClient(MixqClient&&) = default;
  MixqClient& operator=(MixqClient&&) = default;

  /// Sends a kGoodbye (best effort) and closes. Also the destructor's path.
  void Close();
  ~MixqClient() { Close(); }

  // ---- blocking ------------------------------------------------------------

  /// Send + Receive in one call. kInvalidArgument when pipelined requests
  /// are still outstanding (their replies are owed first).
  Result<RemoteResponse> Predict(const RemoteRequest& request);

  /// Round-trips a kPing (liveness + version handshake in one frame).
  Status Ping();

  /// Fetches the server's metrics snapshot: {"engine": <engine stats JSON,
  /// engine/stats_json.h grammar>, "server": {transport counters}}.
  /// kInvalidArgument while pipelined requests are outstanding.
  Result<std::string> StatsJson();

  // ---- pipelined -----------------------------------------------------------

  /// Writes one request frame and returns its request id WITHOUT waiting.
  Status Send(const RemoteRequest& request, uint64_t* request_id);

  /// Blocks for the next reply (send order). kInvalidArgument when nothing
  /// is outstanding; kDeadlineExceeded when the server stalls past the
  /// configured budget; the broken-connection status after a kGoodbye.
  Result<RemoteReply> Receive();

  /// Replies still owed by the server.
  int64_t outstanding() const { return outstanding_; }

  /// True once the connection failed or the server said kGoodbye; every
  /// subsequent call returns `broken_status()`.
  bool broken() const { return !broken_status_.ok(); }
  const Status& broken_status() const { return broken_status_; }

 private:
  explicit MixqClient(TcpConnection conn) : conn_(std::move(conn)) {}

  /// Marks the client broken with `status` and returns it.
  Status Break(Status status);
  /// Reads one validated frame (header + CRC-checked payload).
  Status ReadFrame(FrameHeader* header, std::vector<uint8_t>* payload);
  Status WriteFrame(const std::vector<uint8_t>& frame);

  TcpConnection conn_;
  uint64_t next_request_id_ = 1;
  int64_t outstanding_ = 0;
  Status broken_status_;  ///< OK while healthy
  bool closed_ = false;
};

}  // namespace net
}  // namespace mixq
