// Copyright 2026 MixQ-GNN Authors
#include "net/wire.h"

#include <cstring>

namespace mixq {
namespace net {

namespace {

constexpr char kMagic[4] = {'M', 'Q', 'R', 'F'};

/// StatusCode <-> wire byte. The numbering is part of the protocol spec
/// (DESIGN.md §8) and therefore pinned here rather than relying on the
/// C++ enum's incidental values staying put.
uint8_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kOutOfRange: return 2;
    case StatusCode::kNotImplemented: return 3;
    case StatusCode::kInternal: return 4;
    case StatusCode::kNotFound: return 5;
    case StatusCode::kResourceExhausted: return 6;
    case StatusCode::kDeadlineExceeded: return 7;
    case StatusCode::kUnavailable: return 8;
  }
  return 4;  // kInternal
}

bool WireToStatusCode(uint8_t wire, StatusCode* out) {
  switch (wire) {
    case 0: *out = StatusCode::kOk; return true;
    case 1: *out = StatusCode::kInvalidArgument; return true;
    case 2: *out = StatusCode::kOutOfRange; return true;
    case 3: *out = StatusCode::kNotImplemented; return true;
    case 4: *out = StatusCode::kInternal; return true;
    case 5: *out = StatusCode::kNotFound; return true;
    case 6: *out = StatusCode::kResourceExhausted; return true;
    case 7: *out = StatusCode::kDeadlineExceeded; return true;
    case 8: *out = StatusCode::kUnavailable; return true;
    default: return false;
  }
}

uint8_t PrecisionToWire(engine::Precision p) {
  switch (p) {
    case engine::Precision::kAuto: return 0;
    case engine::Precision::kFp32: return 1;
    case engine::Precision::kInt8: return 2;
  }
  return 0;
}

Status WireToPrecision(uint8_t wire, engine::Precision* out) {
  switch (wire) {
    case 0: *out = engine::Precision::kAuto; return Status::OK();
    case 1: *out = engine::Precision::kFp32; return Status::OK();
    case 2: *out = engine::Precision::kInt8; return Status::OK();
    default:
      return Status::InvalidArgument("unknown precision byte " +
                                     std::to_string(wire));
  }
}

}  // namespace

std::vector<uint8_t> BuildFrame(FrameType type, uint64_t request_id,
                                const ByteWriter& body) {
  ByteWriter frame;
  frame.PutBytes(kMagic, sizeof(kMagic));
  frame.PutU8(kProtocolMajor);
  frame.PutU8(kProtocolMinor);
  frame.PutU8(static_cast<uint8_t>(type));
  frame.PutU8(0);  // reserved
  frame.PutU64(request_id);
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutU32(Crc32(body.buffer().data(), body.size()));
  frame.PutBytes(body.buffer().data(), body.size());
  return frame.buffer();
}

Status DecodeFrameHeader(const uint8_t* bytes, FrameHeader* out) {
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  ByteReader reader(bytes + sizeof(kMagic),
                    kFrameHeaderBytes - sizeof(kMagic));
  uint8_t reserved = 0;
  MIXQ_RETURN_NOT_OK(reader.ReadU8(&out->major));
  MIXQ_RETURN_NOT_OK(reader.ReadU8(&out->minor));
  MIXQ_RETURN_NOT_OK(reader.ReadU8(&out->type));
  MIXQ_RETURN_NOT_OK(reader.ReadU8(&reserved));
  MIXQ_RETURN_NOT_OK(reader.ReadU64(&out->request_id));
  MIXQ_RETURN_NOT_OK(reader.ReadU32(&out->payload_bytes));
  MIXQ_RETURN_NOT_OK(reader.ReadU32(&out->payload_crc));
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved frame-header byte");
  }
  if (out->major > kProtocolMajor) {
    return Status::NotImplemented(
        "peer speaks protocol major " + std::to_string(out->major) +
        "; this build speaks " + std::to_string(kProtocolMajor));
  }
  if (out->payload_bytes > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(out->payload_bytes) +
                                   " bytes exceeds the protocol cap");
  }
  return Status::OK();
}

Status CheckFramePayload(const FrameHeader& header, const uint8_t* payload,
                         size_t size) {
  if (size != header.payload_bytes) {
    return Status::Internal("payload size does not match header");
  }
  const uint32_t crc = Crc32(payload, size);
  if (crc != header.payload_crc) {
    return Status::InvalidArgument("frame payload CRC mismatch");
  }
  return Status::OK();
}

void EncodePredictRequest(const WirePredictRequest& request, ByteWriter* out) {
  out->PutString(request.model);
  out->PutString(request.graph);
  out->PutPodVector(request.node_ids);
  out->PutU8(PrecisionToWire(request.precision));
  out->PutI64(request.deadline_us);
}

Status DecodePredictRequest(ByteReader* in, WirePredictRequest* out) {
  MIXQ_RETURN_NOT_OK(in->ReadString(&out->model));
  MIXQ_RETURN_NOT_OK(in->ReadString(&out->graph));
  MIXQ_RETURN_NOT_OK(in->ReadPodVector(&out->node_ids));
  uint8_t precision = 0;
  MIXQ_RETURN_NOT_OK(in->ReadU8(&precision));
  MIXQ_RETURN_NOT_OK(WireToPrecision(precision, &out->precision));
  MIXQ_RETURN_NOT_OK(in->ReadI64(&out->deadline_us));
  return Status::OK();
}

void EncodePredictResponse(const WirePredictResponse& response,
                           ByteWriter* out) {
  out->PutI64(response.rows);
  out->PutI64(response.cols);
  out->PutPodVector(response.data);
  out->PutPodVector(response.node_ids);
  out->PutU8(PrecisionToWire(response.precision));
  uint8_t flags = 0;
  if (response.cache_hit) flags |= 1u;
  if (response.pruned) flags |= 2u;
  out->PutU8(flags);
  out->PutI64(response.batch_size);
  out->PutI64(response.frontier_rows);
  out->PutF64(response.queue_us);
  out->PutF64(response.forward_us);
  out->PutF64(response.total_us);
  out->PutF64(response.server_us);
}

Status DecodePredictResponse(ByteReader* in, WirePredictResponse* out) {
  MIXQ_RETURN_NOT_OK(in->ReadI64(&out->rows));
  MIXQ_RETURN_NOT_OK(in->ReadI64(&out->cols));
  MIXQ_RETURN_NOT_OK(in->ReadPodVector(&out->data));
  MIXQ_RETURN_NOT_OK(in->ReadPodVector(&out->node_ids));
  if (out->rows < 0 || out->cols < 0 ||
      (out->rows != 0 &&
       out->data.size() / static_cast<size_t>(out->rows) !=
           static_cast<size_t>(out->cols)) ||
      (out->rows == 0 && !out->data.empty())) {
    return Status::InvalidArgument("response dims do not match data length");
  }
  uint8_t precision = 0;
  uint8_t flags = 0;
  MIXQ_RETURN_NOT_OK(in->ReadU8(&precision));
  MIXQ_RETURN_NOT_OK(WireToPrecision(precision, &out->precision));
  MIXQ_RETURN_NOT_OK(in->ReadU8(&flags));
  out->cache_hit = (flags & 1u) != 0;
  out->pruned = (flags & 2u) != 0;
  MIXQ_RETURN_NOT_OK(in->ReadI64(&out->batch_size));
  MIXQ_RETURN_NOT_OK(in->ReadI64(&out->frontier_rows));
  MIXQ_RETURN_NOT_OK(in->ReadF64(&out->queue_us));
  MIXQ_RETURN_NOT_OK(in->ReadF64(&out->forward_us));
  MIXQ_RETURN_NOT_OK(in->ReadF64(&out->total_us));
  MIXQ_RETURN_NOT_OK(in->ReadF64(&out->server_us));
  return Status::OK();
}

void EncodeStatusBody(const Status& status, ByteWriter* out) {
  out->PutU8(StatusCodeToWire(status.code()));
  out->PutString(status.message());
}

Status DecodeStatusBody(ByteReader* in, Status* out) {
  uint8_t wire = 0;
  std::string message;
  MIXQ_RETURN_NOT_OK(in->ReadU8(&wire));
  MIXQ_RETURN_NOT_OK(in->ReadString(&message));
  StatusCode code = StatusCode::kInternal;
  if (!WireToStatusCode(wire, &code)) {
    // A future minor added a code this build does not know: degrade to
    // kInternal but keep the message — typed, never dropped.
    *out = Status::Internal("unknown remote status code " +
                            std::to_string(wire) + ": " + message);
    return Status::OK();
  }
  *out = Status(code, std::move(message));
  return Status::OK();
}

void EncodeStatsBody(const std::string& json, ByteWriter* out) {
  out->PutString(json);
}

Status DecodeStatsBody(ByteReader* in, std::string* out) {
  return in->ReadString(out);
}

}  // namespace net
}  // namespace mixq
