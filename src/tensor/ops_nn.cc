// Copyright 2026 MixQ-GNN Authors
// Neural-network autograd ops: activations, softmax, losses, dropout,
// graph readout pooling, batch norm.
#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/op_utils.h"
#include "tensor/ops.h"

namespace mixq {

using internal::MakeOpResult;
using internal::NeedsGrad;

namespace {

// Generic unary elementwise op: fwd(x) and dfdx given (x, y).
template <typename FwdFn, typename DervFn>
Tensor UnaryElementwise(const Tensor& x, FwdFn fwd, DervFn dfdx) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(x.data()[i]);
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, dfdx](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) {
      xi->grad[i] += self.grad[i] * dfdx(xi->data[i], self.data[i]);
    }
  });
}

}  // namespace

Tensor Relu(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& x, float negative_slope) {
  return UnaryElementwise(
      x, [negative_slope](float v) { return v > 0.0f ? v : negative_slope * v; },
      [negative_slope](float v, float) { return v > 0.0f ? 1.0f : negative_slope; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryElementwise(x, [](float v) { return std::tanh(v); },
                          [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& x) {
  return UnaryElementwise(x, [](float v) { return std::exp(v); },
                          [](float, float y) { return y; });
}

Tensor Softmax1D(const Tensor& x) {
  MIXQ_CHECK_GE(x.numel(), 1);
  float mx = -std::numeric_limits<float>::infinity();
  for (float v : x.data()) mx = std::max(mx, v);
  std::vector<float> out(x.data().size());
  double denom = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(x.data()[i] - mx);
    denom += out[i];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (auto& v : out) v *= inv;
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    double dot = 0.0;
    for (size_t i = 0; i < self.data.size(); ++i) {
      dot += static_cast<double>(self.grad[i]) * self.data[i];
    }
    for (size_t i = 0; i < self.data.size(); ++i) {
      xi->grad[i] += self.data[i] * (self.grad[i] - static_cast<float>(dot));
    }
  });
}

Tensor LogSoftmaxRows(const Tensor& x) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t n = x.rows(), c = x.cols();
  std::vector<float> out(x.data().size());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = x.data().data() + i * c;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < c; ++j) {
      out[static_cast<size_t>(i * c + j)] = row[j] - lse;
    }
  }
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, n, c](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (int64_t i = 0; i < n; ++i) {
      double gsum = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        gsum += self.grad[static_cast<size_t>(i * c + j)];
      }
      for (int64_t j = 0; j < c; ++j) {
        const size_t k = static_cast<size_t>(i * c + j);
        const float softmax = std::exp(self.data[k]);
        xi->grad[k] += self.grad[k] - softmax * static_cast<float>(gsum);
      }
    }
  });
}

Tensor CrossEntropyMasked(const Tensor& logits, const std::vector<int64_t>& labels,
                          const std::vector<uint8_t>& mask) {
  MIXQ_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.rows(), c = logits.cols();
  MIXQ_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  MIXQ_CHECK_EQ(static_cast<int64_t>(mask.size()), n);
  // Fused log-softmax + NLL for numerical stability; store row softmax work
  // implicitly by recomputing from logits in backward (cheap, avoids copies).
  int64_t count = 0;
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (!mask[static_cast<size_t>(i)] || labels[static_cast<size_t>(i)] < 0) continue;
    ++count;
    const float* row = logits.data().data() + i * c;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const double lse = mx + std::log(denom);
    loss -= row[labels[static_cast<size_t>(i)]] - lse;
  }
  MIXQ_CHECK_GT(count, 0) << "CrossEntropyMasked: empty mask";
  const float value = static_cast<float>(loss / static_cast<double>(count));
  auto li = logits.impl_ptr();
  auto labels_copy = labels;
  auto mask_copy = mask;
  return MakeOpResult(
      Shape(1), {value}, {logits},
      [li, labels_copy, mask_copy, n, c, count](TensorImpl& self) {
        if (!NeedsGrad(*li)) return;
        li->EnsureGrad();
        const float g = self.grad[0] / static_cast<float>(count);
        for (int64_t i = 0; i < n; ++i) {
          if (!mask_copy[static_cast<size_t>(i)] ||
              labels_copy[static_cast<size_t>(i)] < 0) {
            continue;
          }
          const float* row = li->data.data() + i * c;
          float mx = -std::numeric_limits<float>::infinity();
          for (int64_t j = 0; j < c; ++j) mx = std::max(mx, row[j]);
          double denom = 0.0;
          for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
          for (int64_t j = 0; j < c; ++j) {
            const float p = static_cast<float>(std::exp(row[j] - mx) / denom);
            const float onehot =
                (j == labels_copy[static_cast<size_t>(i)]) ? 1.0f : 0.0f;
            li->grad[static_cast<size_t>(i * c + j)] += g * (p - onehot);
          }
        }
      });
}

Tensor BceWithLogitsMasked(const Tensor& logits, const Tensor& targets,
                           const std::vector<uint8_t>& mask) {
  MIXQ_CHECK(logits.shape() == targets.shape());
  const int64_t n = logits.rows(), t = logits.cols();
  MIXQ_CHECK_EQ(static_cast<int64_t>(mask.size()), n);
  int64_t count = 0;
  for (uint8_t m : mask) count += m ? 1 : 0;
  MIXQ_CHECK_GT(count, 0) << "BceWithLogitsMasked: empty mask";
  const double norm = 1.0 / (static_cast<double>(count) * static_cast<double>(t));
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    for (int64_t j = 0; j < t; ++j) {
      const double z = logits.data()[static_cast<size_t>(i * t + j)];
      const double y = targets.data()[static_cast<size_t>(i * t + j)];
      // max(z,0) - z*y + log(1 + exp(-|z|)): the numerically stable form.
      loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
    }
  }
  auto li = logits.impl_ptr();
  auto ti = targets.impl_ptr();
  auto mask_copy = mask;
  return MakeOpResult(Shape(1), {static_cast<float>(loss * norm)}, {logits, targets},
                      [li, ti, mask_copy, n, t, norm](TensorImpl& self) {
                        if (!NeedsGrad(*li)) return;
                        li->EnsureGrad();
                        const float g = self.grad[0] * static_cast<float>(norm);
                        for (int64_t i = 0; i < n; ++i) {
                          if (!mask_copy[static_cast<size_t>(i)]) continue;
                          for (int64_t j = 0; j < t; ++j) {
                            const size_t k = static_cast<size_t>(i * t + j);
                            const float z = li->data[k];
                            const float y = ti->data[k];
                            const float s = 1.0f / (1.0f + std::exp(-z));
                            li->grad[k] += g * (s - y);
                          }
                        }
                      });
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  MIXQ_CHECK_GE(p, 0.0f);
  MIXQ_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return x;
  MIXQ_CHECK(rng != nullptr);
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(x.data().size());
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.0f : scale;
    (*mask)[i] = m;
    out[i] = x.data()[i] * m;
  }
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, mask](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) {
      xi->grad[i] += self.grad[i] * (*mask)[i];
    }
  });
}

Tensor GlobalPool(const Tensor& x, const std::vector<int64_t>& batch,
                  int64_t num_graphs, PoolMode mode) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t n = x.rows(), f = x.cols();
  MIXQ_CHECK_EQ(static_cast<int64_t>(batch.size()), n);
  std::vector<float> out(static_cast<size_t>(num_graphs * f),
                         mode == PoolMode::kMax
                             ? -std::numeric_limits<float>::infinity()
                             : 0.0f);
  std::vector<int64_t> counts(static_cast<size_t>(num_graphs), 0);
  // argmax[g*f + j] = node index whose feature j achieved the max (kMax only).
  auto argmax = std::make_shared<std::vector<int64_t>>();
  if (mode == PoolMode::kMax) {
    argmax->assign(static_cast<size_t>(num_graphs * f), -1);
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = batch[static_cast<size_t>(i)];
    MIXQ_CHECK_GE(g, 0);
    MIXQ_CHECK_LT(g, num_graphs);
    ++counts[static_cast<size_t>(g)];
    for (int64_t j = 0; j < f; ++j) {
      const size_t o = static_cast<size_t>(g * f + j);
      const float v = x.data()[static_cast<size_t>(i * f + j)];
      switch (mode) {
        case PoolMode::kMax:
          if (v > out[o]) {
            out[o] = v;
            (*argmax)[o] = i;
          }
          break;
        case PoolMode::kMean:
        case PoolMode::kSum:
          out[o] += v;
          break;
      }
    }
  }
  if (mode == PoolMode::kMean) {
    for (int64_t g = 0; g < num_graphs; ++g) {
      const float inv =
          counts[static_cast<size_t>(g)] > 0
              ? 1.0f / static_cast<float>(counts[static_cast<size_t>(g)])
              : 0.0f;
      for (int64_t j = 0; j < f; ++j) out[static_cast<size_t>(g * f + j)] *= inv;
    }
  }
  // Empty graphs under max pooling would keep -inf; surface that loudly.
  if (mode == PoolMode::kMax) {
    for (int64_t g = 0; g < num_graphs; ++g) {
      MIXQ_CHECK_GT(counts[static_cast<size_t>(g)], 0) << "empty graph " << g;
    }
  }
  auto xi = x.impl_ptr();
  auto batch_copy = batch;
  auto counts_copy = counts;
  return MakeOpResult(
      Shape(num_graphs, f), std::move(out), {x},
      [xi, batch_copy, counts_copy, argmax, num_graphs, f, mode](TensorImpl& self) {
        if (!NeedsGrad(*xi)) return;
        xi->EnsureGrad();
        const int64_t n = static_cast<int64_t>(batch_copy.size());
        switch (mode) {
          case PoolMode::kMax:
            for (int64_t g = 0; g < num_graphs; ++g) {
              for (int64_t j = 0; j < f; ++j) {
                const size_t o = static_cast<size_t>(g * f + j);
                const int64_t src = (*argmax)[o];
                if (src >= 0) {
                  xi->grad[static_cast<size_t>(src * f + j)] += self.grad[o];
                }
              }
            }
            break;
          case PoolMode::kSum:
            for (int64_t i = 0; i < n; ++i) {
              const int64_t g = batch_copy[static_cast<size_t>(i)];
              for (int64_t j = 0; j < f; ++j) {
                xi->grad[static_cast<size_t>(i * f + j)] +=
                    self.grad[static_cast<size_t>(g * f + j)];
              }
            }
            break;
          case PoolMode::kMean:
            for (int64_t i = 0; i < n; ++i) {
              const int64_t g = batch_copy[static_cast<size_t>(i)];
              const float inv =
                  1.0f / static_cast<float>(counts_copy[static_cast<size_t>(g)]);
              for (int64_t j = 0; j < f; ++j) {
                xi->grad[static_cast<size_t>(i * f + j)] +=
                    self.grad[static_cast<size_t>(g * f + j)] * inv;
              }
            }
            break;
        }
      });
}

Tensor BatchNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                     std::vector<float>* running_mean, std::vector<float>* running_var,
                     bool training, float momentum, float eps) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t n = x.rows(), f = x.cols();
  MIXQ_CHECK_EQ(gamma.numel(), f);
  MIXQ_CHECK_EQ(beta.numel(), f);
  MIXQ_CHECK(running_mean != nullptr && running_var != nullptr);
  MIXQ_CHECK_EQ(static_cast<int64_t>(running_mean->size()), f);
  MIXQ_CHECK_EQ(static_cast<int64_t>(running_var->size()), f);

  auto mean = std::make_shared<std::vector<float>>(static_cast<size_t>(f), 0.0f);
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(f), 0.0f);
  if (training) {
    MIXQ_CHECK_GT(n, 0);
    for (int64_t j = 0; j < f; ++j) {
      double s = 0.0;
      for (int64_t i = 0; i < n; ++i) s += x.data()[static_cast<size_t>(i * f + j)];
      (*mean)[static_cast<size_t>(j)] = static_cast<float>(s / n);
    }
    for (int64_t j = 0; j < f; ++j) {
      double s = 0.0;
      const float mu = (*mean)[static_cast<size_t>(j)];
      for (int64_t i = 0; i < n; ++i) {
        const float d = x.data()[static_cast<size_t>(i * f + j)] - mu;
        s += static_cast<double>(d) * d;
      }
      const float var = static_cast<float>(s / n);
      (*inv_std)[static_cast<size_t>(j)] = 1.0f / std::sqrt(var + eps);
      (*running_mean)[static_cast<size_t>(j)] =
          (1.0f - momentum) * (*running_mean)[static_cast<size_t>(j)] + momentum * mu;
      (*running_var)[static_cast<size_t>(j)] =
          (1.0f - momentum) * (*running_var)[static_cast<size_t>(j)] + momentum * var;
    }
  } else {
    for (int64_t j = 0; j < f; ++j) {
      (*mean)[static_cast<size_t>(j)] = (*running_mean)[static_cast<size_t>(j)];
      (*inv_std)[static_cast<size_t>(j)] =
          1.0f / std::sqrt((*running_var)[static_cast<size_t>(j)] + eps);
    }
  }

  std::vector<float> out(x.data().size());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < f; ++j) {
      const size_t k = static_cast<size_t>(i * f + j);
      const float xhat = (x.data()[k] - (*mean)[static_cast<size_t>(j)]) *
                         (*inv_std)[static_cast<size_t>(j)];
      out[k] = gamma.data()[static_cast<size_t>(j)] * xhat +
               beta.data()[static_cast<size_t>(j)];
    }
  }

  auto xi = x.impl_ptr();
  auto gi = gamma.impl_ptr();
  auto bi = beta.impl_ptr();
  const bool use_batch_stats = training;
  return MakeOpResult(
      x.shape(), std::move(out), {x, gamma, beta},
      [xi, gi, bi, mean, inv_std, n, f, use_batch_stats](TensorImpl& self) {
        // Recompute xhat rows on the fly from saved mean/inv_std.
        auto xhat_at = [&](int64_t i, int64_t j) {
          return (xi->data[static_cast<size_t>(i * f + j)] -
                  (*mean)[static_cast<size_t>(j)]) *
                 (*inv_std)[static_cast<size_t>(j)];
        };
        if (NeedsGrad(*gi)) {
          gi->EnsureGrad();
          for (int64_t j = 0; j < f; ++j) {
            double s = 0.0;
            for (int64_t i = 0; i < n; ++i) {
              s += static_cast<double>(self.grad[static_cast<size_t>(i * f + j)]) *
                   xhat_at(i, j);
            }
            gi->grad[static_cast<size_t>(j)] += static_cast<float>(s);
          }
        }
        if (NeedsGrad(*bi)) {
          bi->EnsureGrad();
          for (int64_t j = 0; j < f; ++j) {
            double s = 0.0;
            for (int64_t i = 0; i < n; ++i) {
              s += self.grad[static_cast<size_t>(i * f + j)];
            }
            bi->grad[static_cast<size_t>(j)] += static_cast<float>(s);
          }
        }
        if (NeedsGrad(*xi)) {
          xi->EnsureGrad();
          for (int64_t j = 0; j < f; ++j) {
            const float gj = gi->data[static_cast<size_t>(j)];
            const float is = (*inv_std)[static_cast<size_t>(j)];
            if (use_batch_stats) {
              double gsum = 0.0, gxhat = 0.0;
              for (int64_t i = 0; i < n; ++i) {
                const float g = self.grad[static_cast<size_t>(i * f + j)];
                gsum += g;
                gxhat += static_cast<double>(g) * xhat_at(i, j);
              }
              const float mean_g = static_cast<float>(gsum / n);
              const float mean_gx = static_cast<float>(gxhat / n);
              for (int64_t i = 0; i < n; ++i) {
                const float g = self.grad[static_cast<size_t>(i * f + j)];
                xi->grad[static_cast<size_t>(i * f + j)] +=
                    gj * is * (g - mean_g - xhat_at(i, j) * mean_gx);
              }
            } else {
              // Eval mode: running stats are constants.
              for (int64_t i = 0; i < n; ++i) {
                xi->grad[static_cast<size_t>(i * f + j)] +=
                    gj * is * self.grad[static_cast<size_t>(i * f + j)];
              }
            }
          }
        }
      });
}

}  // namespace mixq
