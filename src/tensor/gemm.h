// Copyright 2026 MixQ-GNN Authors
// Raw dense GEMM kernels (row-major, parallel over output rows). Shared by
// the autograd matmul op and by the Fig. 8 / kernel micro-benchmarks.
#pragma once

#include <cstdint>

namespace mixq {

/// C[m,n] (+)= A[m,k] * B[k,n]. If accumulate is false, C is overwritten.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// C[m,k] (+)= A[m,n] * B[k,n]^T  (i.e. C = A * B^T).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
            bool accumulate = false);

/// C[k,n] (+)= A[m,k]^T * B[m,n]  (i.e. C = A^T * B).
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// Integer GEMM with int32 accumulation: C[m,n] (+)= A[m,k] * B[k,n].
/// Inputs are quantized values stored as int32 (restricted to their bit-width
/// range by the quantizer); used by the Theorem-1 fused path and benches.
void GemmInt32(const int32_t* a, const int32_t* b, int64_t* c, int64_t m, int64_t k,
               int64_t n, bool accumulate = false);

}  // namespace mixq
