// Copyright 2026 MixQ-GNN Authors
// Raw dense GEMM kernels (row-major, parallel over output rows). Shared by
// the autograd matmul op, the lowered serving executor, and the kernel
// micro-benchmarks. The NN kernels are cache-blocked over the inner
// dimension; blocking never changes per-element accumulation order, so
// results are bitwise reproducible across block/thread configurations.
#pragma once

#include <cstdint>

namespace mixq {

/// C[m,n] (+)= A[m,k] * B[k,n]. If accumulate is false, C is overwritten.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// C[m,k] (+)= A[m,n] * B[k,n]^T  (i.e. C = A * B^T).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
            bool accumulate = false);

/// C[k,n] (+)= A[m,k]^T * B[m,n]  (i.e. C = A^T * B).
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// Integer GEMM with int32 accumulation: C[m,n] (+)= A[m,k] * B[k,n].
/// Inputs are quantized values stored as int32 (restricted to their bit-width
/// range by the quantizer); used by the Theorem-1 fused path and benches.
void GemmInt32(const int32_t* a, const int32_t* b, int64_t* c, int64_t m, int64_t k,
               int64_t n, bool accumulate = false);

/// Int8-specialized GEMM: C[m,n] = A[m,k] * B[k,n] with int32 accumulation.
/// Operands are quantized codes stored as int8 (any symmetric width <= 8
/// bits), the layout used by the lowered integer serving path. Cache-blocked
/// like GemmNN; int32 never overflows for k < 2^31 / 127^2 (~133k).
void GemmInt8(const int8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
              int64_t n);

/// Number of int16 elements of packed storage PackInt8PairB emits for a
/// [k, n] matrix: ceil(k/2) row pairs of 2n entries each.
inline int64_t PackedPairSize(int64_t k, int64_t n) { return ((k + 1) / 2) * 2 * n; }

/// Packs int8 codes B[k,n] into the pair-interleaved int16 layout consumed
/// by GemmInt8PackedB: P[p][2j + d] = B[2p + d][j] (odd k zero-padded).
/// Pairing two k-steps per column feeds SIMD multiply-add-pairs (vpmaddwd)
/// on x86; weights are packed once at model-compile time.
void PackInt8PairB(const int8_t* b, int64_t k, int64_t n, int16_t* packed);

/// C[m,n] = A[m,k] * B with A int8 row-major and B pre-packed by
/// PackInt8PairB. Exact int32 accumulation (pairing only reassociates an
/// exact sum). The hot kernel of the all-integer serving executor.
void GemmInt8PackedB(const int8_t* a, const int16_t* packed_b, int32_t* c,
                     int64_t m, int64_t k, int64_t n);

}  // namespace mixq
