// Copyright 2026 MixQ-GNN Authors
// Raw dense GEMM kernels (row-major, parallel over output rows). Shared by
// the autograd matmul op, the lowered serving executor, and the kernel
// micro-benchmarks. The NN kernels are cache-blocked over the inner
// dimension; blocking never changes per-element accumulation order, so
// results are bitwise reproducible across block/thread configurations.
#pragma once

#include <cstdint>

#include "quant/requant.h"

namespace mixq {

/// C[m,n] (+)= A[m,k] * B[k,n]. If accumulate is false, C is overwritten.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// C[m,k] (+)= A[m,n] * B[k,n]^T  (i.e. C = A * B^T).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
            bool accumulate = false);

/// C[k,n] (+)= A[m,k]^T * B[m,n]  (i.e. C = A^T * B).
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

/// Integer GEMM with int32 accumulation: C[m,n] (+)= A[m,k] * B[k,n].
/// Inputs are quantized values stored as int32 (restricted to their bit-width
/// range by the quantizer); used by the Theorem-1 fused path and benches.
void GemmInt32(const int32_t* a, const int32_t* b, int64_t* c, int64_t m, int64_t k,
               int64_t n, bool accumulate = false);

/// Int8-specialized GEMM: C[m,n] = A[m,k] * B[k,n] with int32 accumulation.
/// Operands are quantized codes stored as int8 (any symmetric width <= 8
/// bits), the layout used by the lowered integer serving path. Cache-blocked
/// like GemmNN; int32 never overflows for k < 2^31 / 127^2 (~133k).
void GemmInt8(const int8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
              int64_t n);

/// Number of int16 elements of packed storage PackInt8PairB emits for a
/// [k, n] matrix: ceil(k/2) row pairs of 2n entries each.
inline int64_t PackedPairSize(int64_t k, int64_t n) { return ((k + 1) / 2) * 2 * n; }

/// Packs int8 codes B[k,n] into the pair-interleaved int16 layout consumed
/// by GemmInt8PackedB: P[p][2j + d] = B[2p + d][j] (odd k zero-padded).
/// Pairing two k-steps per column feeds SIMD multiply-add-pairs (vpmaddwd)
/// on x86; weights are packed once at model-compile time.
void PackInt8PairB(const int8_t* b, int64_t k, int64_t n, int16_t* packed);

/// C[m,n] = A[m,k] * B with A int8 row-major and B pre-packed by
/// PackInt8PairB. Exact int32 accumulation (pairing only reassociates an
/// exact sum). Dispatches on common/cpu_features.h (AVX2 vpmaddwd kernel vs
/// portable scalar); every tier computes bitwise-identical int32 sums.
void GemmInt8PackedB(const int8_t* a, const int16_t* packed_b, int32_t* c,
                     int64_t m, int64_t k, int64_t n);

/// Number of int8 elements of packed storage PackInt8QuadB emits for a
/// [k, n] matrix: ceil(k/4) row quads of 4n entries each.
inline int64_t PackedQuadSize(int64_t k, int64_t n) { return ((k + 3) / 4) * 4 * n; }

/// Packs int8 codes B[k,n] into the quad-interleaved layout consumed by the
/// VNNI kernel: Q[q][4j + d] = B[4q + d][j] (k zero-padded to a multiple of
/// 4), plus the per-column correction corr[j] = 128 * sum_k B[k][j] that the
/// kernel subtracts after shifting signed A codes into vpdpbusd's unsigned
/// operand (a + 128). Weights are packed once at model-compile/bundle-load.
void PackInt8QuadB(const int8_t* b, int64_t k, int64_t n, int8_t* packed,
                   int32_t* corr);

/// Coarse depth predicate for the VNNI kernel's int32 accumulators: k
/// products of (a + 128) in [1, 255] by |b| <= 127 must fit below 2^31.
/// Tighter than Int8-pair depth (the +128 shift doubles the magnitude).
/// The serving path no longer dispatches on this: the range prover
/// (engine/plan_analysis.h) certifies each GEMM step from the actual frozen
/// weight codes (Int8PackedWeights::vnni_ok), which is never weaker than
/// this full-scale assumption — the predicate remains for standalone kernel
/// callers (benches, GemmInt8QuadB) and as a debug cross-check at dispatch.
inline bool Int8VnniDepthOk(int64_t k) {
  return k < ((int64_t{1} << 31) - 1) / (255 * 127);
}

/// C[m,n] = A[m,k] * B with B pre-packed by PackInt8QuadB, computed with
/// vpdpbusd (u8 x s8 quad dot): exact int32 accumulation, bitwise identical
/// to GemmInt8PackedB. Requires Int8VnniDepthOk(k); falls back to the
/// vpmaddwd/scalar kernel shape internally when VNNI is not active.
void GemmInt8QuadB(const int8_t* a, const int8_t* quad_b, const int32_t* corr,
                   int32_t* c, int64_t m, int64_t k, int64_t n);

/// Packed int8 weight views of one linear, produced at lowering. `quad` and
/// `corr` may be null (VNNI packing unavailable); `pair` is always set.
/// `vnni_ok` is the per-step certificate from the range prover
/// (engine/plan_analysis.h): every VNNI partial sum Σ (aᵢ+128)·bᵢ of this
/// step provably fits int32 given the step's source code bound and the
/// frozen weight codes. False (the default) routes dispatch to the
/// vpmaddwd/scalar kernels.
struct Int8PackedWeights {
  const int16_t* pair = nullptr;
  const int8_t* quad = nullptr;
  const int32_t* corr = nullptr;
  bool vnni_ok = false;
};

/// Fused GEMM + requantization: computes A[m,k] * B over the padded width
/// `n`, requantizes the int32 register/row-block accumulators through `ep`
/// and stores int8 codes at the UNPADDED stride `n_out` (columns >= n_out
/// are computed into registers but never emitted, eliminating both the int32
/// scratch round-trip and the padding strip pass). Codes are bitwise
/// identical to GemmInt8PackedB + a separate requant pass: accumulators are
/// exact integers and the epilogue applies the same double-precision
/// arithmetic per element. Dispatches VNNI > vpmaddwd > scalar; the VNNI
/// tier additionally requires w.vnni_ok (the per-step overflow certificate).
void GemmInt8Requant(const int8_t* a, const Int8PackedWeights& w, int64_t m,
                     int64_t k, int64_t n, int64_t n_out,
                     const RequantEpilogue& ep, int8_t* dst);

}  // namespace mixq
