// Copyright 2026 MixQ-GNN Authors
// Linear algebra and elementwise autograd ops.
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/op_utils.h"
#include "tensor/ops.h"

namespace mixq {

using internal::MakeOpResult;
using internal::NeedsGrad;

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MIXQ_CHECK_EQ(a.shape().rank(), 2);
  MIXQ_CHECK_EQ(b.shape().rank(), 2);
  MIXQ_CHECK_EQ(a.cols(), b.rows()) << "matmul inner dims " << a.shape().ToString()
                                    << " x " << b.shape().ToString();
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  std::vector<float> out(static_cast<size_t>(m * n));
  GemmNN(a.data().data(), b.data().data(), out.data(), m, k, n);
  auto ai = a.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeOpResult(Shape(m, n), std::move(out), {a, b},
                      [ai, bi, m, k, n](TensorImpl& self) {
                        if (NeedsGrad(ai)) {
                          ai->EnsureGrad();
                          GemmNT(self.grad.data(), bi->data.data(), ai->grad.data(), m,
                                 n, k, /*accumulate=*/true);
                        }
                        if (NeedsGrad(bi)) {
                          bi->EnsureGrad();
                          GemmTN(ai->data.data(), self.grad.data(), bi->grad.data(), m,
                                 k, n, /*accumulate=*/true);
                        }
                      });
}

Tensor Transpose(const Tensor& x) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t m = x.rows(), n = x.cols();
  std::vector<float> out(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[static_cast<size_t>(j * m + i)] = x.data()[static_cast<size_t>(i * n + j)];
    }
  }
  auto xi = x.impl_ptr();
  return MakeOpResult(Shape(n, m), std::move(out), {x}, [xi, m, n](TensorImpl& self) {
    if (!NeedsGrad(xi)) return;
    xi->EnsureGrad();
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        xi->grad[static_cast<size_t>(i * n + j)] +=
            self.grad[static_cast<size_t>(j * m + i)];
      }
    }
  });
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  MIXQ_CHECK_EQ(a.numel(), b.numel());
  double acc = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  auto ai = a.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeOpResult(Shape(1), {static_cast<float>(acc)}, {a, b},
                      [ai, bi](TensorImpl& self) {
                        const float g = self.grad[0];
                        if (NeedsGrad(ai)) {
                          ai->EnsureGrad();
                          for (size_t i = 0; i < ai->data.size(); ++i) {
                            ai->grad[i] += g * bi->data[i];
                          }
                        }
                        if (NeedsGrad(bi)) {
                          bi->EnsureGrad();
                          for (size_t i = 0; i < bi->data.size(); ++i) {
                            bi->grad[i] += g * ai->data[i];
                          }
                        }
                      });
}

namespace {

// Generic same-shape binary elementwise op helper.
template <typename FwdFn, typename BwdFn>
Tensor BinaryElementwise(const Tensor& a, const Tensor& b, FwdFn fwd, BwdFn bwd) {
  MIXQ_CHECK(a.shape() == b.shape())
      << a.shape().ToString() << " vs " << b.shape().ToString();
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(a.data()[i], b.data()[i]);
  auto ai = a.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeOpResult(a.shape(), std::move(out), {a, b}, [ai, bi, bwd](TensorImpl& self) {
    bwd(*ai, *bi, self);
  });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x + y; },
      [](TensorImpl& ai, TensorImpl& bi, TensorImpl& self) {
        if (NeedsGrad(ai)) {
          ai.EnsureGrad();
          for (size_t i = 0; i < ai.grad.size(); ++i) ai.grad[i] += self.grad[i];
        }
        if (NeedsGrad(bi)) {
          bi.EnsureGrad();
          for (size_t i = 0; i < bi.grad.size(); ++i) bi.grad[i] += self.grad[i];
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x - y; },
      [](TensorImpl& ai, TensorImpl& bi, TensorImpl& self) {
        if (NeedsGrad(ai)) {
          ai.EnsureGrad();
          for (size_t i = 0; i < ai.grad.size(); ++i) ai.grad[i] += self.grad[i];
        }
        if (NeedsGrad(bi)) {
          bi.EnsureGrad();
          for (size_t i = 0; i < bi.grad.size(); ++i) bi.grad[i] -= self.grad[i];
        }
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x * y; },
      [](TensorImpl& ai, TensorImpl& bi, TensorImpl& self) {
        if (NeedsGrad(ai)) {
          ai.EnsureGrad();
          for (size_t i = 0; i < ai.grad.size(); ++i) {
            ai.grad[i] += self.grad[i] * bi.data[i];
          }
        }
        if (NeedsGrad(bi)) {
          bi.EnsureGrad();
          for (size_t i = 0; i < bi.grad.size(); ++i) {
            bi.grad[i] += self.grad[i] * ai.data[i];
          }
        }
      });
}

Tensor Scale(const Tensor& x, float c) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = x.data()[i] * c;
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi, c](TensorImpl& self) {
    if (!NeedsGrad(xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += self.grad[i] * c;
  });
}

Tensor AddScalar(const Tensor& x, float c) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = x.data()[i] + c;
  auto xi = x.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x}, [xi](TensorImpl& self) {
    if (!NeedsGrad(xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += self.grad[i];
  });
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& b) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  MIXQ_CHECK_EQ(b.shape().rank(), 1);
  MIXQ_CHECK_EQ(x.cols(), b.numel());
  const int64_t n = x.rows(), f = x.cols();
  std::vector<float> out(x.data().size());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < f; ++j) {
      out[static_cast<size_t>(i * f + j)] =
          x.data()[static_cast<size_t>(i * f + j)] + b.data()[static_cast<size_t>(j)];
    }
  }
  auto xi = x.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x, b}, [xi, bi, n, f](TensorImpl& self) {
    if (NeedsGrad(xi)) {
      xi->EnsureGrad();
      for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += self.grad[i];
    }
    if (NeedsGrad(bi)) {
      bi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < f; ++j) {
          bi->grad[static_cast<size_t>(j)] += self.grad[static_cast<size_t>(i * f + j)];
        }
      }
    }
  });
}

Tensor ScaleByElement(const Tensor& x, const Tensor& w, int64_t idx) {
  MIXQ_CHECK_GE(idx, 0);
  MIXQ_CHECK_LT(idx, w.numel());
  const float wv = w.data()[static_cast<size_t>(idx)];
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = x.data()[i] * wv;
  auto xi = x.impl_ptr();
  auto wi = w.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x, w}, [xi, wi, idx](TensorImpl& self) {
    const float wv = wi->data[static_cast<size_t>(idx)];
    if (NeedsGrad(xi)) {
      xi->EnsureGrad();
      for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += self.grad[i] * wv;
    }
    if (NeedsGrad(wi)) {
      wi->EnsureGrad();
      double acc = 0.0;
      for (size_t i = 0; i < xi->data.size(); ++i) {
        acc += static_cast<double>(self.grad[i]) * xi->data[i];
      }
      wi->grad[static_cast<size_t>(idx)] += static_cast<float>(acc);
    }
  });
}

Tensor MulRowwise(const Tensor& x, const Tensor& s) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  MIXQ_CHECK_EQ(s.numel(), x.rows());
  const int64_t n = x.rows(), f = x.cols();
  std::vector<float> out(x.data().size());
  for (int64_t i = 0; i < n; ++i) {
    const float sv = s.data()[static_cast<size_t>(i)];
    for (int64_t j = 0; j < f; ++j) {
      out[static_cast<size_t>(i * f + j)] =
          x.data()[static_cast<size_t>(i * f + j)] * sv;
    }
  }
  auto xi = x.impl_ptr();
  auto si = s.impl_ptr();
  return MakeOpResult(x.shape(), std::move(out), {x, s}, [xi, si, n, f](TensorImpl& self) {
    if (NeedsGrad(xi)) {
      xi->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        const float sv = si->data[static_cast<size_t>(i)];
        for (int64_t j = 0; j < f; ++j) {
          xi->grad[static_cast<size_t>(i * f + j)] +=
              self.grad[static_cast<size_t>(i * f + j)] * sv;
        }
      }
    }
    if (NeedsGrad(si)) {
      si->EnsureGrad();
      for (int64_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (int64_t j = 0; j < f; ++j) {
          acc += static_cast<double>(self.grad[static_cast<size_t>(i * f + j)]) *
                 xi->data[static_cast<size_t>(i * f + j)];
        }
        si->grad[static_cast<size_t>(i)] += static_cast<float>(acc);
      }
    }
  });
}

Tensor Sum(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  auto xi = x.impl_ptr();
  return MakeOpResult(Shape(1), {static_cast<float>(acc)}, {x}, [xi](TensorImpl& self) {
    if (!NeedsGrad(xi)) return;
    xi->EnsureGrad();
    const float g = self.grad[0];
    for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += g;
  });
}

Tensor MeanAll(const Tensor& x) {
  MIXQ_CHECK_GT(x.numel(), 0);
  double acc = 0.0;
  for (float v : x.data()) acc += v;
  const float inv_n = 1.0f / static_cast<float>(x.numel());
  auto xi = x.impl_ptr();
  return MakeOpResult(Shape(1), {static_cast<float>(acc) * inv_n}, {x},
                      [xi, inv_n](TensorImpl& self) {
                        if (!NeedsGrad(xi)) return;
                        xi->EnsureGrad();
                        const float g = self.grad[0] * inv_n;
                        for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += g;
                      });
}

Tensor GatherRows(const Tensor& x, const std::vector<int64_t>& indices) {
  MIXQ_CHECK_EQ(x.shape().rank(), 2);
  const int64_t f = x.cols();
  std::vector<float> out(indices.size() * static_cast<size_t>(f));
  for (size_t r = 0; r < indices.size(); ++r) {
    const int64_t src = indices[r];
    MIXQ_CHECK_GE(src, 0);
    MIXQ_CHECK_LT(src, x.rows());
    std::copy_n(x.data().begin() + src * f, f, out.begin() + static_cast<int64_t>(r) * f);
  }
  auto xi = x.impl_ptr();
  auto idx = indices;  // captured copy
  return MakeOpResult(Shape(static_cast<int64_t>(indices.size()), f), std::move(out),
                      {x}, [xi, idx, f](TensorImpl& self) {
                        if (!NeedsGrad(xi)) return;
                        xi->EnsureGrad();
                        for (size_t r = 0; r < idx.size(); ++r) {
                          const int64_t dst = idx[r];
                          for (int64_t j = 0; j < f; ++j) {
                            xi->grad[static_cast<size_t>(dst * f + j)] +=
                                self.grad[r * static_cast<size_t>(f) +
                                          static_cast<size_t>(j)];
                          }
                        }
                      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  MIXQ_CHECK_EQ(a.shape().rank(), 2);
  MIXQ_CHECK_EQ(b.shape().rank(), 2);
  MIXQ_CHECK_EQ(a.rows(), b.rows());
  const int64_t n = a.rows(), fa = a.cols(), fb = b.cols();
  std::vector<float> out(static_cast<size_t>(n * (fa + fb)));
  for (int64_t i = 0; i < n; ++i) {
    std::copy_n(a.data().begin() + i * fa, fa, out.begin() + i * (fa + fb));
    std::copy_n(b.data().begin() + i * fb, fb, out.begin() + i * (fa + fb) + fa);
  }
  auto ai = a.impl_ptr();
  auto bi = b.impl_ptr();
  return MakeOpResult(Shape(n, fa + fb), std::move(out), {a, b},
                      [ai, bi, n, fa, fb](TensorImpl& self) {
                        if (NeedsGrad(ai)) {
                          ai->EnsureGrad();
                          for (int64_t i = 0; i < n; ++i) {
                            for (int64_t j = 0; j < fa; ++j) {
                              ai->grad[static_cast<size_t>(i * fa + j)] +=
                                  self.grad[static_cast<size_t>(i * (fa + fb) + j)];
                            }
                          }
                        }
                        if (NeedsGrad(bi)) {
                          bi->EnsureGrad();
                          for (int64_t i = 0; i < n; ++i) {
                            for (int64_t j = 0; j < fb; ++j) {
                              bi->grad[static_cast<size_t>(i * fb + j)] +=
                                  self.grad[static_cast<size_t>(i * (fa + fb) + fa + j)];
                            }
                          }
                        }
                      });
}

Tensor Flatten(const Tensor& x) {
  auto xi = x.impl_ptr();
  std::vector<float> out = x.data();
  return MakeOpResult(Shape(x.numel()), std::move(out), {x}, [xi](TensorImpl& self) {
    if (!NeedsGrad(*xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < xi->grad.size(); ++i) xi->grad[i] += self.grad[i];
  });
}

}  // namespace mixq
