// Copyright 2026 MixQ-GNN Authors
#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

namespace mixq {

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(shape.numel()), 0.0f);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  Tensor t = Zeros(shape, requires_grad);
  std::fill(t.data().begin(), t.data().end(), value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, const std::vector<float>& values,
                          bool requires_grad) {
  MIXQ_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  Tensor t = Zeros(shape, requires_grad);
  t.data() = values;
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float>&& values,
                          bool requires_grad) {
  MIXQ_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector(Shape(1), {value}, requires_grad);
}

Tensor Tensor::RandomNormal(const Shape& shape, Rng* rng, float mean, float stddev,
                            bool requires_grad) {
  MIXQ_CHECK(rng != nullptr);
  Tensor t = Zeros(shape, requires_grad);
  for (auto& v : t.data()) v = rng->Normal(mean, stddev);
  return t;
}

Tensor Tensor::RandomUniform(const Shape& shape, Rng* rng, float lo, float hi,
                             bool requires_grad) {
  MIXQ_CHECK(rng != nullptr);
  Tensor t = Zeros(shape, requires_grad);
  for (auto& v : t.data()) v = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng,
                             bool requires_grad) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(Shape(fan_in, fan_out), rng, -limit, limit, requires_grad);
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape();
  impl->data = data();
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape().ToString() << " [";
  int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data()[static_cast<size_t>(i)];
  }
  if (n < numel()) os << ", ...";
  os << "]";
  return os.str();
}

namespace {

// Iterative post-order DFS building a topological order of the autograd DAG.
void TopoSort(TensorImpl* root, std::vector<TensorImpl*>* order) {
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < f.node->parents.size()) {
      TensorImpl* child = f.node->parents[f.next_child++].get();
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order->push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() const {
  MIXQ_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss tensor";
  std::vector<TensorImpl*> order;
  TopoSort(impl(), &order);
  impl()->EnsureGrad();
  impl()->grad[0] = 1.0f;
  // order is post-order (parents before children), so iterate in reverse to
  // propagate from the loss towards the leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

namespace internal {

bool AnyRequiresGrad(const std::vector<Tensor>& parents) {
  for (const auto& p : parents) {
    if (p.defined() &&
        (p.impl()->requires_grad || p.impl()->backward_fn != nullptr)) {
      return true;
    }
  }
  return false;
}

Tensor MakeOpResult(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn) {
  MIXQ_CHECK_EQ(static_cast<int64_t>(data.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(data);
  impl->is_leaf = false;
  if (AnyRequiresGrad(parents)) {
    impl->requires_grad = true;
    impl->parents.reserve(parents.size());
    for (const auto& p : parents) impl->parents.push_back(p.impl_ptr());
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace internal

}  // namespace mixq
