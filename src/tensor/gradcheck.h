// Copyright 2026 MixQ-GNN Authors
// Finite-difference gradient checking. Used by unit tests to validate every
// autograd op against a central-difference estimate.
#pragma once

#include <cmath>
#include <functional>

#include "tensor/tensor.h"

namespace mixq {

/// Result of a gradient check: max absolute and relative error over all
/// checked coordinates.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok(double tol = 2e-2) const {
    return max_abs_error < tol || max_rel_error < tol;
  }
};

/// Checks d(loss_fn())/d(input) against central differences. `loss_fn` must
/// rebuild the graph from `input`'s *current data* and return a scalar.
/// Checks at most `max_coords` coordinates (stride-sampled) to stay fast.
inline GradCheckResult CheckGradient(Tensor input,
                                     const std::function<Tensor()>& loss_fn,
                                     double eps = 1e-3, int64_t max_coords = 64) {
  input.SetRequiresGrad(true);
  // Analytic gradient.
  input.impl()->ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<float> analytic = input.grad();
  if (analytic.empty()) analytic.assign(input.data().size(), 0.0f);

  GradCheckResult result;
  const int64_t n = input.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_coords);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = input.data()[static_cast<size_t>(i)];
    input.data()[static_cast<size_t>(i)] = orig + static_cast<float>(eps);
    const double up = loss_fn().item();
    input.data()[static_cast<size_t>(i)] = orig - static_cast<float>(eps);
    const double down = loss_fn().item();
    input.data()[static_cast<size_t>(i)] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    const double abs_err = std::fabs(numeric - analytic[static_cast<size_t>(i)]);
    const double denom =
        std::max({std::fabs(numeric), std::fabs(double(analytic[static_cast<size_t>(i)])), 1e-8});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  }
  return result;
}

}  // namespace mixq
