// Copyright 2026 MixQ-GNN Authors
// FP32 tensor with reverse-mode automatic differentiation.
//
// A Tensor is a cheap value-semantic handle to a shared TensorImpl node. Ops
// (see ops.h) build a DAG: each produced node stores shared_ptr links to its
// parents and a backward closure. Tensor::Backward() on a scalar runs a
// topological sweep, accumulating gradients into every node with
// requires_grad set (directly or transitively).
//
// This replaces the paper's use of PyTorch autograd [58]; correctness is
// established by finite-difference gradient checks in tests/tensor_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace mixq {

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Internal autograd node. Users interact through Tensor.
struct TensorImpl {
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily by EnsureGrad()
  Shape shape;
  bool requires_grad = false;
  /// True for leaf parameters (optimizer targets); intermediates are false.
  bool is_leaf = true;
  std::vector<TensorImplPtr> parents;
  /// Accumulates this node's grad into parents' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
  void ZeroGrad() {
    if (!grad.empty()) std::fill(grad.begin(), grad.end(), 0.0f);
  }
};

/// Value-semantic handle to an autograd tensor node.
class Tensor {
 public:
  /// Null tensor (no storage). Most APIs check defined().
  Tensor() = default;
  explicit Tensor(TensorImplPtr impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  /// Uninitialized-to-zero tensor of the given shape.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  /// Copies `values` (size must equal shape.numel()).
  static Tensor FromVector(const Shape& shape, const std::vector<float>& values,
                           bool requires_grad = false);
  /// Adopts `values` without copying — the raw-buffer path for bulk IO
  /// (e.g. feature matrices read back from a graph bundle).
  static Tensor FromVector(const Shape& shape, std::vector<float>&& values,
                           bool requires_grad = false);
  /// Scalar (rank-1, size-1) tensor.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Gaussian init (mean, stddev) with explicit RNG for determinism.
  static Tensor RandomNormal(const Shape& shape, Rng* rng, float mean = 0.0f,
                             float stddev = 1.0f, bool requires_grad = false);
  /// Uniform init in [lo, hi).
  static Tensor RandomUniform(const Shape& shape, Rng* rng, float lo, float hi,
                              bool requires_grad = false);
  /// Glorot/Xavier uniform init for a (fan_in, fan_out) weight matrix.
  static Tensor GlorotUniform(int64_t fan_in, int64_t fan_out, Rng* rng,
                              bool requires_grad = true);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl()->shape; }
  int64_t numel() const { return impl()->shape.numel(); }
  int64_t rows() const { return impl()->shape.rows(); }
  int64_t cols() const { return impl()->shape.cols(); }
  bool requires_grad() const { return impl()->requires_grad; }

  /// Raw row-major storage.
  std::vector<float>& data() { return impl()->data; }
  const std::vector<float>& data() const { return impl()->data; }
  /// Gradient storage (empty until backward touches this node).
  std::vector<float>& grad() { return impl()->grad; }
  const std::vector<float>& grad() const { return impl()->grad; }

  /// Element access, rank-2.
  float at(int64_t r, int64_t c) const {
    MIXQ_CHECK_EQ(shape().rank(), 2);
    MIXQ_CHECK_GE(r, 0);
    MIXQ_CHECK_LT(r, rows());
    MIXQ_CHECK_GE(c, 0);
    MIXQ_CHECK_LT(c, cols());
    return impl()->data[static_cast<size_t>(r * cols() + c)];
  }
  float& at(int64_t r, int64_t c) {
    MIXQ_CHECK_EQ(shape().rank(), 2);
    return impl()->data[static_cast<size_t>(r * cols() + c)];
  }
  /// Element access, flat index (any rank).
  float item(int64_t i = 0) const {
    MIXQ_CHECK_GE(i, 0);
    MIXQ_CHECK_LT(i, numel());
    return impl()->data[static_cast<size_t>(i)];
  }

  TensorImplPtr impl_ptr() const { return impl_; }
  TensorImpl* impl() const {
    MIXQ_CHECK(impl_ != nullptr) << "use of undefined Tensor";
    return impl_.get();
  }

  // ---- Autograd ------------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar node. Gradients accumulate
  /// (callers zero parameter grads between steps via the optimizer).
  void Backward() const;

  /// Zeroes this node's grad buffer (if allocated).
  void ZeroGrad() { impl()->ZeroGrad(); }

  /// Detached copy: same data, no history, requires_grad=false.
  Tensor Detach() const;

  /// Marks as a leaf parameter for optimizers.
  Tensor& SetRequiresGrad(bool value) {
    impl()->requires_grad = value;
    return *this;
  }

  std::string ToString(int64_t max_elems = 16) const;

 private:
  TensorImplPtr impl_;
};

namespace internal {

/// Creates a non-leaf op result wired to its parents. The backward closure
/// receives the result node (with grad populated) and must accumulate into
/// each requires-grad parent's grad (calling EnsureGrad first).
Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn);

/// True if any parent requires grad (transitively).
bool AnyRequiresGrad(const std::vector<Tensor>& parents);

}  // namespace internal

}  // namespace mixq
