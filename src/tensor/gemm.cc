// Copyright 2026 MixQ-GNN Authors
#include "tensor/gemm.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/cpu_features.h"
#include "common/parallel.h"

namespace mixq {

namespace {

// Cache/register blocking for the NN kernels. An l-tile of B rows stays hot
// in L1/L2 across the row chunk; within a tile, an MR x NR accumulator block
// lives in registers for the whole l run, so C is loaded/stored once per
// tile instead of once per l step. Every output element still sees its adds
// in ascending-l order, so blocked results are bitwise identical to the
// naive triple loop.
constexpr int64_t kInnerTile = 256;  // B rows per l-tile
constexpr int64_t kMr = 4;           // A rows per micro-kernel
constexpr int64_t kNr = 16;          // C columns per micro-kernel

// Generic-edge micro-kernel: C[i0:i0+rb, j0:j0+jb] += A[:, l0:l1] * B-tile.
// Four independent accumulation chains per column keep the FMA pipeline fed
// even when jb is too small to vectorize (e.g. a class-count-wide C).
template <typename AccT, typename InT>
inline void MicroKernelEdge(const InT* a, const InT* b, AccT* c, int64_t k,
                            int64_t n, int64_t i0, int64_t rb, int64_t j0,
                            int64_t jb, int64_t l0, int64_t l1) {
  if (rb == kMr) {
    // Same four-chain shape as the full kernel, with a runtime column count
    // (e.g. a class-count-wide output layer).
    AccT acc0[kNr], acc1[kNr], acc2[kNr], acc3[kNr];
    AccT* cr = c + i0 * n + j0;
    for (int64_t jj = 0; jj < jb; ++jj) {
      acc0[jj] = cr[jj];
      acc1[jj] = cr[n + jj];
      acc2[jj] = cr[2 * n + jj];
      acc3[jj] = cr[3 * n + jj];
    }
    const InT* a0 = a + i0 * k;
    const InT* a1 = a0 + k;
    const InT* a2 = a1 + k;
    const InT* a3 = a2 + k;
    for (int64_t l = l0; l < l1; ++l) {
      const InT* bl = b + l * n + j0;
      const AccT av0 = static_cast<AccT>(a0[l]);
      const AccT av1 = static_cast<AccT>(a1[l]);
      const AccT av2 = static_cast<AccT>(a2[l]);
      const AccT av3 = static_cast<AccT>(a3[l]);
      for (int64_t jj = 0; jj < jb; ++jj) {
        const AccT bv = static_cast<AccT>(bl[jj]);
        acc0[jj] += av0 * bv;
        acc1[jj] += av1 * bv;
        acc2[jj] += av2 * bv;
        acc3[jj] += av3 * bv;
      }
    }
    for (int64_t jj = 0; jj < jb; ++jj) {
      cr[jj] = acc0[jj];
      cr[n + jj] = acc1[jj];
      cr[2 * n + jj] = acc2[jj];
      cr[3 * n + jj] = acc3[jj];
    }
    return;
  }
  AccT acc[kMr][kNr];
  for (int64_t r = 0; r < rb; ++r) {
    for (int64_t jj = 0; jj < jb; ++jj) acc[r][jj] = c[(i0 + r) * n + j0 + jj];
  }
  for (int64_t l = l0; l < l1; ++l) {
    const InT* bl = b + l * n + j0;
    for (int64_t r = 0; r < rb; ++r) {
      const AccT av = static_cast<AccT>(a[(i0 + r) * k + l]);
      for (int64_t jj = 0; jj < jb; ++jj) {
        acc[r][jj] += av * static_cast<AccT>(bl[jj]);
      }
    }
  }
  for (int64_t r = 0; r < rb; ++r) {
    for (int64_t jj = 0; jj < jb; ++jj) c[(i0 + r) * n + j0 + jj] = acc[r][jj];
  }
}

// Full kMr x kNr micro-kernel. The single jj loop whose body carries four
// independent FMAs is the shape GCC turns into broadcast-FMA vector code
// with all accumulators in registers (a 2-D accumulator array makes it
// interleave l iterations with shuffles instead).
template <typename AccT, typename InT>
inline void MicroKernelFull(const InT* a, const InT* b, AccT* c, int64_t k,
                            int64_t n, int64_t i0, int64_t j0, int64_t l0,
                            int64_t l1) {
  AccT acc0[kNr], acc1[kNr], acc2[kNr], acc3[kNr];
  AccT* cr = c + i0 * n + j0;
  for (int64_t jj = 0; jj < kNr; ++jj) {
    acc0[jj] = cr[jj];
    acc1[jj] = cr[n + jj];
    acc2[jj] = cr[2 * n + jj];
    acc3[jj] = cr[3 * n + jj];
  }
  const InT* a0 = a + i0 * k;
  const InT* a1 = a0 + k;
  const InT* a2 = a1 + k;
  const InT* a3 = a2 + k;
  for (int64_t l = l0; l < l1; ++l) {
    const InT* bl = b + l * n + j0;
    const AccT av0 = static_cast<AccT>(a0[l]);
    const AccT av1 = static_cast<AccT>(a1[l]);
    const AccT av2 = static_cast<AccT>(a2[l]);
    const AccT av3 = static_cast<AccT>(a3[l]);
    for (int64_t jj = 0; jj < kNr; ++jj) {
      const AccT bv = static_cast<AccT>(bl[jj]);
      acc0[jj] += av0 * bv;
      acc1[jj] += av1 * bv;
      acc2[jj] += av2 * bv;
      acc3[jj] += av3 * bv;
    }
  }
  for (int64_t jj = 0; jj < kNr; ++jj) {
    cr[jj] = acc0[jj];
    cr[n + jj] = acc1[jj];
    cr[2 * n + jj] = acc2[jj];
    cr[3 * n + jj] = acc3[jj];
  }
}

template <typename AccT, typename InT>
void BlockedGemmNN(const InT* a, const InT* b, AccT* c, int64_t m, int64_t k,
                   int64_t n, bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        if (!accumulate) {
          std::memset(c + r0 * n, 0,
                      sizeof(AccT) * static_cast<size_t>((r1 - r0) * n));
        }
        for (int64_t l0 = 0; l0 < k; l0 += kInnerTile) {
          const int64_t l1 = std::min(k, l0 + kInnerTile);
          for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
            const int64_t rb = std::min(kMr, r1 - i0);
            for (int64_t j0 = 0; j0 < n; j0 += kNr) {
              const int64_t jb = std::min(kNr, n - j0);
              if (rb == kMr && jb == kNr) {
                MicroKernelFull<AccT, InT>(a, b, c, k, n, i0, j0, l0, l1);
              } else {
                MicroKernelEdge<AccT, InT>(a, b, c, k, n, i0, rb, j0, jb, l0, l1);
              }
            }
          }
        }
      },
      /*grain=*/16);
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  BlockedGemmNN<float, float>(a, b, c, m, k, n, accumulate);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
            bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* ai = a + i * n;
          float* ci = c + i * k;
          for (int64_t j = 0; j < k; ++j) {
            const float* bj = b + j * n;
            float acc = accumulate ? ci[j] : 0.0f;
            for (int64_t l = 0; l < n; ++l) acc += ai[l] * bj[l];
            ci[j] = acc;
          }
        }
      },
      /*grain=*/16);
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  // Parallelize over output rows (k of them); each output row i gathers
  // column i of A against all rows of B.
  ParallelFor(
      k,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* ci = c + i * n;
          if (!accumulate) std::memset(ci, 0, sizeof(float) * static_cast<size_t>(n));
          for (int64_t l = 0; l < m; ++l) {
            const float av = a[l * k + i];
            if (av == 0.0f) continue;
            const float* bl = b + l * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * bl[j];
          }
        }
      },
      /*grain=*/16);
}

void GemmInt32(const int32_t* a, const int32_t* b, int64_t* c, int64_t m, int64_t k,
               int64_t n, bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int64_t* ci = c + i * n;
          if (!accumulate) std::memset(ci, 0, sizeof(int64_t) * static_cast<size_t>(n));
          const int32_t* ai = a + i * k;
          for (int64_t l = 0; l < k; ++l) {
            const int64_t av = ai[l];
            if (av == 0) continue;
            const int32_t* bl = b + l * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * static_cast<int64_t>(bl[j]);
          }
        }
      },
      /*grain=*/16);
}

void GemmInt8(const int8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
              int64_t n) {
  // Same register-blocked structure as GemmNN; int8 operands quarter the
  // memory traffic and widen to int32 in the accumulators.
  BlockedGemmNN<int32_t, int8_t>(a, b, c, m, k, n, /*accumulate=*/false);
}

void PackInt8PairB(const int8_t* b, int64_t k, int64_t n, int16_t* packed) {
  const int64_t kp = (k + 1) / 2;
  for (int64_t p = 0; p < kp; ++p) {
    int16_t* row = packed + p * 2 * n;
    const int8_t* b0 = b + 2 * p * n;
    const int8_t* b1 = 2 * p + 1 < k ? b0 + n : nullptr;
    for (int64_t j = 0; j < n; ++j) {
      row[2 * j] = static_cast<int16_t>(b0[j]);
      row[2 * j + 1] = b1 != nullptr ? static_cast<int16_t>(b1[j]) : int16_t{0};
    }
  }
}

void PackInt8QuadB(const int8_t* b, int64_t k, int64_t n, int8_t* packed,
                   int32_t* corr) {
  const int64_t kq = (k + 3) / 4;
  for (int64_t q = 0; q < kq; ++q) {
    int8_t* row = packed + q * 4 * n;
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t d = 0; d < 4; ++d) {
        const int64_t l = 4 * q + d;
        row[4 * j + d] = l < k ? b[l * n + j] : int8_t{0};
      }
    }
  }
  for (int64_t j = 0; j < n; ++j) {
    int32_t sum = 0;
    for (int64_t l = 0; l < k; ++l) sum += static_cast<int32_t>(b[l * n + j]);
    corr[j] = 128 * sum;
  }
}

namespace {

// Portable pair-dot row kernel: acc[j] += a0 * P[2j] + a1 * P[2j + 1].
inline void PairDotRow(const int16_t* bp, int32_t a0, int32_t a1, int32_t* acc,
                       int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    acc[j] += a0 * static_cast<int32_t>(bp[2 * j]) +
              a1 * static_cast<int32_t>(bp[2 * j + 1]);
  }
}

// Portable quad-dot row kernel over PackInt8QuadB storage, in SIGNED
// arithmetic (no +128 shift, no correction): exact int32 either way.
inline void QuadDotRow(const int8_t* bq, int32_t a0, int32_t a1, int32_t a2,
                       int32_t a3, int32_t* acc, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    acc[j] += a0 * static_cast<int32_t>(bq[4 * j]) +
              a1 * static_cast<int32_t>(bq[4 * j + 1]) +
              a2 * static_cast<int32_t>(bq[4 * j + 2]) +
              a3 * static_cast<int32_t>(bq[4 * j + 3]);
  }
}

// One row of the fused scalar path over pair-packed B: accumulate a column
// block on the stack, requantize it straight into `di` — the int32 values
// never leave L1.
inline void FusedRowPair(const int8_t* ar, const int16_t* pb, int64_t k,
                         int64_t n, int64_t jb0, int64_t jb1,
                         const RequantEpilogue& ep, int8_t* di) {
  const int64_t kp = (k + 1) / 2;
  int32_t buf[kRequantBlock];
  for (int64_t j0 = jb0; j0 < jb1; j0 += kRequantBlock) {
    const int64_t w = std::min<int64_t>(kRequantBlock, jb1 - j0);
    std::memset(buf, 0, sizeof(int32_t) * static_cast<size_t>(w));
    for (int64_t p = 0; p < kp; ++p) {
      const int32_t av0 = ar[2 * p];
      const int32_t av1 = 2 * p + 1 < k ? ar[2 * p + 1] : 0;
      PairDotRow(pb + p * 2 * n + 2 * j0, av0, av1, buf, w);
    }
    RequantBlock(buf, w, ep.total, ep.bias != nullptr ? ep.bias + j0 : nullptr,
                   ep.emitter, di + j0);
  }
}

// Same, over quad-packed B (used for VNNI edge/tail handling).
inline void FusedRowQuad(const int8_t* ar, const int8_t* qb, int64_t k,
                         int64_t n, int64_t jb0, int64_t jb1,
                         const RequantEpilogue& ep, int8_t* di) {
  const int64_t kq = (k + 3) / 4;
  int32_t buf[kRequantBlock];
  for (int64_t j0 = jb0; j0 < jb1; j0 += kRequantBlock) {
    const int64_t w = std::min<int64_t>(kRequantBlock, jb1 - j0);
    std::memset(buf, 0, sizeof(int32_t) * static_cast<size_t>(w));
    for (int64_t q = 0; q < kq; ++q) {
      const int64_t l = 4 * q;
      const int32_t a0 = ar[l];
      const int32_t a1 = l + 1 < k ? ar[l + 1] : 0;
      const int32_t a2 = l + 2 < k ? ar[l + 2] : 0;
      const int32_t a3 = l + 3 < k ? ar[l + 3] : 0;
      QuadDotRow(qb + q * 4 * n + 4 * j0, a0, a1, a2, a3, buf, w);
    }
    RequantBlock(buf, w, ep.total, ep.bias != nullptr ? ep.bias + j0 : nullptr,
                   ep.emitter, di + j0);
  }
}

void GemmInt8PackedBScalar(const int8_t* a, const int16_t* packed_b, int32_t* c,
                           int64_t m, int64_t k, int64_t n) {
  const int64_t kp = (k + 1) / 2;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* ci = c + i * n;
          std::memset(ci, 0, sizeof(int32_t) * static_cast<size_t>(n));
          const int8_t* ar = a + i * k;
          for (int64_t p = 0; p < kp; ++p) {
            const int32_t av0 = ar[2 * p];
            const int32_t av1 = 2 * p + 1 < k ? ar[2 * p + 1] : 0;
            PairDotRow(packed_b + p * 2 * n, av0, av1, ci, n);
          }
        }
      },
      /*grain=*/16);
}

void GemmInt8QuadBScalar(const int8_t* a, const int8_t* quad_b, int32_t* c,
                         int64_t m, int64_t k, int64_t n) {
  const int64_t kq = (k + 3) / 4;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int32_t* ci = c + i * n;
          std::memset(ci, 0, sizeof(int32_t) * static_cast<size_t>(n));
          const int8_t* ar = a + i * k;
          for (int64_t q = 0; q < kq; ++q) {
            const int64_t l = 4 * q;
            const int32_t a0 = ar[l];
            const int32_t a1 = l + 1 < k ? ar[l + 1] : 0;
            const int32_t a2 = l + 2 < k ? ar[l + 2] : 0;
            const int32_t a3 = l + 3 < k ? ar[l + 3] : 0;
            QuadDotRow(quad_b + q * 4 * n, a0, a1, a2, a3, ci, n);
          }
        }
      },
      /*grain=*/16);
}

void GemmInt8RequantScalar(const int8_t* a, const int16_t* packed_b, int64_t m,
                           int64_t k, int64_t n, int64_t n_out,
                           const RequantEpilogue& ep, int8_t* dst) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          FusedRowPair(a + i * k, packed_b, k, n, 0, n_out, ep, dst + i * n_out);
        }
      },
      /*grain=*/16);
}

#if MIXQ_COMPILED_AVX2

void GemmInt8PackedBAvx2(const int8_t* a, const int16_t* packed_b, int32_t* c,
                         int64_t m, int64_t k, int64_t n) {
  const int64_t kp = (k + 1) / 2;
  const int64_t n16 = n - n % 16;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        int64_t i0 = r0;
        for (; i0 + kMr <= r1; i0 += kMr) {
          const int8_t* a0 = a + i0 * k;
          const int8_t* a1 = a0 + k;
          const int8_t* a2 = a1 + k;
          const int8_t* a3 = a2 + k;
          for (int64_t j0 = 0; j0 < n16; j0 += 16) {
            // 4 rows x 16 columns of int32 accumulators in registers; each
            // vpmaddwd consumes one packed k-pair for 8 columns.
            __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
            __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
            __m256i acc20 = _mm256_setzero_si256(), acc21 = _mm256_setzero_si256();
            __m256i acc30 = _mm256_setzero_si256(), acc31 = _mm256_setzero_si256();
            for (int64_t p = 0; p < kp; ++p) {
              const int16_t* bp = packed_b + p * 2 * n + 2 * j0;
              const __m256i b0 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
              const __m256i b1 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
              const int64_t l = 2 * p;
              const bool has_hi = l + 1 < k;
              auto pair = [&](const int8_t* ar) {
                const uint16_t lo = static_cast<uint16_t>(static_cast<int16_t>(ar[l]));
                const uint16_t hi = has_hi ? static_cast<uint16_t>(
                                                 static_cast<int16_t>(ar[l + 1]))
                                           : uint16_t{0};
                return _mm256_set1_epi32(static_cast<int32_t>(
                    static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16)));
              };
              const __m256i av0 = pair(a0);
              acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(av0, b0));
              acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(av0, b1));
              const __m256i av1 = pair(a1);
              acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(av1, b0));
              acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(av1, b1));
              const __m256i av2 = pair(a2);
              acc20 = _mm256_add_epi32(acc20, _mm256_madd_epi16(av2, b0));
              acc21 = _mm256_add_epi32(acc21, _mm256_madd_epi16(av2, b1));
              const __m256i av3 = pair(a3);
              acc30 = _mm256_add_epi32(acc30, _mm256_madd_epi16(av3, b0));
              acc31 = _mm256_add_epi32(acc31, _mm256_madd_epi16(av3, b1));
            }
            int32_t* ci = c + i0 * n + j0;
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci), acc00);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 8), acc01);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + n), acc10);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + n + 8), acc11);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 2 * n), acc20);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 2 * n + 8), acc21);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 3 * n), acc30);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 3 * n + 8), acc31);
          }
          if (n16 < n) {
            for (int64_t r = 0; r < kMr; ++r) {
              int32_t* ci = c + (i0 + r) * n;
              std::memset(ci + n16, 0,
                          sizeof(int32_t) * static_cast<size_t>(n - n16));
              const int8_t* ar = a + (i0 + r) * k;
              for (int64_t p = 0; p < kp; ++p) {
                const int32_t av0 = ar[2 * p];
                const int32_t av1 = 2 * p + 1 < k ? ar[2 * p + 1] : 0;
                PairDotRow(packed_b + p * 2 * n + 2 * n16, av0, av1, ci + n16,
                           n - n16);
              }
            }
          }
        }
        for (; i0 < r1; ++i0) {
          int32_t* ci = c + i0 * n;
          std::memset(ci, 0, sizeof(int32_t) * static_cast<size_t>(n));
          const int8_t* ar = a + i0 * k;
          for (int64_t p = 0; p < kp; ++p) {
            const int32_t av0 = ar[2 * p];
            const int32_t av1 = 2 * p + 1 < k ? ar[2 * p + 1] : 0;
            PairDotRow(packed_b + p * 2 * n, av0, av1, ci, n);
          }
        }
      },
      /*grain=*/16);
}

// Fused vpmaddwd kernel: the register tiles above, but the accumulators are
// spilled to a stack tile and requantized straight into the int8 output at
// the unpadded stride — the int32 values never touch a scratch matrix.
void GemmInt8RequantAvx2(const int8_t* a, const int16_t* packed_b, int64_t m,
                         int64_t k, int64_t n, int64_t n_out,
                         const RequantEpilogue& ep, int8_t* dst) {
  const int64_t kp = (k + 1) / 2;
  const int64_t n16 = n - n % 16;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        alignas(32) int32_t tile[kMr][16];
        int64_t i0 = r0;
        for (; i0 + kMr <= r1; i0 += kMr) {
          const int8_t* a0 = a + i0 * k;
          const int8_t* a1 = a0 + k;
          const int8_t* a2 = a1 + k;
          const int8_t* a3 = a2 + k;
          // Tiles whose 16 columns all land in the zero-weight padding are
          // skipped outright (nothing of theirs is ever emitted).
          for (int64_t j0 = 0; j0 < n16 && j0 < n_out; j0 += 16) {
            __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
            __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
            __m256i acc20 = _mm256_setzero_si256(), acc21 = _mm256_setzero_si256();
            __m256i acc30 = _mm256_setzero_si256(), acc31 = _mm256_setzero_si256();
            for (int64_t p = 0; p < kp; ++p) {
              const int16_t* bp = packed_b + p * 2 * n + 2 * j0;
              const __m256i b0 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
              const __m256i b1 =
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
              const int64_t l = 2 * p;
              const bool has_hi = l + 1 < k;
              auto pair = [&](const int8_t* ar) {
                const uint16_t lo = static_cast<uint16_t>(static_cast<int16_t>(ar[l]));
                const uint16_t hi = has_hi ? static_cast<uint16_t>(
                                                 static_cast<int16_t>(ar[l + 1]))
                                           : uint16_t{0};
                return _mm256_set1_epi32(static_cast<int32_t>(
                    static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16)));
              };
              const __m256i av0 = pair(a0);
              acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(av0, b0));
              acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(av0, b1));
              const __m256i av1 = pair(a1);
              acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(av1, b0));
              acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(av1, b1));
              const __m256i av2 = pair(a2);
              acc20 = _mm256_add_epi32(acc20, _mm256_madd_epi16(av2, b0));
              acc21 = _mm256_add_epi32(acc21, _mm256_madd_epi16(av2, b1));
              const __m256i av3 = pair(a3);
              acc30 = _mm256_add_epi32(acc30, _mm256_madd_epi16(av3, b0));
              acc31 = _mm256_add_epi32(acc31, _mm256_madd_epi16(av3, b1));
            }
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[0]), acc00);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[0] + 8), acc01);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[1]), acc10);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[1] + 8), acc11);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[2]), acc20);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[2] + 8), acc21);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[3]), acc30);
            _mm256_store_si256(reinterpret_cast<__m256i*>(tile[3] + 8), acc31);
            const int64_t emit = std::min<int64_t>(16, n_out - j0);
            const double* bias = ep.bias != nullptr ? ep.bias + j0 : nullptr;
            RequantTile16(tile, kMr, emit, ep.total, bias, ep.emitter,
                          dst + i0 * n_out + j0, n_out);
          }
          if (n16 < n_out) {
            for (int64_t r = 0; r < kMr; ++r) {
              FusedRowPair(a + (i0 + r) * k, packed_b, k, n, n16, n_out, ep,
                           dst + (i0 + r) * n_out);
            }
          }
        }
        for (; i0 < r1; ++i0) {
          FusedRowPair(a + i0 * k, packed_b, k, n, 0, n_out, ep, dst + i0 * n_out);
        }
      },
      /*grain=*/16);
}

#endif  // MIXQ_COMPILED_AVX2

#if MIXQ_COMPILED_VNNI

// 256-bit vpdpbusd: EVEX form with AVX512-VNNI+VL, VEX form with AVX-VNNI.
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
#define MIXQ_MM256_DPBUSD _mm256_dpbusd_epi32
#else
#define MIXQ_MM256_DPBUSD _mm256_dpbusd_avx_epi32
#endif

// Broadcast of one row's k-quad, shifted into vpdpbusd's unsigned operand:
// codes are symmetric (|a| <= 127) so a + 128 fits [1, 255]. Zero-padded k
// positions multiply zero weight bytes, so their shifted value is harmless.
inline __m256i QuadU8(const int8_t* ar, int64_t l, int64_t k) {
  if (l + 3 < k) {
    // Full quad: one 4-byte load; XOR with 0x80 per byte IS the +128 shift
    // ((uint8)(v + 128) == v ^ 0x80 for every int8 v). The byte-wise build
    // below costs ~12 scalar ops per row per quad and halves GEMM
    // throughput; this is 2.
    uint32_t w;
    std::memcpy(&w, ar + l, 4);
    return _mm256_set1_epi32(static_cast<int32_t>(w ^ 0x80808080u));
  }
  uint32_t w = static_cast<uint32_t>(static_cast<uint8_t>(ar[l] + 128));
  w |= static_cast<uint32_t>(
           static_cast<uint8_t>((l + 1 < k ? ar[l + 1] : 0) + 128))
       << 8;
  w |= static_cast<uint32_t>(
           static_cast<uint8_t>((l + 2 < k ? ar[l + 2] : 0) + 128))
       << 16;
  w |= static_cast<uint32_t>(
           static_cast<uint8_t>((l + 3 < k ? ar[l + 3] : 0) + 128))
       << 24;
  return _mm256_set1_epi32(static_cast<int32_t>(w));
}

// Shared 4x16 vpdpbusd tile: accumulates over all k-quads, subtracts the
// +128-shift correction (128 * colsum, row-independent), leaves exact int32
// sums in `tile`. Identical values to the vpmaddwd/scalar kernels.
inline void VnniTile(const int8_t* a0, const int8_t* a1, const int8_t* a2,
                     const int8_t* a3, const int8_t* quad_b, const int32_t* corr,
                     int64_t k, int64_t n, int64_t j0, int32_t tile[][16]) {
  const int64_t kq = (k + 3) / 4;
  __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
  __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
  __m256i acc20 = _mm256_setzero_si256(), acc21 = _mm256_setzero_si256();
  __m256i acc30 = _mm256_setzero_si256(), acc31 = _mm256_setzero_si256();
  for (int64_t q = 0; q < kq; ++q) {
    const int8_t* bq = quad_b + q * 4 * n + 4 * j0;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bq));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bq + 32));
    const int64_t l = 4 * q;
    const __m256i av0 = QuadU8(a0, l, k);
    acc00 = MIXQ_MM256_DPBUSD(acc00, av0, b0);
    acc01 = MIXQ_MM256_DPBUSD(acc01, av0, b1);
    const __m256i av1 = QuadU8(a1, l, k);
    acc10 = MIXQ_MM256_DPBUSD(acc10, av1, b0);
    acc11 = MIXQ_MM256_DPBUSD(acc11, av1, b1);
    const __m256i av2 = QuadU8(a2, l, k);
    acc20 = MIXQ_MM256_DPBUSD(acc20, av2, b0);
    acc21 = MIXQ_MM256_DPBUSD(acc21, av2, b1);
    const __m256i av3 = QuadU8(a3, l, k);
    acc30 = MIXQ_MM256_DPBUSD(acc30, av3, b0);
    acc31 = MIXQ_MM256_DPBUSD(acc31, av3, b1);
  }
  const __m256i c0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(corr + j0));
  const __m256i c1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(corr + j0 + 8));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[0]),
                     _mm256_sub_epi32(acc00, c0));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[0] + 8),
                     _mm256_sub_epi32(acc01, c1));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[1]),
                     _mm256_sub_epi32(acc10, c0));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[1] + 8),
                     _mm256_sub_epi32(acc11, c1));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[2]),
                     _mm256_sub_epi32(acc20, c0));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[2] + 8),
                     _mm256_sub_epi32(acc21, c1));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[3]),
                     _mm256_sub_epi32(acc30, c0));
  _mm256_store_si256(reinterpret_cast<__m256i*>(tile[3] + 8),
                     _mm256_sub_epi32(acc31, c1));
}

void GemmInt8QuadBVnni(const int8_t* a, const int8_t* quad_b, const int32_t* corr,
                       int32_t* c, int64_t m, int64_t k, int64_t n) {
  const int64_t kq = (k + 3) / 4;
  const int64_t n16 = n - n % 16;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        alignas(32) int32_t tile[kMr][16];
        int64_t i0 = r0;
        for (; i0 + kMr <= r1; i0 += kMr) {
          const int8_t* a0 = a + i0 * k;
          const int8_t* a1 = a0 + k;
          const int8_t* a2 = a1 + k;
          const int8_t* a3 = a2 + k;
          for (int64_t j0 = 0; j0 < n16; j0 += 16) {
            VnniTile(a0, a1, a2, a3, quad_b, corr, k, n, j0, tile);
            for (int64_t r = 0; r < kMr; ++r) {
              std::memcpy(c + (i0 + r) * n + j0, tile[r],
                          sizeof(int32_t) * 16);
            }
          }
          if (n16 < n) {
            for (int64_t r = 0; r < kMr; ++r) {
              int32_t* ci = c + (i0 + r) * n;
              std::memset(ci + n16, 0,
                          sizeof(int32_t) * static_cast<size_t>(n - n16));
              const int8_t* ar = a + (i0 + r) * k;
              for (int64_t q = 0; q < kq; ++q) {
                const int64_t l = 4 * q;
                QuadDotRow(quad_b + q * 4 * n + 4 * n16, ar[l],
                           l + 1 < k ? ar[l + 1] : 0, l + 2 < k ? ar[l + 2] : 0,
                           l + 3 < k ? ar[l + 3] : 0, ci + n16, n - n16);
              }
            }
          }
        }
        for (; i0 < r1; ++i0) {
          int32_t* ci = c + i0 * n;
          std::memset(ci, 0, sizeof(int32_t) * static_cast<size_t>(n));
          const int8_t* ar = a + i0 * k;
          for (int64_t q = 0; q < kq; ++q) {
            const int64_t l = 4 * q;
            QuadDotRow(quad_b + q * 4 * n, ar[l], l + 1 < k ? ar[l + 1] : 0,
                       l + 2 < k ? ar[l + 2] : 0, l + 3 < k ? ar[l + 3] : 0, ci,
                       n);
          }
        }
      },
      /*grain=*/16);
}

void GemmInt8RequantVnni(const int8_t* a, const int8_t* quad_b,
                         const int32_t* corr, int64_t m, int64_t k, int64_t n,
                         int64_t n_out, const RequantEpilogue& ep, int8_t* dst) {
  const int64_t n16 = n - n % 16;
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        alignas(32) int32_t tile[kMr][16];
        int64_t i0 = r0;
        for (; i0 + kMr <= r1; i0 += kMr) {
          const int8_t* a0 = a + i0 * k;
          const int8_t* a1 = a0 + k;
          const int8_t* a2 = a1 + k;
          const int8_t* a3 = a2 + k;
          for (int64_t j0 = 0; j0 < n16 && j0 < n_out; j0 += 16) {
            VnniTile(a0, a1, a2, a3, quad_b, corr, k, n, j0, tile);
            const int64_t emit = std::min<int64_t>(16, n_out - j0);
            const double* bias = ep.bias != nullptr ? ep.bias + j0 : nullptr;
            RequantTile16(tile, kMr, emit, ep.total, bias, ep.emitter,
                          dst + i0 * n_out + j0, n_out);
          }
          if (n16 < n_out) {
            for (int64_t r = 0; r < kMr; ++r) {
              FusedRowQuad(a + (i0 + r) * k, quad_b, k, n, n16, n_out, ep,
                           dst + (i0 + r) * n_out);
            }
          }
        }
        for (; i0 < r1; ++i0) {
          FusedRowQuad(a + i0 * k, quad_b, k, n, 0, n_out, ep, dst + i0 * n_out);
        }
      },
      /*grain=*/16);
}

#endif  // MIXQ_COMPILED_VNNI

}  // namespace

void GemmInt8PackedB(const int8_t* a, const int16_t* packed_b, int32_t* c,
                     int64_t m, int64_t k, int64_t n) {
#if MIXQ_COMPILED_AVX2
  if (ActiveKernelIsa() != KernelIsa::kScalar) {
    GemmInt8PackedBAvx2(a, packed_b, c, m, k, n);
    return;
  }
#endif
  GemmInt8PackedBScalar(a, packed_b, c, m, k, n);
}

void GemmInt8QuadB(const int8_t* a, const int8_t* quad_b, const int32_t* corr,
                   int32_t* c, int64_t m, int64_t k, int64_t n) {
  // Standalone kernel entry (benches, arbitrary codes): no per-step
  // certificate is available here, so the coarse full-scale depth predicate
  // gates the unsigned-shift path.
#if MIXQ_COMPILED_VNNI
  if (ActiveKernelIsa() == KernelIsa::kVnni && Int8VnniDepthOk(k)) {
    GemmInt8QuadBVnni(a, quad_b, corr, c, m, k, n);
    return;
  }
#endif
  (void)corr;  // the signed scalar path needs no shift correction
  GemmInt8QuadBScalar(a, quad_b, c, m, k, n);
}

void GemmInt8Requant(const int8_t* a, const Int8PackedWeights& w, int64_t m,
                     int64_t k, int64_t n, int64_t n_out,
                     const RequantEpilogue& ep, int8_t* dst) {
  const KernelIsa isa = ActiveKernelIsa();
  // The prover's per-step certificate must never be less conservative than
  // the coarse full-scale predicate it replaced.
  assert(!(w.quad != nullptr && Int8VnniDepthOk(k)) || w.vnni_ok);
#if MIXQ_COMPILED_VNNI
  if (isa == KernelIsa::kVnni && w.quad != nullptr && w.corr != nullptr &&
      w.vnni_ok) {
    GemmInt8RequantVnni(a, w.quad, w.corr, m, k, n, n_out, ep, dst);
    return;
  }
#endif
#if MIXQ_COMPILED_AVX2
  if (isa != KernelIsa::kScalar) {
    GemmInt8RequantAvx2(a, w.pair, m, k, n, n_out, ep, dst);
    return;
  }
#endif
  (void)isa;
  GemmInt8RequantScalar(a, w.pair, m, k, n, n_out, ep, dst);
}

}  // namespace mixq
