// Copyright 2026 MixQ-GNN Authors
#include "tensor/gemm.h"

#include <cstring>

#include "common/parallel.h"

namespace mixq {

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* ci = c + i * n;
          if (!accumulate) std::memset(ci, 0, sizeof(float) * static_cast<size_t>(n));
          const float* ai = a + i * k;
          for (int64_t l = 0; l < k; ++l) {
            const float av = ai[l];
            if (av == 0.0f) continue;
            const float* bl = b + l * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * bl[j];
          }
        }
      },
      /*grain=*/16);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
            bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* ai = a + i * n;
          float* ci = c + i * k;
          for (int64_t j = 0; j < k; ++j) {
            const float* bj = b + j * n;
            float acc = accumulate ? ci[j] : 0.0f;
            for (int64_t l = 0; l < n; ++l) acc += ai[l] * bj[l];
            ci[j] = acc;
          }
        }
      },
      /*grain=*/16);
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  // Parallelize over output rows (k of them); each output row i gathers
  // column i of A against all rows of B.
  ParallelFor(
      k,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* ci = c + i * n;
          if (!accumulate) std::memset(ci, 0, sizeof(float) * static_cast<size_t>(n));
          for (int64_t l = 0; l < m; ++l) {
            const float av = a[l * k + i];
            if (av == 0.0f) continue;
            const float* bl = b + l * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * bl[j];
          }
        }
      },
      /*grain=*/16);
}

void GemmInt32(const int32_t* a, const int32_t* b, int64_t* c, int64_t m, int64_t k,
               int64_t n, bool accumulate) {
  ParallelFor(
      m,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          int64_t* ci = c + i * n;
          if (!accumulate) std::memset(ci, 0, sizeof(int64_t) * static_cast<size_t>(n));
          const int32_t* ai = a + i * k;
          for (int64_t l = 0; l < k; ++l) {
            const int64_t av = ai[l];
            if (av == 0) continue;
            const int32_t* bl = b + l * n;
            for (int64_t j = 0; j < n; ++j) ci[j] += av * static_cast<int64_t>(bl[j]);
          }
        }
      },
      /*grain=*/16);
}

}  // namespace mixq
