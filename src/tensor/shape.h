// Copyright 2026 MixQ-GNN Authors
// Tensor shape: rank-1 or rank-2, row-major. GNN workloads here only need
// matrices (node-feature / weight) and vectors (alpha, bias, labels).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace mixq {

/// Row-major shape of rank 1 or 2.
class Shape {
 public:
  Shape() = default;
  /// Rank-1 shape (n).
  explicit Shape(int64_t n) : dims_{n} { MIXQ_CHECK_GE(n, 0); }
  /// Rank-2 shape (rows, cols).
  Shape(int64_t rows, int64_t cols) : dims_{rows, cols} {
    MIXQ_CHECK_GE(rows, 0);
    MIXQ_CHECK_GE(cols, 0);
  }

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return dims_.empty() ? 0 : n;
  }

  /// dims_[0] for rank>=1.
  int64_t rows() const {
    MIXQ_CHECK_GE(rank(), 1);
    return dims_[0];
  }
  /// dims_[1] for rank-2; 1 for rank-1 (treating vectors as column-compatible).
  int64_t cols() const {
    if (rank() == 1) return 1;
    MIXQ_CHECK_EQ(rank(), 2);
    return dims_[1];
  }

  int64_t dim(int i) const {
    MIXQ_CHECK_GE(i, 0);
    MIXQ_CHECK_LT(i, rank());
    return dims_[i];
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += ")";
    return s;
  }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace mixq
