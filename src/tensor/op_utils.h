// Copyright 2026 MixQ-GNN Authors
// Internal helpers shared by op implementations. Not part of the public API.
#pragma once

#include "tensor/tensor.h"

namespace mixq {
namespace internal {

/// True if gradients must be accumulated into this node during backward.
inline bool NeedsGrad(const TensorImplPtr& impl) {
  return impl != nullptr && (impl->requires_grad || impl->backward_fn != nullptr);
}

/// Reference overload for closures holding the impl directly.
inline bool NeedsGrad(const TensorImpl& impl) {
  return impl.requires_grad || impl.backward_fn != nullptr;
}

}  // namespace internal
}  // namespace mixq
