// Copyright 2026 MixQ-GNN Authors
// Differentiable tensor operations. Every op returns a new Tensor wired into
// the autograd DAG; gradients are validated against finite differences in
// tests/tensor_ops_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mixq {

// ---- Linear algebra ---------------------------------------------------------

/// Dense matrix product: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor (materialized; not a view).
Tensor Transpose(const Tensor& x);

/// Dot product of two equally-sized rank-1 tensors -> scalar.
Tensor Dot(const Tensor& a, const Tensor& b);

// ---- Elementwise ------------------------------------------------------------

/// Elementwise sum of equally-shaped tensors.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product.
Tensor Mul(const Tensor& a, const Tensor& b);
/// x * c for a compile-time-known scalar c (c is not differentiated).
Tensor Scale(const Tensor& x, float c);
/// x + c elementwise (c not differentiated).
Tensor AddScalar(const Tensor& x, float c);
/// Adds a rank-1 bias b[f] to every row of x[n,f].
Tensor AddRowBroadcast(const Tensor& x, const Tensor& b);
/// Multiplies every element of x by the idx-th element of rank-1 tensor w.
/// Gradients flow into both x and w[idx]; used by the relaxed (DARTS-style)
/// quantizer mixture, Eq. (6).
Tensor ScaleByElement(const Tensor& x, const Tensor& w, int64_t idx);
/// Multiplies row i of x[n,f] by s[i] (rank-1, size n). Gradients flow into
/// both; used by the A2Q-style per-node learnable scales.
Tensor MulRowwise(const Tensor& x, const Tensor& s);

// ---- Activations ------------------------------------------------------------

Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, float negative_slope = 0.01f);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Exp(const Tensor& x);

// ---- Reductions -------------------------------------------------------------

/// Sum of all elements -> scalar.
Tensor Sum(const Tensor& x);
/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& x);

// ---- Softmax / losses ---------------------------------------------------------

/// Softmax over a rank-1 tensor (used for the relaxed alpha weights).
Tensor Softmax1D(const Tensor& x);

/// Row-wise log-softmax of logits [n, c].
Tensor LogSoftmaxRows(const Tensor& x);

/// Masked multiclass cross-entropy: mean over rows with mask!=0 of
/// -log softmax(logits)[row, label]. Labels < 0 are ignored.
Tensor CrossEntropyMasked(const Tensor& logits, const std::vector<int64_t>& labels,
                          const std::vector<uint8_t>& mask);

/// Masked binary cross-entropy with logits for multi-label tasks:
/// mean over masked rows and all columns of BCE(sigmoid(logit), target).
Tensor BceWithLogitsMasked(const Tensor& logits, const Tensor& targets,
                           const std::vector<uint8_t>& mask);

// ---- Regularization / structure ----------------------------------------------

/// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);

/// Gathers rows of x by index (with repetition allowed); backward scatter-adds.
Tensor GatherRows(const Tensor& x, const std::vector<int64_t>& indices);

/// Concatenates two rank-2 tensors along columns: [n,f1] ++ [n,f2] -> [n,f1+f2].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Rank-1 copy of x's storage with gradient pass-through (reshape to [numel]).
Tensor Flatten(const Tensor& x);

/// Pooling mode for GlobalPool.
enum class PoolMode { kMax, kMean, kSum };

/// Graph-level readout: pools node features x[n,f] into [num_graphs, f]
/// according to the graph-indicator `batch` (batch[i] in [0, num_graphs)).
/// Max pooling is what the paper uses for quantized GIN (overflow-safe).
Tensor GlobalPool(const Tensor& x, const std::vector<int64_t>& batch,
                  int64_t num_graphs, PoolMode mode);

// ---- Batch norm ---------------------------------------------------------------

/// Differentiable 1-D batch normalization over rows of x[n,f] with learnable
/// gamma/beta [f]. In training mode uses batch statistics and updates the
/// running buffers in-place; in eval mode uses the running buffers.
Tensor BatchNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                     std::vector<float>* running_mean, std::vector<float>* running_var,
                     bool training, float momentum = 0.1f, float eps = 1e-5f);

}  // namespace mixq
