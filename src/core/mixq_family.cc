// Copyright 2026 MixQ-GNN Authors
// SchemeRegistry families for the paper's contribution: "mixq" (relaxed
// bit-width search, Algorithm 1, then fixed-width training) and "mixq_dq"
// (the selected widths trained with the Degree-Quant quantizer, Table 4).
//
// These are RequiresSearch() families: BuildSearch() yields the relaxed
// softmax(α)-mixture scheme for phase 1; the Experiment facade records
// SelectedBits() into SchemeBuildContext::selected_bits and calls Build()
// for the phase-2 per-component scheme. Registered here — in core, next to
// RelaxedMixQScheme — rather than in src/quant/, proving out the registry's
// open-extension contract.
//
// Recognized parameters: lambda (default 0.1), bit_options ("2,4,8"),
// search_epochs (default 50; consumed by the Experiment facade), and for
// mixq_dq the DQ knobs p_min / p_max.
#include <cstdio>

#include "core/relaxed_scheme.h"
#include "quant/scheme_registry.h"

namespace mixq {
namespace {

class MixQFamily : public SchemeFamily {
 public:
  explicit MixQFamily(bool dq_finetune) : dq_finetune_(dq_finetune) {}

  bool RequiresSearch() const override { return true; }

  Result<QuantSchemePtr> BuildSearch(const SchemeParams& params,
                                     const SchemeBuildContext&) const override {
    RelaxedOptions opts;
    opts.bit_options = params.GetIntListOr("bit_options", {2, 4, 8});
    opts.lambda = params.GetDoubleOr("lambda", 0.1);
    return QuantSchemePtr(std::make_shared<RelaxedMixQScheme>(opts));
  }

  Result<QuantSchemePtr> Build(const SchemeParams& params,
                               const SchemeBuildContext& ctx) const override {
    if (ctx.selected_bits.empty()) {
      return Status::InvalidArgument(
          "mixq is a two-phase family: run the search scheme from BuildSearch() "
          "first and pass its SelectedBits() via SchemeBuildContext::selected_bits "
          "(the Experiment facade does this automatically)");
    }
    QatOptions opts;
    if (dq_finetune_) {
      if (ctx.in_degrees.empty()) {
        return Status::InvalidArgument(
            "mixq_dq requires SchemeBuildContext::in_degrees (DQ protection)");
      }
      opts.activation_observer = ObserverKind::kPercentile;
      opts.degree_protect = true;
      opts.protect_probs = MakeDegreeProtectionProbs(
          ctx.in_degrees, params.GetDoubleOr("p_min", 0.0),
          params.GetDoubleOr("p_max", 0.2));
      opts.mask_seed = ctx.seed;
    }
    return QuantSchemePtr(std::make_shared<PerComponentScheme>(
        ctx.selected_bits, /*default=*/8, opts));
  }

  Status ValidateParams(const SchemeParams& params) const override {
    Result<std::vector<int>> options = params.GetIntList("bit_options");
    if (params.Has("bit_options")) {
      if (!options.ok()) return options.status();
      if (options.ValueOrDie().empty()) {
        return Status::InvalidArgument("bit_options must be non-empty");
      }
      for (int b : options.ValueOrDie()) {
        if (b < 1 || b > 32) {
          return Status::InvalidArgument("bit_options entry " + std::to_string(b) +
                                         " out of range [1, 32]");
        }
      }
    }
    if (params.Has("lambda")) {
      Result<double> lambda = params.GetDouble("lambda");
      if (!lambda.ok()) return lambda.status();
    }
    if (params.Has("search_epochs")) {
      Result<int64_t> epochs = params.GetInt("search_epochs");
      if (!epochs.ok()) return epochs.status();
      if (epochs.ValueOrDie() < 1) {
        return Status::InvalidArgument("search_epochs must be >= 1");
      }
    }
    return ValidateOptionalDoubleParams(params, {"p_min", "p_max"});
  }

  std::string Label(const SchemeParams& params) const override {
    char buf[96];
    std::snprintf(buf, sizeof(buf), dq_finetune_ ? "MixQ(l=%g)+DQ" : "MixQ(l=%g)",
                  params.GetDoubleOr("lambda", 0.1));
    return buf;
  }

 private:
  bool dq_finetune_;
};

MIXQ_REGISTER_SCHEME("mixq", std::make_shared<const MixQFamily>(false));
MIXQ_REGISTER_SCHEME("mixq_dq", std::make_shared<const MixQFamily>(true));

}  // namespace
}  // namespace mixq
