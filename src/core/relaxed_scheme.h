// Copyright 2026 MixQ-GNN Authors
// RelaxedMixQScheme — the heart of MixQ-GNN (paper §4.1, §4.2).
//
// Every component gets k = |B| candidate fake quantizers (one per bit-width
// b_i ∈ B) and a learnable relaxation vector α ∈ R^k. The component's output
// during the search is the Eq. (6) mixture
//     Σ_i softmax(α)_i · Q^f_{b_i}(x),
// and each component contributes the Eq. (8) memory term
//     C(T) = Σ_i b_i·softmax(α)_i · |T| / (1024·8)      [MB]
// to the λ-weighted penalty added to the task loss (Eq. (7) Lagrangian).
// The accumulated ΣC is additionally normalized by the total element count of
// the step, making the penalty the element-weighted *average* bit-width (in
// bits). This keeps the meaning of λ independent of dataset size — the paper
// tunes λ per dataset implicitly; one normalized λ scale replaces that
// (DESIGN.md §5 records the substitution).
// After training, SelectedBits() returns argmax_α per component — the
// bit-width sequence S of Algorithm 1.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "quant/scheme.h"

namespace mixq {

struct RelaxedOptions {
  /// Candidate bit-widths B (e.g. {2,4,8}; {4,8} for OGB-Arxiv).
  std::vector<int> bit_options = {2, 4, 8};
  /// Lagrange multiplier λ. Negative values (λ = −ε) reward wider widths.
  double lambda = 0.1;
  ObserverKind activation_observer = ObserverKind::kEma;
  /// Initial α (uniform). Softmax is shift-invariant, so 0 is canonical.
  float alpha_init = 0.0f;
};

/// The relaxed differentiable quantization scheme (Algorithm 1's
/// "Build Relaxed Architecture" + penalty machinery).
class RelaxedMixQScheme : public QuantScheme {
 public:
  explicit RelaxedMixQScheme(RelaxedOptions options);

  Tensor Quantize(const std::string& id, const Tensor& x, ComponentKind kind,
                  bool training) override;

  /// All α vectors (handed to the optimizer together with Θ; the paper's
  /// single-loop update).
  std::vector<Tensor> SchemeParameters() override;

  /// λ · Σ_i C(T_i) accumulated over the current step's forward pass.
  Tensor PenaltyLoss() override;

  /// Expected bit-width under softmax(α) while searching; after selection
  /// callers should instantiate a PerComponentScheme from SelectedBits().
  double EffectiveBits(const std::string& id, double fallback) const override;

  void BeginStep(bool training) override;

  std::vector<std::string> ComponentIds() const override { return ids_; }

  /// Algorithm 1 line 25-26: bit-width of the max-α candidate per component.
  std::map<std::string, int> SelectedBits() const override;

  /// One α scalar per candidate width per component.
  int64_t QuantParameterCount() const override;

  /// softmax(α) for one component (diagnostics / tests).
  std::vector<double> AlphaWeights(const std::string& id) const;

  const RelaxedOptions& options() const { return options_; }

 private:
  struct Component {
    Tensor alpha;  // [k], learnable
    std::vector<std::unique_ptr<FakeQuantizer>> quantizers;  // one per b_i
  };

  Component& GetOrCreate(const std::string& id, ComponentKind kind);

  RelaxedOptions options_;
  Tensor bits_const_;  // [k] constant tensor of bit values
  std::map<std::string, Component> components_;
  std::vector<std::string> ids_;
  std::vector<Tensor> step_penalties_;  // C(T) terms gathered this step
  double step_elements_ = 0.0;          // Σ|T| this step (normalizer)
};

}  // namespace mixq
