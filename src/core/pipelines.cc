// Copyright 2026 MixQ-GNN Authors
// SchemeSpec → SchemeRef translation and the legacy CHECK-on-failure
// wrappers around the Experiment facade.
#include "core/pipelines.h"

namespace mixq {

SchemeRef SchemeSpec::ToRef() const {
  SchemeRef ref;
  switch (kind) {
    case Kind::kFp32:
      ref = SchemeRef::Fp32();
      break;
    case Kind::kQat:
      ref = SchemeRef::Qat(bits);
      break;
    case Kind::kDq:
      ref = SchemeRef::Dq(bits);
      break;
    case Kind::kA2q:
      ref = SchemeRef::A2q(a2q_memory_lambda);
      break;
    case Kind::kMixQ:
      ref = SchemeRef::MixQ(lambda, bit_options);
      ref.params.SetInt("search_epochs", search_epochs);
      break;
    case Kind::kMixQDq:
      ref = SchemeRef::MixQDq(lambda, bit_options);
      ref.params.SetInt("search_epochs", search_epochs);
      break;
    case Kind::kFixed:
      ref = SchemeRef::Fixed(fixed_bits);
      break;
    case Kind::kRandom:
      ref = SchemeRef::Random(bit_options);
      break;
    case Kind::kRandomInt8:
      ref = SchemeRef::RandomInt8(bit_options);
      break;
  }
  return ref;
}

std::string SchemeLabel(const SchemeSpec& spec) { return SchemeLabel(spec.ToRef()); }

ExperimentResult RunNodeExperiment(const NodeDataset& dataset,
                                   const NodeExperimentConfig& config,
                                   const SchemeSpec& spec) {
  ExperimentSpec es = ExperimentSpec::NodeClassification(dataset, config, spec.ToRef());
  es.seed = spec.seed;
  Result<Experiment> experiment = Experiment::Create(std::move(es));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  return std::move(report.ValueOrDie().node);
}

GraphExperimentResult RunGraphExperiment(const GraphDataset& dataset,
                                         const GraphExperimentConfig& config,
                                         const SchemeSpec& spec) {
  ExperimentSpec es =
      ExperimentSpec::GraphClassification(dataset, config, spec.ToRef());
  es.seed = spec.seed;
  Result<Experiment> experiment = Experiment::Create(std::move(es));
  MIXQ_CHECK(experiment.ok()) << experiment.status().ToString();
  Result<ExperimentReport> report = experiment.ValueOrDie().Run();
  MIXQ_CHECK(report.ok()) << report.status().ToString();
  return std::move(report.ValueOrDie().graph);
}

RepeatedResult RepeatNodeExperiment(
    const std::function<NodeDataset(uint64_t)>& make_dataset,
    NodeExperimentConfig config, SchemeSpec spec, int repeats, uint64_t seed0) {
  Result<RepeatedResult> result =
      RepeatExperiment(make_dataset, std::move(config), spec.ToRef(), repeats, seed0);
  MIXQ_CHECK(result.ok()) << result.status().ToString();
  return result.MoveValueOrDie();
}

}  // namespace mixq
