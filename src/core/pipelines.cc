// Copyright 2026 MixQ-GNN Authors
#include "core/pipelines.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "core/relaxed_scheme.h"
#include "quant/a2q.h"
#include "tensor/ops.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace mixq {

std::string SchemeLabel(const SchemeSpec& spec) {
  char buf[96];
  switch (spec.kind) {
    case SchemeSpec::Kind::kFp32: return "FP32";
    case SchemeSpec::Kind::kQat:
      std::snprintf(buf, sizeof(buf), "QAT-INT%d", spec.bits);
      return buf;
    case SchemeSpec::Kind::kDq:
      std::snprintf(buf, sizeof(buf), "DQ-INT%d", spec.bits);
      return buf;
    case SchemeSpec::Kind::kA2q: return "A2Q";
    case SchemeSpec::Kind::kMixQ:
      std::snprintf(buf, sizeof(buf), "MixQ(l=%g)", spec.lambda);
      return buf;
    case SchemeSpec::Kind::kMixQDq:
      std::snprintf(buf, sizeof(buf), "MixQ(l=%g)+DQ", spec.lambda);
      return buf;
    case SchemeSpec::Kind::kFixed: return "Fixed";
    case SchemeSpec::Kind::kRandom: return "Random";
    case SchemeSpec::Kind::kRandomInt8: return "Random+INT8";
  }
  return "?";
}

namespace {

// Builds the (non-MixQ) scheme for a SchemeSpec. `component_ids` is needed
// for random assignment; `degrees` for DQ protection; `num_nodes` for A2Q.
QuantSchemePtr MakeBaseScheme(const SchemeSpec& spec,
                              const std::vector<std::string>& component_ids,
                              const std::vector<int64_t>& degrees, int64_t num_nodes) {
  switch (spec.kind) {
    case SchemeSpec::Kind::kFp32:
      return std::make_shared<NoQuantScheme>();
    case SchemeSpec::Kind::kQat:
      return std::make_shared<UniformQatScheme>(spec.bits);
    case SchemeSpec::Kind::kDq: {
      QatOptions opts;
      opts.activation_observer = ObserverKind::kPercentile;
      opts.degree_protect = true;
      opts.protect_probs = MakeDegreeProtectionProbs(degrees);
      opts.mask_seed = spec.seed;
      return std::make_shared<UniformQatScheme>(spec.bits, opts);
    }
    case SchemeSpec::Kind::kA2q: {
      A2qOptions opts;
      opts.memory_lambda = spec.a2q_memory_lambda;
      opts.seed = spec.seed;
      return std::make_shared<A2qScheme>(num_nodes, opts);
    }
    case SchemeSpec::Kind::kFixed:
      return std::make_shared<PerComponentScheme>(spec.fixed_bits, /*default=*/8);
    case SchemeSpec::Kind::kRandom:
    case SchemeSpec::Kind::kRandomInt8: {
      Rng rng(spec.seed * 7919 + 13);
      std::map<std::string, int> bits;
      for (const auto& id : component_ids) {
        bits[id] = spec.bit_options[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(spec.bit_options.size()) - 1))];
      }
      if (spec.kind == SchemeSpec::Kind::kRandomInt8 && !component_ids.empty()) {
        bits[component_ids.back()] = 8;
      }
      return std::make_shared<PerComponentScheme>(std::move(bits), /*default=*/8);
    }
    case SchemeSpec::Kind::kMixQ:
    case SchemeSpec::Kind::kMixQDq:
      MIXQ_UNREACHABLE();  // handled by the two-phase pipeline
  }
  MIXQ_UNREACHABLE();
}

// Scheme used in phase 2 after a MixQ search selected `bits`.
QuantSchemePtr MakeSelectedScheme(const SchemeSpec& spec,
                                  std::map<std::string, int> bits,
                                  const std::vector<int64_t>& degrees) {
  QatOptions opts;
  if (spec.kind == SchemeSpec::Kind::kMixQDq) {
    opts.activation_observer = ObserverKind::kPercentile;
    opts.degree_protect = true;
    opts.protect_probs = MakeDegreeProtectionProbs(degrees);
    opts.mask_seed = spec.seed;
  }
  return std::make_shared<PerComponentScheme>(std::move(bits), /*default=*/8, opts);
}

int64_t CountParams(std::vector<Tensor> params) {
  int64_t total = 0;
  for (auto& p : params) total += p.numel();
  return total;
}

struct NodeSetup {
  Graph graph;  // possibly neighbour-sampled
  SparseOperatorPtr op;
  std::vector<int64_t> degrees;
};

NodeSetup PrepareNode(const NodeDataset& dataset, const NodeExperimentConfig& config) {
  NodeSetup s;
  s.graph = dataset.graph;
  if (config.sample_max_degree > 0) {
    s.graph = SampleNeighbors(s.graph, config.sample_max_degree,
                              config.train.seed * 31 + 5);
  }
  s.degrees = s.graph.InDegrees();
  const CsrMatrix adj = s.graph.Adjacency();
  s.op = MakeOperator(config.model == NodeModelKind::kGcn ? GcnNormalize(adj)
                                                          : RowNormalize(adj));
  return s;
}

// Runs one training with the given scheme over a prepared node task; returns
// the test metric at best validation.
template <typename Net>
TrainResult TrainNode(Net* net, const NodeSetup& setup, const NodeDataset& dataset,
                      const NodeExperimentConfig& config, QuantScheme* scheme) {
  const Graph& g = setup.graph;
  Tensor x = g.features;
  const bool multilabel = dataset.metric == "rocauc";
  auto forward = [&](Rng* rng) { return net->Forward(x, setup.op, scheme, rng); };
  auto loss_fn = [&](const Tensor& logits) {
    if (multilabel) return BceWithLogitsMasked(logits, g.label_matrix, g.train_mask);
    return CrossEntropyMasked(logits, g.labels, g.train_mask);
  };
  auto metric_fn = [&](const Tensor& logits, bool is_test) {
    const auto& mask = is_test ? g.test_mask : g.val_mask;
    if (multilabel) return RocAucMultiLabel(logits, g.label_matrix, mask);
    return Accuracy(logits, g.labels, mask);
  };
  return RunTrainingLoop(config.train, net, scheme, forward, loss_fn, metric_fn);
}

}  // namespace

ExperimentResult RunNodeExperiment(const NodeDataset& dataset,
                                   const NodeExperimentConfig& config,
                                   const SchemeSpec& spec) {
  NodeSetup setup = PrepareNode(dataset, config);
  const Graph& g = setup.graph;
  const int64_t out_dim = dataset.metric == "rocauc" ? g.label_matrix.cols()
                                                     : g.num_classes;

  ExperimentResult result;
  auto run_with = [&](QuantSchemePtr scheme, uint64_t model_seed) -> double {
    Rng rng(model_seed);
    if (config.model == NodeModelKind::kGcn) {
      GcnNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                        config.dropout};
      GcnNet net(mc, &rng);
      TrainResult tr = TrainNode(&net, setup, dataset, config, scheme.get());
      result.model_param_count = CountParams(net.Parameters());
      BitOpsReport report = net.ComputeBitOps(g.num_nodes, setup.op->nnz(), *scheme);
      result.avg_bits = report.AverageBits();
      result.gbitops = report.GigaBitOps();
      return tr.test_at_best_val;
    }
    SageNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                       config.dropout};
    SageNet net(mc, &rng);
    TrainResult tr = TrainNode(&net, setup, dataset, config, scheme.get());
    result.model_param_count = CountParams(net.Parameters());
    BitOpsReport report = net.ComputeBitOps(g.num_nodes, setup.op->nnz(), *scheme);
    result.avg_bits = report.AverageBits();
    result.gbitops = report.GigaBitOps();
    return tr.test_at_best_val;
  };

  if (spec.kind == SchemeSpec::Kind::kMixQ || spec.kind == SchemeSpec::Kind::kMixQDq) {
    // ---- Phase 1: relaxed bit-width search (Algorithm 1) -------------------
    RelaxedOptions ropts;
    ropts.bit_options = spec.bit_options;
    ropts.lambda = spec.lambda;
    auto relaxed = std::make_shared<RelaxedMixQScheme>(ropts);
    NodeExperimentConfig search_cfg = config;
    search_cfg.train.epochs = spec.search_epochs;
    {
      Rng rng(spec.seed);
      if (config.model == NodeModelKind::kGcn) {
        GcnNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                          config.dropout};
        GcnNet net(mc, &rng);
        TrainNode(&net, setup, dataset, search_cfg, relaxed.get());
      } else {
        SageNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                           config.dropout};
        SageNet net(mc, &rng);
        TrainNode(&net, setup, dataset, search_cfg, relaxed.get());
      }
    }
    result.selected_bits = relaxed->SelectedBits();
    // ---- Phase 2: train the selected quantized architecture ----------------
    auto final_scheme = MakeSelectedScheme(spec, result.selected_bits, setup.degrees);
    result.test_metric = run_with(final_scheme, spec.seed + 1);
    result.quant_param_count = static_cast<int64_t>(result.selected_bits.size()) *
                               static_cast<int64_t>(spec.bit_options.size());
    return result;
  }

  // Component ids (needed for random assignment) come from a throwaway model.
  std::vector<std::string> ids;
  {
    Rng rng(1);
    if (config.model == NodeModelKind::kGcn) {
      GcnNet net({g.feature_dim(), config.hidden, out_dim, config.num_layers,
                  config.dropout},
                 &rng);
      ids = net.ComponentIds();
    } else {
      SageNet net({g.feature_dim(), config.hidden, out_dim, config.num_layers,
                   config.dropout},
                  &rng);
      ids = net.ComponentIds();
    }
  }
  auto scheme = MakeBaseScheme(spec, ids, setup.degrees, g.num_nodes);
  result.test_metric = run_with(scheme, spec.seed);
  if (spec.kind == SchemeSpec::Kind::kRandom ||
      spec.kind == SchemeSpec::Kind::kRandomInt8) {
    result.selected_bits =
        static_cast<PerComponentScheme*>(scheme.get())->assignment();
  }
  if (spec.kind == SchemeSpec::Kind::kA2q) {
    auto* a2q = static_cast<A2qScheme*>(scheme.get());
    result.quant_param_count = a2q->QuantizationParameterCount();
    result.avg_bits = a2q->AverageNodeBits();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Graph-level pipeline
// ---------------------------------------------------------------------------

namespace {

struct BatchSetup {
  GraphBatch batch;
  SparseOperatorPtr op;
  std::vector<uint8_t> all_mask;
  std::vector<int64_t> degrees;
};

BatchSetup PrepareBatch(const GraphDataset& ds, const std::vector<int64_t>& indices,
                        bool gcn_backbone) {
  BatchSetup s;
  s.batch = MakeBatch(ds, indices);
  const CsrMatrix adj = s.batch.merged.Adjacency();
  s.op = MakeOperator(gcn_backbone ? GcnNormalize(adj) : adj);
  s.all_mask.assign(s.batch.graph_labels.size(), 1);
  s.degrees = s.batch.merged.InDegrees();
  return s;
}

// One training run on a fold with a concrete scheme; returns best test acc.
double TrainGraphFold(const GraphDataset& ds, const GraphExperimentConfig& config,
                      QuantScheme* scheme, const BatchSetup& train_b,
                      const BatchSetup& test_b, uint64_t model_seed, int epochs,
                      double* out_gbitops, double* out_bits) {
  Rng rng(model_seed);
  std::unique_ptr<GinGraphNet> gin;
  std::unique_ptr<GcnGraphNet> gcn;
  std::vector<Tensor> params;
  if (config.gcn_backbone) {
    gcn = std::make_unique<GcnGraphNet>(
        GcnGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                            config.gcn_layers},
        &rng);
    params = gcn->Parameters();
  } else {
    gin = std::make_unique<GinGraphNet>(
        GinGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                            config.num_layers, config.batch_norm},
        &rng);
    params = gin->Parameters();
  }
  auto forward = [&](const BatchSetup& b) {
    if (config.gcn_backbone) {
      return gcn->Forward(b.batch.merged.features, b.op, b.batch.batch,
                          b.batch.num_graphs, scheme);
    }
    return gin->Forward(b.batch.merged.features, b.op, b.batch.batch,
                        b.batch.num_graphs, scheme);
  };
  auto set_training = [&](bool t) {
    if (config.gcn_backbone) {
      gcn->SetTraining(t);
    } else {
      gin->SetTraining(t);
    }
  };

  // Warm-up forward so lazily-created scheme parameters (α's, A2Q vectors)
  // exist before the optimizer snapshots its parameter list.
  set_training(true);
  scheme->BeginStep(true);
  (void)forward(train_b);
  AppendParameters(&params, scheme->SchemeParameters());
  for (auto& p : params) p.SetRequiresGrad(true);
  Adam optimizer(params, config.train.lr, 0.9f, 0.999f, 1e-8f,
                 config.train.weight_decay);

  double best_test = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    set_training(true);
    scheme->BeginStep(true);
    optimizer.ZeroGrad();
    Tensor logits = forward(train_b);
    Tensor loss = CrossEntropyMasked(logits, train_b.batch.graph_labels,
                                     train_b.all_mask);
    Tensor penalty = scheme->PenaltyLoss();
    if (penalty.defined()) loss = Add(loss, penalty);
    loss.Backward();
    optimizer.Step();

    set_training(false);
    scheme->BeginStep(false);
    Tensor test_logits = forward(test_b);
    best_test = std::max(
        best_test,
        Accuracy(test_logits, test_b.batch.graph_labels, test_b.all_mask));
  }
  if (out_gbitops != nullptr || out_bits != nullptr) {
    BitOpsReport report =
        config.gcn_backbone
            ? gcn->ComputeBitOps(test_b.batch.merged.num_nodes, test_b.op->nnz(),
                                 test_b.batch.num_graphs, *scheme)
            : gin->ComputeBitOps(test_b.batch.merged.num_nodes, test_b.op->nnz(),
                                 test_b.batch.num_graphs, *scheme);
    if (out_gbitops != nullptr) *out_gbitops = report.GigaBitOps();
    if (out_bits != nullptr) *out_bits = report.AverageBits();
  }
  return best_test;
}

std::vector<std::string> GraphComponentIds(const GraphDataset& ds,
                                           const GraphExperimentConfig& config) {
  Rng rng(1);
  if (config.gcn_backbone) {
    GcnGraphNet net(GcnGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                                        config.gcn_layers},
                    &rng);
    return net.ComponentIds();
  }
  GinGraphNet net(GinGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                                      config.num_layers, config.batch_norm},
                  &rng);
  return net.ComponentIds();
}

}  // namespace

GraphExperimentResult RunGraphExperiment(const GraphDataset& dataset,
                                         const GraphExperimentConfig& config,
                                         const SchemeSpec& spec) {
  GraphExperimentResult result;
  const auto folds = KFoldSplits(static_cast<int64_t>(dataset.graphs.size()),
                                 config.folds, config.fold_seed);
  const auto ids = GraphComponentIds(dataset, config);

  for (size_t f = 0; f < folds.size(); ++f) {
    BatchSetup train_b = PrepareBatch(dataset, folds[f].train, config.gcn_backbone);
    BatchSetup test_b = PrepareBatch(dataset, folds[f].test, config.gcn_backbone);
    const uint64_t seed = spec.seed + f * 101;

    QuantSchemePtr scheme;
    if (spec.kind == SchemeSpec::Kind::kMixQ ||
        spec.kind == SchemeSpec::Kind::kMixQDq) {
      // Phase 1: relaxed search on this fold's training batch.
      RelaxedOptions ropts;
      ropts.bit_options = spec.bit_options;
      ropts.lambda = spec.lambda;
      auto relaxed = std::make_shared<RelaxedMixQScheme>(ropts);
      TrainGraphFold(dataset, config, relaxed.get(), train_b, train_b, seed,
                     spec.search_epochs, nullptr, nullptr);
      scheme = MakeSelectedScheme(spec, relaxed->SelectedBits(), train_b.degrees);
    } else {
      scheme = MakeBaseScheme(spec, ids, train_b.degrees,
                              train_b.batch.merged.num_nodes);
    }

    double gbitops = 0.0, bits = 32.0;
    const double acc =
        TrainGraphFold(dataset, config, scheme.get(), train_b, test_b, seed + 1,
                       config.train.epochs, &gbitops, &bits);
    result.fold_accuracies.push_back(acc);
    if (f == 0) {
      result.gbitops = gbitops;
      result.avg_bits = bits;
      if (spec.kind == SchemeSpec::Kind::kA2q) {
        result.avg_bits = static_cast<A2qScheme*>(scheme.get())->AverageNodeBits();
      }
    }
  }

  result.mean = Mean(result.fold_accuracies);
  result.stddev = StdDev(result.fold_accuracies);
  result.min = *std::min_element(result.fold_accuracies.begin(),
                                 result.fold_accuracies.end());
  result.max = *std::max_element(result.fold_accuracies.begin(),
                                 result.fold_accuracies.end());
  return result;
}

RepeatedResult RepeatNodeExperiment(
    const std::function<NodeDataset(uint64_t)>& make_dataset,
    NodeExperimentConfig config, SchemeSpec spec, int repeats, uint64_t seed0) {
  RepeatedResult agg;
  std::vector<double> metrics, bits, gops;
  for (int r = 0; r < repeats; ++r) {
    const uint64_t seed = seed0 + static_cast<uint64_t>(r);
    spec.seed = seed;
    config.train.seed = seed;
    NodeDataset ds = make_dataset(seed);
    ExperimentResult res = RunNodeExperiment(ds, config, spec);
    metrics.push_back(res.test_metric);
    bits.push_back(res.avg_bits);
    gops.push_back(res.gbitops);
    agg.runs.push_back(std::move(res));
  }
  agg.mean_metric = Mean(metrics);
  agg.std_metric = StdDev(metrics);
  agg.mean_bits = Mean(bits);
  agg.mean_gbitops = Mean(gops);
  return agg;
}

}  // namespace mixq
