// Copyright 2026 MixQ-GNN Authors
// Experiment facade implementation: the end-to-end pipelines (dataset →
// optional relaxed bit-width search → quantized training → metric + BitOPs)
// previously hard-wired to the SchemeSpec::Kind enum, now driven entirely
// through SchemeRegistry families.
#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "tensor/ops.h"
#include "train/metrics.h"
#include "train/optimizer.h"

namespace mixq {

namespace {

int64_t CountParams(std::vector<Tensor> params) {
  int64_t total = 0;
  for (auto& p : params) total += p.numel();
  return total;
}

struct NodeSetup {
  Graph graph;  // possibly neighbour-sampled
  SparseOperatorPtr op;
  std::vector<int64_t> degrees;
};

NodeSetup PrepareNode(const NodeDataset& dataset, const NodeExperimentConfig& config) {
  NodeSetup s;
  s.graph = dataset.graph;
  if (config.sample_max_degree > 0) {
    s.graph = SampleNeighbors(s.graph, config.sample_max_degree,
                              config.train.seed * 31 + 5);
  }
  s.degrees = s.graph.InDegrees();
  const CsrMatrix adj = s.graph.Adjacency();
  s.op = MakeOperator(config.model == NodeModelKind::kGcn ? GcnNormalize(adj)
                                                          : RowNormalize(adj));
  return s;
}

// Runs one training with the given scheme over a prepared node task; returns
// the test metric at best validation.
template <typename Net>
TrainResult TrainNode(Net* net, const NodeSetup& setup, const NodeDataset& dataset,
                      const NodeExperimentConfig& config, QuantScheme* scheme) {
  const Graph& g = setup.graph;
  Tensor x = g.features;
  const bool multilabel = dataset.metric == "rocauc";
  auto forward = [&](Rng* rng) { return net->Forward(x, setup.op, scheme, rng); };
  auto loss_fn = [&](const Tensor& logits) {
    if (multilabel) return BceWithLogitsMasked(logits, g.label_matrix, g.train_mask);
    return CrossEntropyMasked(logits, g.labels, g.train_mask);
  };
  auto metric_fn = [&](const Tensor& logits, bool is_test) {
    const auto& mask = is_test ? g.test_mask : g.val_mask;
    if (multilabel) return RocAucMultiLabel(logits, g.label_matrix, mask);
    return Accuracy(logits, g.labels, mask);
  };
  return RunTrainingLoop(config.train, net, scheme, forward, loss_fn, metric_fn);
}

std::vector<std::string> NodeComponentIds(const NodeExperimentConfig& config,
                                          int64_t feature_dim, int64_t out_dim) {
  Rng rng(1);
  if (config.model == NodeModelKind::kGcn) {
    GcnNet net({feature_dim, config.hidden, out_dim, config.num_layers,
                config.dropout},
               &rng);
    return net.ComponentIds();
  }
  SageNet net({feature_dim, config.hidden, out_dim, config.num_layers,
               config.dropout},
              &rng);
  return net.ComponentIds();
}

// ---------------------------------------------------------------------------
// Node-level pipeline
// ---------------------------------------------------------------------------

Result<ExperimentReport> RunNodeTask(const ExperimentSpec& spec,
                                     const SchemeFamily& family) {
  const NodeDataset& dataset = spec.node_dataset;
  const NodeExperimentConfig& config = spec.node;
  NodeSetup setup = PrepareNode(dataset, config);
  const Graph& g = setup.graph;
  const int64_t out_dim = dataset.metric == "rocauc" ? g.label_matrix.cols()
                                                     : g.num_classes;

  ExperimentReport report;
  report.task = TaskKind::kNodeClassification;
  report.scheme_label = family.Label(spec.scheme.params);
  ExperimentResult& result = report.node;

  SchemeBuildContext ctx;
  ctx.component_ids = NodeComponentIds(config, g.feature_dim(), out_dim);
  ctx.in_degrees = setup.degrees;
  ctx.num_nodes = g.num_nodes;
  ctx.seed = spec.seed;

  // Trains one network from scratch under `scheme`; fills the BitOps columns
  // and (optionally) keeps the trained net for the artifact.
  std::shared_ptr<GcnNet> kept_gcn;
  std::shared_ptr<SageNet> kept_sage;
  auto run_with = [&](const QuantSchemePtr& scheme, uint64_t model_seed,
                      bool keep) -> double {
    Rng rng(model_seed);
    if (config.model == NodeModelKind::kGcn) {
      GcnNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                        config.dropout};
      auto net = std::make_shared<GcnNet>(mc, &rng);
      TrainResult tr = TrainNode(net.get(), setup, dataset, config, scheme.get());
      result.model_param_count = CountParams(net->Parameters());
      BitOpsReport bos = net->ComputeBitOps(g.num_nodes, setup.op->nnz(), *scheme);
      result.avg_bits = bos.AverageBits();
      result.gbitops = bos.GigaBitOps();
      if (keep) kept_gcn = std::move(net);
      return tr.test_at_best_val;
    }
    SageNet::Config mc{g.feature_dim(), config.hidden, out_dim, config.num_layers,
                       config.dropout};
    auto net = std::make_shared<SageNet>(mc, &rng);
    TrainResult tr = TrainNode(net.get(), setup, dataset, config, scheme.get());
    result.model_param_count = CountParams(net->Parameters());
    BitOpsReport bos = net->ComputeBitOps(g.num_nodes, setup.op->nnz(), *scheme);
    result.avg_bits = bos.AverageBits();
    result.gbitops = bos.GigaBitOps();
    if (keep) kept_sage = std::move(net);
    return tr.test_at_best_val;
  };

  uint64_t final_seed = spec.seed;
  if (family.RequiresSearch()) {
    // ---- Phase 1: relaxed bit-width search (Algorithm 1) -------------------
    Result<QuantSchemePtr> search = family.BuildSearch(spec.scheme.params, ctx);
    if (!search.ok()) return search.status();
    QuantSchemePtr relaxed = search.MoveValueOrDie();
    NodeExperimentConfig search_cfg = config;
    search_cfg.train.epochs = static_cast<int>(
        spec.scheme.params.GetIntOr("search_epochs", 50));
    {
      Rng rng(spec.seed);
      if (config.model == NodeModelKind::kGcn) {
        GcnNet net({g.feature_dim(), config.hidden, out_dim, config.num_layers,
                    config.dropout},
                   &rng);
        TrainNode(&net, setup, dataset, search_cfg, relaxed.get());
      } else {
        SageNet net({g.feature_dim(), config.hidden, out_dim, config.num_layers,
                     config.dropout},
                    &rng);
        TrainNode(&net, setup, dataset, search_cfg, relaxed.get());
      }
    }
    ctx.selected_bits = relaxed->SelectedBits();
    result.quant_param_count = relaxed->QuantParameterCount();
    final_seed = spec.seed + 1;
  }

  // ---- Final (or only) phase: train the concrete quantized architecture ----
  Result<QuantSchemePtr> built = family.Build(spec.scheme.params, ctx);
  if (!built.ok()) return built.status();
  QuantSchemePtr scheme = built.MoveValueOrDie();

  result.test_metric = run_with(scheme, final_seed, spec.keep_artifact);
  result.selected_bits = scheme->SelectedBits();
  if (family.RequiresSearch()) result.selected_bits = ctx.selected_bits;
  if (!family.RequiresSearch()) {
    result.quant_param_count = scheme->QuantParameterCount();
  }
  const double reported_bits = scheme->ReportedAverageBits();
  if (reported_bits >= 0.0) result.avg_bits = reported_bits;

  if (spec.keep_artifact) {
    auto artifact = std::make_shared<ModelArtifact>();
    artifact->model_kind = config.model;
    artifact->gcn = std::move(kept_gcn);
    artifact->sage = std::move(kept_sage);
    artifact->scheme = scheme;
    artifact->op = setup.op;
    artifact->features = g.features;
    artifact->selected_bits = result.selected_bits;
    artifact->scheme_label = report.scheme_label;
    report.artifact = std::move(artifact);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Graph-level pipeline
// ---------------------------------------------------------------------------

struct BatchSetup {
  GraphBatch batch;
  SparseOperatorPtr op;
  std::vector<uint8_t> all_mask;
  std::vector<int64_t> degrees;
};

BatchSetup PrepareBatch(const GraphDataset& ds, const std::vector<int64_t>& indices,
                        bool gcn_backbone) {
  BatchSetup s;
  s.batch = MakeBatch(ds, indices);
  const CsrMatrix adj = s.batch.merged.Adjacency();
  s.op = MakeOperator(gcn_backbone ? GcnNormalize(adj) : adj);
  s.all_mask.assign(s.batch.graph_labels.size(), 1);
  s.degrees = s.batch.merged.InDegrees();
  return s;
}

// One training run on a fold with a concrete scheme; returns best test acc.
double TrainGraphFold(const GraphDataset& ds, const GraphExperimentConfig& config,
                      QuantScheme* scheme, const BatchSetup& train_b,
                      const BatchSetup& test_b, uint64_t model_seed, int epochs,
                      double* out_gbitops, double* out_bits) {
  Rng rng(model_seed);
  std::unique_ptr<GinGraphNet> gin;
  std::unique_ptr<GcnGraphNet> gcn;
  std::vector<Tensor> params;
  if (config.gcn_backbone) {
    gcn = std::make_unique<GcnGraphNet>(
        GcnGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                            config.gcn_layers},
        &rng);
    params = gcn->Parameters();
  } else {
    gin = std::make_unique<GinGraphNet>(
        GinGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                            config.num_layers, config.batch_norm},
        &rng);
    params = gin->Parameters();
  }
  auto forward = [&](const BatchSetup& b) {
    if (config.gcn_backbone) {
      return gcn->Forward(b.batch.merged.features, b.op, b.batch.batch,
                          b.batch.num_graphs, scheme);
    }
    return gin->Forward(b.batch.merged.features, b.op, b.batch.batch,
                        b.batch.num_graphs, scheme);
  };
  auto set_training = [&](bool t) {
    if (config.gcn_backbone) {
      gcn->SetTraining(t);
    } else {
      gin->SetTraining(t);
    }
  };

  // Warm-up forward so lazily-created scheme parameters (α's, A2Q vectors)
  // exist before the optimizer snapshots its parameter list.
  set_training(true);
  scheme->BeginStep(true);
  (void)forward(train_b);
  AppendParameters(&params, scheme->SchemeParameters());
  for (auto& p : params) p.SetRequiresGrad(true);
  Adam optimizer(params, config.train.lr, 0.9f, 0.999f, 1e-8f,
                 config.train.weight_decay);

  double best_test = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    set_training(true);
    scheme->BeginStep(true);
    optimizer.ZeroGrad();
    Tensor logits = forward(train_b);
    Tensor loss = CrossEntropyMasked(logits, train_b.batch.graph_labels,
                                     train_b.all_mask);
    Tensor penalty = scheme->PenaltyLoss();
    if (penalty.defined()) loss = Add(loss, penalty);
    loss.Backward();
    optimizer.Step();

    set_training(false);
    scheme->BeginStep(false);
    Tensor test_logits = forward(test_b);
    best_test = std::max(
        best_test,
        Accuracy(test_logits, test_b.batch.graph_labels, test_b.all_mask));
  }
  if (out_gbitops != nullptr || out_bits != nullptr) {
    BitOpsReport report =
        config.gcn_backbone
            ? gcn->ComputeBitOps(test_b.batch.merged.num_nodes, test_b.op->nnz(),
                                 test_b.batch.num_graphs, *scheme)
            : gin->ComputeBitOps(test_b.batch.merged.num_nodes, test_b.op->nnz(),
                                 test_b.batch.num_graphs, *scheme);
    if (out_gbitops != nullptr) *out_gbitops = report.GigaBitOps();
    if (out_bits != nullptr) *out_bits = report.AverageBits();
  }
  return best_test;
}

std::vector<std::string> GraphComponentIds(const GraphDataset& ds,
                                           const GraphExperimentConfig& config) {
  Rng rng(1);
  if (config.gcn_backbone) {
    GcnGraphNet net(GcnGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                                        config.gcn_layers},
                    &rng);
    return net.ComponentIds();
  }
  GinGraphNet net(GinGraphNet::Config{ds.feature_dim, config.hidden, ds.num_classes,
                                      config.num_layers, config.batch_norm},
                  &rng);
  return net.ComponentIds();
}

Result<ExperimentReport> RunGraphTask(const ExperimentSpec& spec,
                                      const SchemeFamily& family) {
  const GraphDataset& dataset = spec.graph_dataset;
  const GraphExperimentConfig& config = spec.graph;

  ExperimentReport report;
  report.task = TaskKind::kGraphClassification;
  report.scheme_label = family.Label(spec.scheme.params);
  GraphExperimentResult& result = report.graph;

  const auto folds = KFoldSplits(static_cast<int64_t>(dataset.graphs.size()),
                                 config.folds, config.fold_seed);
  const auto ids = GraphComponentIds(dataset, config);
  const int search_epochs = static_cast<int>(
      spec.scheme.params.GetIntOr("search_epochs", 50));

  for (size_t f = 0; f < folds.size(); ++f) {
    BatchSetup train_b = PrepareBatch(dataset, folds[f].train, config.gcn_backbone);
    BatchSetup test_b = PrepareBatch(dataset, folds[f].test, config.gcn_backbone);
    const uint64_t seed = spec.seed + f * 101;

    SchemeBuildContext ctx;
    ctx.component_ids = ids;
    ctx.in_degrees = train_b.degrees;
    ctx.num_nodes = train_b.batch.merged.num_nodes;
    ctx.seed = spec.seed;

    if (family.RequiresSearch()) {
      // Phase 1: relaxed search on this fold's training batch.
      Result<QuantSchemePtr> search = family.BuildSearch(spec.scheme.params, ctx);
      if (!search.ok()) return search.status();
      QuantSchemePtr relaxed = search.MoveValueOrDie();
      TrainGraphFold(dataset, config, relaxed.get(), train_b, train_b, seed,
                     search_epochs, nullptr, nullptr);
      ctx.selected_bits = relaxed->SelectedBits();
    }
    Result<QuantSchemePtr> built = family.Build(spec.scheme.params, ctx);
    if (!built.ok()) return built.status();
    QuantSchemePtr scheme = built.MoveValueOrDie();

    double gbitops = 0.0, bits = 32.0;
    const double acc =
        TrainGraphFold(dataset, config, scheme.get(), train_b, test_b, seed + 1,
                       config.train.epochs, &gbitops, &bits);
    result.fold_accuracies.push_back(acc);
    if (f == 0) {
      result.gbitops = gbitops;
      result.avg_bits = bits;
      const double reported_bits = scheme->ReportedAverageBits();
      if (reported_bits >= 0.0) result.avg_bits = reported_bits;
    }
  }

  result.mean = Mean(result.fold_accuracies);
  result.stddev = StdDev(result.fold_accuracies);
  result.min = *std::min_element(result.fold_accuracies.begin(),
                                 result.fold_accuracies.end());
  result.max = *std::max_element(result.fold_accuracies.begin(),
                                 result.fold_accuracies.end());
  return report;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec factories + validation
// ---------------------------------------------------------------------------

ExperimentSpec ExperimentSpec::NodeClassification(NodeDataset dataset,
                                                  NodeExperimentConfig config,
                                                  SchemeRef scheme) {
  ExperimentSpec spec;
  spec.task = TaskKind::kNodeClassification;
  spec.node_dataset = std::move(dataset);
  spec.node = std::move(config);
  spec.scheme = std::move(scheme);
  return spec;
}

ExperimentSpec ExperimentSpec::GraphClassification(GraphDataset dataset,
                                                   GraphExperimentConfig config,
                                                   SchemeRef scheme) {
  ExperimentSpec spec;
  spec.task = TaskKind::kGraphClassification;
  spec.graph_dataset = std::move(dataset);
  spec.graph = std::move(config);
  spec.scheme = std::move(scheme);
  return spec;
}

Status ExperimentSpec::Validate() const {
  Result<SchemeFamilyPtr> family = SchemeRegistry::Global().Find(scheme.name);
  if (!family.ok()) return family.status();
  MIXQ_RETURN_NOT_OK(family.ValueOrDie()->ValidateParams(scheme.params));

  if (task == TaskKind::kNodeClassification) {
    const Graph& g = node_dataset.graph;
    if (g.num_nodes <= 0) {
      return Status::InvalidArgument("node dataset '" + node_dataset.name +
                                     "' has no nodes");
    }
    if (g.feature_dim() <= 0) {
      return Status::InvalidArgument("node dataset '" + node_dataset.name +
                                     "' has no features");
    }
    if (node_dataset.metric == "rocauc") {
      if (g.label_matrix.cols() <= 0) {
        return Status::InvalidArgument(
            "multi-label dataset requires a non-empty label_matrix");
      }
    } else if (node_dataset.metric == "accuracy") {
      if (g.num_classes <= 0) {
        return Status::InvalidArgument("node dataset '" + node_dataset.name +
                                       "' has no classes");
      }
    } else {
      return Status::InvalidArgument("unknown metric '" + node_dataset.metric +
                                     "' (expected accuracy or rocauc)");
    }
    if (node.hidden <= 0) return Status::InvalidArgument("hidden must be > 0");
    if (node.num_layers < 1) {
      return Status::InvalidArgument("num_layers must be >= 1");
    }
    if (node.train.epochs < 1) {
      return Status::InvalidArgument("train.epochs must be >= 1");
    }
    if (node.dropout < 0.0f || node.dropout >= 1.0f) {
      return Status::InvalidArgument("dropout must lie in [0, 1)");
    }
    return Status::OK();
  }

  // Graph classification.
  if (graph_dataset.graphs.empty()) {
    return Status::InvalidArgument("graph dataset '" + graph_dataset.name +
                                   "' has no graphs");
  }
  if (graph_dataset.num_classes <= 0) {
    return Status::InvalidArgument("graph dataset '" + graph_dataset.name +
                                   "' has no classes");
  }
  if (graph.folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (static_cast<size_t>(graph.folds) > graph_dataset.graphs.size()) {
    return Status::InvalidArgument("folds exceed the number of graphs");
  }
  if (graph.hidden <= 0) return Status::InvalidArgument("hidden must be > 0");
  if (graph.train.epochs < 1) {
    return Status::InvalidArgument("train.epochs must be >= 1");
  }
  if ((graph.gcn_backbone ? graph.gcn_layers : graph.num_layers) < 1) {
    return Status::InvalidArgument("layer count must be >= 1");
  }
  if (keep_artifact) {
    return Status::NotImplemented(
        "keep_artifact is only supported for node-level tasks (graph runs are "
        "k-fold cross-validated; there is no single served model)");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Experiment
// ---------------------------------------------------------------------------

Result<Experiment> Experiment::Create(ExperimentSpec spec) {
  MIXQ_RETURN_NOT_OK(spec.Validate());
  return Experiment(std::move(spec));
}

Result<ExperimentReport> Experiment::Run() const {
  MIXQ_RETURN_NOT_OK(spec_.Validate());
  Result<SchemeFamilyPtr> family = SchemeRegistry::Global().Find(spec_.scheme.name);
  if (!family.ok()) return family.status();
  if (spec_.task == TaskKind::kNodeClassification) {
    return RunNodeTask(spec_, *family.ValueOrDie());
  }
  return RunGraphTask(spec_, *family.ValueOrDie());
}

Result<RepeatedResult> RepeatExperiment(
    const std::function<NodeDataset(uint64_t)>& make_dataset,
    NodeExperimentConfig config, SchemeRef scheme, int repeats, uint64_t seed0) {
  if (repeats < 1) return Status::InvalidArgument("repeats must be >= 1");
  RepeatedResult agg;
  std::vector<double> metrics, bits, gops;
  for (int r = 0; r < repeats; ++r) {
    const uint64_t seed = seed0 + static_cast<uint64_t>(r);
    config.train.seed = seed;
    ExperimentSpec spec =
        ExperimentSpec::NodeClassification(make_dataset(seed), config, scheme);
    spec.seed = seed;
    Result<Experiment> experiment = Experiment::Create(std::move(spec));
    if (!experiment.ok()) return experiment.status();
    Result<ExperimentReport> report = experiment.ValueOrDie().Run();
    if (!report.ok()) return report.status();
    ExperimentResult res = std::move(report.ValueOrDie().node);
    metrics.push_back(res.test_metric);
    bits.push_back(res.avg_bits);
    gops.push_back(res.gbitops);
    agg.runs.push_back(std::move(res));
  }
  agg.mean_metric = Mean(metrics);
  agg.std_metric = StdDev(metrics);
  agg.mean_bits = Mean(bits);
  agg.mean_gbitops = Mean(gops);
  return agg;
}

std::string SchemeLabel(const SchemeRef& ref) {
  return SchemeRegistry::Global().Label(ref);
}

}  // namespace mixq
