// Copyright 2026 MixQ-GNN Authors
// Unified Experiment facade — the second layer of the public API
// (SchemeRegistry → Experiment → engine).
//
// One ExperimentSpec describes a complete run: the task kind (node- or
// graph-level), its dataset, the model/training configuration, and a
// SchemeRef naming a registered quantization family. The spec is validated
// up front (Experiment::Create returns a Status instead of CHECK-crashing
// mid-training), and Run() executes the full pipeline — optional MixQ
// relaxed search (Algorithm 1), quantized training, metric + BitOPs
// accounting — returning Result<ExperimentReport>.
//
// With keep_artifact set, a node-level run also hands back the trained
// network plus its frozen scheme as a ModelArtifact, the input to
// engine::CompileModel() for serving.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "nn/models.h"
#include "quant/scheme_registry.h"
#include "train/trainer.h"

namespace mixq {

/// Which backbone a node-level experiment uses.
enum class NodeModelKind { kGcn, kSage };

struct NodeExperimentConfig {
  NodeModelKind model = NodeModelKind::kGcn;
  int64_t hidden = 64;
  int num_layers = 2;
  float dropout = 0.5f;
  TrainLoopConfig train;
  /// >0: GraphSAGE-style static neighbour sampling cap (paper §5.3.2).
  int64_t sample_max_degree = 0;
};

struct ExperimentResult {
  double test_metric = 0.0;     ///< accuracy or ROC-AUC (dataset.metric)
  double avg_bits = 32.0;       ///< ops-weighted average bit-width
  double gbitops = 0.0;         ///< Giga BitOPs of one full forward
  std::map<std::string, int> selected_bits;  ///< MixQ/fixed/random assignment
  int64_t model_param_count = 0;
  int64_t quant_param_count = 0;  ///< scheme-owned learnable scalars
};

struct GraphExperimentConfig {
  int64_t hidden = 64;
  int num_layers = 5;        ///< GIN layers (paper Table 8)
  bool batch_norm = true;
  TrainLoopConfig train;
  int folds = 10;
  uint64_t fold_seed = 1;
  /// CSL protocol (Table 9): 4-layer GCN backbone instead of GIN.
  bool gcn_backbone = false;
  int gcn_layers = 4;
};

struct GraphExperimentResult {
  std::vector<double> fold_accuracies;
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  double avg_bits = 32.0;
  double gbitops = 0.0;  ///< one inference pass over a test fold
};

/// The trained outcome of a node-level run, kept alive for deployment:
/// exactly one of `gcn`/`sage` is set; `scheme` is the final training/eval
/// scheme with its quantizer ranges frozen by training. The training-graph
/// operator and features are retained so callers can replay the eval-mode
/// forward (engine::CompileModel consumes this struct).
///
/// This struct holds LIVE objects and never leaves the training process.
/// For the train-once/serve-anywhere split, freeze it first:
/// engine::CompileModel() -> engine::SaveBundle() writes a portable model
/// bundle any serving process can load without linking training code
/// (engine/model_bundle.h; engine::SaveGraph does the same for `op` +
/// `features`).
struct ModelArtifact {
  NodeModelKind model_kind = NodeModelKind::kGcn;
  std::shared_ptr<GcnNet> gcn;
  std::shared_ptr<SageNet> sage;
  QuantSchemePtr scheme;
  SparseOperatorPtr op;      ///< normalized operator of the training graph
  Tensor features;           ///< training-graph node features
  std::map<std::string, int> selected_bits;
  std::string scheme_label;

  /// Serializes forward passes over the (mutable) net + scheme pair. Every
  /// CompiledModel compiled from this artifact shares this lock, so
  /// compiling the same artifact twice cannot race on the underlying
  /// network state; callers replaying the forward themselves while the
  /// engine serves it should hold it too.
  std::shared_ptr<std::mutex> forward_mu = std::make_shared<std::mutex>();
};

/// The task a spec describes.
enum class TaskKind { kNodeClassification, kGraphClassification };

/// Everything needed to run one experiment. Build with the static factories
/// (or fill fields directly), then Experiment::Create() validates it.
struct ExperimentSpec {
  TaskKind task = TaskKind::kNodeClassification;

  /// Dataset for the matching task kind (the other one stays empty).
  NodeDataset node_dataset;
  GraphDataset graph_dataset;

  NodeExperimentConfig node;
  GraphExperimentConfig graph;

  /// Named quantization family + parameters; resolved against
  /// SchemeRegistry::Global(). Search families ("mixq", "mixq_dq") honour a
  /// "search_epochs" parameter (default 50) for the phase-1 budget.
  SchemeRef scheme;

  /// Base seed: model init and scheme construction (DQ masks, random
  /// assignment) derive from it.
  uint64_t seed = 1;

  /// Node tasks only: retain the trained network + frozen scheme in
  /// ExperimentReport::artifact for engine::CompileModel().
  bool keep_artifact = false;

  static ExperimentSpec NodeClassification(NodeDataset dataset,
                                           NodeExperimentConfig config,
                                           SchemeRef scheme);
  static ExperimentSpec GraphClassification(GraphDataset dataset,
                                            GraphExperimentConfig config,
                                            SchemeRef scheme);

  /// Cheap structural validation: dataset shape, config sanity, scheme
  /// registered and its parameters well-formed. Run() also calls this.
  Status Validate() const;
};

/// What an experiment produced. `task` selects which of node/graph is
/// meaningful; `artifact` is set only for node runs with keep_artifact.
struct ExperimentReport {
  TaskKind task = TaskKind::kNodeClassification;
  std::string scheme_label;
  ExperimentResult node;
  GraphExperimentResult graph;
  std::shared_ptr<ModelArtifact> artifact;
};

/// Validated, runnable experiment. Immutable once created.
class Experiment {
 public:
  /// Validates `spec`; returns its error Status on misconfiguration.
  static Result<Experiment> Create(ExperimentSpec spec);

  /// Executes the pipeline. Errors (unknown scheme, factory failures)
  /// surface as Status — training itself is deterministic given the spec.
  Result<ExperimentReport> Run() const;

  const ExperimentSpec& spec() const { return spec_; }

 private:
  explicit Experiment(ExperimentSpec spec) : spec_(std::move(spec)) {}
  ExperimentSpec spec_;
};

/// Aggregates repeated node-level runs with varied seeds (paper protocol:
/// mean ± std over 10 runs).
struct RepeatedResult {
  double mean_metric = 0.0, std_metric = 0.0;
  double mean_bits = 32.0, mean_gbitops = 0.0;
  std::vector<ExperimentResult> runs;
};

/// Runs `repeats` node experiments with seeds seed0, seed0+1, …; the dataset
/// is regenerated per seed. Fails fast on the first invalid spec.
Result<RepeatedResult> RepeatExperiment(
    const std::function<NodeDataset(uint64_t)>& make_dataset,
    NodeExperimentConfig config, SchemeRef scheme, int repeats,
    uint64_t seed0 = 1);

/// Human-readable scheme label via the registry ("MixQ(l=0.1)", "DQ-INT4").
std::string SchemeLabel(const SchemeRef& ref);

}  // namespace mixq
