// Copyright 2026 MixQ-GNN Authors
#include "core/relaxed_scheme.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace mixq {

RelaxedMixQScheme::RelaxedMixQScheme(RelaxedOptions options)
    : options_(std::move(options)) {
  MIXQ_CHECK(!options_.bit_options.empty());
  for (int b : options_.bit_options) {
    MIXQ_CHECK_GE(b, 1);
    MIXQ_CHECK_LE(b, 32);
  }
  std::vector<float> bits(options_.bit_options.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<float>(options_.bit_options[i]);
  }
  bits_const_ =
      Tensor::FromVector(Shape(static_cast<int64_t>(bits.size())), bits);
}

RelaxedMixQScheme::Component& RelaxedMixQScheme::GetOrCreate(const std::string& id,
                                                             ComponentKind kind) {
  auto it = components_.find(id);
  if (it != components_.end()) return it->second;
  Component c;
  const int64_t k = static_cast<int64_t>(options_.bit_options.size());
  c.alpha = Tensor::Full(Shape(k), options_.alpha_init, /*requires_grad=*/true);
  QatOptions qat;
  qat.activation_observer = options_.activation_observer;
  for (int b : options_.bit_options) {
    c.quantizers.push_back(
        std::make_unique<FakeQuantizer>(MakeComponentConfig(kind, b, qat)));
  }
  ids_.push_back(id);
  return components_.emplace(id, std::move(c)).first->second;
}

Tensor RelaxedMixQScheme::Quantize(const std::string& id, const Tensor& x,
                                   ComponentKind kind, bool training) {
  Component& c = GetOrCreate(id, kind);
  Tensor weights = Softmax1D(c.alpha);  // [k]

  // Eq. (6): mixture of the candidate fake quantizations.
  Tensor out;
  for (size_t i = 0; i < c.quantizers.size(); ++i) {
    Tensor qi = c.quantizers[i]->Apply(x, training);
    Tensor weighted = ScaleByElement(qi, weights, static_cast<int64_t>(i));
    out = out.defined() ? Add(out, weighted) : weighted;
  }

  // Eq. (8): C(T) = Σ_i b_i·softmax(α)_i · |T| / (1024·8)  [MB]. Collected
  // during training forwards only; the trainer adds λ·ΣC to the loss.
  if (training) {
    const float mb = static_cast<float>(x.numel()) / (1024.0f * 8.0f);
    Tensor c_term = Scale(Dot(weights, bits_const_), mb);
    step_penalties_.push_back(c_term);
    step_elements_ += static_cast<double>(x.numel());
  }
  return out;
}

std::vector<Tensor> RelaxedMixQScheme::SchemeParameters() {
  std::vector<Tensor> params;
  for (const std::string& id : ids_) params.push_back(components_.at(id).alpha);
  return params;
}

Tensor RelaxedMixQScheme::PenaltyLoss() {
  if (step_penalties_.empty() || options_.lambda == 0.0) return Tensor();
  Tensor total = step_penalties_[0];
  for (size_t i = 1; i < step_penalties_.size(); ++i) {
    total = Add(total, step_penalties_[i]);
  }
  // Normalize ΣC back from MB-units to the element-weighted mean bit-width,
  // then apply λ (see class comment).
  const double norm = 1024.0 * 8.0 / std::max(step_elements_, 1.0);
  return Scale(total, static_cast<float>(options_.lambda * norm));
}

void RelaxedMixQScheme::BeginStep(bool /*training*/) {
  step_penalties_.clear();
  step_elements_ = 0.0;
}

double RelaxedMixQScheme::EffectiveBits(const std::string& id, double fallback) const {
  auto it = components_.find(id);
  if (it == components_.end()) return fallback;
  const auto w = AlphaWeights(id);
  double bits = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    bits += w[i] * static_cast<double>(options_.bit_options[i]);
  }
  return bits;
}

std::map<std::string, int> RelaxedMixQScheme::SelectedBits() const {
  std::map<std::string, int> selected;
  for (const auto& [id, c] : components_) {
    const auto& a = c.alpha.data();
    size_t best = 0;
    for (size_t i = 1; i < a.size(); ++i) {
      if (a[i] > a[best]) best = i;
    }
    selected[id] = options_.bit_options[best];
  }
  return selected;
}

int64_t RelaxedMixQScheme::QuantParameterCount() const {
  int64_t total = 0;
  for (const auto& [id, c] : components_) total += c.alpha.numel();
  return total;
}

std::vector<double> RelaxedMixQScheme::AlphaWeights(const std::string& id) const {
  const auto& a = components_.at(id).alpha.data();
  double mx = *std::max_element(a.begin(), a.end());
  std::vector<double> w(a.size());
  double denom = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    w[i] = std::exp(static_cast<double>(a[i]) - mx);
    denom += w[i];
  }
  for (auto& v : w) v /= denom;
  return w;
}

}  // namespace mixq
