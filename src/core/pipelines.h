// Copyright 2026 MixQ-GNN Authors
// Legacy experiment entry points — thin compatibility shims over the new
// three-layer API (quant/scheme_registry.h → core/experiment.h →
// engine/inference_engine.h).
//
// SchemeSpec's closed Kind enum predates the open SchemeRegistry; ToRef()
// maps each kind onto its registered family name ("fp32", "qat", "dq",
// "a2q", "mixq", "mixq_dq", "fixed", "random", "random_int8"). New code
// should build a SchemeRef (or param map) directly and go through
// Experiment; these wrappers keep the original CHECK-on-failure contract
// for existing callers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace mixq {

/// How to quantize: selects and configures the QuantScheme (plus the MixQ
/// search phase when applicable). Deprecated in favour of SchemeRef.
struct SchemeSpec {
  enum class Kind {
    kFp32,        ///< no quantization
    kQat,         ///< uniform QAT at `bits`
    kDq,          ///< Degree-Quant at `bits` (percentile ranges + protection)
    kA2q,         ///< A2Q-style per-node learnable quantization
    kMixQ,        ///< relaxed search (Algorithm 1), then fixed-width training
    kMixQDq,      ///< MixQ-selected widths trained with the DQ quantizer
    kFixed,       ///< explicit per-component bit map (`fixed_bits`)
    kRandom,      ///< random per-component widths from `bit_options`
    kRandomInt8,  ///< random, but the prediction output forced to INT8
  };

  Kind kind = Kind::kFp32;
  int bits = 8;                          // kQat / kDq
  std::vector<int> bit_options = {2, 4, 8};  // search / random space
  double lambda = 0.1;                   // MixQ penalty multiplier λ
  int search_epochs = 50;                // relaxed-phase epochs
  std::map<std::string, int> fixed_bits; // kFixed
  double a2q_memory_lambda = 5e-4;       // kA2q
  uint64_t seed = 1;

  static SchemeSpec Fp32() { return {}; }
  static SchemeSpec Qat(int bits) {
    SchemeSpec s;
    s.kind = Kind::kQat;
    s.bits = bits;
    return s;
  }
  static SchemeSpec Dq(int bits) {
    SchemeSpec s;
    s.kind = Kind::kDq;
    s.bits = bits;
    return s;
  }
  static SchemeSpec A2q() {
    SchemeSpec s;
    s.kind = Kind::kA2q;
    return s;
  }
  static SchemeSpec MixQ(double lambda, std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s;
    s.kind = Kind::kMixQ;
    s.lambda = lambda;
    s.bit_options = std::move(bit_options);
    return s;
  }
  static SchemeSpec MixQDq(double lambda, std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s = MixQ(lambda, std::move(bit_options));
    s.kind = Kind::kMixQDq;
    return s;
  }
  static SchemeSpec Fixed(std::map<std::string, int> bits) {
    SchemeSpec s;
    s.kind = Kind::kFixed;
    s.fixed_bits = std::move(bits);
    return s;
  }
  static SchemeSpec Random(std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s;
    s.kind = Kind::kRandom;
    s.bit_options = std::move(bit_options);
    return s;
  }
  static SchemeSpec RandomInt8(std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s;
    s.kind = Kind::kRandomInt8;
    s.bit_options = std::move(bit_options);
    return s;
  }

  /// The registry-era equivalent of this spec (name + parameter map).
  SchemeRef ToRef() const;
};

/// Human-readable scheme label for tables ("MixQ(λ=0.1)", "DQ-INT4", ...).
std::string SchemeLabel(const SchemeSpec& spec);

/// Runs one node-classification (or multi-label) experiment. Aborts on
/// invalid specs — new code should use Experiment::Create()/Run() and
/// handle the Status.
ExperimentResult RunNodeExperiment(const NodeDataset& dataset,
                                   const NodeExperimentConfig& config,
                                   const SchemeSpec& spec);

/// Runs k-fold cross-validated graph classification (same contract).
GraphExperimentResult RunGraphExperiment(const GraphDataset& dataset,
                                         const GraphExperimentConfig& config,
                                         const SchemeSpec& spec);

/// Aggregates repeated runs of RunNodeExperiment with different seeds.
RepeatedResult RepeatNodeExperiment(const std::function<NodeDataset(uint64_t)>& make_dataset,
                                    NodeExperimentConfig config, SchemeSpec spec,
                                    int repeats, uint64_t seed0 = 1);

}  // namespace mixq
