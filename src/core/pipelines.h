// Copyright 2026 MixQ-GNN Authors
// End-to-end experiment pipelines: dataset → (optional MixQ bit-width
// search, Algorithm 1) → quantized training → metric + BitOPs. One entry
// point for node-level tasks (Tables 3-7) and one for graph-level tasks
// (Tables 8-9); every bench builds on these.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "nn/models.h"
#include "train/trainer.h"

namespace mixq {

/// Which backbone a node-level experiment uses.
enum class NodeModelKind { kGcn, kSage };

/// How to quantize: selects and configures the QuantScheme (plus the MixQ
/// search phase when applicable).
struct SchemeSpec {
  enum class Kind {
    kFp32,        ///< no quantization
    kQat,         ///< uniform QAT at `bits`
    kDq,          ///< Degree-Quant at `bits` (percentile ranges + protection)
    kA2q,         ///< A2Q-style per-node learnable quantization
    kMixQ,        ///< relaxed search (Algorithm 1), then fixed-width training
    kMixQDq,      ///< MixQ-selected widths trained with the DQ quantizer
    kFixed,       ///< explicit per-component bit map (`fixed_bits`)
    kRandom,      ///< random per-component widths from `bit_options`
    kRandomInt8,  ///< random, but the prediction output forced to INT8
  };

  Kind kind = Kind::kFp32;
  int bits = 8;                          // kQat / kDq
  std::vector<int> bit_options = {2, 4, 8};  // search / random space
  double lambda = 0.1;                   // MixQ penalty multiplier λ
  int search_epochs = 50;                // relaxed-phase epochs
  std::map<std::string, int> fixed_bits; // kFixed
  double a2q_memory_lambda = 5e-4;       // kA2q
  uint64_t seed = 1;

  static SchemeSpec Fp32() { return {}; }
  static SchemeSpec Qat(int bits) {
    SchemeSpec s;
    s.kind = Kind::kQat;
    s.bits = bits;
    return s;
  }
  static SchemeSpec Dq(int bits) {
    SchemeSpec s;
    s.kind = Kind::kDq;
    s.bits = bits;
    return s;
  }
  static SchemeSpec A2q() {
    SchemeSpec s;
    s.kind = Kind::kA2q;
    return s;
  }
  static SchemeSpec MixQ(double lambda, std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s;
    s.kind = Kind::kMixQ;
    s.lambda = lambda;
    s.bit_options = std::move(bit_options);
    return s;
  }
  static SchemeSpec MixQDq(double lambda, std::vector<int> bit_options = {2, 4, 8}) {
    SchemeSpec s = MixQ(lambda, std::move(bit_options));
    s.kind = Kind::kMixQDq;
    return s;
  }
  static SchemeSpec Fixed(std::map<std::string, int> bits) {
    SchemeSpec s;
    s.kind = Kind::kFixed;
    s.fixed_bits = std::move(bits);
    return s;
  }
};

/// Human-readable scheme label for tables ("MixQ(λ=0.1)", "DQ-INT4", ...).
std::string SchemeLabel(const SchemeSpec& spec);

struct NodeExperimentConfig {
  NodeModelKind model = NodeModelKind::kGcn;
  int64_t hidden = 64;
  int num_layers = 2;
  float dropout = 0.5f;
  TrainLoopConfig train;
  /// >0: GraphSAGE-style static neighbour sampling cap (paper §5.3.2).
  int64_t sample_max_degree = 0;
};

struct ExperimentResult {
  double test_metric = 0.0;     ///< accuracy or ROC-AUC (dataset.metric)
  double avg_bits = 32.0;       ///< ops-weighted average bit-width
  double gbitops = 0.0;         ///< Giga BitOPs of one full forward
  std::map<std::string, int> selected_bits;  ///< MixQ/fixed/random assignment
  int64_t model_param_count = 0;
  int64_t quant_param_count = 0;  ///< scheme-owned learnable scalars
};

/// Runs one node-classification (or multi-label) experiment.
ExperimentResult RunNodeExperiment(const NodeDataset& dataset,
                                   const NodeExperimentConfig& config,
                                   const SchemeSpec& spec);

struct GraphExperimentConfig {
  int64_t hidden = 64;
  int num_layers = 5;        ///< GIN layers (paper Table 8)
  bool batch_norm = true;
  TrainLoopConfig train;
  int folds = 10;
  uint64_t fold_seed = 1;
  /// CSL protocol (Table 9): 4-layer GCN backbone instead of GIN.
  bool gcn_backbone = false;
  int gcn_layers = 4;
};

struct GraphExperimentResult {
  std::vector<double> fold_accuracies;
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  double avg_bits = 32.0;
  double gbitops = 0.0;  ///< one inference pass over a test fold
};

/// Runs k-fold cross-validated graph classification.
GraphExperimentResult RunGraphExperiment(const GraphDataset& dataset,
                                         const GraphExperimentConfig& config,
                                         const SchemeSpec& spec);

/// Aggregates repeated runs of RunNodeExperiment with different seeds.
struct RepeatedResult {
  double mean_metric = 0.0, std_metric = 0.0;
  double mean_bits = 32.0, mean_gbitops = 0.0;
  std::vector<ExperimentResult> runs;
};
RepeatedResult RepeatNodeExperiment(const std::function<NodeDataset(uint64_t)>& make_dataset,
                                    NodeExperimentConfig config, SchemeSpec spec,
                                    int repeats, uint64_t seed0 = 1);

}  // namespace mixq
