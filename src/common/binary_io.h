// Copyright 2026 MixQ-GNN Authors
// Little-endian binary serialization primitives for on-disk artifacts
// (engine/model_bundle.h is the main consumer).
//
// ByteWriter appends fixed-width little-endian scalars, length-prefixed
// strings, and count-prefixed POD vectors into a growable buffer; ByteReader
// is its bounds-checked inverse over a read-only byte span. Every Read*
// returns a typed Status instead of asserting: a truncated or corrupted file
// must surface as an error the caller can report, never as UB — the reader
// is safe on arbitrary attacker-chosen bytes. The wire byte order is
// little-endian regardless of host (bulk vector transfers degrade from one
// memcpy to a per-element swap on big-endian hosts).
//
// Also here: CRC-32 (the zlib/IEEE polynomial) for per-section integrity
// checks, FNV-1a 64 for cheap content digests (cross-process logit parity),
// and whole-file read/write helpers with atomic replace semantics.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace mixq {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib crc32 convention:
/// init and final xor with ~0). `seed` chains incremental computations —
/// pass a previous result to continue it.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// FNV-1a 64-bit content hash. Not cryptographic; used for logit digests
/// where the question is "bitwise identical or not".
uint64_t Fnv1a64(const void* data, size_t size);

/// True on little-endian hosts (the fast path for bulk vector IO).
bool IsLittleEndianHost();

/// Growable little-endian byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// u32 byte length + raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t size);

  /// u64 element count + elements in wire (little-endian) order. T must be
  /// a trivially copyable arithmetic type of width 1, 2, 4, or 8.
  template <typename T>
  void PutPodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    PutU64(static_cast<uint64_t>(v.size()));
    AppendPod(v.data(), v.size(), sizeof(T));
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void AppendPod(const void* data, size_t count, size_t elem_size);

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. The span
/// must outlive the reader. Reads past the end return kOutOfRange and leave
/// the position unchanged.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  Status ReadU8(uint8_t* out);
  Status ReadU16(uint16_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadF32(float* out);
  Status ReadF64(double* out);
  /// Inverse of PutString. The length prefix is validated against the
  /// remaining span before any allocation.
  Status ReadString(std::string* out);
  /// Inverse of PutPodVector; the count prefix is validated (including
  /// count*sizeof(T) overflow) before any allocation.
  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable<T>::value, "POD only");
    uint64_t count = 0;
    MIXQ_RETURN_NOT_OK(ReadU64(&count));
    if (count > remaining() / sizeof(T)) {
      return Status::OutOfRange("truncated: vector of " + std::to_string(count) +
                                " x " + std::to_string(sizeof(T)) +
                                " bytes exceeds remaining " +
                                std::to_string(remaining()) + " bytes");
    }
    out->resize(static_cast<size_t>(count));
    ExtractPod(out->data(), static_cast<size_t>(count), sizeof(T));
    return Status::OK();
  }
  Status Skip(size_t bytes);

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  /// Pointer to the current position (for zero-copy sub-spans).
  const uint8_t* cursor() const { return data_ + pos_; }

 private:
  Status Need(size_t bytes) const;
  /// Copies `count` elements of `elem_size` from the cursor, byte-swapping
  /// on big-endian hosts. The caller has already checked bounds.
  void ExtractPod(void* out, size_t count, size_t elem_size);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads a whole file into `out`. kNotFound when it cannot be opened.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path` via a sibling temp file + rename, so readers
/// never observe a half-written artifact.
Status WriteFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes);

}  // namespace mixq
