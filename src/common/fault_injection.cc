// Copyright 2026 MixQ-GNN Authors
#include "common/fault_injection.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace mixq {
namespace fault {
namespace {

// FNV-1a over the site name: folds the site identity into the decision seed
// so distinct sites see independent fault streams under one global seed.
std::uint64_t HashSite(const char* site) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  return h;
}

// SplitMix64 finalizer: a full-avalanche mix so consecutive hit indices at
// one site decorrelate. Maps the mixed value to [0, 1).
double MixToUnit(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  // 53 high bits -> double in [0,1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

struct FaultInjector::Impl {
  mutable std::mutex mu;
  std::uint64_t seed = 0;
  double global_rate = 0.0;
  std::chrono::milliseconds delay{25};
  std::map<std::string, SiteSchedule> site_schedules;
  struct SiteState {
    std::int64_t hits = 0;
    std::int64_t fires = 0;
  };
  std::map<std::string, SiteState> sites;
};

FaultInjector::Impl& FaultInjector::impl() {
  static Impl* impl = new Impl();  // leaked: outlives all static dtors
  return *impl;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::uint64_t seed, double rate) {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.seed = seed;
    im.global_rate = rate;
    im.sites.clear();
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmSite(const std::string& site, SiteSchedule schedule) {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.site_schedules[site] = schedule;
    im.sites.erase(site);
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  Impl& im = impl();
  armed_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(im.mu);
  im.global_rate = 0.0;
  im.site_schedules.clear();
  im.sites.clear();
}

void FaultInjector::SetDelay(std::chrono::milliseconds delay) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.delay = delay;
}

std::chrono::milliseconds FaultInjector::delay() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.delay;
}

bool FaultInjector::Fire(const char* site) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto sched_it = im.site_schedules.find(site);
  const bool has_override = sched_it != im.site_schedules.end();
  const SiteSchedule sched =
      has_override ? sched_it->second
                   : SiteSchedule{im.global_rate, -1, 0};
  if (sched.rate <= 0.0) return false;

  Impl::SiteState& state = im.sites[site];
  const std::int64_t index = state.hits++;
  if (index < sched.skip_first) return false;
  if (sched.max_fires >= 0 && state.fires >= sched.max_fires) return false;

  const double u = MixToUnit(im.seed ^ HashSite(site) ^
                             static_cast<std::uint64_t>(index));
  if (u >= sched.rate) return false;
  ++state.fires;
  return true;
}

std::int64_t FaultInjector::fires(const std::string& site) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.sites.find(site);
  return it == im.sites.end() ? 0 : it->second.fires;
}

std::int64_t FaultInjector::total_fires() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::int64_t total = 0;
  for (const auto& entry : im.sites) total += entry.second.fires;
  return total;
}

void MaybeDelay(const char* site) {
  if (!ShouldFail(site)) return;
  std::this_thread::sleep_for(FaultInjector::Global().delay());
}

namespace {

// Parse MIXQ_FAULTS=<seed>:<rate>[:<delay_ms>] at static-init time. mixq is
// an OBJECT library, so this TU (and thus the registrar) is linked into
// every binary — env-armed injection works without any code touching the
// injector first.
bool ArmFromEnv() {
  const char* env = std::getenv("MIXQ_FAULTS");
  if (env == nullptr || *env == '\0') return false;
  std::uint64_t seed = 0;
  double rate = 0.0;
  long delay_ms = -1;
  char* end = nullptr;
  seed = std::strtoull(env, &end, 10);
  if (end == env || *end != ':') return false;
  const char* rate_str = end + 1;
  rate = std::strtod(rate_str, &end);
  if (end == rate_str) return false;
  if (*end == ':') {
    const char* delay_str = end + 1;
    delay_ms = std::strtol(delay_str, &end, 10);
    if (end == delay_str) return false;
  }
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(seed, rate);
  if (delay_ms >= 0) injector.SetDelay(std::chrono::milliseconds(delay_ms));
  return true;
}

[[maybe_unused]] const bool fault_env_armed = ArmFromEnv();

}  // namespace
}  // namespace fault
}  // namespace mixq
