// Copyright 2026 MixQ-GNN Authors
#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mixq {

int NumThreads() {
  static const int kThreads = [] {
    if (const char* env = std::getenv("MIXQ_THREADS")) {
      int v = std::atoi(env);
      if (v <= 1) return 1;
      return std::min(v, 64);
    }
    unsigned hc = std::thread::hardware_concurrency();
    if (hc == 0) hc = 4;
    return static_cast<int>(std::min<unsigned>(hc, 16));
  }();
  return kThreads;
}

namespace {

// True while this thread is executing chunks of some ParallelFor — nested
// calls from inside a chunk (on any thread, pool worker or caller) must run
// serially: a participant that blocked on sub-chunks could deadlock the pool
// under concurrent load, and an unsuspecting nested caller would otherwise
// observe surprise parallelism.
thread_local bool in_parallel_region = false;

// One ParallelFor invocation. Participants (pool workers plus the caller)
// claim chunk indices from `next` until exhausted; the caller waits until
// every chunk has finished. Heap-allocated and shared so that a worker that
// dequeues the batch after the loop already completed touches valid memory.
struct Batch {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t n = 0;
  int64_t chunk = 0;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t completed = 0;  // guarded by mu
  std::exception_ptr error;  // first exception, guarded by mu

  // Runs chunks until none are left. Exceptions are recorded, never leaked.
  void Participate() {
    struct RegionGuard {
      bool prev = in_parallel_region;
      RegionGuard() { in_parallel_region = true; }
      ~RegionGuard() { in_parallel_region = prev; }
    } region;
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t begin = c * chunk;
      const int64_t end = std::min(n, begin + chunk);
      std::exception_ptr err;
      if (begin < end) {
        try {
          (*fn)(begin, end);
        } catch (...) {
          err = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (err && !error) error = err;
        if (++completed == num_chunks) done_cv.notify_all();
      }
    }
  }
};

// Pool workers block on a queue of batches and lend themselves to each one.
// There is no per-batch thread spawn: the pool is created on first parallel
// use and lives for the rest of the process.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool pool(NumThreads() - 1);
    return pool;
  }

  void Submit(const std::shared_ptr<Batch>& batch, int64_t copies) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;  // shutdown race: caller runs everything itself
      for (int64_t i = 0; i < copies; ++i) queue_.push_back(batch);
    }
    if (copies == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

 private:
  explicit ThreadPool(int num_workers) {
    workers_.reserve(static_cast<size_t>(std::max(num_workers, 0)));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
        if (stopped_ && queue_.empty()) return;
        batch = std::move(queue_.front());
        queue_.pop_front();
      }
      batch->Participate();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain) {
  if (n <= 0) return;
  const int threads = NumThreads();
  // Serial fast paths: tiny loops, single-thread config, and nested calls
  // from inside a chunk of another ParallelFor (on any thread).
  if (threads <= 1 || n < 2 * grain || in_parallel_region) {
    fn(0, n);
    return;
  }
  // Several chunks per participant: concurrent ParallelFor calls (e.g. many
  // serving requests) interleave on the shared workers, so finer chunks keep
  // stragglers short. Chunk geometry never affects results — every chunk is
  // a disjoint [begin, end).
  const int64_t max_chunks = std::min<int64_t>(
      static_cast<int64_t>(threads) * 4, (n + grain - 1) / grain);
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  batch->num_chunks = std::max<int64_t>(max_chunks, 1);
  batch->chunk = (n + batch->num_chunks - 1) / batch->num_chunks;
  ThreadPool::Global().Submit(
      batch, std::min<int64_t>(threads - 1, batch->num_chunks - 1));
  batch->Participate();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->completed == batch->num_chunks; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace mixq
