// Copyright 2026 MixQ-GNN Authors
#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace mixq {

int NumThreads() {
  static const int kThreads = [] {
    if (const char* env = std::getenv("MIXQ_THREADS")) {
      int v = std::atoi(env);
      if (v <= 1) return 1;
      return std::min(v, 64);
    }
    unsigned hc = std::thread::hardware_concurrency();
    if (hc == 0) hc = 4;
    return static_cast<int>(std::min<unsigned>(hc, 16));
  }();
  return kThreads;
}

void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain) {
  if (n <= 0) return;
  const int threads = NumThreads();
  if (threads <= 1 || n < 2 * grain) {
    fn(0, n);
    return;
  }
  const int64_t num_chunks = std::min<int64_t>(threads, (n + grain - 1) / grain);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace mixq
