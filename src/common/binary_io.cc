// Copyright 2026 MixQ-GNN Authors
#include "common/binary_io.h"

#include <cstdio>

namespace mixq {

namespace {

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

bool IsLittleEndianHost() {
  const uint16_t probe = 1;
  uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

// ---- ByteWriter ------------------------------------------------------------

void ByteWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  if (size == 0) return;  // empty vectors pass data() == nullptr (p + 0 is UB)
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void ByteWriter::AppendPod(const void* data, size_t count, size_t elem_size) {
  const size_t bytes = count * elem_size;
  if (IsLittleEndianHost() || elem_size == 1) {
    PutBytes(data, bytes);
    return;
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.reserve(buf_.size() + bytes);
  for (size_t i = 0; i < count; ++i) {
    for (size_t b = 0; b < elem_size; ++b) {
      buf_.push_back(p[i * elem_size + (elem_size - 1 - b)]);
    }
  }
}

// ---- ByteReader ------------------------------------------------------------

Status ByteReader::Need(size_t bytes) const {
  if (bytes > remaining()) {
    return Status::OutOfRange("truncated: need " + std::to_string(bytes) +
                              " bytes at offset " + std::to_string(pos_) +
                              ", have " + std::to_string(remaining()));
  }
  return Status::OK();
}

void ByteReader::ExtractPod(void* out, size_t count, size_t elem_size) {
  const size_t bytes = count * elem_size;
  if (bytes == 0) return;  // empty vectors pass data() == nullptr (UB to memcpy)
  if (IsLittleEndianHost() || elem_size == 1) {
    std::memcpy(out, data_ + pos_, bytes);
  } else {
    uint8_t* dst = static_cast<uint8_t*>(out);
    for (size_t i = 0; i < count; ++i) {
      for (size_t b = 0; b < elem_size; ++b) {
        dst[i * elem_size + (elem_size - 1 - b)] = data_[pos_ + i * elem_size + b];
      }
    }
  }
  pos_ += bytes;
}

Status ByteReader::ReadU8(uint8_t* out) {
  MIXQ_RETURN_NOT_OK(Need(1));
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::ReadU16(uint16_t* out) {
  MIXQ_RETURN_NOT_OK(Need(2));
  *out = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  MIXQ_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* out) {
  MIXQ_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  MIXQ_RETURN_NOT_OK(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status ByteReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  MIXQ_RETURN_NOT_OK(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteReader::ReadF32(float* out) {
  uint32_t bits = 0;
  MIXQ_RETURN_NOT_OK(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadF64(double* out) {
  uint64_t bits = 0;
  MIXQ_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::ReadString(std::string* out) {
  uint32_t len = 0;
  MIXQ_RETURN_NOT_OK(ReadU32(&len));
  MIXQ_RETURN_NOT_OK(Need(len));
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::Skip(size_t bytes) {
  MIXQ_RETURN_NOT_OK(Need(bytes));
  pos_ += bytes;
  return Status::OK();
}

// ---- Whole-file helpers ----------------------------------------------------

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot determine size of '" + path + "'");
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t read =
      size == 0 ? 0 : std::fread(out->data(), 1, static_cast<size_t>(size), f);
  std::fclose(f);
  if (read != static_cast<size_t>(size)) {
    return Status::Internal("short read of '" + path + "': got " +
                            std::to_string(read) + " of " + std::to_string(size) +
                            " bytes");
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + tmp + "' for writing");
  }
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mixq
