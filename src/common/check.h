// Copyright 2026 MixQ-GNN Authors
// Invariant-checking macros (abort-on-violation, Arrow/RocksDB CHECK idiom).
//
// These macros guard against *programmer errors* (shape mismatches, index
// out of range, broken invariants). User-facing fallible operations return
// mixq::Status / mixq::Result instead (see status.h).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mixq {
namespace internal {

/// Aborts the process after printing a fatal-check message to stderr.
[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[MIXQ FATAL] %s:%d: check failed: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

/// Stream-capture helper so MIXQ_CHECK(x) << "detail" works lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mixq

/// Aborts with a diagnostic if `condition` is false. Streams extra detail:
///   MIXQ_CHECK(a == b) << "a=" << a << " b=" << b;
#define MIXQ_CHECK(condition)                                                      \
  if (condition) {                                                                \
  } else                                                                          \
    ::mixq::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define MIXQ_CHECK_EQ(a, b) MIXQ_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define MIXQ_CHECK_NE(a, b) MIXQ_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define MIXQ_CHECK_LT(a, b) MIXQ_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define MIXQ_CHECK_LE(a, b) MIXQ_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define MIXQ_CHECK_GT(a, b) MIXQ_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define MIXQ_CHECK_GE(a, b) MIXQ_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "

/// Unconditional failure (unreachable code paths).
#define MIXQ_UNREACHABLE() \
  ::mixq::internal::CheckFailed(__FILE__, __LINE__, "unreachable", "")
