// Copyright 2026 MixQ-GNN Authors
// Clang thread-safety annotations (ABSL style) plus minimal annotated mutex
// wrappers, so the locking discipline of the serving stack is checked
// STATICALLY by `clang++ -Wthread-safety` instead of only dynamically by the
// TSan CI job.
//
// Under GCC (or any compiler without the attributes) everything here
// compiles to plain std::mutex / std::shared_mutex with zero overhead. The
// wrappers exist because libstdc++'s std::mutex carries no capability
// attributes: clang cannot see a std::lock_guard acquire it, so annotating
// members GUARDED_BY a raw std::mutex would flag every correctly-locked
// access. mixq::Mutex + mixq::MutexLock are the same types with the
// attributes attached.
//
// ThreadRole is the idiom for data that is not lock-protected but
// THREAD-confined (the batcher's dispatcher-private cache and scratch, the
// per-graph frontier workspace): a zero-cost fake capability the owning
// thread acquires at its loop entry. Functions touching the confined state
// declare MIXQ_REQUIRES(role); calling them from any code path that has not
// acquired the role is a compile error under -Wthread-safety.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MIXQ_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef MIXQ_THREAD_ANNOTATION__
#define MIXQ_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define MIXQ_CAPABILITY(x) MIXQ_THREAD_ANNOTATION__(capability(x))
#define MIXQ_SCOPED_CAPABILITY MIXQ_THREAD_ANNOTATION__(scoped_lockable)
#define MIXQ_GUARDED_BY(x) MIXQ_THREAD_ANNOTATION__(guarded_by(x))
#define MIXQ_PT_GUARDED_BY(x) MIXQ_THREAD_ANNOTATION__(pt_guarded_by(x))
#define MIXQ_REQUIRES(...) \
  MIXQ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MIXQ_REQUIRES_SHARED(...) \
  MIXQ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define MIXQ_ACQUIRE(...) MIXQ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MIXQ_ACQUIRE_SHARED(...) \
  MIXQ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define MIXQ_RELEASE(...) MIXQ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MIXQ_RELEASE_SHARED(...) \
  MIXQ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define MIXQ_TRY_ACQUIRE(...) \
  MIXQ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define MIXQ_EXCLUDES(...) MIXQ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define MIXQ_NO_THREAD_SAFETY_ANALYSIS \
  MIXQ_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace mixq {

/// std::mutex with the capability attribute attached. Lock it through
/// MutexLock (scoped) so the analysis sees the acquire/release pair.
class MIXQ_CAPABILITY("mutex") Mutex {
 public:
  void lock() MIXQ_ACQUIRE() { mu_.lock(); }
  void unlock() MIXQ_RELEASE() { mu_.unlock(); }
  bool try_lock() MIXQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the capability attribute: exclusive for writers,
/// shared for readers (ReaderLock).
class MIXQ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() MIXQ_ACQUIRE() { mu_.lock(); }
  void unlock() MIXQ_RELEASE() { mu_.unlock(); }
  void lock_shared() MIXQ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MIXQ_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex or SharedMutex.
template <typename MutexT>
class MIXQ_SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(MutexT* mu) MIXQ_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~BasicMutexLock() MIXQ_RELEASE() { mu_->unlock(); }
  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

 private:
  MutexT* mu_;
};
using MutexLock = BasicMutexLock<Mutex>;
using WriterLock = BasicMutexLock<SharedMutex>;

/// Scoped shared (reader) lock over SharedMutex.
class MIXQ_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) MIXQ_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() MIXQ_RELEASE() { mu_->unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Zero-cost capability standing for "this code runs on the one thread that
/// owns the confined state" — no mutex exists, confinement IS the protocol.
/// The owning thread Acquire()s the role once at its loop entry; everything
/// touching the confined members declares MIXQ_REQUIRES(role).
class MIXQ_CAPABILITY("role") ThreadRole {
 public:
  void Acquire() MIXQ_ACQUIRE() {}
  void Release() MIXQ_RELEASE() {}
};

/// Scoped ThreadRole holder for the owning thread's entry point.
class MIXQ_SCOPED_CAPABILITY ThreadRoleHolder {
 public:
  explicit ThreadRoleHolder(ThreadRole* role) MIXQ_ACQUIRE(role) : role_(role) {
    role_->Acquire();
  }
  ~ThreadRoleHolder() MIXQ_RELEASE() { role_->Release(); }
  ThreadRoleHolder(const ThreadRoleHolder&) = delete;
  ThreadRoleHolder& operator=(const ThreadRoleHolder&) = delete;

 private:
  ThreadRole* role_;
};

}  // namespace mixq
