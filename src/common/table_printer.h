// Copyright 2026 MixQ-GNN Authors
// ASCII table printer used by the bench harnesses to render the paper's
// tables ("paper vs measured") with aligned columns.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace mixq {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Inserts a horizontal separator before the next row.
  void AddSeparator() { separators_.push_back(rows_.size()); }

  /// Renders to `os` with 2-space padding and +---+ rules.
  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto rule = [&] {
      os << '+';
      for (size_t c = 0; c < width.size(); ++c) {
        os << std::string(width[c] + 2, '-') << '+';
      }
      os << '\n';
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      os << '|';
      for (size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    rule();
    print_row(header_);
    rule();
    size_t sep_idx = 0;
    for (size_t r = 0; r < rows_.size(); ++r) {
      while (sep_idx < separators_.size() && separators_[sep_idx] == r) {
        rule();
        ++sep_idx;
      }
      print_row(rows_[r]);
    }
    rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;
};

/// Formats a float with fixed precision (bench table cells).
inline std::string FormatFloat(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

/// Formats "mean ± std" as used throughout the paper's tables.
inline std::string FormatMeanStd(double mean, double stddev, int precision = 1) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, mean, precision, stddev);
  return std::string(buf);
}

}  // namespace mixq
