// Copyright 2026 MixQ-GNN Authors
// Tiny leveled logger for library diagnostics. Benches print their own tables;
// this is for warnings/progress. Level via MIXQ_LOG_LEVEL (0=off..3=debug).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mixq {

enum class LogLevel : int { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current log level (read once from MIXQ_LOG_LEVEL, default kWarn).
inline LogLevel CurrentLogLevel() {
  static const LogLevel kLevel = [] {
    if (const char* env = std::getenv("MIXQ_LOG_LEVEL")) {
      int v = std::atoi(env);
      if (v < 0) v = 0;
      if (v > 3) v = 3;
      return static_cast<LogLevel>(v);
    }
    return LogLevel::kWarn;
  }();
  return kLevel;
}

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : enabled_(level <= CurrentLogLevel()) {
    if (enabled_) stream_ << "[MIXQ " << tag << "] ";
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }
  ~LogMessage() {
    if (enabled_) std::cerr << stream_.str() << std::endl;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MIXQ_LOG_WARN() ::mixq::internal::LogMessage(::mixq::LogLevel::kWarn, "WARN")
#define MIXQ_LOG_INFO() ::mixq::internal::LogMessage(::mixq::LogLevel::kInfo, "INFO")
#define MIXQ_LOG_DEBUG() ::mixq::internal::LogMessage(::mixq::LogLevel::kDebug, "DEBUG")

}  // namespace mixq
