// Copyright 2026 MixQ-GNN Authors
// Bounded multi-producer/multi-consumer queue — the admission buffer of the
// serving layer. Producers (request threads) TryPush and get an immediate
// false when the queue is full, so overload turns into a cheap rejection
// instead of unbounded memory growth or blocked clients; the consumer (the
// micro-batch dispatcher) drains *everything* queued in one call, which is
// what makes coalescing possible. Mutex + condvar rather than a lock-free
// ring: operations are a handful of pointer moves next to multi-millisecond
// forwards, and the simple version is trivially TSan-clean.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace mixq {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` is the maximum number of queued items; 0 is clamped to 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks. On failure
  /// `item` is left untouched (not moved from), so callers can still fulfil
  /// the rejected request — e.g. resolve its promise with an error.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until at least one item is queued (or the queue is closed), then
  /// moves out *all* queued items. An empty result means closed-and-drained:
  /// the consumer loop's termination signal.
  std::vector<T> WaitDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::vector<T> out;
    out.reserve(items_.size());
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return out;
  }

  /// Removes and returns every queued item matching `pred`, preserving the
  /// relative order of survivors. Lets a watchdog expire queued requests
  /// (e.g. past-deadline waiters behind a stalled consumer) without racing
  /// the consumer's drain: both run under the queue mutex, so an item is
  /// handed to exactly one of them.
  template <typename Pred>
  std::vector<T> RemoveIf(Pred pred) {
    std::vector<T> removed;
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<T> kept;
    for (T& item : items_) {
      if (pred(item)) {
        removed.push_back(std::move(item));
      } else {
        kept.push_back(std::move(item));
      }
    }
    items_.swap(kept);
    return removed;
  }

  /// Rejects future pushes and wakes blocked consumers. Items already queued
  /// are still handed out by WaitDrain.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mixq
