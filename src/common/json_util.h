// Copyright 2026 MixQ-GNN Authors
// The one JSON grammar the project emits. Every machine-readable surface —
// mixq_lint / mixq_inspect --verify check reports, the serving metrics
// endpoint (engine/stats_json.h), BENCH_*.json fragments — goes through
// these helpers so escaping rules and status-code spellings cannot drift
// between producers. Emission only: nothing in this repo parses JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace mixq {
namespace json {

/// snake_case code names for JSON reports (StatusCodeName is CamelCase for
/// logs; tooling keys want stable lowercase identifiers).
inline const char* StatusCodeJsonName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kNotImplemented: return "not_implemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// Appends `s` as a quoted, escaped JSON string.
inline void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Appends a double as a JSON number. JSON has no NaN/Inf literals, so
/// non-finite values emit 0 (metrics consumers prefer a sentinel over a
/// parse error).
inline void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace json
}  // namespace mixq
