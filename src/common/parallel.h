// Copyright 2026 MixQ-GNN Authors
// Minimal data-parallel loop utility. The dense GEMM and sparse SpMM kernels
// dominate training cost; chunked std::thread parallelism keeps them tractable
// on CPU without external dependencies.
#pragma once

#include <cstdint>
#include <functional>

namespace mixq {

/// Number of worker threads used by ParallelFor. Defaults to
/// std::thread::hardware_concurrency(), clamped to [1, 16]. Override with the
/// MIXQ_THREADS environment variable (0/1 disables parallelism).
int NumThreads();

/// Runs fn(begin, end) over disjoint chunks of [0, n) on worker threads.
/// Falls back to a serial call when n is small or NumThreads() == 1.
/// `grain` is the minimum chunk size worth spawning a thread for.
void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain = 1024);

}  // namespace mixq
