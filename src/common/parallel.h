// Copyright 2026 MixQ-GNN Authors
// Data-parallel loop utility backed by a persistent thread pool. The dense
// GEMM and sparse SpMM kernels dominate training cost, and per-request kernel
// launches dominate small-graph serving latency — so workers are spawned once
// per process and reused, instead of std::thread-per-call.
#pragma once

#include <cstdint>
#include <functional>

namespace mixq {

/// Number of participants (pool workers + the calling thread) used by
/// ParallelFor. Defaults to std::thread::hardware_concurrency(), clamped to
/// [1, 16]. Override with the MIXQ_THREADS environment variable: values 0/1
/// disable parallelism entirely (no pool threads are ever started), larger
/// values are clamped to 64. Read once at first use.
int NumThreads();

/// Runs fn(begin, end) over disjoint chunks of [0, n) on the persistent pool;
/// the calling thread participates, so NumThreads()==1 or small n degrade to
/// a serial call. `grain` is the minimum chunk size worth scheduling.
///
/// Safe to call concurrently from many threads (chunks from concurrent loops
/// interleave on the shared workers) and reentrantly from inside a chunk
/// (nested calls run serially on the calling worker). If one or more chunks
/// throw, every remaining chunk still runs and the first exception is
/// rethrown on the calling thread once the loop is complete — a throwing
/// worker no longer brings the process down via std::terminate.
void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain = 1024);

}  // namespace mixq
