// Copyright 2026 MixQ-GNN Authors
// Lock-free latency histogram for serving monitoring. Record() is a single
// relaxed atomic increment, cheap enough for every request on the hot path;
// Percentile() walks the buckets and interpolates, good to a few percent —
// plenty for p50/p99 monitoring, where the question is "microseconds or
// milliseconds", not exact ranks.
//
// Buckets are geometric: bucket k covers [kMinUs * kGrowth^k, next bound),
// spanning ~1 us to ~100 s in 64 buckets (growth 1.333). Values below/above
// the span clamp into the first/last bucket.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>

namespace mixq {

class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Records one observation (microseconds). Thread-safe, wait-free.
  void Record(double us) {
    buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Interpolated percentile in microseconds, p in [0, 100]; 0 when empty.
  /// A snapshot racing concurrent Record()s is approximate, never invalid.
  double Percentile(double p) const {
    std::array<int64_t, kNumBuckets> counts;
    int64_t total = 0;
    for (int k = 0; k < kNumBuckets; ++k) {
      counts[static_cast<size_t>(k)] = buckets_[static_cast<size_t>(k)].load(
          std::memory_order_relaxed);
      total += counts[static_cast<size_t>(k)];
    }
    if (total == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank in [1, total]; find its bucket and interpolate within it.
    const double rank = p / 100.0 * static_cast<double>(total - 1) + 1.0;
    double seen = 0.0;
    for (int k = 0; k < kNumBuckets; ++k) {
      const double in_bucket = static_cast<double>(counts[static_cast<size_t>(k)]);
      if (seen + in_bucket >= rank) {
        const double frac = in_bucket > 0.0 ? (rank - seen) / in_bucket : 0.0;
        return LowerBound(k) + frac * (LowerBound(k + 1) - LowerBound(k));
      }
      seen += in_bucket;
    }
    return LowerBound(kNumBuckets);  // unreachable modulo racing snapshots
  }

  double p50() const { return Percentile(50.0); }
  double p99() const { return Percentile(99.0); }

 private:
  static constexpr double kMinUs = 1.0;
  static constexpr double kGrowth = 1.333;

  static int BucketFor(double us) {
    if (!(us > kMinUs)) return 0;  // also catches NaN
    const int k = static_cast<int>(std::log(us / kMinUs) / std::log(kGrowth));
    return k >= kNumBuckets ? kNumBuckets - 1 : k;
  }

  static double LowerBound(int k) { return kMinUs * std::pow(kGrowth, k); }

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
};

}  // namespace mixq
