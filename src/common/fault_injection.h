// Copyright 2026 MixQ-GNN Authors
//
// Deterministic, site-keyed fault injection for chaos testing the serving
// stack. Every would-be failure point in the library names a *site* (a
// string literal like "bundle.crc" or "plan.forward.throw") and asks the
// global injector whether to fire. Decisions are a pure function of
// (seed, site, per-site counter), so a given MIXQ_FAULTS=seed:rate schedule
// replays the exact same fault sequence on every run — chaos tests are
// reproducible, and a CI failure under seed 7 is debuggable locally with
// seed 7.
//
// Cost when disabled: one relaxed atomic load per site (the inline Armed()
// check below); no locks, no hashing, no allocation. The injector arms only
// via the MIXQ_FAULTS environment variable or an explicit Arm()/ArmSite()
// call from a test.
//
// Env format:   MIXQ_FAULTS=<seed>:<rate>[:<delay_ms>]
//   seed      uint64 decision seed
//   rate      global per-site-hit fire probability in [0,1]
//   delay_ms  sleep length for delay sites (default 25)
//
// Programmatic schedules (tests): ArmSite("plan.forward.throw",
// {.rate = 1.0, .max_fires = 1}) fires exactly once at one site and leaves
// every other site clean.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/status.h"

namespace mixq {
namespace fault {

// Per-site firing schedule. rate is the probability that any given hit of
// the site fires; max_fires (if >= 0) caps total fires at the site;
// skip_first suppresses the first N hits entirely (lets a test arm a fault
// that strikes the k-th forward, not the warm-up).
struct SiteSchedule {
  double rate = 0.0;
  std::int64_t max_fires = -1;
  std::int64_t skip_first = 0;
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // True iff any schedule is active. Inline single relaxed load: this is
  // the only cost injection adds to production builds with faults off.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  // Arm a global schedule: every site fires independently with `rate`.
  void Arm(std::uint64_t seed, double rate);
  // Arm (or override) one site. Arms the injector even if no global rate
  // is set, so other sites stay clean.
  void ArmSite(const std::string& site, SiteSchedule schedule);
  // Clear all schedules and counters; Armed() becomes false.
  void Disarm();
  // Sleep length used by delay sites (MaybeDelay). Default 25ms.
  void SetDelay(std::chrono::milliseconds delay);

  // Decide whether the current hit of `site` fires. Deterministic in
  // (seed, site, hit index). Only call when Armed().
  bool Fire(const char* site);

  std::chrono::milliseconds delay() const;
  // Observability for tests: fires recorded at one site / across all sites.
  std::int64_t fires(const std::string& site) const;
  std::int64_t total_fires() const;

 private:
  FaultInjector() = default;
  struct Impl;
  static Impl& impl();

  static std::atomic<bool> armed_;
};

// --- Hook helpers (the only API call sites use) ---------------------------

// True iff the injector is armed and this hit of `site` fires.
inline bool ShouldFail(const char* site) {
  return FaultInjector::Armed() && FaultInjector::Global().Fire(site);
}

// Status-returning hook for Status/Result code paths.
inline Status CheckPoint(const char* site) {
  if (ShouldFail(site)) {
    return Status::Internal(std::string("injected fault at '") + site + "'");
  }
  return Status::OK();
}

// Throwing hook for executor code paths (exercises containment).
inline void MaybeThrow(const char* site) {
  if (ShouldFail(site)) {
    throw std::runtime_error(std::string("injected fault at '") + site + "'");
  }
}

// Slow-kernel hook: sleeps for the configured delay when it fires.
void MaybeDelay(const char* site);

}  // namespace fault
}  // namespace mixq
