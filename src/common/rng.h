// Copyright 2026 MixQ-GNN Authors
// Deterministic random-number utilities shared by generators, initializers,
// and stochastic quantizers. All experiment entry points seed explicitly so
// every table/figure in bench/ is reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace mixq {

/// Deterministic RNG wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal (mean 0, stddev 1) scaled/shifted.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MIXQ_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Draws an index in [0, weights.size()) with probability ∝ weights[i].
  size_t Categorical(const std::vector<double>& weights) {
    MIXQ_CHECK(!weights.empty());
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Geometric-like power-law degree sample in [1, max_value]:
  /// P(k) ∝ k^{-alpha}. Sampled by inverse-CDF on a precomputed table-free
  /// rejection loop (cheap for the graph sizes used here).
  int64_t PowerLaw(double alpha, int64_t max_value) {
    MIXQ_CHECK_GE(max_value, 1);
    // Inverse transform for continuous Pareto, then clamp & round.
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    int64_t k = static_cast<int64_t>(x);
    if (k < 1) k = 1;
    if (k > max_value) k = max_value;
    return k;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    std::shuffle(values->begin(), values->end(), engine_);
  }

  /// Samples k distinct indices from [0, n) (k <= n), order randomized.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k) {
    MIXQ_CHECK_LE(k, n);
    std::vector<int64_t> all(n);
    for (int64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 — used to derive independent child seeds from a master seed so
/// parallel workloads stay deterministic regardless of scheduling.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace mixq
