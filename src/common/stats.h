// Copyright 2026 MixQ-GNN Authors
// Small statistics helpers shared by benches and evaluation code: mean/std,
// Pearson and Spearman correlation (used for Fig. 1 and Fig. 8), percentiles
// (used by Degree-Quant range observers), and Pareto-front extraction
// (used by Fig. 2/3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace mixq {

/// Arithmetic mean; 0 for empty input.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for size < 2.
inline double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

/// Pearson correlation coefficient; 0 when either vector is constant.
inline double PearsonCorrelation(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  MIXQ_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

/// Fractional ranks with ties averaged (for Spearman).
inline std::vector<double> Ranks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}

/// Spearman rank correlation (Fig. 1 reports 0.64 on the paper's data).
inline double SpearmanCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  return PearsonCorrelation(Ranks(xs), Ranks(ys));
}

/// Linear-interpolated percentile, p in [0, 100].
inline double Percentile(std::vector<double> xs, double p) {
  MIXQ_CHECK(!xs.empty());
  MIXQ_CHECK_GE(p, 0.0);
  MIXQ_CHECK_LE(p, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// A 2-D point for Pareto-front extraction: minimize `cost`, maximize `gain`.
struct ParetoPoint {
  double cost = 0.0;   ///< e.g. average bit-width
  double gain = 0.0;   ///< e.g. accuracy
  int64_t tag = -1;    ///< caller payload (e.g. combination index)
};

/// Returns the subset of points not dominated by any other point
/// (lower cost AND higher-or-equal gain, or equal cost and strictly higher
/// gain, dominates). Output sorted by cost ascending.
inline std::vector<ParetoPoint> ParetoFront(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.gain > b.gain;
  });
  std::vector<ParetoPoint> front;
  double best_gain = -1e300;
  for (const auto& p : points) {
    if (p.gain > best_gain) {
      front.push_back(p);
      best_gain = p.gain;
    }
  }
  return front;
}

}  // namespace mixq
