// Copyright 2026 MixQ-GNN Authors
#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace mixq {

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kVpmaddwd:
      return "vpmaddwd";
    case KernelIsa::kVnni:
      return "vnni";
  }
  return "unknown";
}

namespace {

#if defined(__x86_64__) || defined(__i386__)
// XCR0 via xgetbv: the OS must have enabled YMM state saves (bits 1|2) for
// any 256-bit kernel to be usable, regardless of what cpuid advertises.
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}
#endif

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave || (ReadXcr0() & 0x6) != 0x6) return f;  // YMM state not saved
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    const bool avx512vl = (ebx & (1u << 31)) != 0;
    const bool avx512vnni = (ecx & (1u << 11)) != 0;
    f.avx512_vnni_vl = avx512vl && avx512vnni;
  }
  if (__get_cpuid_count(7, 1, &eax, &ebx, &ecx, &edx)) {
    f.avx_vnni = (eax & (1u << 4)) != 0;
  }
#endif
  return f;
}

KernelIsa Clamp(KernelIsa requested) {
  const KernelIsa best = BestSupportedIsa();
  return static_cast<int>(requested) <= static_cast<int>(best) ? requested : best;
}

// -1 = unresolved; otherwise holds a KernelIsa value.
std::atomic<int> g_active_isa{-1};

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

KernelIsa BestSupportedIsa() {
  const CpuFeatures& f = GetCpuFeatures();
#if MIXQ_COMPILED_VNNI
  if (f.avx_vnni || f.avx512_vnni_vl) return KernelIsa::kVnni;
#endif
#if MIXQ_COMPILED_AVX2
  if (f.avx2) return KernelIsa::kVpmaddwd;
#endif
  return KernelIsa::kScalar;
}

KernelIsa ActiveKernelIsa() {
  int v = g_active_isa.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<KernelIsa>(v);
  KernelIsa isa = BestSupportedIsa();
  if (const char* env = std::getenv("MIXQ_KERNEL")) {
    if (std::strcmp(env, "scalar") == 0) {
      isa = KernelIsa::kScalar;
    } else if (std::strcmp(env, "vpmaddwd") == 0 || std::strcmp(env, "avx2") == 0) {
      isa = Clamp(KernelIsa::kVpmaddwd);
    } else if (std::strcmp(env, "vnni") == 0) {
      isa = Clamp(KernelIsa::kVnni);
    }  // unknown values keep the detected default
  }
  // First resolution wins; a concurrent SetKernelIsa simply overwrites.
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

void SetKernelIsa(KernelIsa isa) {
  g_active_isa.store(static_cast<int>(Clamp(isa)), std::memory_order_relaxed);
}

}  // namespace mixq
