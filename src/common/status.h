// Copyright 2026 MixQ-GNN Authors
// Status / Result error-handling primitives (Arrow / RocksDB idiom).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace mixq {

/// Error categories for fallible operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kNotFound,
  kResourceExhausted,  ///< admission control rejected (queue/capacity full)
  kDeadlineExceeded,   ///< request expired before it could be served
  kUnavailable,        ///< circuit breaker open / load shed; retry later
};

/// Returns a short human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

/// Lightweight status object for fallible operations. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status NotImplemented(std::string m) {
    return Status(StatusCode::kNotImplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status (Arrow's arrow::Result idiom).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : payload_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {
    MIXQ_CHECK(!std::get<Status>(payload_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const {
    MIXQ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() {
    MIXQ_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }

  /// Moves the value out; aborts if this holds an error.
  T MoveValueOrDie() {
    MIXQ_CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression.
#define MIXQ_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::mixq::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace mixq
