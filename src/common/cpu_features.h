// Copyright 2026 MixQ-GNN Authors
// Runtime CPU feature detection and kernel dispatch for the int8 GEMM/SpMM
// micro-kernels. The binary may be compiled with AVX2/VNNI support
// (-march=native) yet must still pick the right micro-kernel for the machine
// it actually runs on, and tests/benches need to force a specific kernel for
// A/B comparisons and fallback coverage — hence one small dispatch point:
//
//   * compile-time gates (MIXQ_COMPILED_AVX2 / MIXQ_COMPILED_VNNI) say which
//     kernels exist in this binary at all;
//   * cpuid says which the machine supports;
//   * the MIXQ_KERNEL env var ("scalar" | "vpmaddwd" | "vnni") or
//     SetKernelIsa() clamp the choice downward for A/B testing.
//
// Every kernel computes bitwise-identical int32 accumulators (integer sums
// reassociate exactly), so dispatch is a pure performance decision — no
// parity contract depends on which level is active.
#pragma once

namespace mixq {

// Which instruction families this translation unit's flags enable. The VNNI
// gate requires the VEX-encoded AVX-VNNI extension or the AVX512-VNNI+VL
// pair (256-bit vpdpbusd on EVEX); either way the same _mm256 intrinsic
// shape applies.
#if defined(__AVX2__)
#define MIXQ_COMPILED_AVX2 1
#else
#define MIXQ_COMPILED_AVX2 0
#endif
#if defined(__AVX2__) && \
    (defined(__AVXVNNI__) || (defined(__AVX512VNNI__) && defined(__AVX512VL__)))
#define MIXQ_COMPILED_VNNI 1
#else
#define MIXQ_COMPILED_VNNI 0
#endif

/// Micro-kernel tiers, ordered: a machine (or override) at tier T can run
/// every tier <= T.
enum class KernelIsa {
  kScalar = 0,    ///< portable C++ (always available)
  kVpmaddwd = 1,  ///< AVX2 pair-interleaved multiply-add (16-bit lanes)
  kVnni = 2,      ///< AVX-VNNI / AVX512-VNNI vpdpbusd (8-bit quad dot)
};

const char* KernelIsaName(KernelIsa isa);

/// What the running CPU reports via cpuid (independent of compile flags).
struct CpuFeatures {
  bool avx2 = false;
  bool avx_vnni = false;        ///< VEX-encoded AVX-VNNI
  bool avx512_vnni_vl = false;  ///< AVX512-VNNI with AVX512-VL (256-bit forms)
};

const CpuFeatures& GetCpuFeatures();

/// Highest tier both compiled into this binary and supported by the CPU.
KernelIsa BestSupportedIsa();

/// The tier kernels dispatch on. Resolved once from MIXQ_KERNEL (clamped to
/// BestSupportedIsa()) or defaults to BestSupportedIsa().
KernelIsa ActiveKernelIsa();

/// Overrides the active tier (clamped to BestSupportedIsa()); for tests and
/// benchmark A/B runs. Thread-safe, takes effect on subsequent kernel calls.
void SetKernelIsa(KernelIsa isa);

}  // namespace mixq
