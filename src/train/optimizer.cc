// Copyright 2026 MixQ-GNN Authors
#include "train/optimizer.h"

#include <cmath>

namespace mixq {

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& data = p.data();
    const auto& grad = p.grad();
    auto& vel = velocity_[i];
    for (size_t k = 0; k < data.size(); ++k) {
      float g = grad[k] + weight_decay_ * data[k];
      if (momentum_ > 0.0f) {
        vel[k] = momentum_ * vel[k] + g;
        g = vel[k];
      }
      data[k] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(static_cast<double>(beta1_), static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(static_cast<double>(beta2_), static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& data = p.data();
    const auto& grad = p.grad();
    for (size_t k = 0; k < data.size(); ++k) {
      const float g = grad[k] + weight_decay_ * data[k];
      m_[i][k] = beta1_ * m_[i][k] + (1.0f - beta1_) * g;
      v_[i][k] = beta2_ * v_[i][k] + (1.0f - beta2_) * g * g;
      const double mhat = m_[i][k] / bc1;
      const double vhat = v_[i][k] / bc2;
      data[k] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace mixq
