// Copyright 2026 MixQ-GNN Authors
#include "train/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace mixq {

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<uint8_t>& mask) {
  MIXQ_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.rows(), c = logits.cols();
  MIXQ_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  MIXQ_CHECK_EQ(static_cast<int64_t>(mask.size()), n);
  int64_t correct = 0, total = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!mask[static_cast<size_t>(i)] || labels[static_cast<size_t>(i)] < 0) continue;
    int64_t argmax = 0;
    float best = logits.at(i, 0);
    for (int64_t j = 1; j < c; ++j) {
      if (logits.at(i, j) > best) {
        best = logits.at(i, j);
        argmax = j;
      }
    }
    correct += argmax == labels[static_cast<size_t>(i)] ? 1 : 0;
    ++total;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double RocAucMultiLabel(const Tensor& logits, const Tensor& targets,
                        const std::vector<uint8_t>& mask) {
  MIXQ_CHECK(logits.shape() == targets.shape());
  const int64_t n = logits.rows(), t = logits.cols();
  double auc_sum = 0.0;
  int64_t valid_tasks = 0;
  std::vector<std::pair<float, int>> scored;
  for (int64_t task = 0; task < t; ++task) {
    scored.clear();
    int64_t pos = 0, neg = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (!mask[static_cast<size_t>(i)]) continue;
      const int y = targets.at(i, task) > 0.5f ? 1 : 0;
      scored.push_back({logits.at(i, task), y});
      (y ? pos : neg) += 1;
    }
    if (pos == 0 || neg == 0) continue;
    // Rank-sum (Mann-Whitney) AUC with tie-averaged ranks.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double rank_sum_pos = 0.0;
    size_t i = 0;
    while (i < scored.size()) {
      size_t j = i;
      while (j + 1 < scored.size() && scored[j + 1].first == scored[i].first) ++j;
      const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
      for (size_t k = i; k <= j; ++k) {
        if (scored[k].second) rank_sum_pos += avg_rank;
      }
      i = j + 1;
    }
    const double auc =
        (rank_sum_pos - static_cast<double>(pos) * (static_cast<double>(pos) + 1.0) / 2.0) /
        (static_cast<double>(pos) * static_cast<double>(neg));
    auc_sum += auc;
    ++valid_tasks;
  }
  return valid_tasks > 0 ? auc_sum / static_cast<double>(valid_tasks) : 0.5;
}

std::vector<Fold> KFoldSplits(int64_t n, int folds, uint64_t seed) {
  MIXQ_CHECK_GE(folds, 2);
  MIXQ_CHECK_GE(n, folds);
  Rng rng(seed);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  std::vector<Fold> out(static_cast<size_t>(folds));
  for (int64_t i = 0; i < n; ++i) {
    const int f = static_cast<int>(i % folds);
    out[static_cast<size_t>(f)].test.push_back(order[static_cast<size_t>(i)]);
  }
  for (int f = 0; f < folds; ++f) {
    for (int g = 0; g < folds; ++g) {
      if (g == f) continue;
      auto& src = out[static_cast<size_t>(g)].test;
      out[static_cast<size_t>(f)].train.insert(out[static_cast<size_t>(f)].train.end(),
                                               src.begin(), src.end());
    }
  }
  return out;
}

}  // namespace mixq
