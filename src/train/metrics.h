// Copyright 2026 MixQ-GNN Authors
// Evaluation metrics: masked accuracy (node/graph classification) and
// column-averaged ROC-AUC (OGB-Proteins-style multi-label tasks).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mixq {

/// Fraction of masked rows whose argmax logit equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<uint8_t>& mask);

/// Multi-label ROC-AUC: per-task rank AUC over masked rows, averaged over
/// tasks that have both positive and negative examples (the OGB protocol).
double RocAucMultiLabel(const Tensor& logits, const Tensor& targets,
                        const std::vector<uint8_t>& mask);

/// k-fold split of [0, n): fold f's test indices are the f-th contiguous
/// chunk of a seeded shuffle; train is the rest.
struct Fold {
  std::vector<int64_t> train;
  std::vector<int64_t> test;
};
std::vector<Fold> KFoldSplits(int64_t n, int folds, uint64_t seed);

}  // namespace mixq
