// Copyright 2026 MixQ-GNN Authors
// Gradient-based optimizers operating on parameter tensors in place.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mixq {

/// Optimizer interface: owns handles to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears parameter gradients (call after Step, before the next backward).
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace mixq
