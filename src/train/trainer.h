// Copyright 2026 MixQ-GNN Authors
// Generic training loop shared by every experiment. The model's forward and
// the task loss/metric are injected as closures, so one loop serves node
// classification, multi-label node tasks, graph classification, and the
// relaxed MixQ search (whose penalty arrives through scheme->PenaltyLoss()).
#pragma once

#include <functional>

#include "common/rng.h"
#include "nn/module.h"
#include "quant/scheme.h"
#include "train/optimizer.h"

namespace mixq {

struct TrainLoopConfig {
  int epochs = 100;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  /// Stop after this many epochs without val improvement (0 = run all).
  int early_stop_patience = 0;
  /// Print per-epoch losses at MIXQ_LOG_LEVEL >= info.
  bool verbose = false;
  uint64_t seed = 1;
};

struct TrainResult {
  double best_val_metric = 0.0;
  double test_at_best_val = 0.0;   ///< the reported number (standard protocol)
  double final_train_loss = 0.0;
  int epochs_run = 0;
};

/// Runs the loop. `forward` must honour model->training() (the loop toggles
/// it) and use `rng` for dropout. `train_loss` maps logits to a scalar loss
/// over the training split. `eval_metric(logits, is_test)` returns the val
/// (false) or test (true) metric. If the scheme yields a PenaltyLoss, it is
/// added to the task loss each step (the λΣC(T) Lagrangian of Eq. (7)).
TrainResult RunTrainingLoop(const TrainLoopConfig& config, Module* model,
                            QuantScheme* scheme,
                            const std::function<Tensor(Rng*)>& forward,
                            const std::function<Tensor(const Tensor&)>& train_loss,
                            const std::function<double(const Tensor&, bool)>& eval_metric);

}  // namespace mixq
