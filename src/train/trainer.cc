// Copyright 2026 MixQ-GNN Authors
#include "train/trainer.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace mixq {

TrainResult RunTrainingLoop(const TrainLoopConfig& config, Module* model,
                            QuantScheme* scheme,
                            const std::function<Tensor(Rng*)>& forward,
                            const std::function<Tensor(const Tensor&)>& train_loss,
                            const std::function<double(const Tensor&, bool)>& eval_metric) {
  MIXQ_CHECK(model != nullptr);
  MIXQ_CHECK(scheme != nullptr);
  Rng rng(config.seed);

  // Warm-up forward: schemes create their learnable state (relaxation α's,
  // A2Q per-node vectors) lazily on first use, so it must exist before the
  // optimizer snapshots the parameter list.
  model->SetTraining(true);
  scheme->BeginStep(/*training=*/true);
  (void)forward(&rng);

  std::vector<Tensor> params = model->Parameters();
  AppendParameters(&params, scheme->SchemeParameters());
  for (auto& p : params) p.SetRequiresGrad(true);
  Adam optimizer(params, config.lr, 0.9f, 0.999f, 1e-8f, config.weight_decay);

  TrainResult result;
  result.best_val_metric = -1.0;
  int since_best = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // ---- Train step --------------------------------------------------------
    model->SetTraining(true);
    scheme->BeginStep(/*training=*/true);
    optimizer.ZeroGrad();
    Tensor logits = forward(&rng);
    Tensor loss = train_loss(logits);
    Tensor penalty = scheme->PenaltyLoss();
    if (penalty.defined()) loss = Add(loss, penalty);
    loss.Backward();
    optimizer.Step();
    result.final_train_loss = loss.item();

    // ---- Eval --------------------------------------------------------------
    model->SetTraining(false);
    scheme->BeginStep(/*training=*/false);
    Tensor eval_logits = forward(&rng);
    const double val = eval_metric(eval_logits, /*is_test=*/false);
    if (val > result.best_val_metric) {
      result.best_val_metric = val;
      result.test_at_best_val = eval_metric(eval_logits, /*is_test=*/true);
      since_best = 0;
    } else {
      ++since_best;
    }
    result.epochs_run = epoch + 1;
    if (config.verbose) {
      MIXQ_LOG_INFO() << "epoch " << epoch << " loss=" << result.final_train_loss
                      << " val=" << val;
    }
    if (config.early_stop_patience > 0 && since_best >= config.early_stop_patience) {
      break;
    }
  }
  return result;
}

}  // namespace mixq
