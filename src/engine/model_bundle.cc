// Copyright 2026 MixQ-GNN Authors
#include "engine/model_bundle.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "common/binary_io.h"
#include "common/fault_injection.h"
#include "common/json_util.h"
#include "engine/plan_analysis.h"
#include "engine/plan_verifier.h"
#include "sparse/csr.h"
#include "tensor/gemm.h"

namespace mixq {
namespace engine {

namespace {

constexpr char kMagic[8] = {'M', 'I', 'X', 'Q', 'B', 'N', 'D', 'L'};
/// Section header: tag[4] + u64 payload size + u32 crc32.
constexpr size_t kSectionHeaderBytes = 16;
constexpr size_t kFileHeaderBytes = 8 + 2 + 2 + 4;

/// Sanity bound on structural counts (buffers, layers): a real plan has a
/// handful, so anything huge is corruption that slipped past the CRC.
constexpr int64_t kMaxStructuralCount = 1 << 20;

struct RawSection {
  std::string tag;
  uint64_t offset = 0;  // payload offset within the file
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

// ---- framing ---------------------------------------------------------------

void AppendSection(ByteWriter* file, const char* tag, const ByteWriter& payload) {
  MIXQ_CHECK_EQ(static_cast<int64_t>(std::strlen(tag)), 4);
  file->PutBytes(tag, 4);
  file->PutU64(payload.size());
  file->PutU32(Crc32(payload.buffer().data(), payload.size()));
  file->PutBytes(payload.buffer().data(), payload.size());
}

void AppendFileHeader(ByteWriter* file, BundleKind kind) {
  file->PutBytes(kMagic, sizeof(kMagic));
  file->PutU16(kBundleFormatMajor);
  file->PutU16(kBundleFormatMinor);
  file->PutU32(static_cast<uint32_t>(kind));
}

Status ParseFileHeader(ByteReader* r, const std::string& path, uint16_t* major,
                       uint16_t* minor, BundleKind* kind) {
  if (r->remaining() < kFileHeaderBytes) {
    return Status::OutOfRange("'" + path + "' is truncated: " +
                              std::to_string(r->remaining()) +
                              " bytes is smaller than the bundle header");
  }
  char magic[8];
  std::memcpy(magic, r->cursor(), sizeof(magic));
  MIXQ_RETURN_NOT_OK(r->Skip(sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a mixq bundle (bad magic)");
  }
  MIXQ_RETURN_NOT_OK(r->ReadU16(major));
  MIXQ_RETURN_NOT_OK(r->ReadU16(minor));
  uint32_t kind_raw = 0;
  MIXQ_RETURN_NOT_OK(r->ReadU32(&kind_raw));
  if (*major > kBundleFormatMajor) {
    return Status::NotImplemented(
        "'" + path + "' uses bundle format " + std::to_string(*major) + "." +
        std::to_string(*minor) + ", newer than this binary's " +
        std::to_string(kBundleFormatMajor) + "." +
        std::to_string(kBundleFormatMinor) + " (rebuild with a newer mixq)");
  }
  if (kind_raw != static_cast<uint32_t>(BundleKind::kModel) &&
      kind_raw != static_cast<uint32_t>(BundleKind::kGraph)) {
    return Status::InvalidArgument("'" + path + "' has unknown bundle kind " +
                                   std::to_string(kind_raw));
  }
  *kind = static_cast<BundleKind>(kind_raw);
  return Status::OK();
}

/// Walks the section list. Unknown tags are recorded and skipped (the
/// forward-compatibility rule); bounds are validated so arbitrary bytes
/// cannot push the cursor out of the file.
Status ScanSections(ByteReader* r, std::vector<RawSection>* out) {
  while (r->remaining() > 0) {
    if (r->remaining() < kSectionHeaderBytes) {
      return Status::OutOfRange("truncated section header at offset " +
                                std::to_string(r->position()));
    }
    RawSection section;
    section.tag.assign(reinterpret_cast<const char*>(r->cursor()), 4);
    MIXQ_RETURN_NOT_OK(r->Skip(4));
    MIXQ_RETURN_NOT_OK(r->ReadU64(&section.size));
    MIXQ_RETURN_NOT_OK(r->ReadU32(&section.crc32));
    section.offset = r->position();
    if (section.size > r->remaining()) {
      return Status::OutOfRange(
          "truncated: section '" + section.tag + "' claims " +
          std::to_string(section.size) + " bytes, only " +
          std::to_string(r->remaining()) + " remain");
    }
    MIXQ_RETURN_NOT_OK(r->Skip(static_cast<size_t>(section.size)));
    out->push_back(std::move(section));
  }
  return Status::OK();
}

/// Locates a required section and verifies its checksum against the bytes.
Result<ByteReader> OpenSection(const std::vector<uint8_t>& bytes,
                               const std::vector<RawSection>& sections,
                               const std::string& tag) {
  const RawSection* found = nullptr;
  for (const RawSection& s : sections) {
    if (s.tag != tag) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("duplicate section '" + tag + "'");
    }
    found = &s;
  }
  if (found == nullptr) {
    return Status::InvalidArgument("missing required section '" + tag + "'");
  }
  const uint8_t* payload = bytes.data() + found->offset;
  // Chaos hook: simulate bit rot — take the same typed rejection path a
  // genuinely corrupt section would.
  if (fault::ShouldFail("bundle.crc")) {
    return Status::InvalidArgument("checksum mismatch in section '" + tag +
                                   "' (injected fault at 'bundle.crc')");
  }
  const uint32_t actual = Crc32(payload, static_cast<size_t>(found->size));
  if (actual != found->crc32) {
    return Status::InvalidArgument(
        "checksum mismatch in section '" + tag + "': stored " +
        std::to_string(found->crc32) + ", computed " + std::to_string(actual));
  }
  return ByteReader(payload, static_cast<size_t>(found->size));
}

bool HasSection(const std::vector<RawSection>& sections, const std::string& tag) {
  for (const RawSection& s : sections) {
    if (s.tag == tag) return true;
  }
  return false;
}

// ---- leaf codecs -----------------------------------------------------------

void PutQuantParams(ByteWriter* w, const QuantParams& p) {
  w->PutF32(p.scale);
  w->PutI32(p.zero_point);
  w->PutI32(p.bits);
  w->PutU8(p.symmetric ? 1 : 0);
}

Status ReadQuantParams(ByteReader* r, QuantParams* p) {
  uint8_t symmetric = 0;
  MIXQ_RETURN_NOT_OK(r->ReadF32(&p->scale));
  MIXQ_RETURN_NOT_OK(r->ReadI32(&p->zero_point));
  MIXQ_RETURN_NOT_OK(r->ReadI32(&p->bits));
  MIXQ_RETURN_NOT_OK(r->ReadU8(&symmetric));
  if (symmetric > 1) {
    return Status::InvalidArgument("quantizer symmetric flag must be 0/1");
  }
  p->symmetric = symmetric == 1;
  if (p->bits < 1 || p->bits > 32) {
    return Status::InvalidArgument("quantizer bits " + std::to_string(p->bits) +
                                   " outside [1, 32]");
  }
  if (!std::isfinite(p->scale) || p->scale <= 0.0f) {
    return Status::InvalidArgument("quantizer scale must be finite and > 0");
  }
  return Status::OK();
}

void PutComponent(ByteWriter* w, const LoweredComponent& c) {
  w->PutU8(c.identity ? 1 : 0);
  PutQuantParams(w, c.params);
}

Status ReadComponent(ByteReader* r, LoweredComponent* c) {
  uint8_t identity = 0;
  MIXQ_RETURN_NOT_OK(r->ReadU8(&identity));
  if (identity > 1) {
    return Status::InvalidArgument("component identity flag must be 0/1");
  }
  c->identity = identity == 1;
  return ReadQuantParams(r, &c->params);
}

Status ReadCount(ByteReader* r, const char* what, int64_t max, int64_t* out) {
  int64_t v = 0;
  MIXQ_RETURN_NOT_OK(r->ReadI64(&v));
  if (v < 0 || v > max) {
    return Status::InvalidArgument(std::string(what) + " count " +
                                   std::to_string(v) + " outside [0, " +
                                   std::to_string(max) + "]");
  }
  *out = v;
  return Status::OK();
}

/// Validates a buffer id: kInput (when allowed) or a scratch index.
Status CheckBuffer(const char* what, int id, int num_buffers, bool allow_input) {
  if (allow_input && id == ExecutionPlan::kInput) return Status::OK();
  if (id < 0 || id >= num_buffers) {
    return Status::InvalidArgument(std::string(what) + " buffer id " +
                                   std::to_string(id) + " outside [0, " +
                                   std::to_string(num_buffers) + ")");
  }
  return Status::OK();
}

}  // namespace

// ---- ExecutionPlan codec ---------------------------------------------------

/// Friend of ExecutionPlan: serializes / reconstructs the private step lists.
/// Load paths validate every index and size against the plan's own bounds so
/// a CRC-valid but hand-crafted payload cannot drive the executors out of
/// range.
class ExecutionPlanCodec {
 public:
  static bool HasInt8(const ExecutionPlan& p) { return p.has_int8_; }

  static void SavePlan(const ExecutionPlan& p, ByteWriter* w) {
    w->PutI64(p.in_features_);
    w->PutI64(p.out_dim_);
    w->PutI32(p.num_buffers_);
    w->PutI32(p.final_buffer_);
    w->PutI64(static_cast<int64_t>(p.linears_.size()));
    for (const LoweredLinear& lin : p.linears_) {
      w->PutI64(lin.in);
      w->PutI64(lin.out);
      w->PutI64(lin.out_padded);
      PutQuantParams(w, lin.weight_params);
      w->PutPodVector(lin.weight_fq);
      w->PutPodVector(lin.bias);
      w->PutPodVector(lin.weight_q8);
      w->PutPodVector(lin.weight_packed);
    }
    w->PutI64(static_cast<int64_t>(p.adj_quants_.size()));
    for (const LoweredComponent& c : p.adj_quants_) PutComponent(w, c);
    w->PutI64(static_cast<int64_t>(p.steps_.size()));
    for (const ExecutionPlan::Step& st : p.steps_) {
      w->PutU8(static_cast<uint8_t>(st.op));
      w->PutI32(st.src);
      w->PutI32(st.src2);
      w->PutI32(st.dst);
      w->PutI32(st.linear);
      w->PutI32(st.adj);
      w->PutI64(st.cols);
      PutComponent(w, st.quant);
    }
  }

  static void SaveInt8(const ExecutionPlan& p, ByteWriter* w) {
    w->PutI32(p.int_final_buffer_);
    PutQuantParams(w, p.int_final_params_);
    w->PutI64(static_cast<int64_t>(p.int_steps_.size()));
    for (const ExecutionPlan::IntStep& st : p.int_steps_) {
      w->PutU8(static_cast<uint8_t>(st.op));
      w->PutI32(st.src);
      w->PutI32(st.src2);
      w->PutI32(st.dst);
      w->PutI32(st.linear);
      w->PutI32(st.adj);
      w->PutI64(st.cols);
      PutQuantParams(w, st.src_params);
      PutQuantParams(w, st.src2_params);
      PutQuantParams(w, st.out_params);
      w->PutPodVector(st.bias_over);
    }
  }

  static Result<std::unique_ptr<ExecutionPlan>> LoadPlan(ByteReader* r) {
    std::unique_ptr<ExecutionPlan> p(new ExecutionPlan());
    MIXQ_RETURN_NOT_OK(r->ReadI64(&p->in_features_));
    MIXQ_RETURN_NOT_OK(r->ReadI64(&p->out_dim_));
    MIXQ_RETURN_NOT_OK(r->ReadI32(&p->num_buffers_));
    MIXQ_RETURN_NOT_OK(r->ReadI32(&p->final_buffer_));
    if (p->in_features_ <= 0 || p->out_dim_ <= 0) {
      return Status::InvalidArgument("plan dimensions must be positive");
    }
    if (p->num_buffers_ < 1 || p->num_buffers_ > kMaxStructuralCount) {
      return Status::InvalidArgument("plan buffer count " +
                                     std::to_string(p->num_buffers_) +
                                     " is implausible");
    }
    MIXQ_RETURN_NOT_OK(
        CheckBuffer("final", p->final_buffer_, p->num_buffers_, false));

    int64_t n_linears = 0;
    MIXQ_RETURN_NOT_OK(ReadCount(r, "linear", kMaxStructuralCount, &n_linears));
    p->linears_.resize(static_cast<size_t>(n_linears));
    for (LoweredLinear& lin : p->linears_) {
      MIXQ_RETURN_NOT_OK(r->ReadI64(&lin.in));
      MIXQ_RETURN_NOT_OK(r->ReadI64(&lin.out));
      MIXQ_RETURN_NOT_OK(r->ReadI64(&lin.out_padded));
      MIXQ_RETURN_NOT_OK(ReadQuantParams(r, &lin.weight_params));
      MIXQ_RETURN_NOT_OK(r->ReadPodVector(&lin.weight_fq));
      MIXQ_RETURN_NOT_OK(r->ReadPodVector(&lin.bias));
      MIXQ_RETURN_NOT_OK(r->ReadPodVector(&lin.weight_q8));
      MIXQ_RETURN_NOT_OK(r->ReadPodVector(&lin.weight_packed));
      if (lin.in <= 0 || lin.out <= 0 || lin.out_padded < lin.out ||
          lin.in > kMaxStructuralCount || lin.out_padded > kMaxStructuralCount) {
        return Status::InvalidArgument("linear dimensions are inconsistent");
      }
      const uint64_t expect = static_cast<uint64_t>(lin.in) *
                              static_cast<uint64_t>(lin.out_padded);
      if (lin.weight_fq.size() != expect) {
        return Status::InvalidArgument(
            "linear weight buffer has " + std::to_string(lin.weight_fq.size()) +
            " floats, want " + std::to_string(expect));
      }
      if (!lin.bias.empty() &&
          lin.bias.size() != static_cast<size_t>(lin.out)) {
        return Status::InvalidArgument("linear bias size mismatch");
      }
      if (lin.weight_q8.empty() != lin.weight_packed.empty()) {
        return Status::InvalidArgument(
            "linear int8 weight buffers must be present together");
      }
      if (!lin.weight_q8.empty() &&
          (lin.weight_q8.size() != expect ||
           lin.weight_packed.size() !=
               static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded)))) {
        return Status::InvalidArgument("linear int8 weight size mismatch");
      }
    }

    int64_t n_adj = 0;
    MIXQ_RETURN_NOT_OK(ReadCount(r, "adjacency quantizer", kMaxStructuralCount,
                                 &n_adj));
    p->adj_quants_.resize(static_cast<size_t>(n_adj));
    for (LoweredComponent& c : p->adj_quants_) {
      MIXQ_RETURN_NOT_OK(ReadComponent(r, &c));
    }

    int64_t n_steps = 0;
    MIXQ_RETURN_NOT_OK(ReadCount(r, "step", kMaxStructuralCount, &n_steps));
    if (n_steps == 0) {
      return Status::InvalidArgument("plan has no steps");
    }
    p->steps_.resize(static_cast<size_t>(n_steps));
    for (ExecutionPlan::Step& st : p->steps_) {
      uint8_t op = 0;
      MIXQ_RETURN_NOT_OK(r->ReadU8(&op));
      if (op > static_cast<uint8_t>(ExecutionPlan::Op::kRelu)) {
        return Status::InvalidArgument("unknown plan op " + std::to_string(op));
      }
      st.op = static_cast<ExecutionPlan::Op>(op);
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.src));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.src2));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.dst));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.linear));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.adj));
      MIXQ_RETURN_NOT_OK(r->ReadI64(&st.cols));
      MIXQ_RETURN_NOT_OK(ReadComponent(r, &st.quant));
      if (st.cols <= 0 || st.cols > kMaxStructuralCount) {
        return Status::InvalidArgument("plan step width is implausible");
      }
      MIXQ_RETURN_NOT_OK(CheckBuffer("step src", st.src, p->num_buffers_, true));
      MIXQ_RETURN_NOT_OK(CheckBuffer("step dst", st.dst, p->num_buffers_, false));
      if (st.op == ExecutionPlan::Op::kAdd) {
        MIXQ_RETURN_NOT_OK(
            CheckBuffer("step src2", st.src2, p->num_buffers_, true));
      }
      if (st.op == ExecutionPlan::Op::kMatMul &&
          (st.linear < 0 || st.linear >= n_linears)) {
        return Status::InvalidArgument("step linear index out of range");
      }
      if (st.op == ExecutionPlan::Op::kSpmm && (st.adj < 0 || st.adj >= n_adj)) {
        return Status::InvalidArgument("step adjacency index out of range");
      }
    }
    if (r->remaining() != 0) {
      return Status::InvalidArgument("plan section has trailing bytes");
    }
    // Derived state (VNNI quad packing, requant constants) is recomputed, not
    // deserialized: the bundle format stays unchanged and crafted bytes can
    // never smuggle in kernels' folded constants that disagree with the
    // serialized quantizers.
    p->FinalizeDerived();
    return p;
  }

  static Status LoadInt8(ByteReader* r, ExecutionPlan* p) {
    MIXQ_RETURN_NOT_OK(r->ReadI32(&p->int_final_buffer_));
    MIXQ_RETURN_NOT_OK(ReadQuantParams(r, &p->int_final_params_));
    MIXQ_RETURN_NOT_OK(
        CheckBuffer("int final", p->int_final_buffer_, p->num_buffers_, false));
    int64_t n_steps = 0;
    MIXQ_RETURN_NOT_OK(ReadCount(r, "int step", kMaxStructuralCount, &n_steps));
    if (n_steps == 0) {
      return Status::InvalidArgument("int8 plan has no steps");
    }
    p->int_steps_.resize(static_cast<size_t>(n_steps));
    for (ExecutionPlan::IntStep& st : p->int_steps_) {
      uint8_t op = 0;
      MIXQ_RETURN_NOT_OK(r->ReadU8(&op));
      if (op > static_cast<uint8_t>(ExecutionPlan::IntOp::kRelu)) {
        return Status::InvalidArgument("unknown int8 plan op " +
                                       std::to_string(op));
      }
      st.op = static_cast<ExecutionPlan::IntOp>(op);
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.src));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.src2));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.dst));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.linear));
      MIXQ_RETURN_NOT_OK(r->ReadI32(&st.adj));
      MIXQ_RETURN_NOT_OK(r->ReadI64(&st.cols));
      MIXQ_RETURN_NOT_OK(ReadQuantParams(r, &st.src_params));
      MIXQ_RETURN_NOT_OK(ReadQuantParams(r, &st.src2_params));
      MIXQ_RETURN_NOT_OK(ReadQuantParams(r, &st.out_params));
      MIXQ_RETURN_NOT_OK(r->ReadPodVector(&st.bias_over));
      if (st.cols <= 0 || st.cols > kMaxStructuralCount) {
        return Status::InvalidArgument("int8 step width is implausible");
      }
      MIXQ_RETURN_NOT_OK(CheckBuffer("int step src", st.src, p->num_buffers_, true));
      MIXQ_RETURN_NOT_OK(
          CheckBuffer("int step dst", st.dst, p->num_buffers_, false));
      if (st.op == ExecutionPlan::IntOp::kAddRequant) {
        MIXQ_RETURN_NOT_OK(
            CheckBuffer("int step src2", st.src2, p->num_buffers_, true));
      }
      if (st.op == ExecutionPlan::IntOp::kGemmRequant) {
        if (st.linear < 0 ||
            st.linear >= static_cast<int>(p->linears_.size())) {
          return Status::InvalidArgument("int8 step linear index out of range");
        }
        const LoweredLinear& lin = p->linears_[static_cast<size_t>(st.linear)];
        if (lin.weight_packed.empty()) {
          return Status::InvalidArgument(
              "int8 step references a linear without packed int8 weights");
        }
        if (!st.bias_over.empty() &&
            st.bias_over.size() != static_cast<size_t>(lin.out)) {
          return Status::InvalidArgument("int8 step bias size mismatch");
        }
      }
      if (st.op == ExecutionPlan::IntOp::kSpmmRequant &&
          (st.adj < 0 || st.adj >= static_cast<int>(p->adj_quants_.size()))) {
        return Status::InvalidArgument("int8 step adjacency index out of range");
      }
    }
    if (r->remaining() != 0) {
      return Status::InvalidArgument("int8 plan section has trailing bytes");
    }
    p->has_int8_ = true;
    // The int steps' requant constants/emitters are derived state; recompute
    // now (idempotent — LoadPlan already rebuilt the weight packings) so the
    // verifier and the fused executors see a finalized plan.
    p->FinalizeDerived();
    return Status::OK();
  }
};

namespace {

// ---- INFO section ----------------------------------------------------------

void EncodeInfo(const CompiledModelInfo& info, NodeModelKind kind,
                ByteWriter* w) {
  w->PutU8(kind == NodeModelKind::kGcn ? 0 : 1);
  w->PutString(info.scheme_label);
  w->PutF64(info.avg_bits);
  w->PutI64(info.param_count);
  w->PutI64(info.in_features);
  w->PutI64(info.out_dim);
  w->PutU8(info.lowered_int8 ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(info.bit_assignment.size()));
  for (const auto& [id, bits] : info.bit_assignment) {
    w->PutString(id);
    w->PutI32(bits);
  }
}

Status DecodeInfo(ByteReader* r, CompiledModelInfo* info, NodeModelKind* kind) {
  uint8_t kind_raw = 0, int8_raw = 0;
  MIXQ_RETURN_NOT_OK(r->ReadU8(&kind_raw));
  if (kind_raw > 1) {
    return Status::InvalidArgument("unknown model kind " +
                                   std::to_string(kind_raw));
  }
  *kind = kind_raw == 0 ? NodeModelKind::kGcn : NodeModelKind::kSage;
  MIXQ_RETURN_NOT_OK(r->ReadString(&info->scheme_label));
  MIXQ_RETURN_NOT_OK(r->ReadF64(&info->avg_bits));
  MIXQ_RETURN_NOT_OK(r->ReadI64(&info->param_count));
  MIXQ_RETURN_NOT_OK(r->ReadI64(&info->in_features));
  MIXQ_RETURN_NOT_OK(r->ReadI64(&info->out_dim));
  MIXQ_RETURN_NOT_OK(r->ReadU8(&int8_raw));
  if (int8_raw > 1) {
    return Status::InvalidArgument("int8 flag must be 0/1");
  }
  info->lowered = true;  // only lowered models are bundled
  info->lowered_int8 = int8_raw == 1;
  uint32_t n_bits = 0;
  MIXQ_RETURN_NOT_OK(r->ReadU32(&n_bits));
  if (n_bits > kMaxStructuralCount) {
    return Status::InvalidArgument("bit assignment count is implausible");
  }
  for (uint32_t i = 0; i < n_bits; ++i) {
    std::string id;
    int32_t bits = 0;
    MIXQ_RETURN_NOT_OK(r->ReadString(&id));
    MIXQ_RETURN_NOT_OK(r->ReadI32(&bits));
    info->bit_assignment[id] = bits;
  }
  if (r->remaining() != 0) {
    return Status::InvalidArgument("INFO section has trailing bytes");
  }
  return Status::OK();
}

/// Loads + frames a bundle file and scans its sections; shared prologue of
/// every read entry point.
Status OpenBundle(const std::string& path, BundleKind* kind, uint16_t* major,
                  uint16_t* minor, std::vector<uint8_t>* bytes,
                  std::vector<RawSection>* sections) {
  MIXQ_RETURN_NOT_OK(ReadFileBytes(path, bytes));
  // Chaos hook: a bundle whose backing storage failed mid-read.
  MIXQ_RETURN_NOT_OK(fault::CheckPoint("bundle.read"));
  ByteReader reader(bytes->data(), bytes->size());
  MIXQ_RETURN_NOT_OK(ParseFileHeader(&reader, path, major, minor, kind));
  return ScanSections(&reader, sections);
}

}  // namespace

// ---- model bundles ---------------------------------------------------------

Status SaveBundle(const CompiledModel& model, const std::string& path) {
  if (model.plan_ == nullptr) {
    return Status::NotImplemented(
        "scheme '" + model.info_.scheme_label +
        "' does not lower to a flat execution plan (a2q and relaxed-search "
        "fallbacks replay the live training pipeline, which cannot be frozen "
        "into a bundle); train with a lowerable scheme to deploy offline");
  }
  ByteWriter file;
  AppendFileHeader(&file, BundleKind::kModel);

  ByteWriter info;
  EncodeInfo(model.info_, model.model_kind_, &info);
  AppendSection(&file, "INFO", info);

  ByteWriter plan;
  ExecutionPlanCodec::SavePlan(*model.plan_, &plan);
  AppendSection(&file, "PLAN", plan);

  if (ExecutionPlanCodec::HasInt8(*model.plan_)) {
    ByteWriter int8;
    ExecutionPlanCodec::SaveInt8(*model.plan_, &int8);
    AppendSection(&file, "IPLN", int8);
  }
  return WriteFileAtomic(path, file.buffer());
}

Result<CompiledModelPtr> LoadBundle(const std::string& path) {
  BundleKind kind;
  uint16_t major = 0, minor = 0;
  std::vector<uint8_t> bytes;
  std::vector<RawSection> sections;
  MIXQ_RETURN_NOT_OK(OpenBundle(path, &kind, &major, &minor, &bytes, &sections));
  if (kind != BundleKind::kModel) {
    return Status::InvalidArgument("'" + path +
                                   "' is a graph bundle, not a model bundle");
  }

  Result<ByteReader> info_r = OpenSection(bytes, sections, "INFO");
  if (!info_r.ok()) return info_r.status();
  CompiledModelInfo info;
  NodeModelKind model_kind = NodeModelKind::kGcn;
  MIXQ_RETURN_NOT_OK(DecodeInfo(&info_r.ValueOrDie(), &info, &model_kind));

  Result<ByteReader> plan_r = OpenSection(bytes, sections, "PLAN");
  if (!plan_r.ok()) return plan_r.status();
  Result<std::unique_ptr<ExecutionPlan>> plan =
      ExecutionPlanCodec::LoadPlan(&plan_r.ValueOrDie());
  if (!plan.ok()) return plan.status();

  if (info.lowered_int8 != HasSection(sections, "IPLN")) {
    return Status::InvalidArgument(
        "'" + path + "' metadata disagrees with its sections: int8 plan " +
        (info.lowered_int8 ? "declared but missing" : "present but undeclared"));
  }
  if (info.lowered_int8) {
    Result<ByteReader> int8_r = OpenSection(bytes, sections, "IPLN");
    if (!int8_r.ok()) return int8_r.status();
    MIXQ_RETURN_NOT_OK(
        ExecutionPlanCodec::LoadInt8(&int8_r.ValueOrDie(), plan.ValueOrDie().get()));
  }
  const ExecutionPlan& loaded = *plan.ValueOrDie();
  if (loaded.in_features() != info.in_features ||
      loaded.out_dim() != info.out_dim) {
    return Status::InvalidArgument(
        "'" + path + "' metadata disagrees with its plan: INFO says " +
        std::to_string(info.in_features) + "->" + std::to_string(info.out_dim) +
        ", plan is " + std::to_string(loaded.in_features()) + "->" +
        std::to_string(loaded.out_dim()));
  }

  // Unconditional static verification — bundle bytes are untrusted. The
  // codec above validated field-local structure; this pass validates the
  // program's global semantics (dataflow, shape chaining, quantizer grids)
  // so no plan that could drive an executor out of bounds ever reaches one.
  // A CRC-consistent but semantically broken bundle lands here.
  PlanShapes shapes;
  shapes.in_features = info.in_features;
  shapes.out_dim = info.out_dim;
  Status verified = VerifyPlan(loaded, shapes);
  if (!verified.ok()) {
    return Status::InvalidArgument("'" + path + "' holds an invalid plan: " +
                                   verified.message());
  }

  // Value-range analysis, also unconditional: a structurally valid plan can
  // still drive an int32 accumulator over the edge (huge K, full-scale
  // codes) or carry non-finite frozen constants. Rejecting here means no
  // loaded model ever serves without a certificate.
  Result<PlanRangeCertificate> cert = AnalyzePlanRanges(loaded);
  if (!cert.ok()) {
    return Status::InvalidArgument("'" + path +
                                   "' holds a plan that fails range "
                                   "analysis: " + cert.status().message());
  }

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->info_ = std::move(info);
  model->model_kind_ = model_kind;
  model->plan_ = std::move(plan.ValueOrDie());
  model->range_cert_ =
      std::make_unique<const PlanRangeCertificate>(cert.MoveValueOrDie());
  // No live net / scheme: Predict and friends run the plan; the reference
  // replay reports kNotImplemented. The mutex exists only so the member is
  // never null.
  model->forward_mu_ = std::make_shared<std::mutex>();
  return CompiledModelPtr(model);
}

std::vector<BundleCheck> VerifyBundleFile(const std::string& path) {
  std::vector<BundleCheck> out;
  BundleKind kind;
  uint16_t major = 0, minor = 0;
  std::vector<uint8_t> bytes;
  std::vector<RawSection> sections;
  Status header =
      OpenBundle(path, &kind, &major, &minor, &bytes, &sections);
  out.push_back({"header", header});
  if (!header.ok()) return out;

  // Per-section CRC verdicts, in file order (OpenSection also rejects
  // duplicate tags, which a plain load of a forward-compatible file with
  // trailing unknown sections would skip over).
  for (const RawSection& s : sections) {
    Result<ByteReader> r = OpenSection(bytes, sections, s.tag);
    out.push_back({s.tag, r.ok() ? Status::OK() : r.status()});
    if (!r.ok()) return out;
  }

  if (kind == BundleKind::kGraph) {
    Result<GraphBundle> graph = LoadGraph(path);
    out.push_back({"decode", graph.ok() ? Status::OK() : graph.status()});
    if (!graph.ok()) return out;
    // Value invariants of the served graph: finite adjacency (non-finite
    // entries would quantize through the emitter's NaN branch) and finite
    // features (they feed the fp32 walk's unbounded input).
    Status values = [&]() -> Status {
      const GraphBundle& g = graph.ValueOrDie();
      GraphRangeBounds bounds = ComputeGraphRangeBounds(*g.op);
      if (!bounds.values_finite) {
        return Status::InvalidArgument(
            "adjacency holds non-finite stored values");
      }
      for (float v : g.features.data()) {
        if (!std::isfinite(v)) {
          return Status::InvalidArgument("features hold non-finite values");
        }
      }
      return Status::OK();
    }();
    out.push_back({"values", values});
    return out;
  }

  // Model bundle: semantic decode first (reported as one verdict), then the
  // static plan verifier as its own verdict so a bad program is
  // distinguishable from malformed bytes.
  CompiledModelInfo info;
  NodeModelKind model_kind = NodeModelKind::kGcn;
  std::unique_ptr<ExecutionPlan> plan;
  Status decode = [&]() -> Status {
    Result<ByteReader> info_r = OpenSection(bytes, sections, "INFO");
    if (!info_r.ok()) return info_r.status();
    MIXQ_RETURN_NOT_OK(DecodeInfo(&info_r.ValueOrDie(), &info, &model_kind));
    Result<ByteReader> plan_r = OpenSection(bytes, sections, "PLAN");
    if (!plan_r.ok()) return plan_r.status();
    Result<std::unique_ptr<ExecutionPlan>> loaded =
        ExecutionPlanCodec::LoadPlan(&plan_r.ValueOrDie());
    if (!loaded.ok()) return loaded.status();
    plan = loaded.MoveValueOrDie();
    if (info.lowered_int8 != HasSection(sections, "IPLN")) {
      return Status::InvalidArgument(
          "metadata disagrees with sections: int8 plan " +
          std::string(info.lowered_int8 ? "declared but missing"
                                        : "present but undeclared"));
    }
    if (info.lowered_int8) {
      Result<ByteReader> int8_r = OpenSection(bytes, sections, "IPLN");
      if (!int8_r.ok()) return int8_r.status();
      MIXQ_RETURN_NOT_OK(
          ExecutionPlanCodec::LoadInt8(&int8_r.ValueOrDie(), plan.get()));
    }
    if (plan->in_features() != info.in_features ||
        plan->out_dim() != info.out_dim) {
      return Status::InvalidArgument(
          "metadata disagrees with plan dims: INFO says " +
          std::to_string(info.in_features) + "->" +
          std::to_string(info.out_dim) + ", plan is " +
          std::to_string(plan->in_features()) + "->" +
          std::to_string(plan->out_dim()));
    }
    return Status::OK();
  }();
  out.push_back({"decode", decode});
  if (!decode.ok()) return out;

  PlanShapes shapes;
  shapes.in_features = info.in_features;
  shapes.out_dim = info.out_dim;
  Status plan_ok = VerifyPlan(*plan, shapes);
  out.push_back({"plan", plan_ok});
  if (!plan_ok.ok()) return out;

  // The range prover as its own verdict: structural validity does not imply
  // value safety, and lint consumers want to see which theorem failed.
  Result<PlanRangeCertificate> cert = AnalyzePlanRanges(*plan);
  out.push_back({"ranges", cert.ok() ? Status::OK() : cert.status()});
  return out;
}

std::string FormatCheckReportJson(const CheckReport& report) {
  using json::AppendJsonString;
  using json::StatusCodeJsonName;
  bool clean = true;
  for (const BundleCheck& c : report.checks) clean = clean && c.status.ok();
  std::string out = "{\"subject\": ";
  AppendJsonString(report.subject, &out);
  out += ", \"clean\": ";
  out += clean ? "true" : "false";
  out += ", \"checks\": [";
  for (size_t i = 0; i < report.checks.size(); ++i) {
    const BundleCheck& c = report.checks[i];
    if (i != 0) out += ", ";
    out += "{\"section\": ";
    AppendJsonString(c.section, &out);
    out += ", \"code\": ";
    AppendJsonString(StatusCodeJsonName(c.status.code()), &out);
    out += ", \"message\": ";
    AppendJsonString(c.status.message(), &out);
    out += "}";
  }
  out += "]}";
  return out;
}

// ---- graph bundles ---------------------------------------------------------

Status SaveGraph(const Tensor& features, const SparseOperatorPtr& op,
                 const std::string& path) {
  if (!features.defined()) {
    return Status::InvalidArgument("graph bundle needs defined features");
  }
  if (op == nullptr) {
    return Status::InvalidArgument("graph bundle needs a non-null operator");
  }
  if (op->matrix().cols() != features.rows()) {
    return Status::InvalidArgument(
        "operator/features mismatch: operator has " +
        std::to_string(op->matrix().cols()) + " columns, features " +
        std::to_string(features.rows()) + " rows");
  }
  const CsrMatrix& m = op->matrix();
  ByteWriter file;
  AppendFileHeader(&file, BundleKind::kGraph);

  ByteWriter meta;
  meta.PutI64(features.rows());
  meta.PutI64(features.cols());
  meta.PutI64(m.nnz());
  meta.PutI64(m.rows());
  meta.PutI64(m.cols());
  AppendSection(&file, "GMET", meta);

  ByteWriter csr;
  csr.PutI64(m.rows());
  csr.PutI64(m.cols());
  csr.PutPodVector(m.row_ptr());
  csr.PutPodVector(m.col_idx());
  csr.PutPodVector(m.values());
  AppendSection(&file, "CSRM", csr);

  ByteWriter feat;
  feat.PutI64(features.rows());
  feat.PutI64(features.cols());
  feat.PutPodVector(features.data());
  AppendSection(&file, "FEAT", feat);
  return WriteFileAtomic(path, file.buffer());
}

Result<GraphBundle> LoadGraph(const std::string& path) {
  BundleKind kind;
  uint16_t major = 0, minor = 0;
  std::vector<uint8_t> bytes;
  std::vector<RawSection> sections;
  MIXQ_RETURN_NOT_OK(OpenBundle(path, &kind, &major, &minor, &bytes, &sections));
  if (kind != BundleKind::kGraph) {
    return Status::InvalidArgument("'" + path +
                                   "' is a model bundle, not a graph bundle");
  }

  Result<ByteReader> meta_r = OpenSection(bytes, sections, "GMET");
  if (!meta_r.ok()) return meta_r.status();
  int64_t meta_nodes = 0, meta_dim = 0, meta_nnz = 0, meta_rows = 0, meta_cols = 0;
  {
    ByteReader& r = meta_r.ValueOrDie();
    MIXQ_RETURN_NOT_OK(r.ReadI64(&meta_nodes));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&meta_dim));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&meta_nnz));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&meta_rows));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&meta_cols));
  }

  Result<ByteReader> csr_r = OpenSection(bytes, sections, "CSRM");
  if (!csr_r.ok()) return csr_r.status();
  int64_t rows = 0, cols = 0;
  std::vector<int64_t> row_ptr, col_idx;
  std::vector<float> values;
  {
    ByteReader& r = csr_r.ValueOrDie();
    MIXQ_RETURN_NOT_OK(r.ReadI64(&rows));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&cols));
    MIXQ_RETURN_NOT_OK(r.ReadPodVector(&row_ptr));
    MIXQ_RETURN_NOT_OK(r.ReadPodVector(&col_idx));
    MIXQ_RETURN_NOT_OK(r.ReadPodVector(&values));
  }
  Result<CsrMatrix> matrix = CsrMatrix::FromParts(rows, cols, std::move(row_ptr),
                                                  std::move(col_idx),
                                                  std::move(values));
  if (!matrix.ok()) return matrix.status();

  Result<ByteReader> feat_r = OpenSection(bytes, sections, "FEAT");
  if (!feat_r.ok()) return feat_r.status();
  int64_t feat_rows = 0, feat_cols = 0;
  std::vector<float> feat_data;
  {
    ByteReader& r = feat_r.ValueOrDie();
    MIXQ_RETURN_NOT_OK(r.ReadI64(&feat_rows));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&feat_cols));
    MIXQ_RETURN_NOT_OK(r.ReadPodVector(&feat_data));
  }
  // Division, not multiplication: feat_rows * feat_cols on untrusted values
  // can wrap and "match" an empty payload for a huge claimed shape.
  const bool feat_shape_ok =
      feat_rows >= 0 && feat_cols >= 0 &&
      (feat_cols == 0
           ? feat_data.empty()
           : feat_data.size() % static_cast<uint64_t>(feat_cols) == 0 &&
                 feat_data.size() / static_cast<uint64_t>(feat_cols) ==
                     static_cast<uint64_t>(feat_rows));
  if (!feat_shape_ok) {
    return Status::InvalidArgument("feature matrix dimensions disagree with data");
  }

  const CsrMatrix& m = matrix.ValueOrDie();
  if (meta_nodes != feat_rows || meta_dim != feat_cols || meta_nnz != m.nnz() ||
      meta_rows != m.rows() || meta_cols != m.cols()) {
    return Status::InvalidArgument("'" + path +
                                   "' GMET metadata disagrees with its payload");
  }
  if (m.cols() != feat_rows) {
    return Status::InvalidArgument(
        "operator/features mismatch in '" + path + "': operator has " +
        std::to_string(m.cols()) + " columns, features " +
        std::to_string(feat_rows) + " rows");
  }

  GraphBundle bundle;
  bundle.features = Tensor::FromVector(Shape(feat_rows, feat_cols),
                                       std::move(feat_data));
  bundle.op = MakeOperator(matrix.MoveValueOrDie());
  return bundle;
}

// ---- logit digests ---------------------------------------------------------

std::string FormatLogitDigestLine(const std::string& mode, uint64_t digest) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(digest));
  return mode + " " + hex + "\n";
}

bool FindLogitDigest(const std::string& text, const std::string& mode,
                     uint64_t* digest) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.rfind(mode + " ", 0) == 0) {
      *digest = std::strtoull(line.c_str() + mode.size() + 1, nullptr, 16);
      return true;
    }
    pos = eol + 1;
  }
  return false;
}

// ---- inspection ------------------------------------------------------------

Result<BundleManifest> InspectBundle(const std::string& path) {
  BundleManifest manifest;
  BundleKind kind;
  std::vector<uint8_t> bytes;
  std::vector<RawSection> sections;
  MIXQ_RETURN_NOT_OK(OpenBundle(path, &kind, &manifest.format_major,
                                &manifest.format_minor, &bytes, &sections));
  manifest.kind = kind;
  manifest.file_bytes = bytes.size();
  for (const RawSection& s : sections) {
    BundleSection out;
    out.tag = s.tag;
    out.offset = s.offset;
    out.size = s.size;
    out.crc32 = s.crc32;
    manifest.sections.push_back(std::move(out));
  }
  if (kind == BundleKind::kModel) {
    Result<ByteReader> info_r = OpenSection(bytes, sections, "INFO");
    if (!info_r.ok()) return info_r.status();
    MIXQ_RETURN_NOT_OK(
        DecodeInfo(&info_r.ValueOrDie(), &manifest.info, &manifest.model_kind));
  } else {
    Result<ByteReader> meta_r = OpenSection(bytes, sections, "GMET");
    if (!meta_r.ok()) return meta_r.status();
    ByteReader& r = meta_r.ValueOrDie();
    int64_t op_rows = 0, op_cols = 0;
    MIXQ_RETURN_NOT_OK(r.ReadI64(&manifest.graph_nodes));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&manifest.feature_dim));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&manifest.graph_nnz));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&op_rows));
    MIXQ_RETURN_NOT_OK(r.ReadI64(&op_cols));
  }
  return manifest;
}

}  // namespace engine
}  // namespace mixq
