// Copyright 2026 MixQ-GNN Authors
// CompiledModel — the deployment artifact of the third API layer
// (SchemeRegistry → Experiment → engine).
//
// CompileModel() takes the ModelArtifact of a finished node-level Experiment
// (trained network + final quantization scheme) and freezes it: parameters
// stop requiring gradients, the network is pinned to eval mode, and the
// selected per-component bit assignment plus quantizer ranges are captured
// as immutable metadata. On top of that, compilation runs a lowering pass
// (engine/execution_plan.h): when the scheme's eval behaviour is a fixed
// per-tensor transform, the model carries a flat autograd-free ExecutionPlan
// with weights quantized once at compile time.
//
// Predict() executes that plan **without any lock** — concurrent requests
// scale across cores, each using its own (reusable) scratch — and returns
// logits bitwise identical to the eval-mode forward of the training
// pipeline. PredictReference() keeps the original pipeline-replay path
// (mutex-serialized) as the parity oracle, and is also what Predict falls
// back to for schemes the lowering can't express (e.g. A2Q's per-node
// scales). PredictQuantized() runs the all-integer executor when available.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/experiment.h"
#include "engine/execution_plan.h"
#include "engine/frontier_plan.h"
#include "engine/plan_analysis.h"
#include "sparse/spmm.h"
#include "tensor/tensor.h"

namespace mixq {
namespace engine {

/// Immutable description of a compiled model (reported by the engine's
/// introspection endpoints and result tables).
struct CompiledModelInfo {
  std::string scheme_label;                   ///< e.g. "MixQ(l=0.1)"
  std::map<std::string, int> bit_assignment;  ///< frozen per-component widths
  double avg_bits = 32.0;     ///< ops-weighted average width (32 = FP32)
  int64_t param_count = 0;    ///< learnable scalars frozen into the model
  int64_t in_features = 0;    ///< expected feature dimension of Predict input
  int64_t out_dim = 0;        ///< logit dimension
  bool lowered = false;       ///< Predict runs the lock-free ExecutionPlan
  bool lowered_int8 = false;  ///< PredictQuantized (all-integer) available
};

/// Reusable per-thread workspace for Predict/PredictQuantized. Passing one
/// across requests avoids re-allocating activation buffers; a
/// default-constructed scratch is always valid.
struct PredictScratch {
  ExecutionPlan::Scratch plan;
};

class CompiledModel;
using CompiledModelPtr = std::shared_ptr<const CompiledModel>;

/// A frozen, serving-ready quantized GNN.
class CompiledModel {
 public:
  /// Runs one eval-mode forward over a graph: `features` is [n, in_features],
  /// `op` the matching normalized sparse operator (GCN-normalized for GCN
  /// backbones, row-normalized for SAGE — as produced by the training
  /// pipeline). Returns [n, out_dim] logits, bitwise identical to
  /// PredictReference. Lock-free when info().lowered; thread-safe always.
  Result<Tensor> Predict(const Tensor& features, const SparseOperatorPtr& op) const;
  /// Same, reusing caller-owned scratch buffers across requests. `scratch`
  /// must not be shared between concurrent callers.
  Result<Tensor> Predict(const Tensor& features, const SparseOperatorPtr& op,
                         PredictScratch* scratch) const;

  /// The all-integer executor: int8 activations and weights, int8-blocked
  /// GEMM, Theorem-1 fused SpMM. Logits agree with PredictReference up to
  /// rounding ties on each requantization (bounded by the component
  /// quantization steps), not bitwise. kNotImplemented when
  /// !info().lowered_int8.
  Result<Tensor> PredictQuantized(const Tensor& features,
                                  const SparseOperatorPtr& op) const;
  Result<Tensor> PredictQuantized(const Tensor& features, const SparseOperatorPtr& op,
                                  PredictScratch* scratch) const;

  /// The original pipeline-replay path: rebuilds the autograd graph and
  /// re-fake-quantizes on every call, serialized on the artifact's forward
  /// mutex. Kept as the parity oracle and as the fallback for schemes the
  /// lowering can't express. kNotImplemented on bundle-loaded models (the
  /// live network/scheme never leave the training process).
  Result<Tensor> PredictReference(const Tensor& features,
                                  const SparseOperatorPtr& op) const;

  /// Builds the receptive-field pruning program for serving only `targets`
  /// (sorted unique node ids, all within `op`'s row range) over `op` —
  /// the per-request analysis behind the batcher's pruned routing. Returns
  /// nullptr when the model has no lowered plan (or no int8 plan when
  /// `int8`), or when the targets' receptive field would cost >=
  /// `max_cost_fraction` of the full forward (serve full-graph instead;
  /// that path also feeds the result cache). `ws` may be null; the engine
  /// passes the registered graph's pinned workspace.
  std::unique_ptr<FrontierProgram> BuildFrontierProgram(
      const SparseOperatorPtr& op, std::vector<int64_t> targets, bool int8,
      FrontierWorkspace* ws, double max_cost_fraction) const;

  /// Executes a program from BuildFrontierProgram over the full feature
  /// matrix: returns [targets.size(), out_dim] logits, row i = node
  /// targets()[i]. Fp32 programs are bitwise identical to the same rows of
  /// Predict; int8 programs to the same rows of PredictQuantized. The
  /// program must have been built against an operator consistent with
  /// `features` (same graph).
  Result<Tensor> PredictPruned(const Tensor& features,
                               const FrontierProgram& program,
                               PredictScratch* scratch) const;

  const CompiledModelInfo& info() const { return info_; }

  /// The lowered plan, for introspection and independent re-verification
  /// (engine/plan_verifier.h); null when the scheme is not lowerable.
  const ExecutionPlan* plan() const { return plan_.get(); }

  /// The range prover's certificate for plan() (engine/plan_analysis.h):
  /// per-step accumulator bounds plus the symbolic graph depth budget that
  /// PredictQuantized and the batcher check each operator against. Null when
  /// there is no plan or the analysis did not accept it — in which case int8
  /// serving is disabled with a typed error (bundle loads reject such plans
  /// outright; CompileModel leaves the fp32 paths available).
  const PlanRangeCertificate* range_certificate() const {
    return range_cert_.get();
  }

 private:
  friend Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact);
  // Bundle save/load (engine/model_bundle.h): serialization reads the plan,
  // deserialization rebuilds a plan-only model (no live net/scheme).
  friend Status SaveBundle(const CompiledModel& model, const std::string& path);
  friend Result<CompiledModelPtr> LoadBundle(const std::string& path);

  CompiledModel() = default;

  Status ValidateRequest(const Tensor& features, const SparseOperatorPtr& op) const;

  CompiledModelInfo info_;
  NodeModelKind model_kind_ = NodeModelKind::kGcn;
  std::shared_ptr<GcnNet> gcn_;
  std::shared_ptr<SageNet> sage_;
  QuantSchemePtr scheme_;
  /// Lock-free lowered plan; null when the scheme is not lowerable.
  std::unique_ptr<const ExecutionPlan> plan_;
  /// Value-range certificate for plan_; null iff the analysis failed (or no
  /// plan). See range_certificate().
  std::unique_ptr<const PlanRangeCertificate> range_cert_;
  /// The artifact's lock — shared with sibling compiles of the same nets;
  /// reference forwards mutate transient tensor state.
  std::shared_ptr<std::mutex> forward_mu_;
};

/// Freezes a trained node-level artifact (from ExperimentReport::artifact
/// with keep_artifact set) into an immutable CompiledModel. Fails with
/// kInvalidArgument when the artifact is incomplete (no network / no
/// scheme). The artifact's network is adopted: callers must not keep
/// training it afterwards.
Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact);

}  // namespace engine
}  // namespace mixq
