// Copyright 2026 MixQ-GNN Authors
// CompiledModel — the deployment artifact of the third API layer
// (SchemeRegistry → Experiment → engine).
//
// CompileModel() takes the ModelArtifact of a finished node-level Experiment
// (trained network + final quantization scheme) and freezes it: parameters
// stop requiring gradients, the network is pinned to eval mode, and the
// selected per-component bit assignment plus quantizer ranges are captured
// as immutable metadata. The result answers Predict(features, op) with
// logits that are bitwise identical to the eval-mode forward pass of the
// training pipeline — the experiment/deployment contract the engine tests
// assert.
//
// Thread safety: a CompiledModel serializes its forward passes on the
// artifact's shared forward mutex (the autograd-capable tensors underneath
// are not re-entrant), so any number of threads may call Predict() on the
// same instance — or on several CompiledModels compiled from one artifact.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/experiment.h"
#include "sparse/spmm.h"
#include "tensor/tensor.h"

namespace mixq {
namespace engine {

/// Immutable description of a compiled model (reported by the engine's
/// introspection endpoints and result tables).
struct CompiledModelInfo {
  std::string scheme_label;                   ///< e.g. "MixQ(l=0.1)"
  std::map<std::string, int> bit_assignment;  ///< frozen per-component widths
  double avg_bits = 32.0;     ///< ops-weighted average width (32 = FP32)
  int64_t param_count = 0;    ///< learnable scalars frozen into the model
  int64_t in_features = 0;    ///< expected feature dimension of Predict input
  int64_t out_dim = 0;        ///< logit dimension
};

class CompiledModel;
using CompiledModelPtr = std::shared_ptr<const CompiledModel>;

/// A frozen, serving-ready quantized GNN.
class CompiledModel {
 public:
  /// Runs one eval-mode forward over a graph: `features` is [n, in_features],
  /// `op` the matching normalized sparse operator (GCN-normalized for GCN
  /// backbones, row-normalized for SAGE — as produced by the training
  /// pipeline). Returns [n, out_dim] logits. Validates shapes; thread-safe.
  Result<Tensor> Predict(const Tensor& features, const SparseOperatorPtr& op) const;

  const CompiledModelInfo& info() const { return info_; }

 private:
  friend Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact);

  CompiledModel() = default;

  CompiledModelInfo info_;
  NodeModelKind model_kind_ = NodeModelKind::kGcn;
  std::shared_ptr<GcnNet> gcn_;
  std::shared_ptr<SageNet> sage_;
  QuantSchemePtr scheme_;
  /// The artifact's lock — shared with sibling compiles of the same nets;
  /// forwards mutate transient tensor state.
  std::shared_ptr<std::mutex> forward_mu_;
};

/// Freezes a trained node-level artifact (from ExperimentReport::artifact
/// with keep_artifact set) into an immutable CompiledModel. Fails with
/// kInvalidArgument when the artifact is incomplete (no network / no
/// scheme). The artifact's network is adopted: callers must not keep
/// training it afterwards.
Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact);

}  // namespace engine
}  // namespace mixq
