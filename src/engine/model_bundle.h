// Copyright 2026 MixQ-GNN Authors
// Portable model bundles — train once, serve from any process.
//
// A bundle is a single little-endian binary file that freezes everything a
// serving process needs and nothing it doesn't: SaveBundle() serializes a
// CompiledModel's metadata (CompiledModelInfo + backbone kind), its lowered
// fp32 ExecutionPlan — step list, pre-quantized weight tensors, adjacency
// quantizers — and, when present, the all-integer int8 plan. LoadBundle()
// reconstructs a CompiledModel whose Predict / PredictQuantized /
// PredictPruned are **bitwise identical** to the in-process original: every
// float/int buffer round-trips bit-for-bit, and the executors are the same
// code. What does NOT travel is the live training pipeline — schemes whose
// serving falls back to pipeline replay (a2q, relaxed-search fallbacks)
// return kNotImplemented from SaveBundle, and PredictReference on a loaded
// model reports kNotImplemented.
//
// Graph bundles (SaveGraph/LoadGraph) do the same for a serving graph: the
// normalized CSR operator exactly as served plus the node feature matrix, so
// a deployment process links zero training or normalization code.
//
// Wire format (DESIGN.md §5 has the normative description):
//
//   header   := magic "MIXQBNDL" | u16 major | u16 minor | u32 kind
//   section  := tag[4] | u64 payload_size | u32 crc32(payload) | payload
//   file     := header section*
//
// Model bundles carry sections INFO, PLAN, and (iff the int8 lowering
// exists) IPLN; graph bundles carry GMET, CSRM, FEAT. Compatibility rule:
// a reader rejects major versions newer than its own (kNotImplemented),
// accepts any minor, and skips unknown sections — future minors may append
// trailing sections without breaking old readers. Load paths are hardened:
// truncation (kOutOfRange), bad magic / wrong kind / structural corruption /
// CRC mismatch (kInvalidArgument), and missing files (kNotFound) all come
// back as typed Status errors, never asserts or UB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/compiled_model.h"
#include "sparse/spmm.h"
#include "tensor/tensor.h"

namespace mixq {
namespace engine {

/// Format version written by this binary. Bump the major for incompatible
/// layout changes, the minor when only appending new (skippable) sections.
constexpr uint16_t kBundleFormatMajor = 1;
constexpr uint16_t kBundleFormatMinor = 0;

/// What a bundle file holds.
enum class BundleKind : uint32_t { kModel = 1, kGraph = 2 };

/// One section as listed in a bundle's manifest. `crc32` is the stored
/// checksum (verified against the payload when the section is read).
struct BundleSection {
  std::string tag;      ///< FourCC, e.g. "PLAN"
  uint64_t offset = 0;  ///< payload offset within the file
  uint64_t size = 0;    ///< payload bytes
  uint32_t crc32 = 0;
};

/// Everything mixq_inspect prints: parsed header plus the small metadata
/// section, without touching the weight payloads.
struct BundleManifest {
  uint16_t format_major = 0;
  uint16_t format_minor = 0;
  BundleKind kind = BundleKind::kModel;
  uint64_t file_bytes = 0;
  std::vector<BundleSection> sections;

  /// Model bundles: the frozen info (scheme label, bit assignment, dims).
  CompiledModelInfo info;
  NodeModelKind model_kind = NodeModelKind::kGcn;

  /// Graph bundles: dimensions from the GMET section.
  int64_t graph_nodes = 0;
  int64_t feature_dim = 0;
  int64_t graph_nnz = 0;
};

/// Serializes `model` to `path` (atomic replace). kNotImplemented when the
/// model has no lowered plan — a2q and relaxed-search fallbacks serve
/// through the live pipeline replay, which cannot be frozen into a file;
/// train with a lowerable scheme (fp32/qat/dq/fixed/random/mixq) to deploy
/// offline.
Status SaveBundle(const CompiledModel& model, const std::string& path);

/// Reads a model bundle back into a serving-ready CompiledModel. The loaded
/// model's Predict/PredictQuantized/PredictPruned are bitwise identical to
/// the saved model's; PredictReference is unavailable (kNotImplemented).
Result<CompiledModelPtr> LoadBundle(const std::string& path);

/// A deserialized serving graph, ready for InferenceEngine::RegisterGraph.
struct GraphBundle {
  Tensor features;
  SparseOperatorPtr op;
};

/// Serializes a serving graph — the normalized operator exactly as served
/// (no re-normalization on load) plus node features. kInvalidArgument on
/// undefined features, null operator, or operator/features row mismatch.
Status SaveGraph(const Tensor& features, const SparseOperatorPtr& op,
                 const std::string& path);

/// Reads a graph bundle back; CSR arrays and feature values round-trip
/// bit-for-bit (validated by CsrMatrix::FromParts before use).
Result<GraphBundle> LoadGraph(const std::string& path);

/// The logit-digest file grammar shared by the compiling process
/// (tools/mixq_compile writes one "mode <fnv1a64 hex>" line per served
/// mode) and deployments verifying cross-process parity
/// (examples/offline_deploy). Keeping writer and reader in one place means
/// a format change cannot silently break the parity check.
std::string FormatLogitDigestLine(const std::string& mode, uint64_t digest);
/// Extracts the digest recorded for `mode`; false when the text has no
/// such line.
bool FindLogitDigest(const std::string& text, const std::string& mode,
                     uint64_t* digest);

/// Parses a bundle's header, section table, and small metadata section
/// (INFO / GMET) — skipping weight and feature payloads — so a manifest can
/// be printed without the memory or time to load the artifact. Sections
/// that are read get their CRC verified; skipped payloads only have their
/// stored checksum reported.
Result<BundleManifest> InspectBundle(const std::string& path);

/// One verdict from VerifyBundleFile: `section` names what was checked
/// ("header", a section FourCC for its CRC, "decode" for the semantic
/// deserialization, "plan" for the static plan verifier, "ranges" for the
/// value-range prover, "values" for graph value invariants).
struct BundleCheck {
  std::string section;
  Status status;
};

/// Runs every check a load would (mixq_inspect --verify, mixq_lint): header
/// + section table parse, per-section CRC, full semantic decode, then — for
/// model bundles — the static plan verifier (engine/plan_verifier.h) and
/// the value-range prover (engine/plan_analysis.h); for graph bundles, the
/// value invariants (finite adjacency + features). Returns the verdicts in
/// check order, stopping at the first failure; a fully valid bundle yields
/// all-OK entries.
std::vector<BundleCheck> VerifyBundleFile(const std::string& path);

/// The machine-readable check report shared by `mixq_lint --json` and
/// `mixq_inspect --verify --json`, so CI and external tooling parse ONE
/// format. `subject` is the checked artifact ("model.mqb", or a synthetic
/// name like "model.mqb + graph.mqb" for pairing checks).
struct CheckReport {
  std::string subject;
  std::vector<BundleCheck> checks;
};

/// Renders one report as a JSON object:
///   {"subject": "...", "clean": true,
///    "checks": [{"section": "...", "code": "ok", "message": ""}, ...]}
/// Status codes use snake_case names ("ok", "invalid_argument", ...);
/// strings are JSON-escaped. Stable under `minor` format additions — new
/// check sections only append array entries.
std::string FormatCheckReportJson(const CheckReport& report);

}  // namespace engine
}  // namespace mixq
