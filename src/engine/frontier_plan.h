// Copyright 2026 MixQ-GNN Authors
// FrontierProgram — the receptive-field pruning of one ExecutionPlan run.
//
// A full-graph forward computes logits for every node; a point query needs
// a handful of rows. Because the only step that mixes rows is the SpMM
// (row v of Â·X reads exactly the stored columns of row v), the rows each
// step must compute can be derived by walking the plan's step list
// BACKWARD from the requested target rows: elementwise steps and the
// row-parallel GEMM need the same rows they produce, an SpMM additionally
// pulls in the in-frontier of its output rows. The result is a per-layer
// shrinking frontier — layer l computes only the rows layer l+1 consumes.
//
// Build() runs that analysis, prices the pruned forward against the full
// one on total step-row counts (empirically, pruned wall time tracks ~2x
// the full forward's per step-row across graph sizes — see the gate
// comment in Build), and refuses (nullptr) when the receptive field covers
// too much of the graph: falling back to the full forward then costs
// nothing extra and keeps the full-logits result cache applicable. When it
// accepts, it materializes per-step row lists, row-induced CSR slices with
// old→new column remaps (CsrMatrix::InducedRows), and gather index lists
// for steps whose input buffer holds a wider frontier than they consume
// (GraphSAGE's root path, and the feature matrix itself).
//
// Every kernel the pruned executors run is per-row independent and
// accumulates in the same order as the full forward, so pruned fp32 rows
// are bitwise identical to the same rows of Execute(), and pruned int8
// codes are bitwise identical to ExecuteInt8()'s.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sparse/csr.h"
#include "sparse/frontier.h"
#include "sparse/spmm.h"

namespace mixq {
namespace engine {

class ExecutionPlan;

class FrontierProgram {
 public:
  /// Analyzes plan-over-op for `targets` (sorted unique node ids, all in
  /// range) and builds the pruned program. `int8` selects the integer step
  /// list (requires plan.SupportsInt8()). Returns nullptr when pruning is
  /// not worthwhile: empty targets, or estimated pruned cost >=
  /// `max_cost_fraction` of the full forward's. `ws` may be null (a
  /// transient workspace is used); the serving engine passes the graph's
  /// pinned workspace so no O(N) allocation happens per request.
  static std::unique_ptr<FrontierProgram> Build(const ExecutionPlan& plan,
                                                bool int8,
                                                const SparseOperator& op,
                                                std::vector<int64_t> targets,
                                                FrontierWorkspace* ws,
                                                double max_cost_fraction);

  bool int8() const { return int8_; }
  /// Node count of the graph the program was built against; executing it
  /// requires a feature matrix with exactly this many rows.
  int64_t graph_nodes() const { return graph_nodes_; }
  /// The requested rows, sorted unique — the output row order of
  /// ExecutePruned (row i of the output is node targets()[i]).
  const std::vector<int64_t>& targets() const { return targets_; }

  /// Rows of the feature matrix the first layer reads (the L-hop receptive
  /// field of the targets).
  int64_t input_rows() const { return input_rows_; }
  /// Activation rows computed across all steps / their full-forward total.
  int64_t frontier_rows() const { return frontier_rows_; }
  int64_t full_rows() const { return full_rows_; }
  /// Adjacency entries traversed across all SpMM steps / full total.
  int64_t frontier_nnz() const { return frontier_nnz_; }
  int64_t full_nnz() const { return full_nnz_; }

  /// Execution schedule of one plan step, parallel to the plan's step list.
  struct StepExec {
    /// Global node ids (sorted) this step computes; the step runs with
    /// n = rows.size() instead of the graph's N.
    std::vector<int64_t> rows;
    /// Row gather feeding the step: positions into the src buffer's
    /// frontier, or global ids when src is the feature matrix. Empty =
    /// src already holds exactly `rows` (read it contiguously). Add steps
    /// support no gather — Build CHECKs both operands arrive aligned.
    std::vector<int64_t> gather;
    bool src_is_input = false;     ///< gather indexes the feature matrix
    /// Row-induced adjacency slice (SpMM steps only): rows = `rows`,
    /// columns remapped into the src frontier (or kept global when the
    /// SpMM reads the feature matrix directly).
    CsrMatrix induced;
  };

  /// Per-step schedules, parallel to the plan's selected step list — read by
  /// the pruned executors and by VerifyFrontierProgram
  /// (engine/plan_verifier.h).
  const std::vector<StepExec>& step_execs() const { return steps_; }

 private:
  friend class ExecutionPlan;

  FrontierProgram() = default;

  std::vector<StepExec> steps_;
  std::vector<int64_t> targets_;
  bool int8_ = false;
  int64_t graph_nodes_ = 0;
  int64_t input_rows_ = 0;
  int64_t frontier_rows_ = 0;
  int64_t full_rows_ = 0;
  int64_t frontier_nnz_ = 0;
  int64_t full_nnz_ = 0;
};

}  // namespace engine
}  // namespace mixq
