// Copyright 2026 MixQ-GNN Authors
// Static IR verification of lowered serving programs.
//
// An ExecutionPlan is an IR: a flat step list over shared scratch buffers,
// interpreted by executors that index buffers, weight tables, and quantizer
// tables without per-step bounds checks — the hot path trusts the plan. That
// trust is earned at three boundaries, and VerifyPlan is the pass that earns
// it:
//
//   * end of CompileModel's lowering — a machine-checked contract on every
//     lowering (including future backbones), on in debug builds and behind
//     MIXQ_VERIFY=1 in release;
//   * inside LoadBundle, UNCONDITIONALLY — bundle bytes are attacker-chosen;
//     the codec validates field-local structure, the verifier validates the
//     program's global semantics (dataflow, shape chaining, quantizer
//     coverage) before any executor can run it;
//   * FrontierProgram::Build materialization (VerifyFrontierProgram) — the
//     pruned schedule's row lists, gathers, and induced-CSR remaps must stay
//     in bounds of the frontiers the executors will actually hold.
//
// VerifyPlan symbolically executes both step lists. It tracks, per scratch
// buffer, whether it has been written, its column width, and (int8 list) the
// quantization grid of the codes it holds, and rejects with a typed,
// step-indexed kInvalidArgument on the first violation. The invariants
// enforced are normative — DESIGN.md §6 lists every rule.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace mixq {
namespace engine {

class ExecutionPlan;
class FrontierProgram;

/// The external shape contract a plan is verified against — what the model's
/// metadata (CompiledModelInfo / bundle INFO section) promises callers.
struct PlanShapes {
  int64_t in_features = 0;  ///< feature width Predict inputs must have
  int64_t out_dim = 0;      ///< logit width Predict outputs will have
};

/// Statically verifies `plan` against DESIGN.md §6: symbolic walk of the
/// fp32 step list and, when the int8 lowering is present, the integer step
/// list. Returns OK iff every invariant holds; otherwise kInvalidArgument
/// whose message names the offending step ("fp32 step 3 (SpMM): ...") or
/// table entry ("linear 1: ..."). A plan that verifies cannot drive the
/// executors out of bounds.
Status VerifyPlan(const ExecutionPlan& plan, const PlanShapes& shapes);

/// Statically verifies a materialized pruned schedule against the plan it
/// was built from: per-step row lists sorted, unique, and within the graph;
/// frontier consistency (each step's input rows resolvable from its source
/// buffer's frontier — the monotone ⊆ chain the backward pass derives);
/// gather lists in bounds; induced-CSR shapes and column remaps in bounds of
/// the source frontier; final frontier == targets. kInvalidArgument names
/// the offending step on failure.
Status VerifyFrontierProgram(const ExecutionPlan& plan,
                             const FrontierProgram& program);

/// True when optional verification points (CompileModel's post-lowering
/// check, FrontierProgram::Build's self-check) should run: always in debug
/// builds (!NDEBUG), in release only with MIXQ_VERIFY=1 in the environment.
/// LoadBundle ignores this and verifies unconditionally.
bool VerifyPlansEnabled();

}  // namespace engine
}  // namespace mixq
