// Copyright 2026 MixQ-GNN Authors
#include "engine/frontier_plan.h"

#include <algorithm>
#include <utility>

#include "engine/execution_plan.h"
#include "engine/plan_verifier.h"

namespace mixq {
namespace engine {

namespace {

/// Row-mixing shape of a plan step, shared by the float and integer step
/// lists. Everything except the SpMM is row-parallel: output row i needs
/// input row i only.
enum class StepKind { kElem, kMatMul, kSpmm, kAdd };

struct StepView {
  StepKind kind = StepKind::kElem;
  int src = 0, src2 = 0, dst = 0;
};

// The per-enum classifiers are the single place a step op maps to its
// row-mixing behaviour; a new op added to either executor enum fails these
// switches' -Wswitch coverage instead of silently defaulting to
// row-parallel (which would make Build skip its frontier expansion).
StepKind Classify(ExecutionPlan::Op op) {
  switch (op) {
    case ExecutionPlan::Op::kQuantize:
    case ExecutionPlan::Op::kRelu:
      return StepKind::kElem;
    case ExecutionPlan::Op::kMatMul:
      return StepKind::kMatMul;
    case ExecutionPlan::Op::kSpmm:
      return StepKind::kSpmm;
    case ExecutionPlan::Op::kAdd:
      return StepKind::kAdd;
  }
  MIXQ_CHECK(false) << "unclassified float step op";
  return StepKind::kElem;
}

StepKind Classify(ExecutionPlan::IntOp op) {
  switch (op) {
    case ExecutionPlan::IntOp::kQuantizeInput:
    case ExecutionPlan::IntOp::kRelu:
      return StepKind::kElem;
    case ExecutionPlan::IntOp::kGemmRequant:
      return StepKind::kMatMul;
    case ExecutionPlan::IntOp::kSpmmRequant:
      return StepKind::kSpmm;
    case ExecutionPlan::IntOp::kAddRequant:
      return StepKind::kAdd;
  }
  MIXQ_CHECK(false) << "unclassified integer step op";
  return StepKind::kElem;
}

template <typename StepT>
std::vector<StepView> FlattenSteps(const std::vector<StepT>& steps) {
  std::vector<StepView> views;
  views.reserve(steps.size());
  for (const StepT& st : steps) {
    views.push_back({Classify(st.op), st.src, st.src2, st.dst});
  }
  return views;
}

}  // namespace

std::unique_ptr<FrontierProgram> FrontierProgram::Build(
    const ExecutionPlan& plan, bool int8, const SparseOperator& op,
    std::vector<int64_t> targets, FrontierWorkspace* ws,
    double max_cost_fraction) {
  if (targets.empty()) return nullptr;
  if (int8) {
    MIXQ_CHECK(plan.SupportsInt8()) << "plan has no int8 lowering";
  }
  FrontierWorkspace transient;
  if (ws == nullptr) ws = &transient;

  const CsrMatrix& a = op.matrix();
  const int64_t n = a.rows();

  // Flatten the selected step list into the row-mixing view.
  const std::vector<StepView> views =
      int8 ? FlattenSteps(plan.int_steps_) : FlattenSteps(plan.steps_);
  const int final_buffer = int8 ? plan.int_final_buffer_ : plan.final_buffer_;
  if (views.empty()) return nullptr;

  // Backward dataflow: walk the steps last-to-first carrying, per buffer,
  // the sorted set of rows still required of it. Each step must compute
  // exactly the rows required of its destination at that point; it fully
  // overwrites dst, and contributes its own input requirement — the same
  // rows for row-parallel steps, the in-frontier for the SpMM.
  std::vector<std::vector<int64_t>> need(static_cast<size_t>(plan.num_buffers_));
  need[static_cast<size_t>(final_buffer)] = targets;
  std::vector<std::vector<int64_t>> step_rows(views.size());
  std::vector<int64_t> input_need;
  // Routing gate bound. The cost model is deliberately plain step-row
  // counts: measured across graph sizes (2k-100k nodes) and target counts
  // (1-512), the pruned forward's wall time — analysis, induced slicing,
  // gathers and all — tracks ~2x the full forward's per step-row
  // processed, almost independent of scale (the pruned path pays per-row
  // setup and poor small-n parallel efficiency; flop-weighted models fit
  // the data WORSE because per-row time is memory-bound, not flop-bound).
  // Re-measured after the fused requant epilogues landed: fusing removes
  // the same int32 round-trip from both the full and pruned int8 forwards,
  // so the ratio holds (~1.9-2.1x across the same sweep) and the constant
  // stays. That fixed ~2x penalty is folded into the caller's
  // max_cost_fraction (default 0.2 -> prune only when >= ~2.4x faster than
  // the full forward, whose logits also feed the result cache).
  const int64_t full_rows_total = static_cast<int64_t>(views.size()) * n;
  const double row_bound = max_cost_fraction * static_cast<double>(full_rows_total);
  int64_t frontier_rows = 0, full_rows = 0, frontier_nnz = 0, full_nnz = 0;
  for (size_t i = views.size(); i-- > 0;) {
    const StepView& v = views[i];
    std::vector<int64_t> t = std::move(need[static_cast<size_t>(v.dst)]);
    need[static_cast<size_t>(v.dst)].clear();
    step_rows[i] = t;
    frontier_rows += static_cast<int64_t>(t.size());
    full_rows += n;
    // The gate: frontiers only widen walking backward, so the moment the
    // running row count crosses the bound the group is full-path bound —
    // return before paying for the remaining (widest) expansions. A loop
    // that completes has frontier_rows < row_bound by construction.
    if (static_cast<double>(frontier_rows) >= row_bound) return nullptr;
    auto contribute = [&](int buf, const std::vector<int64_t>& rows) {
      if (buf == ExecutionPlan::kInput) {
        input_need = SortedUnion(input_need, rows);
      } else {
        std::vector<int64_t>& dst = need[static_cast<size_t>(buf)];
        dst = SortedUnion(dst, rows);
      }
    };
    switch (v.kind) {
      case StepKind::kElem:
      case StepKind::kMatMul:
      case StepKind::kAdd: {
        contribute(v.src, t);
        if (v.kind == StepKind::kAdd) contribute(v.src2, t);
        break;
      }
      case StepKind::kSpmm: {
        frontier_nnz += RowsNnz(a, t);
        full_nnz += a.nnz();
        contribute(v.src, ExpandFrontier(a, t, /*include_rows=*/false, ws));
        break;
      }
    }
  }

  // Forward pass: materialize per-step gathers and induced adjacency
  // slices, tracking the frontier each buffer will actually hold.
  std::unique_ptr<FrontierProgram> program(new FrontierProgram());
  program->int8_ = int8;
  program->graph_nodes_ = n;
  program->targets_ = std::move(targets);
  program->input_rows_ = static_cast<int64_t>(input_need.size());
  program->frontier_rows_ = frontier_rows;
  program->full_rows_ = full_rows;
  program->frontier_nnz_ = frontier_nnz;
  program->full_nnz_ = full_nnz;
  program->steps_.resize(views.size());
  std::vector<std::vector<int64_t>> frontier(static_cast<size_t>(plan.num_buffers_));
  for (size_t i = 0; i < views.size(); ++i) {
    const StepView& v = views[i];
    StepExec& se = program->steps_[i];
    se.rows = std::move(step_rows[i]);
    if (se.rows.empty()) continue;  // dead step for these targets
    switch (v.kind) {
      case StepKind::kElem:
      case StepKind::kMatMul: {
        if (v.src == ExecutionPlan::kInput) {
          se.src_is_input = true;
          se.gather = se.rows;  // global feature-matrix rows
        } else if (frontier[static_cast<size_t>(v.src)] != se.rows) {
          se.gather = SortedPositions(se.rows, frontier[static_cast<size_t>(v.src)]);
        }
        break;
      }
      case StepKind::kSpmm: {
        if (v.src == ExecutionPlan::kInput) {
          // The slice reads the full feature matrix: keep columns global.
          se.src_is_input = true;
          se.induced = a.InducedRows(se.rows, nullptr, 0);
        } else {
          const std::vector<int64_t>& src_rows =
              frontier[static_cast<size_t>(v.src)];
          ws->EnsureSize(n);
          for (size_t j = 0; j < src_rows.size(); ++j) {
            ws->pos[static_cast<size_t>(src_rows[j])] = static_cast<int64_t>(j);
          }
          se.induced = a.InducedRows(se.rows, ws->pos.data(),
                                     static_cast<int64_t>(src_rows.size()));
        }
        break;
      }
      case StepKind::kAdd: {
        // Both operands are written by row-parallel steps over exactly the
        // rows this add consumes in every lowered topology; a plan shape
        // that breaks this needs gather support here.
        MIXQ_CHECK(v.src != ExecutionPlan::kInput &&
                   v.src2 != ExecutionPlan::kInput);
        MIXQ_CHECK(frontier[static_cast<size_t>(v.src)] == se.rows &&
                   frontier[static_cast<size_t>(v.src2)] == se.rows)
            << "pruned add with misaligned operand frontiers";
        break;
      }
    }
    frontier[static_cast<size_t>(v.dst)] = se.rows;
  }
  MIXQ_CHECK(frontier[static_cast<size_t>(final_buffer)] == program->targets_);
  // Self-check the materialized schedule with the independent verifier
  // (debug builds / MIXQ_VERIFY=1): the checks above are the builder
  // validating its own working state; VerifyFrontierProgram re-derives the
  // frontier chain from the plan without sharing this function's code.
  if (VerifyPlansEnabled()) {
    Status verified = VerifyFrontierProgram(plan, *program);
    MIXQ_CHECK(verified.ok()) << "Build produced an invalid pruned schedule: "
                              << verified.message();
  }
  return program;
}

}  // namespace engine
}  // namespace mixq
