// Copyright 2026 MixQ-GNN Authors
#include "engine/plan_verifier.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/execution_plan.h"
#include "engine/frontier_plan.h"
#include "quant/requant.h"
#include "tensor/gemm.h"

namespace mixq {
namespace engine {

namespace {

using Op = ExecutionPlan::Op;
using IntOp = ExecutionPlan::IntOp;
using Step = ExecutionPlan::Step;
using IntStep = ExecutionPlan::IntStep;

/// Structural dimensions past this are corruption, not models (matches the
/// bundle codec's bound) — and keep every size product below overflow.
constexpr int64_t kMaxDim = 1 << 20;

const char* OpName(Op op) {
  switch (op) {
    case Op::kQuantize: return "Quantize";
    case Op::kMatMul: return "MatMul";
    case Op::kSpmm: return "SpMM";
    case Op::kAdd: return "Add";
    case Op::kRelu: return "ReLU";
  }
  return "?";
}

const char* OpName(IntOp op) {
  switch (op) {
    case IntOp::kQuantizeInput: return "QuantizeInput";
    case IntOp::kGemmRequant: return "GemmRequant";
    case IntOp::kSpmmRequant: return "SpmmRequant";
    case IntOp::kAddRequant: return "AddRequant";
    case IntOp::kRelu: return "ReLU";
  }
  return "?";
}

/// "fp32 step 3 (SpMM): " — every rejection is step-indexed so a bad bundle
/// names exactly where its program breaks.
std::string At(const char* list, size_t index, const char* op) {
  return std::string(list) + " step " + std::to_string(index) + " (" + op + "): ";
}

Status Invalid(const std::string& where, const std::string& what) {
  return Status::InvalidArgument(where + what);
}

/// Empty when `p` is a usable fake-quantization grid; otherwise the reason.
std::string ParamsError(const QuantParams& p) {
  if (p.bits < 1 || p.bits > 32) {
    return "quantizer bits " + std::to_string(p.bits) + " outside [1, 32]";
  }
  if (!std::isfinite(p.scale) || p.scale <= 0.0f) {
    return "quantizer scale must be finite and > 0";
  }
  if (p.symmetric && p.zero_point != 0) {
    return "symmetric quantizer has zero point " + std::to_string(p.zero_point);
  }
  return "";
}

/// Empty when `p` can carry int8 codes through the integer executor: the
/// Int8able lowering gate (symmetric, zero point 0, <= 8 bits) re-stated as
/// a load-time contract.
std::string CodeParamsError(const QuantParams& p) {
  std::string err = ParamsError(p);
  if (!err.empty()) return err;
  if (p.bits > 8) {
    return "quantizer bits " + std::to_string(p.bits) +
           " exceed 8 (codes must fit int8)";
  }
  if (!p.symmetric || p.zero_point != 0) {
    return "int8 codes require a symmetric quantizer with zero point 0";
  }
  return "";
}

bool SameParams(const QuantParams& a, const QuantParams& b) {
  return a.scale == b.scale && a.zero_point == b.zero_point &&
         a.bits == b.bits && a.symmetric == b.symmetric;
}

std::string ParamsLabel(const QuantParams& p) {
  return "(scale=" + std::to_string(p.scale) +
         ", zp=" + std::to_string(p.zero_point) +
         ", bits=" + std::to_string(p.bits) + ")";
}

/// Derived requant constants are compared bit-for-bit (memcmp, not ==): the
/// fused epilogues fold these doubles straight into the kernels, so even a
/// one-ulp drift from the serialized quantizers would break the bitwise
/// parity contract between fused and two-pass execution.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Empty when `got` is exactly CodeEmitter(out_p); otherwise the reason.
std::string EmitterError(const CodeEmitter& got, const QuantParams& out_p) {
  const CodeEmitter expect(out_p);
  if (!SameBits(got.vlo, expect.vlo) || !SameBits(got.vhi, expect.vhi) ||
      got.zp != expect.zp || got.lo != expect.lo || got.hi != expect.hi) {
    return "requant emitter disagrees with the output quantizer " +
           ParamsLabel(out_p);
  }
  return "";
}

// ---- table checks ----------------------------------------------------------

Status VerifyLinears(const ExecutionPlan& plan) {
  const std::vector<LoweredLinear>& linears = plan.linears();
  for (size_t i = 0; i < linears.size(); ++i) {
    const LoweredLinear& lin = linears[i];
    const std::string where = "linear " + std::to_string(i) + ": ";
    if (lin.in < 1 || lin.in > kMaxDim || lin.out < 1 || lin.out > kMaxDim ||
        lin.out_padded < lin.out || lin.out_padded > kMaxDim) {
      return Invalid(where, "dimensions [in=" + std::to_string(lin.in) +
                                ", out=" + std::to_string(lin.out) +
                                ", out_padded=" + std::to_string(lin.out_padded) +
                                "] are not a valid padded weight shape");
    }
    const size_t expect =
        static_cast<size_t>(lin.in) * static_cast<size_t>(lin.out_padded);
    if (lin.weight_fq.size() != expect) {
      return Invalid(where, "weight buffer holds " +
                                std::to_string(lin.weight_fq.size()) +
                                " floats, shape needs " + std::to_string(expect));
    }
    if (!lin.bias.empty() && lin.bias.size() != static_cast<size_t>(lin.out)) {
      return Invalid(where, "bias holds " + std::to_string(lin.bias.size()) +
                                " floats, output width is " +
                                std::to_string(lin.out));
    }
    if (lin.weight_q8.empty() != lin.weight_packed.empty()) {
      return Invalid(where, "int8 code and packed weight buffers must be "
                            "present together");
    }
    if (!lin.weight_q8.empty()) {
      if (lin.weight_q8.size() != expect) {
        return Invalid(where, "int8 weight buffer holds " +
                                  std::to_string(lin.weight_q8.size()) +
                                  " codes, shape needs " + std::to_string(expect));
      }
      const size_t packed_expect =
          static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded));
      if (lin.weight_packed.size() != packed_expect) {
        return Invalid(where, "packed weight buffer holds " +
                                  std::to_string(lin.weight_packed.size()) +
                                  " int16s, pair packing needs " +
                                  std::to_string(packed_expect));
      }
      const std::string perr = CodeParamsError(lin.weight_params);
      if (!perr.empty()) return Invalid(where, "weight " + perr);
      // The packed view must BE the pair-interleaving of the codes: the int8
      // GEMM consumes only weight_packed, so a disagreement would serve
      // logits from weights nobody ever quantized.
      std::vector<int16_t> repacked(packed_expect);
      PackInt8PairB(lin.weight_q8.data(), lin.in, lin.out_padded, repacked.data());
      if (std::memcmp(repacked.data(), lin.weight_packed.data(),
                      packed_expect * sizeof(int16_t)) != 0) {
        return Invalid(where,
                       "packed weights do not match the pair-interleaving of "
                       "the int8 codes");
      }
      // DERIVED state (FinalizeDerived runs before verification on both the
      // lowering and bundle-load paths): the VNNI quad packing and its
      // per-column corrections must likewise be exactly the reinterleaving
      // of the codes, or the vpdpbusd kernel would multiply by weights that
      // disagree with every other execution path.
      const size_t quad_expect =
          static_cast<size_t>(PackedQuadSize(lin.in, lin.out_padded));
      if (lin.weight_quad.size() != quad_expect ||
          lin.weight_corr.size() != static_cast<size_t>(lin.out_padded)) {
        return Invalid(where, "derived quad packing holds " +
                                  std::to_string(lin.weight_quad.size()) + "/" +
                                  std::to_string(lin.weight_corr.size()) +
                                  " entries, quad packing needs " +
                                  std::to_string(quad_expect) + "/" +
                                  std::to_string(lin.out_padded));
      }
      std::vector<int8_t> requad(quad_expect);
      std::vector<int32_t> recorr(static_cast<size_t>(lin.out_padded));
      PackInt8QuadB(lin.weight_q8.data(), lin.in, lin.out_padded, requad.data(),
                    recorr.data());
      if (std::memcmp(requad.data(), lin.weight_quad.data(),
                      quad_expect * sizeof(int8_t)) != 0 ||
          std::memcmp(recorr.data(), lin.weight_corr.data(),
                      static_cast<size_t>(lin.out_padded) * sizeof(int32_t)) !=
              0) {
        return Invalid(where,
                       "derived quad packing does not match the "
                       "quad-interleaving of the int8 codes");
      }
    }
  }
  return Status::OK();
}

Status VerifyAdjQuants(const ExecutionPlan& plan) {
  const std::vector<LoweredComponent>& adjs = plan.adj_quants();
  for (size_t i = 0; i < adjs.size(); ++i) {
    if (adjs[i].identity) continue;
    const std::string perr = ParamsError(adjs[i].params);
    if (!perr.empty()) {
      return Status::InvalidArgument("adjacency quantizer " + std::to_string(i) +
                                     ": " + perr);
    }
  }
  return Status::OK();
}

// ---- fp32 step-list walk ---------------------------------------------------

/// Symbolic buffer state: executors size every buffer to n rows, so only the
/// column width and the written bit travel.
struct BufState {
  bool written = false;
  int64_t cols = 0;
};

Status WalkFloatSteps(const ExecutionPlan& plan, std::vector<bool>* used_linear,
                      std::vector<bool>* used_adj) {
  const int num_buffers = plan.num_buffers();
  std::vector<BufState> buf(static_cast<size_t>(num_buffers));
  const std::vector<Step>& steps = plan.steps();
  if (steps.empty()) {
    return Status::InvalidArgument("fp32 plan has no steps");
  }

  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& st = steps[i];
    const std::string where = At("fp32", i, OpName(st.op));

    if (st.dst < 0 || st.dst >= num_buffers) {
      return Invalid(where, "writes buffer " + std::to_string(st.dst) +
                                ", plan has " + std::to_string(num_buffers));
    }
    if (st.cols < 1 || st.cols > kMaxDim) {
      return Invalid(where, "step width " + std::to_string(st.cols) +
                                " outside [1, " + std::to_string(kMaxDim) + "]");
    }
    // Cross-table references are exact: present iff the op consumes them.
    if (st.op == Op::kMatMul) {
      if (st.linear < 0 ||
          st.linear >= static_cast<int>(plan.linears().size())) {
        return Invalid(where, "references linear " + std::to_string(st.linear) +
                                  ", table has " +
                                  std::to_string(plan.linears().size()));
      }
      (*used_linear)[static_cast<size_t>(st.linear)] = true;
    } else if (st.linear != -1) {
      return Invalid(where, "non-MatMul step carries linear index " +
                                std::to_string(st.linear));
    }
    if (st.op == Op::kSpmm) {
      if (st.adj < 0 || st.adj >= static_cast<int>(plan.adj_quants().size())) {
        return Invalid(where, "references adjacency quantizer " +
                                  std::to_string(st.adj) + ", table has " +
                                  std::to_string(plan.adj_quants().size()));
      }
      (*used_adj)[static_cast<size_t>(st.adj)] = true;
    } else if (st.adj != -1) {
      return Invalid(where, "non-SpMM step carries adjacency index " +
                                std::to_string(st.adj));
    }

    // Resolve the primary source's width; every read must be of the input
    // matrix or of a buffer some earlier step wrote.
    auto source_cols = [&](int src, int64_t* cols) -> Status {
      if (src == ExecutionPlan::kInput) {
        *cols = plan.in_features();
        return Status::OK();
      }
      if (src < 0 || src >= num_buffers) {
        return Invalid(where, "reads buffer " + std::to_string(src) +
                                  ", plan has " + std::to_string(num_buffers));
      }
      if (!buf[static_cast<size_t>(src)].written) {
        return Invalid(where, "reads buffer " + std::to_string(src) +
                                  " before any step writes it");
      }
      *cols = buf[static_cast<size_t>(src)].cols;
      return Status::OK();
    };

    int64_t src_cols = 0;
    MIXQ_RETURN_NOT_OK(source_cols(st.src, &src_cols));

    switch (st.op) {
      case Op::kQuantize: {
        if (st.quant.identity) {
          return Invalid(where, "identity component on a quantize step "
                                "(lowering never emits a no-op quantize)");
        }
        const std::string perr = ParamsError(st.quant.params);
        if (!perr.empty()) return Invalid(where, perr);
        if (st.cols != src_cols) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but source holds " +
                                    std::to_string(src_cols) + " columns");
        }
        break;
      }
      case Op::kMatMul: {
        const LoweredLinear& lin = plan.linears()[static_cast<size_t>(st.linear)];
        if (src_cols != lin.in) {
          return Invalid(where, "source holds " + std::to_string(src_cols) +
                                    " columns, linear " +
                                    std::to_string(st.linear) + " consumes " +
                                    std::to_string(lin.in));
        }
        if (st.cols != lin.out) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but linear " + std::to_string(st.linear) +
                                    " produces " + std::to_string(lin.out));
        }
        break;
      }
      case Op::kSpmm: {
        if (st.cols != src_cols) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but source holds " +
                                    std::to_string(src_cols) +
                                    " columns (SpMM preserves width)");
        }
        break;
      }
      case Op::kAdd: {
        // The pruned executor reads add operands straight from scratch (no
        // gather), so an input-matrix operand is rejected outright.
        if (st.src == ExecutionPlan::kInput ||
            st.src2 == ExecutionPlan::kInput) {
          return Invalid(where, "add operands must be scratch buffers, not "
                                "the input matrix");
        }
        int64_t src2_cols = 0;
        MIXQ_RETURN_NOT_OK(source_cols(st.src2, &src2_cols));
        if (src_cols != st.cols || src2_cols != st.cols) {
          return Invalid(where, "operand widths " + std::to_string(src_cols) +
                                    " and " + std::to_string(src2_cols) +
                                    " must both equal the declared " +
                                    std::to_string(st.cols));
        }
        break;
      }
      case Op::kRelu: {
        if (st.cols != src_cols) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but source holds " +
                                    std::to_string(src_cols) + " columns");
        }
        break;
      }
    }

    buf[static_cast<size_t>(st.dst)] = {true, st.cols};
  }

  const int fin = plan.final_buffer();
  if (fin < 0 || fin >= num_buffers) {
    return Status::InvalidArgument("fp32 final buffer " + std::to_string(fin) +
                                   " outside the plan's " +
                                   std::to_string(num_buffers) + " buffers");
  }
  if (!buf[static_cast<size_t>(fin)].written) {
    return Status::InvalidArgument("fp32 final buffer " + std::to_string(fin) +
                                   " is never written");
  }
  if (buf[static_cast<size_t>(fin)].cols != plan.out_dim()) {
    return Status::InvalidArgument(
        "fp32 final buffer holds " +
        std::to_string(buf[static_cast<size_t>(fin)].cols) +
        " columns, plan promises " + std::to_string(plan.out_dim()) + " logits");
  }
  return Status::OK();
}

// ---- int8 step-list walk ---------------------------------------------------

/// Integer buffer state additionally carries the quantization grid of the
/// codes: consumers fold the producer's scale into their requant constant,
/// so a grid mismatch along the chain means the arithmetic is wrong even
/// though every index is in bounds.
struct IntBufState {
  bool written = false;
  int64_t cols = 0;
  QuantParams params;
};

Status WalkIntSteps(const ExecutionPlan& plan, std::vector<bool>* used_linear,
                    std::vector<bool>* used_adj) {
  const int num_buffers = plan.num_buffers();
  std::vector<IntBufState> buf(static_cast<size_t>(num_buffers));
  const std::vector<IntStep>& steps = plan.int_steps();
  if (steps.empty()) {
    return Status::InvalidArgument("int8 plan has no steps");
  }

  for (size_t i = 0; i < steps.size(); ++i) {
    const IntStep& st = steps[i];
    const std::string where = At("int8", i, OpName(st.op));

    if (st.dst < 0 || st.dst >= num_buffers) {
      return Invalid(where, "writes buffer " + std::to_string(st.dst) +
                                ", plan has " + std::to_string(num_buffers));
    }
    if (st.cols < 1 || st.cols > kMaxDim) {
      return Invalid(where, "step width " + std::to_string(st.cols) +
                                " outside [1, " + std::to_string(kMaxDim) + "]");
    }
    if (st.op == IntOp::kGemmRequant) {
      if (st.linear < 0 ||
          st.linear >= static_cast<int>(plan.linears().size())) {
        return Invalid(where, "references linear " + std::to_string(st.linear) +
                                  ", table has " +
                                  std::to_string(plan.linears().size()));
      }
      (*used_linear)[static_cast<size_t>(st.linear)] = true;
    } else if (st.linear != -1) {
      return Invalid(where, "non-GEMM step carries linear index " +
                                std::to_string(st.linear));
    }
    if (st.op == IntOp::kSpmmRequant) {
      if (st.adj < 0 || st.adj >= static_cast<int>(plan.adj_quants().size())) {
        return Invalid(where, "references adjacency quantizer " +
                                  std::to_string(st.adj) + ", table has " +
                                  std::to_string(plan.adj_quants().size()));
      }
      (*used_adj)[static_cast<size_t>(st.adj)] = true;
    } else if (st.adj != -1) {
      return Invalid(where, "non-SpMM step carries adjacency index " +
                                std::to_string(st.adj));
    }

    // Unlike the float executor, the integer executor indexes its code
    // buffers directly — only kQuantizeInput may (and must) read the input
    // matrix; every other source must be a written scratch buffer.
    auto source_state = [&](int src, const IntBufState** state) -> Status {
      if (src < 0 || src >= num_buffers) {
        return Invalid(where, "reads buffer " + std::to_string(src) +
                                  ", plan has " + std::to_string(num_buffers) +
                                  " (the integer executor cannot read the "
                                  "input matrix here)");
      }
      if (!buf[static_cast<size_t>(src)].written) {
        return Invalid(where, "reads buffer " + std::to_string(src) +
                                  " before any step writes it");
      }
      *state = &buf[static_cast<size_t>(src)];
      return Status::OK();
    };
    auto check_chain = [&](const IntBufState& src_state,
                           const QuantParams& declared,
                           const char* operand) -> Status {
      if (!SameParams(src_state.params, declared)) {
        return Invalid(where, std::string(operand) + " codes were produced on "
                                  "grid " + ParamsLabel(src_state.params) +
                                  " but the step requantizes from " +
                                  ParamsLabel(declared));
      }
      return Status::OK();
    };

    switch (st.op) {
      case IntOp::kQuantizeInput: {
        if (st.src != ExecutionPlan::kInput) {
          return Invalid(where, "must read the input matrix, reads buffer " +
                                    std::to_string(st.src));
        }
        if (st.cols != plan.in_features()) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but the input matrix has " +
                                    std::to_string(plan.in_features()) +
                                    " features");
        }
        const std::string perr = CodeParamsError(st.out_params);
        if (!perr.empty()) return Invalid(where, "output " + perr);
        buf[static_cast<size_t>(st.dst)] = {true, st.cols, st.out_params};
        break;
      }
      case IntOp::kGemmRequant: {
        const IntBufState* src = nullptr;
        MIXQ_RETURN_NOT_OK(source_state(st.src, &src));
        const LoweredLinear& lin = plan.linears()[static_cast<size_t>(st.linear)];
        if (lin.weight_packed.empty()) {
          return Invalid(where, "linear " + std::to_string(st.linear) +
                                    " has no packed int8 weights");
        }
        if (src->cols != lin.in) {
          return Invalid(where, "source holds " + std::to_string(src->cols) +
                                    " columns, linear " +
                                    std::to_string(st.linear) + " consumes " +
                                    std::to_string(lin.in));
        }
        if (st.cols != lin.out) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but linear " + std::to_string(st.linear) +
                                    " produces " + std::to_string(lin.out));
        }
        MIXQ_RETURN_NOT_OK(check_chain(*src, st.src_params, "source"));
        std::string perr = CodeParamsError(st.out_params);
        if (!perr.empty()) return Invalid(where, "output " + perr);
        // The precomputed bias/out-scale vector must agree with the linear's
        // bias: the executor applies bias_over INSTEAD of lin.bias, so a
        // missing or stale vector silently serves biasless (or wrong) logits.
        if (st.bias_over.empty() != lin.bias.empty()) {
          return Invalid(where, std::string("linear ") + std::to_string(st.linear) +
                                    (lin.bias.empty()
                                         ? " has no bias but the step carries a "
                                           "bias/scale vector"
                                         : " has a bias but the step carries no "
                                           "bias/scale vector"));
        }
        if (!st.bias_over.empty()) {
          if (st.bias_over.size() != static_cast<size_t>(lin.out)) {
            return Invalid(where, "bias/scale vector holds " +
                                      std::to_string(st.bias_over.size()) +
                                      " entries, output width is " +
                                      std::to_string(lin.out));
          }
          const double inv_out = 1.0 / st.out_params.scale;
          for (size_t j = 0; j < st.bias_over.size(); ++j) {
            const double expect = static_cast<double>(lin.bias[j]) * inv_out;
            if (std::memcmp(&st.bias_over[j], &expect, sizeof(double)) != 0) {
              return Invalid(where, "bias/scale vector entry " +
                                        std::to_string(j) +
                                        " disagrees with bias[j] / out_scale");
            }
          }
        }
        // Derived: the folded scale ratio the fused epilogue multiplies by.
        if (!SameBits(st.total, static_cast<double>(st.src_params.scale) *
                                    lin.weight_params.scale /
                                    st.out_params.scale)) {
          return Invalid(where, "derived scale ratio disagrees with "
                                "src_scale * weight_scale / out_scale");
        }
        const std::string eerr = EmitterError(st.emitter, st.out_params);
        if (!eerr.empty()) return Invalid(where, eerr);
        buf[static_cast<size_t>(st.dst)] = {true, st.cols, st.out_params};
        break;
      }
      case IntOp::kSpmmRequant: {
        const IntBufState* src = nullptr;
        MIXQ_RETURN_NOT_OK(source_state(st.src, &src));
        const LoweredComponent& aq =
            plan.adj_quants()[static_cast<size_t>(st.adj)];
        if (aq.identity) {
          return Invalid(where, "adjacency quantizer " + std::to_string(st.adj) +
                                    " is identity; the integer SpMM needs "
                                    "int8 adjacency codes");
        }
        const std::string aerr = CodeParamsError(aq.params);
        if (!aerr.empty()) {
          return Invalid(where, "adjacency " + aerr);
        }
        if (st.cols != src->cols) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but source holds " +
                                    std::to_string(src->cols) +
                                    " columns (SpMM preserves width)");
        }
        MIXQ_RETURN_NOT_OK(check_chain(*src, st.src_params, "source"));
        const std::string perr = CodeParamsError(st.out_params);
        if (!perr.empty()) return Invalid(where, "output " + perr);
        if (!SameBits(st.total, static_cast<double>(aq.params.scale) *
                                    st.src_params.scale / st.out_params.scale)) {
          return Invalid(where, "derived scale ratio disagrees with "
                                "adj_scale * src_scale / out_scale");
        }
        const std::string eerr = EmitterError(st.emitter, st.out_params);
        if (!eerr.empty()) return Invalid(where, eerr);
        buf[static_cast<size_t>(st.dst)] = {true, st.cols, st.out_params};
        break;
      }
      case IntOp::kAddRequant: {
        const IntBufState* src = nullptr;
        const IntBufState* src2 = nullptr;
        MIXQ_RETURN_NOT_OK(source_state(st.src, &src));
        MIXQ_RETURN_NOT_OK(source_state(st.src2, &src2));
        if (src->cols != st.cols || src2->cols != st.cols) {
          return Invalid(where, "operand widths " + std::to_string(src->cols) +
                                    " and " + std::to_string(src2->cols) +
                                    " must both equal the declared " +
                                    std::to_string(st.cols));
        }
        MIXQ_RETURN_NOT_OK(check_chain(*src, st.src_params, "source"));
        MIXQ_RETURN_NOT_OK(check_chain(*src2, st.src2_params, "second source"));
        const std::string perr = CodeParamsError(st.out_params);
        if (!perr.empty()) return Invalid(where, "output " + perr);
        if (!SameBits(st.s1, static_cast<double>(st.src_params.scale) /
                                 st.out_params.scale) ||
            !SameBits(st.s2, static_cast<double>(st.src2_params.scale) /
                                 st.out_params.scale)) {
          return Invalid(where, "derived operand ratios disagree with "
                                "src_scale / out_scale");
        }
        const std::string eerr = EmitterError(st.emitter, st.out_params);
        if (!eerr.empty()) return Invalid(where, eerr);
        buf[static_cast<size_t>(st.dst)] = {true, st.cols, st.out_params};
        break;
      }
      case IntOp::kRelu: {
        const IntBufState* src = nullptr;
        MIXQ_RETURN_NOT_OK(source_state(st.src, &src));
        if (st.cols != src->cols) {
          return Invalid(where, "declares width " + std::to_string(st.cols) +
                                    " but source holds " +
                                    std::to_string(src->cols) + " columns");
        }
        // ReLU on raw codes is exact only on a symmetric grid; the chain
        // guarantees it, this keeps the guarantee explicit.
        if (!src->params.symmetric || src->params.zero_point != 0) {
          return Invalid(where, "ReLU on codes needs a symmetric source grid");
        }
        buf[static_cast<size_t>(st.dst)] = {true, st.cols, src->params};
        break;
      }
    }
  }

  const int fin = plan.int_final_buffer();
  if (fin < 0 || fin >= num_buffers) {
    return Status::InvalidArgument("int8 final buffer " + std::to_string(fin) +
                                   " outside the plan's " +
                                   std::to_string(num_buffers) + " buffers");
  }
  const IntBufState& last = buf[static_cast<size_t>(fin)];
  if (!last.written) {
    return Status::InvalidArgument("int8 final buffer " + std::to_string(fin) +
                                   " is never written");
  }
  if (last.cols != plan.out_dim()) {
    return Status::InvalidArgument(
        "int8 final buffer holds " + std::to_string(last.cols) +
        " columns, plan promises " + std::to_string(plan.out_dim()) + " logits");
  }
  if (!SameParams(last.params, plan.int_final_params())) {
    return Status::InvalidArgument(
        "int8 final codes live on grid " + ParamsLabel(last.params) +
        " but the plan dequantizes with " + ParamsLabel(plan.int_final_params()));
  }
  return Status::OK();
}

}  // namespace

Status VerifyPlan(const ExecutionPlan& plan, const PlanShapes& shapes) {
  if (plan.in_features() < 1 || plan.in_features() > kMaxDim ||
      plan.out_dim() < 1 || plan.out_dim() > kMaxDim) {
    return Status::InvalidArgument(
        "plan dimensions [in=" + std::to_string(plan.in_features()) + ", out=" +
        std::to_string(plan.out_dim()) + "] are not a valid model shape");
  }
  if (plan.in_features() != shapes.in_features ||
      plan.out_dim() != shapes.out_dim) {
    return Status::InvalidArgument(
        "plan maps " + std::to_string(plan.in_features()) + " -> " +
        std::to_string(plan.out_dim()) + " but the model metadata promises " +
        std::to_string(shapes.in_features) + " -> " +
        std::to_string(shapes.out_dim));
  }
  if (plan.num_buffers() < 1 || plan.num_buffers() > kMaxDim) {
    return Status::InvalidArgument("plan buffer count " +
                                   std::to_string(plan.num_buffers()) +
                                   " is implausible");
  }

  MIXQ_RETURN_NOT_OK(VerifyLinears(plan));
  MIXQ_RETURN_NOT_OK(VerifyAdjQuants(plan));

  std::vector<bool> used_linear(plan.linears().size(), false);
  std::vector<bool> used_adj(plan.adj_quants().size(), false);
  MIXQ_RETURN_NOT_OK(WalkFloatSteps(plan, &used_linear, &used_adj));
  if (plan.SupportsInt8()) {
    MIXQ_RETURN_NOT_OK(WalkIntSteps(plan, &used_linear, &used_adj));
  }

  // Dangling table entries: every lowered weight and adjacency quantizer
  // must be reachable from some step — an orphan means the program and its
  // tables disagree about what model this is.
  for (size_t i = 0; i < used_linear.size(); ++i) {
    if (!used_linear[i]) {
      return Status::InvalidArgument("linear " + std::to_string(i) +
                                     " is referenced by no step (dangling)");
    }
  }
  for (size_t i = 0; i < used_adj.size(); ++i) {
    if (!used_adj[i]) {
      return Status::InvalidArgument("adjacency quantizer " + std::to_string(i) +
                                     " is referenced by no step (dangling)");
    }
  }
  return Status::OK();
}

// ---- FrontierProgram verification ------------------------------------------

namespace {

/// The verifier's own row-mixing classification — intentionally independent
/// of frontier_plan.cc's so the checker does not inherit a bug from the
/// code it checks.
enum class MixKind { kRowParallel, kSpmm, kAdd };

struct MixView {
  MixKind kind = MixKind::kRowParallel;
  int src = 0, src2 = 0, dst = 0;
  bool reads_input_ok = true;  ///< may the executor gather from the features?
};

MixView ViewOf(const Step& st) {
  MixView v;
  v.src = st.src;
  v.src2 = st.src2;
  v.dst = st.dst;
  switch (st.op) {
    case Op::kSpmm: v.kind = MixKind::kSpmm; break;
    case Op::kAdd: v.kind = MixKind::kAdd; break;
    default: v.kind = MixKind::kRowParallel; break;
  }
  return v;
}

MixView ViewOf(const IntStep& st) {
  MixView v;
  v.src = st.src;
  v.src2 = st.src2;
  v.dst = st.dst;
  switch (st.op) {
    case IntOp::kSpmmRequant: v.kind = MixKind::kSpmm; break;
    case IntOp::kAddRequant: v.kind = MixKind::kAdd; break;
    default: v.kind = MixKind::kRowParallel; break;
  }
  v.reads_input_ok = st.op == IntOp::kQuantizeInput;
  return v;
}

bool SortedUniqueInRange(const std::vector<int64_t>& rows, int64_t bound) {
  int64_t prev = -1;
  for (int64_t r : rows) {
    if (r <= prev || r >= bound) return false;
    prev = r;
  }
  return true;
}

Status VerifyInduced(const std::string& where, const CsrMatrix& induced,
                     size_t expect_rows, int64_t expect_cols) {
  if (induced.rows() != static_cast<int64_t>(expect_rows)) {
    return Invalid(where, "induced slice has " + std::to_string(induced.rows()) +
                              " rows, frontier has " +
                              std::to_string(expect_rows));
  }
  if (induced.cols() != expect_cols) {
    return Invalid(where, "induced slice addresses " +
                              std::to_string(induced.cols()) +
                              " columns, source frontier holds " +
                              std::to_string(expect_cols));
  }
  const std::vector<int64_t>& rp = induced.row_ptr();
  const std::vector<int64_t>& ci = induced.col_idx();
  if (rp.size() != expect_rows + 1 || rp.front() != 0 ||
      rp.back() != static_cast<int64_t>(ci.size()) ||
      ci.size() != induced.values().size()) {
    return Invalid(where, "induced slice CSR arrays are inconsistent");
  }
  for (size_t r = 1; r < rp.size(); ++r) {
    if (rp[r] < rp[r - 1]) {
      return Invalid(where, "induced slice row_ptr is not monotone");
    }
  }
  for (int64_t c : ci) {
    if (c < 0 || c >= expect_cols) {
      return Invalid(where, "induced slice column " + std::to_string(c) +
                                " outside the source frontier [0, " +
                                std::to_string(expect_cols) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyFrontierProgram(const ExecutionPlan& plan,
                             const FrontierProgram& program) {
  if (program.int8() && !plan.SupportsInt8()) {
    return Status::InvalidArgument(
        "program selects the int8 step list but the plan has no int8 lowering");
  }
  std::vector<MixView> views;
  if (program.int8()) {
    views.reserve(plan.int_steps().size());
    for (const IntStep& st : plan.int_steps()) views.push_back(ViewOf(st));
  } else {
    views.reserve(plan.steps().size());
    for (const Step& st : plan.steps()) views.push_back(ViewOf(st));
  }
  const char* list = program.int8() ? "int8" : "fp32";
  const std::vector<FrontierProgram::StepExec>& execs = program.step_execs();
  if (execs.size() != views.size()) {
    return Status::InvalidArgument(
        "program schedules " + std::to_string(execs.size()) + " steps, the " +
        list + " step list has " + std::to_string(views.size()));
  }
  const int64_t n = program.graph_nodes();
  if (n < 1) {
    return Status::InvalidArgument("program graph has no nodes");
  }
  if (program.targets().empty() || !SortedUniqueInRange(program.targets(), n)) {
    return Status::InvalidArgument(
        "program targets must be non-empty, sorted, unique, and within the "
        "graph's " + std::to_string(n) + " nodes");
  }

  std::vector<std::vector<int64_t>> frontier(
      static_cast<size_t>(plan.num_buffers()));
  for (size_t i = 0; i < execs.size(); ++i) {
    const MixView& v = views[i];
    const FrontierProgram::StepExec& se = execs[i];
    const std::string where = std::string(list) + " step " + std::to_string(i) +
                              " schedule: ";
    if (!SortedUniqueInRange(se.rows, n)) {
      return Invalid(where, "row list is not sorted/unique within the graph's " +
                                std::to_string(n) + " nodes");
    }
    if (se.rows.empty()) continue;  // dead step: executors skip, state keeps

    switch (v.kind) {
      case MixKind::kRowParallel: {
        if (se.src_is_input) {
          if (v.src != ExecutionPlan::kInput || !v.reads_input_ok) {
            return Invalid(where, "gathers from the input matrix but the plan "
                                  "step does not read it");
          }
          // Input gathers carry global node ids and must name exactly the
          // rows the step computes.
          if (se.gather != se.rows) {
            return Invalid(where, "input gather list must equal the step's "
                                  "row list");
          }
          break;
        }
        if (v.src == ExecutionPlan::kInput) {
          return Invalid(where, "plan step reads the input matrix but the "
                                "schedule stages it as a scratch buffer");
        }
        const std::vector<int64_t>& src_rows =
            frontier[static_cast<size_t>(v.src)];
        if (se.gather.empty()) {
          if (src_rows != se.rows) {
            return Invalid(where, "no gather, but the source frontier does "
                                  "not equal the step's row list");
          }
          break;
        }
        if (se.gather.size() != se.rows.size()) {
          return Invalid(where, "gather list length " +
                                    std::to_string(se.gather.size()) +
                                    " != row count " +
                                    std::to_string(se.rows.size()));
        }
        for (size_t j = 0; j < se.gather.size(); ++j) {
          const int64_t g = se.gather[j];
          if (g < 0 || g >= static_cast<int64_t>(src_rows.size())) {
            return Invalid(where, "gather position " + std::to_string(g) +
                                      " outside the source frontier of " +
                                      std::to_string(src_rows.size()) + " rows");
          }
          if (src_rows[static_cast<size_t>(g)] != se.rows[j]) {
            return Invalid(where, "gather position " + std::to_string(j) +
                                      " stages node " +
                                      std::to_string(src_rows[static_cast<size_t>(g)]) +
                                      ", row list wants " +
                                      std::to_string(se.rows[j]));
          }
        }
        break;
      }
      case MixKind::kSpmm: {
        const int64_t expect_cols =
            se.src_is_input
                ? n
                : static_cast<int64_t>(
                      frontier[static_cast<size_t>(v.src)].size());
        if (se.src_is_input && v.src != ExecutionPlan::kInput) {
          return Invalid(where, "slice keeps global columns but the plan step "
                                "reads a scratch buffer");
        }
        if (!se.src_is_input && v.src == ExecutionPlan::kInput) {
          return Invalid(where, "plan step reads the input matrix but the "
                                "slice's columns were remapped");
        }
        MIXQ_RETURN_NOT_OK(
            VerifyInduced(where, se.induced, se.rows.size(), expect_cols));
        break;
      }
      case MixKind::kAdd: {
        if (v.src == ExecutionPlan::kInput || v.src2 == ExecutionPlan::kInput) {
          return Invalid(where, "add operands must be scratch buffers");
        }
        if (frontier[static_cast<size_t>(v.src)] != se.rows ||
            frontier[static_cast<size_t>(v.src2)] != se.rows) {
          return Invalid(where, "add operand frontiers are not aligned with "
                                "the step's row list");
        }
        break;
      }
    }
    frontier[static_cast<size_t>(v.dst)] = se.rows;
  }

  const int fin = program.int8() ? plan.int_final_buffer() : plan.final_buffer();
  if (frontier[static_cast<size_t>(fin)] != program.targets()) {
    return Status::InvalidArgument(
        "final buffer's frontier does not equal the program's targets");
  }
  return Status::OK();
}

bool VerifyPlansEnabled() {
#ifndef NDEBUG
  return true;
#else
  static const bool enabled = [] {
    const char* v = std::getenv("MIXQ_VERIFY");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
#endif
}

}  // namespace engine
}  // namespace mixq
