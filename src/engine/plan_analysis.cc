// Copyright 2026 MixQ-GNN Authors
#include "engine/plan_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "engine/execution_plan.h"
#include "quant/requant.h"
#include "sparse/spmm.h"

namespace mixq {
namespace engine {

namespace {

using Op = ExecutionPlan::Op;
using IntOp = ExecutionPlan::IntOp;
using Step = ExecutionPlan::Step;
using IntStep = ExecutionPlan::IntStep;

const char* OpName(Op op) {
  switch (op) {
    case Op::kQuantize: return "Quantize";
    case Op::kMatMul: return "MatMul";
    case Op::kSpmm: return "SpMM";
    case Op::kAdd: return "Add";
    case Op::kRelu: return "ReLU";
  }
  return "?";
}

const char* OpName(IntOp op) {
  switch (op) {
    case IntOp::kQuantizeInput: return "QuantizeInput";
    case IntOp::kGemmRequant: return "GemmRequant";
    case IntOp::kSpmmRequant: return "SpmmRequant";
    case IntOp::kAddRequant: return "AddRequant";
    case IntOp::kRelu: return "ReLU";
  }
  return "?";
}

/// Same rejection grammar as the structural verifier: every error names the
/// offending step, so lint output and load errors stay uniform.
std::string At(const char* list, size_t index, const char* op) {
  return std::string(list) + " step " + std::to_string(index) + " (" + op + "): ";
}

Status Invalid(const std::string& where, const std::string& what) {
  return Status::InvalidArgument(where + what);
}

/// The analysis assumes VerifyPlan already accepted the plan; any index or
/// dataflow violation found here is reported as such rather than crashed on.
Status Structural(const std::string& where) {
  return Invalid(where, "plan is structurally invalid (run the structural "
                        "verifier first)");
}

// ---- float interval domain -------------------------------------------------

/// Abstract value of one fp32 scratch buffer: a closed interval when the
/// producing chain bounds it (a quantize step clamps into its grid; affine
/// steps propagate), Top (unbounded) otherwise — notably across SpMM, whose
/// row sums depend on the graph. Float accumulation saturates to ±inf rather
/// than trapping, so Top is sound: the fp32 walk proves finiteness of the
/// frozen tables and documents the derivable ranges, it has no overflow
/// obligation to discharge.
struct FloatInterval {
  bool bounded = false;
  double lo = 0.0, hi = 0.0;

  static FloatInterval Top() { return {}; }
  static FloatInterval Of(double lo, double hi) { return {true, lo, hi}; }

  double abs_max() const { return std::max(std::fabs(lo), std::fabs(hi)); }
};

/// Value range a fake-quantize step emits: every output is Q⁻¹(Q(x)), i.e. a
/// grid point of `p`, so the interval is the dequantized grid extent.
FloatInterval GridValueRange(const QuantParams& p) {
  const double lo =
      static_cast<double>(p.qmin() - p.zero_point) * static_cast<double>(p.scale);
  const double hi =
      static_cast<double>(p.qmax() - p.zero_point) * static_cast<double>(p.scale);
  return FloatInterval::Of(lo, hi);
}

/// max_j Σᵢ |W[i][j]| and max_j |bias[j]| of one frozen linear, the affine
/// magnitude budget of a MatMul step. Also where non-finite table entries
/// are caught: a NaN weight would poison every logit downstream.
Status LinearMagnitudes(const LoweredLinear& lin, size_t index,
                        double* col_abs_sum, double* bias_abs_max) {
  const std::string where = "linear " + std::to_string(index) + ": ";
  std::vector<double> sums(static_cast<size_t>(lin.out_padded), 0.0);
  for (int64_t i = 0; i < lin.in; ++i) {
    for (int64_t j = 0; j < lin.out_padded; ++j) {
      const float w = lin.weight_fq[static_cast<size_t>(i * lin.out_padded + j)];
      if (!std::isfinite(w)) {
        return Status::InvalidArgument(where + "weight [" + std::to_string(i) +
                                       ", " + std::to_string(j) +
                                       "] is not finite");
      }
      sums[static_cast<size_t>(j)] += std::fabs(static_cast<double>(w));
    }
  }
  *col_abs_sum = 0.0;
  for (double s : sums) *col_abs_sum = std::max(*col_abs_sum, s);
  *bias_abs_max = 0.0;
  for (size_t j = 0; j < lin.bias.size(); ++j) {
    if (!std::isfinite(lin.bias[j])) {
      return Status::InvalidArgument(where + "bias [" + std::to_string(j) +
                                     "] is not finite");
    }
    *bias_abs_max =
        std::max(*bias_abs_max, std::fabs(static_cast<double>(lin.bias[j])));
  }
  return Status::OK();
}

Status WalkFloatRanges(const ExecutionPlan& plan,
                       const std::vector<double>& lin_col_abs_sum,
                       const std::vector<double>& lin_bias_abs_max) {
  const int num_buffers = plan.num_buffers();
  std::vector<FloatInterval> buf(static_cast<size_t>(num_buffers));
  const std::vector<Step>& steps = plan.steps();

  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& st = steps[i];
    const std::string where = At("fp32", i, OpName(st.op));
    if (st.dst < 0 || st.dst >= num_buffers) return Structural(where);

    auto source = [&](int src, FloatInterval* out) -> Status {
      if (src == ExecutionPlan::kInput) {
        *out = FloatInterval::Top();  // caller features are unconstrained
        return Status::OK();
      }
      if (src < 0 || src >= num_buffers) return Structural(where);
      *out = buf[static_cast<size_t>(src)];
      return Status::OK();
    };

    FloatInterval src;
    MIXQ_RETURN_NOT_OK(source(st.src, &src));
    FloatInterval out = FloatInterval::Top();

    switch (st.op) {
      case Op::kQuantize:
        // The fake-quantizer clamps into its grid regardless of the input.
        // (The structural verifier rejects identity quantize steps; Top keeps
        // the walk sound if one slips through anyway.)
        out = st.quant.identity ? FloatInterval::Top()
                                : GridValueRange(st.quant.params);
        break;
      case Op::kMatMul: {
        if (st.linear < 0 ||
            st.linear >= static_cast<int>(plan.linears().size())) {
          return Structural(where);
        }
        if (src.bounded) {
          const double bound =
              lin_col_abs_sum[static_cast<size_t>(st.linear)] * src.abs_max() +
              lin_bias_abs_max[static_cast<size_t>(st.linear)];
          out = std::isfinite(bound) ? FloatInterval::Of(-bound, bound)
                                     : FloatInterval::Top();
        }
        break;
      }
      case Op::kSpmm:
        // Row sums scale with the (unknown) graph degree: Top. Float
        // accumulation cannot trap, so there is nothing to prove here; the
        // integer walk carries the symbolic graph obligation.
        out = FloatInterval::Top();
        break;
      case Op::kAdd: {
        FloatInterval src2;
        MIXQ_RETURN_NOT_OK(source(st.src2, &src2));
        if (src.bounded && src2.bounded) {
          out = FloatInterval::Of(src.lo + src2.lo, src.hi + src2.hi);
        }
        break;
      }
      case Op::kRelu:
        out = src.bounded
                  ? FloatInterval::Of(std::max(src.lo, 0.0), std::max(src.hi, 0.0))
                  : FloatInterval::Top();
        break;
    }
    buf[static_cast<size_t>(st.dst)] = out;
  }
  return Status::OK();
}

// ---- integer code interval domain ------------------------------------------

/// Abstract value of one int8 code buffer: a closed interval of the codes it
/// can hold. Every producer clamps into its grid, so intervals are always
/// bounded; ReLU narrows the low end to 0 (and the narrowing propagates into
/// the next step's accumulator budget).
struct CodeInterval {
  int64_t lo = 0, hi = 0;

  int64_t abs_max() const { return std::max(std::llabs(lo), std::llabs(hi)); }
};

CodeInterval GridCodeRange(const QuantParams& p) {
  return {p.qmin(), p.qmax()};
}

/// The epilogue-consistency obligations shared by every requantizing step:
/// the emitter's clamps must BE the output grid (and live within int8
/// storage), and the folded double constants must be finite — a NaN total
/// would route every accumulator through the emitter's NaN branch and emit
/// the low clip for all logits with no other symptom.
Status CheckRequantEpilogue(const std::string& where, const IntStep& st) {
  const int64_t qmin = st.out_params.qmin();
  const int64_t qmax = st.out_params.qmax();
  if (st.emitter.lo != static_cast<int32_t>(qmin) ||
      st.emitter.hi != static_cast<int32_t>(qmax)) {
    return Invalid(where, "requant clamp [" + std::to_string(st.emitter.lo) +
                              ", " + std::to_string(st.emitter.hi) +
                              "] disagrees with the target grid [" +
                              std::to_string(qmin) + ", " +
                              std::to_string(qmax) + "]");
  }
  if (st.emitter.lo < -128 || st.emitter.hi > 127) {
    return Invalid(where, "requant clamp exceeds int8 storage");
  }
  if (!std::isfinite(st.emitter.vlo) || !std::isfinite(st.emitter.vhi) ||
      st.emitter.vlo > static_cast<double>(qmin - st.emitter.zp) ||
      st.emitter.vhi < static_cast<double>(qmax - st.emitter.zp)) {
    return Invalid(where, "requant pre-clamp does not cover the target grid");
  }
  if (st.op != IntOp::kAddRequant && !std::isfinite(st.total)) {
    return Invalid(where, "folded scale ratio is not finite");
  }
  if (st.op == IntOp::kAddRequant &&
      (!std::isfinite(st.s1) || !std::isfinite(st.s2))) {
    return Invalid(where, "folded operand ratios are not finite");
  }
  for (size_t j = 0; j < st.bias_over.size(); ++j) {
    if (!std::isfinite(st.bias_over[j])) {
      return Invalid(where, "bias/scale vector entry " + std::to_string(j) +
                                " is not finite");
    }
  }
  return Status::OK();
}

Status WalkIntRanges(const ExecutionPlan& plan, PlanRangeCertificate* cert) {
  const int num_buffers = plan.num_buffers();
  std::vector<CodeInterval> buf(static_cast<size_t>(num_buffers));
  std::vector<bool> written(static_cast<size_t>(num_buffers), false);
  const std::vector<IntStep>& steps = plan.int_steps();

  for (size_t i = 0; i < steps.size(); ++i) {
    const IntStep& st = steps[i];
    const std::string where = At("int8", i, OpName(st.op));
    if (st.dst < 0 || st.dst >= num_buffers) return Structural(where);

    auto source = [&](int src, CodeInterval* out) -> Status {
      if (src < 0 || src >= num_buffers || !written[static_cast<size_t>(src)]) {
        return Structural(where);
      }
      *out = buf[static_cast<size_t>(src)];
      return Status::OK();
    };

    CodeInterval out;
    switch (st.op) {
      case IntOp::kQuantizeInput:
        MIXQ_RETURN_NOT_OK(CheckRequantEpilogue(where, st));
        out = GridCodeRange(st.out_params);
        break;
      case IntOp::kGemmRequant: {
        CodeInterval src;
        MIXQ_RETURN_NOT_OK(source(st.src, &src));
        if (st.linear < 0 ||
            st.linear >= static_cast<int>(plan.linears().size())) {
          return Structural(where);
        }
        const LoweredLinear& lin =
            plan.linears()[static_cast<size_t>(st.linear)];
        if (lin.weight_q8.size() !=
            static_cast<size_t>(lin.in) * static_cast<size_t>(lin.out_padded)) {
          return Structural(where);
        }
        // (a) int32 accumulator: every signed partial sum of Σᵢ aᵢ·wᵢⱼ is
        // bounded by the source code magnitude times the worst column's
        // |w|-sum — computed from the ACTUAL frozen codes, so narrow-bit
        // weights buy depth the coarse k·127² cut cannot see.
        GemmRangeCert gc;
        gc.step = i;
        const int64_t amax = src.abs_max();
        const int64_t col_sum =
            MaxColumnAbsSum(lin.weight_q8.data(), lin.in, lin.out_padded);
        gc.acc_peak = amax * col_sum;
        if (gc.acc_peak > static_cast<int64_t>(INT32_MAX)) {
          return Invalid(
              where,
              "int32 accumulator can overflow: |acc| <= " +
                  std::to_string(amax) + " (source codes) * " +
                  std::to_string(col_sum) + " (max column |w|-sum) = " +
                  std::to_string(gc.acc_peak) + " > " +
                  std::to_string(INT32_MAX));
        }
        // (b) vpmaddwd pairwise intermediate: |a₀b₀ + a₁b₁| must keep the
        // int16-headroom margin the kernel contract documents. Grids are
        // capped at 8 bits, so the worst case is 2·127² = 32258 < 2^15.
        gc.pair_peak =
            PairIntermediatePeak(amax, lin.weight_params.qmax());
        if (gc.pair_peak > std::numeric_limits<int16_t>::max()) {
          return Invalid(where,
                         "vpmaddwd pairwise intermediate |a0*b0 + a1*b1| <= " +
                             std::to_string(gc.pair_peak) +
                             " exceeds the int16 headroom contract (32767)");
        }
        // (b') VNNI: the unsigned-shift kernel accumulates (aᵢ+128)·bᵢ, a
        // strictly larger magnitude. Not safe => the step is served by the
        // vpmaddwd/scalar kernels (certificate consumed at dispatch), so
        // this records a verdict rather than rejecting.
        gc.vnni_peak = (amax + 128) * col_sum;
        gc.vnni_safe = VnniAccumulationSafe(amax, col_sum);
        cert->gemms.push_back(gc);
        MIXQ_RETURN_NOT_OK(CheckRequantEpilogue(where, st));
        out = GridCodeRange(st.out_params);
        break;
      }
      case IntOp::kSpmmRequant: {
        CodeInterval src;
        MIXQ_RETURN_NOT_OK(source(st.src, &src));
        if (st.adj < 0 ||
            st.adj >= static_cast<int>(plan.adj_quants().size())) {
          return Structural(where);
        }
        const LoweredComponent& aq =
            plan.adj_quants()[static_cast<size_t>(st.adj)];
        if (aq.identity) return Structural(where);
        // (a), symbolically: each row accumulates nnz products of adjacency
        // codes by source codes. The per-row depth is a property of the
        // graph, so the proof obligation becomes the largest nnz for which
        // the int32 bound holds — checked against every concrete graph at
        // pairing time.
        SpmmRangeCert sc;
        sc.step = i;
        sc.src_code_max = src.abs_max();
        sc.adj_code_max = aq.params.qmax();
        sc.adj_scale = aq.params.scale;
        const int64_t per_entry = sc.adj_code_max * sc.src_code_max;
        sc.max_nnz = per_entry == 0
                         ? std::numeric_limits<int64_t>::max()
                         : static_cast<int64_t>(INT32_MAX) / per_entry;
        if (sc.max_nnz < 1) {
          return Invalid(where,
                         "int32 accumulator overflows on a single stored "
                         "entry: |adj| * |src| = " +
                             std::to_string(per_entry));
        }
        cert->spmms.push_back(sc);
        cert->max_spmm_nnz = std::min(cert->max_spmm_nnz, sc.max_nnz);
        MIXQ_RETURN_NOT_OK(CheckRequantEpilogue(where, st));
        out = GridCodeRange(st.out_params);
        break;
      }
      case IntOp::kAddRequant: {
        CodeInterval src, src2;
        MIXQ_RETURN_NOT_OK(source(st.src, &src));
        MIXQ_RETURN_NOT_OK(source(st.src2, &src2));
        // The add requant is pure double arithmetic (s1·q1 + s2·q2 through
        // the emitter) — no integer accumulator, only consistency to prove.
        MIXQ_RETURN_NOT_OK(CheckRequantEpilogue(where, st));
        out = GridCodeRange(st.out_params);
        break;
      }
      case IntOp::kRelu: {
        CodeInterval src;
        MIXQ_RETURN_NOT_OK(source(st.src, &src));
        // Exact on symmetric grids; narrows the interval, and the narrowing
        // is real: a post-ReLU buffer feeds the next GEMM with lo = 0.
        out = {std::max<int64_t>(src.lo, 0), std::max<int64_t>(src.hi, 0)};
        break;
      }
    }
    buf[static_cast<size_t>(st.dst)] = out;
    written[static_cast<size_t>(st.dst)] = true;
  }
  return Status::OK();
}

}  // namespace

int64_t MaxColumnAbsSum(const int8_t* w, int64_t k, int64_t n) {
  std::vector<int64_t> sums(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < k; ++i) {
    const int8_t* row = w + i * n;
    for (int64_t j = 0; j < n; ++j) {
      sums[static_cast<size_t>(j)] += std::llabs(row[j]);
    }
  }
  int64_t best = 0;
  for (int64_t s : sums) best = std::max(best, s);
  return best;
}

Result<PlanRangeCertificate> AnalyzePlanRanges(const ExecutionPlan& plan) {
  PlanRangeCertificate cert;

  // Frozen-table finiteness + the per-linear magnitude budgets the float
  // walk consumes. Runs over every linear regardless of which list uses it.
  std::vector<double> col_abs_sum(plan.linears().size(), 0.0);
  std::vector<double> bias_abs_max(plan.linears().size(), 0.0);
  for (size_t i = 0; i < plan.linears().size(); ++i) {
    MIXQ_RETURN_NOT_OK(LinearMagnitudes(plan.linears()[i], i, &col_abs_sum[i],
                                        &bias_abs_max[i]));
  }

  MIXQ_RETURN_NOT_OK(WalkFloatRanges(plan, col_abs_sum, bias_abs_max));
  if (plan.SupportsInt8()) {
    MIXQ_RETURN_NOT_OK(WalkIntRanges(plan, &cert));
  }
  return cert;
}

GraphRangeBounds ComputeGraphRangeBounds(const SparseOperator& op) {
  GraphRangeBounds bounds;
  const std::vector<int64_t>& row_ptr = op.matrix().row_ptr();
  for (size_t r = 1; r < row_ptr.size(); ++r) {
    bounds.max_row_nnz = std::max(bounds.max_row_nnz, row_ptr[r] - row_ptr[r - 1]);
  }
  for (float v : op.matrix().values()) {
    if (!std::isfinite(v)) {
      bounds.values_finite = false;
      continue;
    }
    bounds.value_abs_max = std::max(bounds.value_abs_max, std::fabs(v));
  }
  return bounds;
}

Status CheckGraphAgainstCertificate(const PlanRangeCertificate& cert,
                                    const GraphRangeBounds& bounds) {
  if (!bounds.values_finite) {
    return Status::InvalidArgument(
        "graph adjacency holds non-finite values; quantizing them is "
        "undefined");
  }
  if (bounds.max_row_nnz <= cert.max_spmm_nnz) return Status::OK();
  // The symbolic bound assumed full-scale adjacency codes. This graph's
  // values may sit well below the grid's clip point, in which case its codes
  // are provably smaller and the budget stretches — refine per step before
  // rejecting.
  for (const SpmmRangeCert& sc : cert.spmms) {
    if (bounds.max_row_nnz <= sc.max_nnz) continue;
    int64_t code_max = sc.adj_code_max;
    if (sc.adj_scale > 0.0f) {
      const double ratio = static_cast<double>(bounds.value_abs_max) /
                           static_cast<double>(sc.adj_scale);
      if (ratio < static_cast<double>(code_max)) {
        code_max = std::llround(ratio);
      }
    }
    const int64_t per_entry = code_max * sc.src_code_max;
    const int64_t refined =
        per_entry == 0 ? std::numeric_limits<int64_t>::max()
                       : static_cast<int64_t>(INT32_MAX) / per_entry;
    if (bounds.max_row_nnz > refined) {
      return Status::InvalidArgument(
          "int8 step " + std::to_string(sc.step) +
          " (SpmmRequant): graph max row depth " +
          std::to_string(bounds.max_row_nnz) +
          " exceeds the proven int32 accumulator budget of " +
          std::to_string(refined) + " stored entries (|adj codes| <= " +
          std::to_string(code_max) + ", |src codes| <= " +
          std::to_string(sc.src_code_max) + "); serve fp32");
    }
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace mixq
