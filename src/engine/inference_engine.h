// Copyright 2026 MixQ-GNN Authors
// InferenceEngine — the serving surface of the third API layer
// (SchemeRegistry → Experiment → engine).
//
// An engine holds a named registry of CompiledModels and answers
// Predict(model, batch) over it: the deployment-shaped counterpart to the
// Experiment facade. Registration and lookup take a readers-writer lock over
// the model map; the prediction hot path itself holds **no lock** for
// lowered models (each serving thread reuses a thread-local scratch, and
// monitoring counters are atomics bumped after the forward), so concurrent
// requests scale across cores. Per-model request/failure counters come back
// through GetStats() for monitoring.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/compiled_model.h"

namespace mixq {
namespace engine {

class InferenceEngine {
 public:
  /// Adds a model under `name`. kInvalidArgument on empty name, null model,
  /// or duplicate registration (use ReplaceModel for hot-swaps).
  Status RegisterModel(const std::string& name, CompiledModelPtr model);

  /// Registers or atomically replaces `name` (zero-downtime model rollout).
  /// A replaced model keeps its success counter.
  Status ReplaceModel(const std::string& name, CompiledModelPtr model);

  /// Removes a model; kNotFound when absent. In-flight Predicts on the
  /// removed model finish safely (shared ownership).
  Status UnregisterModel(const std::string& name);

  /// kNotFound when absent.
  Result<CompiledModelPtr> GetModel(const std::string& name) const;

  /// Registered model names, sorted.
  std::vector<std::string> ModelNames() const;

  /// Runs `name`'s model over one batch (a graph's features + its matching
  /// normalized operator); see CompiledModel::Predict for the contract.
  Result<Tensor> Predict(const std::string& name, const Tensor& features,
                         const SparseOperatorPtr& op) const;

  /// Monitoring counters. Lock-free by design: a snapshot taken while
  /// requests are in flight may momentarily show requests > failures +
  /// sum(per_model) (a request is counted on entry, its outcome when it
  /// finishes). `per_model` covers currently registered models — counters
  /// survive ReplaceModel but start at zero after UnregisterModel +
  /// RegisterModel under the same name.
  struct Stats {
    int64_t requests = 0;  ///< total Predict calls
    int64_t failures = 0;  ///< Predict calls that returned an error
    std::map<std::string, int64_t> per_model;  ///< successful calls per model
  };
  Stats GetStats() const;

 private:
  struct Entry {
    CompiledModelPtr model;
    /// Success counter, shared so in-flight requests on a just-unregistered
    /// model still have somewhere to count. Atomic: no stats lock on the
    /// prediction hot path.
    std::shared_ptr<std::atomic<int64_t>> successes;
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> models_;

  mutable std::atomic<int64_t> requests_{0};
  mutable std::atomic<int64_t> failures_{0};
};

}  // namespace engine
}  // namespace mixq
