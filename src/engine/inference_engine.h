// Copyright 2026 MixQ-GNN Authors
// InferenceEngine — the serving surface of the third API layer
// (SchemeRegistry → Experiment → engine).
//
// An engine holds a named registry of CompiledModels and answers
// Predict(model, batch) over it: the deployment-shaped counterpart to the
// Experiment facade. Registration, lookup, and prediction are all
// thread-safe (readers-writer lock over the model map; each CompiledModel
// additionally serializes its own forwards), so one engine instance can
// back a multi-threaded server loop. Per-model request/failure counters
// come back through GetStats() for monitoring.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/compiled_model.h"

namespace mixq {
namespace engine {

class InferenceEngine {
 public:
  /// Adds a model under `name`. kInvalidArgument on empty name, null model,
  /// or duplicate registration (use ReplaceModel for hot-swaps).
  Status RegisterModel(const std::string& name, CompiledModelPtr model);

  /// Registers or atomically replaces `name` (zero-downtime model rollout).
  Status ReplaceModel(const std::string& name, CompiledModelPtr model);

  /// Removes a model; kNotFound when absent. In-flight Predicts on the
  /// removed model finish safely (shared ownership).
  Status UnregisterModel(const std::string& name);

  /// kNotFound when absent.
  Result<CompiledModelPtr> GetModel(const std::string& name) const;

  /// Registered model names, sorted.
  std::vector<std::string> ModelNames() const;

  /// Runs `name`'s model over one batch (a graph's features + its matching
  /// normalized operator); see CompiledModel::Predict for the contract.
  Result<Tensor> Predict(const std::string& name, const Tensor& features,
                         const SparseOperatorPtr& op) const;

  /// Monitoring counters. Snapshots are internally consistent.
  struct Stats {
    int64_t requests = 0;  ///< total Predict calls
    int64_t failures = 0;  ///< Predict calls that returned an error
    std::map<std::string, int64_t> per_model;  ///< successful calls per model
  };
  Stats GetStats() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, CompiledModelPtr> models_;

  mutable std::mutex stats_mu_;
  mutable Stats stats_;
};

}  // namespace engine
}  // namespace mixq
