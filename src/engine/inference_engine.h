// Copyright 2026 MixQ-GNN Authors
// InferenceEngine — the serving surface of the third API layer
// (SchemeRegistry → Experiment → engine).
//
// The engine pins two named registries: CompiledModels (RegisterModel /
// ReplaceModel for zero-downtime rollouts) and immutable GraphContexts
// (RegisterGraph / ReplaceGraph for feature updates). Requests then carry
// only names plus node ids — no tensors cross the API per call.
//
// The primary entry point is asynchronous: Submit(PredictRequest) returns a
// std::future<Result<PredictResponse>>. Requests pass a bounded admission
// queue (kResourceExhausted on overflow, kDeadlineExceeded past their
// deadline) into a dynamic micro-batcher (engine/batcher.h) that coalesces
// all queued requests for the same (model, graph, precision) into ONE
// lowered forward on the persistent thread pool and hands each caller just
// its logit rows — N concurrent single-node requests cost one forward, not
// N. Full batch logits are cached per (model, graph) version; ReplaceModel /
// ReplaceGraph invalidate by bumping the version, so repeat queries on a
// static graph are a row gather.
//
// The original synchronous Predict(name, features, op) survives as a thin
// wrapper over the same forward path (always exact fp32, bitwise identical
// to CompiledModel::Predict). Registration and lookup take a readers-writer
// lock; forwards themselves hold no lock for lowered models. GetStats()
// reports engine-wide and per-model success/failure counters plus p50/p99
// serving latency from a lock-free histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/batcher.h"
#include "engine/compiled_model.h"

namespace mixq {
namespace engine {

class InferenceEngine {
 public:
  /// `options` sizes the admission queue and toggles the result cache.
  /// The batcher's dispatcher thread starts immediately.
  explicit InferenceEngine(BatcherOptions options = BatcherOptions());

  /// Closes admission; every already-admitted request is still served (or
  /// expired) before the destructor returns.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  // ---- Model registry ------------------------------------------------------

  /// Adds a model under `name`. kInvalidArgument on empty name, null model,
  /// or duplicate registration (use ReplaceModel for hot-swaps).
  Status RegisterModel(const std::string& name, CompiledModelPtr model);

  /// Registers or atomically replaces `name` (zero-downtime model rollout).
  /// A replaced model keeps its counters; cached results for it are
  /// invalidated (the registry version bumps).
  Status ReplaceModel(const std::string& name, CompiledModelPtr model);

  /// Removes a model; kNotFound when absent. In-flight requests on the
  /// removed model finish safely (shared ownership).
  Status UnregisterModel(const std::string& name);

  /// kNotFound when absent.
  Result<CompiledModelPtr> GetModel(const std::string& name) const;

  /// Registered model names, sorted.
  std::vector<std::string> ModelNames() const;

  /// Loads a model bundle (engine/model_bundle.h) from `path` and registers
  /// it under `name` — the serving half of the train-once/serve-anywhere
  /// split: the process needs no training code, no scheme, no dataset.
  /// Propagates the loader's typed errors (kNotFound missing file,
  /// kOutOfRange truncation, kInvalidArgument corruption/CRC,
  /// kNotImplemented future format) and RegisterModel's duplicate-name
  /// error. Use ReplaceModel(name, LoadBundle(path)) for hot reloads.
  Status LoadModelFromFile(const std::string& name, const std::string& path);

  // ---- Graph registry ------------------------------------------------------

  /// Pins `features` + `op` as the named immutable graph so requests can
  /// reference it by name. kInvalidArgument on empty name, undefined
  /// features, null/mismatched operator, or duplicate name (use
  /// ReplaceGraph for updates).
  Status RegisterGraph(const std::string& name, Tensor features,
                       SparseOperatorPtr op);

  /// Registers or atomically replaces the named graph (feature update /
  /// topology change). Bumps the graph version: cached results against the
  /// old graph can no longer be served.
  Status ReplaceGraph(const std::string& name, Tensor features,
                      SparseOperatorPtr op);

  /// Removes a graph; kNotFound when absent. In-flight requests finish
  /// safely (shared ownership).
  Status UnregisterGraph(const std::string& name);

  /// kNotFound when absent.
  Result<GraphContextPtr> GetGraph(const std::string& name) const;

  /// Registered graph names, sorted.
  std::vector<std::string> GraphNames() const;

  /// Loads a graph bundle from `path` and registers it under `name`; the
  /// bundle carries the normalized operator as served, so no normalization
  /// code runs here. Error semantics mirror LoadModelFromFile.
  Status LoadGraphFromFile(const std::string& name, const std::string& path);

  // ---- Introspection -------------------------------------------------------

  /// One registered model as the introspection endpoints report it.
  struct ModelIntrospection {
    CompiledModelInfo info;
    /// Registry version (bumped by ReplaceModel; part of the result-cache
    /// key, so a bump is observable as PredictResponse.cache_hit = false).
    uint64_t version = 0;
  };

  /// One registered graph: dimensions plus its registry version.
  struct GraphIntrospection {
    int64_t nodes = 0;
    int64_t feature_dim = 0;
    int64_t nnz = 0;
    bool int8_depth_safe = false;
    /// Pinned in a locality-reordered internal row order (invisible in
    /// served values; see GraphContext).
    bool reordered = false;
    uint64_t version = 0;
  };

  /// Snapshot of every registered model / graph, keyed by name — what an
  /// operator dashboard (or examples/serving.cpp) prints.
  std::map<std::string, ModelIntrospection> ListModels() const;
  std::map<std::string, GraphIntrospection> ListGraphs() const;

  // ---- Serving -------------------------------------------------------------

  /// Admits one request into the micro-batcher. Always returns a valid
  /// future; it resolves to kResourceExhausted when the admission queue is
  /// full, kDeadlineExceeded when the deadline passes first, kNotFound for
  /// unknown names, and otherwise to the requested logit rows plus timing
  /// metadata. Thread-safe; never blocks on the forward itself.
  std::future<Result<PredictResponse>> Submit(PredictRequest request);

  /// Synchronous single-graph forward with caller-supplied tensors — the
  /// pre-registry API, kept as a thin wrapper over the same execution path
  /// the batcher uses (exact fp32 mode; logits bitwise identical to
  /// CompiledModel::Predict). Counts into the same stats.
  Result<Tensor> Predict(const std::string& name, const Tensor& features,
                         const SparseOperatorPtr& op) const;

  // ---- Monitoring ----------------------------------------------------------

  struct ModelStats {
    int64_t successes = 0;  ///< requests answered with logits
    int64_t failures = 0;   ///< requests failed after model resolution
    double p50_us = 0.0;    ///< median serving latency (admission→fulfil)
    double p99_us = 0.0;    ///< tail serving latency
    /// Shared-forward wall time split by the precision the forward resolved
    /// to — one sample per forward actually run (cache hits record
    /// nothing), so fp32 vs int8 kernel paths compare directly.
    int64_t fp32_forwards = 0;
    int64_t int8_forwards = 0;
    double fp32_forward_p50_us = 0.0;
    double fp32_forward_p99_us = 0.0;
    double int8_forward_p50_us = 0.0;
    double int8_forward_p99_us = 0.0;
  };

  /// Circuit-breaker counters plus the current state of every tracked
  /// (model, graph) pair, keyed "model|graph". A pair with no entry is
  /// closed with zero consecutive failures (entries only exist after a
  /// forward failure).
  struct BreakerStats {
    int64_t trips = 0;       ///< closed/half-open -> open transitions
    int64_t fast_fails = 0;  ///< groups kUnavailable'd by an open breaker
    int64_t probes = 0;      ///< half-open probe forwards let through
    int64_t closes = 0;      ///< recoveries (any state -> closed on success)
    std::map<std::string, std::string> state;  ///< "closed"|"open"|"half_open"
  };

  /// Breaker state machine (see BreakerAdmit below for the transitions).
  enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

  /// Monitoring counters. Lock-free by design: a snapshot taken while
  /// requests are in flight may momentarily be inconsistent (a request is
  /// counted on entry, its outcome when it finishes). Per-model entries
  /// cover currently registered models — counters survive ReplaceModel but
  /// start at zero after UnregisterModel + RegisterModel under the same
  /// name. `failures` also counts requests that never resolved a model
  /// (unknown name, queue overflow, pre-dispatch expiry).
  struct Stats {
    int64_t requests = 0;  ///< Submit + Predict calls
    int64_t failures = 0;  ///< requests that returned an error
    Batcher::Stats batcher;  ///< admission/coalescing/cache counters
    BreakerStats breaker;    ///< circuit-breaker activity and states
    std::map<std::string, ModelStats> per_model;
  };
  Stats GetStats() const;

 private:
  struct ModelEntry {
    CompiledModelPtr model;
    /// From next_version_; part of the batcher's result-cache key.
    uint64_t version = 0;
    /// Shared so in-flight requests on a just-unregistered model still have
    /// somewhere to count.
    ModelCountersPtr counters;
  };

  Result<ModelHandle> LookupModel(const std::string& name) const;
  Result<GraphContextPtr> LookupGraph(const std::string& name) const;

  /// Per-(model, graph) circuit breaker: `breaker_failure_threshold`
  /// consecutive forward failures trip it open; while open, groups fast-fail
  /// kUnavailable without running the forward; after `breaker_open_duration`
  /// one half-open probe forward is let through — success closes the
  /// breaker, failure re-opens it. The batcher calls BreakerAdmit
  /// immediately before each group forward and BreakerReport right after
  /// (cache hits and load sheds bypass both).
  struct BreakerEntry {
    int consecutive_failures = 0;
    BreakerState state = BreakerState::kClosed;
    ServingClock::time_point open_until{};
    bool probe_in_flight = false;
  };
  Status BreakerAdmit(const std::string& model, const std::string& graph);
  void BreakerReport(const std::string& model, const std::string& graph,
                     bool ok);
  /// Drops breaker entries referencing an unregistered model/graph name
  /// (empty string = match any), so transient names don't accumulate state.
  void EraseBreakers(const std::string& model, const std::string& graph);

  /// Readers-writer lock over both registries; annotated so clang's
  /// -Wthread-safety proves every map access holds it (common/
  /// thread_annotations.h).
  mutable SharedMutex mu_;
  std::map<std::string, ModelEntry> models_ MIXQ_GUARDED_BY(mu_);
  std::map<std::string, GraphContextPtr> graphs_ MIXQ_GUARDED_BY(mu_);
  /// Engine-global monotonic version source for models AND graphs.
  /// Registrations never reuse a version — so a cache entry from a name
  /// that was unregistered and re-registered can never validate.
  uint64_t next_version_ MIXQ_GUARDED_BY(mu_) = 1;

  mutable std::atomic<int64_t> requests_{0};
  mutable std::atomic<int64_t> failures_{0};

  /// Breaker configuration (from BatcherOptions) and state. Its own mutex,
  /// not mu_: admit/report run on the dispatcher's forward path and must
  /// never contend with registry writers.
  const int breaker_failure_threshold_;
  const ServingClock::duration breaker_open_duration_;
  mutable Mutex breaker_mu_;
  std::map<std::string, BreakerEntry> breakers_ MIXQ_GUARDED_BY(breaker_mu_);
  std::atomic<int64_t> breaker_trips_{0};
  std::atomic<int64_t> breaker_fast_fails_{0};
  std::atomic<int64_t> breaker_probes_{0};
  std::atomic<int64_t> breaker_closes_{0};

  /// Row order RegisterGraph pins graphs in, resolved once at construction
  /// (kAuto consults MIXQ_REORDER); never kAuto after that.
  const GraphReorder graph_reorder_;

  /// Declared last: destroyed first, so the dispatcher thread (whose
  /// Backend callbacks reach into the maps above) is joined while they are
  /// still alive.
  std::unique_ptr<Batcher> batcher_;
};

}  // namespace engine
}  // namespace mixq
