// Copyright 2026 MixQ-GNN Authors
#include "engine/stats_json.h"

#include <cstdint>

#include "common/json_util.h"

namespace mixq {
namespace engine {

namespace {

void AppendI64(const char* key, int64_t v, bool* first, std::string* out) {
  if (!*first) *out += ", ";
  *first = false;
  json::AppendJsonString(key, out);
  *out += ": ";
  *out += std::to_string(v);
}

void AppendF64(const char* key, double v, bool* first, std::string* out) {
  if (!*first) *out += ", ";
  *first = false;
  json::AppendJsonString(key, out);
  *out += ": ";
  json::AppendJsonNumber(v, out);
}

}  // namespace

std::string FormatStatsJson(const InferenceEngine::Stats& stats) {
  std::string out = "{";
  bool first = true;
  AppendI64("requests", stats.requests, &first, &out);
  AppendI64("failures", stats.failures, &first, &out);

  out += ", \"batcher\": {";
  bool b = true;
  AppendI64("submitted", stats.batcher.submitted, &b, &out);
  AppendI64("rejected", stats.batcher.rejected, &b, &out);
  AppendI64("expired", stats.batcher.expired, &b, &out);
  AppendI64("forwards", stats.batcher.forwards, &b, &out);
  AppendI64("pruned_forwards", stats.batcher.pruned_forwards, &b, &out);
  AppendI64("full_forwards", stats.batcher.full_forwards, &b, &out);
  AppendI64("cache_hits", stats.batcher.cache_hits, &b, &out);
  AppendI64("shed", stats.batcher.shed, &b, &out);
  AppendI64("contained_faults", stats.batcher.contained_faults, &b, &out);
  AppendI64("watchdog_expired", stats.batcher.watchdog_expired, &b, &out);
  AppendI64("queue_depth", stats.batcher.queue_depth, &b, &out);
  AppendI64("in_dispatch", stats.batcher.in_dispatch, &b, &out);
  out += "}";

  out += ", \"breaker\": {";
  bool k = true;
  AppendI64("trips", stats.breaker.trips, &k, &out);
  AppendI64("fast_fails", stats.breaker.fast_fails, &k, &out);
  AppendI64("probes", stats.breaker.probes, &k, &out);
  AppendI64("closes", stats.breaker.closes, &k, &out);
  out += ", \"state\": {";
  bool s = true;
  for (const auto& [key, state] : stats.breaker.state) {
    if (!s) out += ", ";
    s = false;
    json::AppendJsonString(key, &out);
    out += ": ";
    json::AppendJsonString(state, &out);
  }
  out += "}}";

  out += ", \"per_model\": {";
  bool m = true;
  for (const auto& [name, ms] : stats.per_model) {
    if (!m) out += ", ";
    m = false;
    json::AppendJsonString(name, &out);
    out += ": {";
    bool f = true;
    AppendI64("successes", ms.successes, &f, &out);
    AppendI64("failures", ms.failures, &f, &out);
    AppendF64("p50_us", ms.p50_us, &f, &out);
    AppendF64("p99_us", ms.p99_us, &f, &out);
    AppendI64("fp32_forwards", ms.fp32_forwards, &f, &out);
    AppendI64("int8_forwards", ms.int8_forwards, &f, &out);
    AppendF64("fp32_forward_p50_us", ms.fp32_forward_p50_us, &f, &out);
    AppendF64("fp32_forward_p99_us", ms.fp32_forward_p99_us, &f, &out);
    AppendF64("int8_forward_p50_us", ms.int8_forward_p50_us, &f, &out);
    AppendF64("int8_forward_p99_us", ms.int8_forward_p99_us, &f, &out);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace engine
}  // namespace mixq
