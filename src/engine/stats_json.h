// Copyright 2026 MixQ-GNN Authors
// The ONE serialization of InferenceEngine::Stats — shared by the network
// metrics endpoint (src/net/server.h answers kStatsRequest frames with it),
// bench/serving_latency.cpp (embeds it into BENCH_serving.json), and
// examples/serving.cpp (prints it instead of hand-rolled counters). Keeping
// every consumer on this formatter means a new counter shows up everywhere
// at once and the metrics grammar cannot drift between surfaces.
//
// Grammar: the common/json_util.h conventions (same as the CheckReport
// format of mixq_lint / mixq_inspect --verify --json) — snake_case keys,
// escaped strings, non-finite numbers emitted as 0. Consumers must tolerate
// NEW keys appearing (the minor-version rule of every format in this repo);
// existing keys are never renamed within a protocol major version.
#pragma once

#include <string>

#include "engine/inference_engine.h"

namespace mixq {
namespace engine {

/// Renders a Stats snapshot as one JSON object:
///   {"requests": N, "failures": N,
///    "batcher": {"submitted": N, "rejected": N, "expired": N,
///                "forwards": N, "pruned_forwards": N, "full_forwards": N,
///                "cache_hits": N, "shed": N, "contained_faults": N,
///                "watchdog_expired": N, "queue_depth": N, "in_dispatch": N},
///    "breaker": {"trips": N, "fast_fails": N, "probes": N, "closes": N,
///                "state": {"model|graph": "open", ...}},
///    "per_model": {"name": {"successes": N, "failures": N,
///                           "p50_us": F, "p99_us": F,
///                           "fp32_forwards": N, "int8_forwards": N,
///                           "fp32_forward_p50_us": F, "fp32_forward_p99_us": F,
///                           "int8_forward_p50_us": F, "int8_forward_p99_us": F},
///                  ...}}
std::string FormatStatsJson(const InferenceEngine::Stats& stats);

}  // namespace engine
}  // namespace mixq
