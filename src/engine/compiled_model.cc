// Copyright 2026 MixQ-GNN Authors
#include "engine/compiled_model.h"

#include <cmath>

namespace mixq {
namespace engine {

namespace {

int64_t CountParams(std::vector<Tensor> params) {
  int64_t total = 0;
  for (auto& p : params) total += p.numel();
  return total;
}

}  // namespace

Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact) {
  if (artifact.scheme == nullptr) {
    return Status::InvalidArgument("artifact has no quantization scheme");
  }
  const bool is_gcn = artifact.model_kind == NodeModelKind::kGcn;
  if (is_gcn && artifact.gcn == nullptr) {
    return Status::InvalidArgument("artifact declares a GCN but holds no network");
  }
  if (!is_gcn && artifact.sage == nullptr) {
    return Status::InvalidArgument("artifact declares a SAGE but holds no network");
  }

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->model_kind_ = artifact.model_kind;
  model->gcn_ = artifact.gcn;
  model->sage_ = artifact.sage;
  model->scheme_ = artifact.scheme;
  model->forward_mu_ = artifact.forward_mu != nullptr
                           ? artifact.forward_mu
                           : std::make_shared<std::mutex>();

  // Freeze: eval mode, no gradients. Quantizer ranges are already frozen —
  // observers only update in training mode.
  std::vector<Tensor> params;
  if (is_gcn) {
    model->gcn_->SetTraining(false);
    params = model->gcn_->Parameters();
    model->info_.in_features = model->gcn_->config().in_features;
    model->info_.out_dim = model->gcn_->config().num_classes;
  } else {
    model->sage_->SetTraining(false);
    params = model->sage_->Parameters();
    model->info_.in_features = model->sage_->config().in_features;
    model->info_.out_dim = model->sage_->config().num_classes;
  }
  for (auto& p : params) p.SetRequiresGrad(false);
  model->info_.param_count = CountParams(std::move(params));
  model->info_.scheme_label = artifact.scheme_label;

  // Capture the per-component bit assignment as metadata.
  for (const std::string& id : artifact.scheme->ComponentIds()) {
    model->info_.bit_assignment[id] = static_cast<int>(
        std::lround(artifact.scheme->EffectiveBits(id, 32.0)));
  }
  if (artifact.op != nullptr && artifact.features.defined()) {
    BitOpsReport report =
        is_gcn ? model->gcn_->ComputeBitOps(artifact.features.rows(),
                                            artifact.op->nnz(), *artifact.scheme)
               : model->sage_->ComputeBitOps(artifact.features.rows(),
                                             artifact.op->nnz(), *artifact.scheme);
    model->info_.avg_bits = report.AverageBits();
  }
  return CompiledModelPtr(model);
}

Result<Tensor> CompiledModel::Predict(const Tensor& features,
                                      const SparseOperatorPtr& op) const {
  if (!features.defined()) {
    return Status::InvalidArgument("features tensor is undefined");
  }
  if (op == nullptr) return Status::InvalidArgument("sparse operator is null");
  if (features.cols() != info_.in_features) {
    return Status::InvalidArgument(
        "feature dimension mismatch: model expects " +
        std::to_string(info_.in_features) + ", got " +
        std::to_string(features.cols()));
  }
  if (op->matrix().cols() != features.rows()) {
    return Status::InvalidArgument(
        "operator/features mismatch: operator has " +
        std::to_string(op->matrix().cols()) + " columns, features " +
        std::to_string(features.rows()) + " rows");
  }

  // Serialize forwards: replays the training pipeline's eval path exactly
  // (BeginStep(false) then a training=false forward), which is what makes
  // Predict bitwise-match the experiment's eval logits.
  std::lock_guard<std::mutex> lock(*forward_mu_);
  scheme_->BeginStep(false);
  if (model_kind_ == NodeModelKind::kGcn) {
    return gcn_->Forward(features, op, scheme_.get(), nullptr);
  }
  return sage_->Forward(features, op, scheme_.get(), nullptr);
}

}  // namespace engine
}  // namespace mixq
