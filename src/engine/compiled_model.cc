// Copyright 2026 MixQ-GNN Authors
#include "engine/compiled_model.h"

#include <cmath>
#include <exception>

#include "engine/plan_verifier.h"

namespace mixq {
namespace engine {

namespace {

int64_t CountParams(const std::vector<Tensor>& params) {
  int64_t total = 0;
  for (const auto& p : params) total += p.numel();
  return total;
}

// Containment boundary: the executors (and the pipeline-replay reference
// path) are where serving runs arbitrary compute, so an exception escaping
// them — a kernel bug, an allocation failure growing scratch, an injected
// fault — must become a typed kInternal Status here instead of unwinding
// into the dispatcher thread and killing the process.
template <typename Fn>
Result<Tensor> RunContained(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Status::Internal(std::string(what) + " failed: " + e.what());
  } catch (...) {
    return Status::Internal(std::string(what) +
                            " failed with a non-standard exception");
  }
}

}  // namespace

Result<CompiledModelPtr> CompileModel(const ModelArtifact& artifact) {
  if (artifact.scheme == nullptr) {
    return Status::InvalidArgument("artifact has no quantization scheme");
  }
  const bool is_gcn = artifact.model_kind == NodeModelKind::kGcn;
  if (is_gcn && artifact.gcn == nullptr) {
    return Status::InvalidArgument("artifact declares a GCN but holds no network");
  }
  if (!is_gcn && artifact.sage == nullptr) {
    return Status::InvalidArgument("artifact declares a SAGE but holds no network");
  }

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->model_kind_ = artifact.model_kind;
  model->gcn_ = artifact.gcn;
  model->sage_ = artifact.sage;
  model->scheme_ = artifact.scheme;
  model->forward_mu_ = artifact.forward_mu != nullptr
                           ? artifact.forward_mu
                           : std::make_shared<std::mutex>();

  // Freeze: eval mode, no gradients. Quantizer ranges are already frozen —
  // observers only update in training mode.
  std::vector<Tensor> params;
  if (is_gcn) {
    model->gcn_->SetTraining(false);
    params = model->gcn_->Parameters();
    model->info_.in_features = model->gcn_->config().in_features;
    model->info_.out_dim = model->gcn_->config().num_classes;
  } else {
    model->sage_->SetTraining(false);
    params = model->sage_->Parameters();
    model->info_.in_features = model->sage_->config().in_features;
    model->info_.out_dim = model->sage_->config().num_classes;
  }
  for (auto& p : params) p.SetRequiresGrad(false);
  model->info_.param_count = CountParams(params);
  model->info_.scheme_label = artifact.scheme_label;

  // Lowering pass: freeze the scheme into a flat, autograd-free plan with
  // compile-time quantized weights. Schemes that are not a fixed per-tensor
  // transform leave plan_ null and serve through PredictReference.
  model->plan_ = is_gcn ? ExecutionPlan::Lower(*model->gcn_, *artifact.scheme)
                        : ExecutionPlan::Lower(*model->sage_, *artifact.scheme);
  model->info_.lowered = model->plan_ != nullptr;
  model->info_.lowered_int8 = model->plan_ != nullptr && model->plan_->SupportsInt8();

  // Machine-checked lowering contract: every plan Lower emits must pass the
  // static verifier (always in debug builds, MIXQ_VERIFY=1 in release). A
  // failure here is a lowering bug, not a bad model.
  if (model->plan_ != nullptr && VerifyPlansEnabled()) {
    PlanShapes shapes;
    shapes.in_features = model->info_.in_features;
    shapes.out_dim = model->info_.out_dim;
    Status verified = VerifyPlan(*model->plan_, shapes);
    if (!verified.ok()) {
      return Status::Internal("lowering produced an invalid plan: " +
                              verified.message());
    }
  }

  // Value-range analysis (engine/plan_analysis.h): always attempted, so the
  // certificate is available to graph pairing whenever the proof goes
  // through. A failure is a lowering bug — fatal under the verify gate,
  // otherwise it just disables int8 serving (null certificate) while the
  // bitwise-exact fp32 paths keep working.
  if (model->plan_ != nullptr) {
    Result<PlanRangeCertificate> cert = AnalyzePlanRanges(*model->plan_);
    if (cert.ok()) {
      model->range_cert_ =
          std::make_unique<const PlanRangeCertificate>(cert.MoveValueOrDie());
    } else if (VerifyPlansEnabled()) {
      return Status::Internal("lowering produced a plan that fails range "
                              "analysis: " + cert.status().message());
    }
  }

  // Capture the per-component bit assignment as metadata.
  for (const std::string& id : artifact.scheme->ComponentIds()) {
    model->info_.bit_assignment[id] = static_cast<int>(
        std::lround(artifact.scheme->EffectiveBits(id, 32.0)));
  }
  if (artifact.op != nullptr && artifact.features.defined()) {
    BitOpsReport report =
        is_gcn ? model->gcn_->ComputeBitOps(artifact.features.rows(),
                                            artifact.op->nnz(), *artifact.scheme)
               : model->sage_->ComputeBitOps(artifact.features.rows(),
                                             artifact.op->nnz(), *artifact.scheme);
    model->info_.avg_bits = report.AverageBits();
  }
  return CompiledModelPtr(model);
}

Status CompiledModel::ValidateRequest(const Tensor& features,
                                      const SparseOperatorPtr& op) const {
  if (!features.defined()) {
    return Status::InvalidArgument("features tensor is undefined");
  }
  if (op == nullptr) return Status::InvalidArgument("sparse operator is null");
  if (features.cols() != info_.in_features) {
    return Status::InvalidArgument(
        "feature dimension mismatch: model expects " +
        std::to_string(info_.in_features) + ", got " +
        std::to_string(features.cols()));
  }
  if (op->matrix().cols() != features.rows()) {
    return Status::InvalidArgument(
        "operator/features mismatch: operator has " +
        std::to_string(op->matrix().cols()) + " columns, features " +
        std::to_string(features.rows()) + " rows");
  }
  return Status::OK();
}

Result<Tensor> CompiledModel::Predict(const Tensor& features,
                                      const SparseOperatorPtr& op) const {
  PredictScratch scratch;
  return Predict(features, op, &scratch);
}

Result<Tensor> CompiledModel::Predict(const Tensor& features,
                                      const SparseOperatorPtr& op,
                                      PredictScratch* scratch) const {
  Status valid = ValidateRequest(features, op);
  if (!valid.ok()) return valid;
  if (plan_ == nullptr) return PredictReference(features, op);

  // Lock-free hot path: the plan is immutable, the scratch is caller-owned.
  return RunContained("fp32 forward", [&]() -> Result<Tensor> {
    Tensor logits = Tensor::Zeros(Shape(features.rows(), info_.out_dim));
    plan_->Execute(features.data().data(), features.rows(), *op, &scratch->plan,
                   logits.data().data());
    return logits;
  });
}

Result<Tensor> CompiledModel::PredictQuantized(const Tensor& features,
                                               const SparseOperatorPtr& op) const {
  PredictScratch scratch;
  return PredictQuantized(features, op, &scratch);
}

Result<Tensor> CompiledModel::PredictQuantized(const Tensor& features,
                                               const SparseOperatorPtr& op,
                                               PredictScratch* scratch) const {
  Status valid = ValidateRequest(features, op);
  if (!valid.ok()) return valid;
  if (plan_ == nullptr || !plan_->SupportsInt8()) {
    return Status::NotImplemented(
        "scheme '" + info_.scheme_label +
        "' has no all-integer lowering (requires symmetric <= 8-bit "
        "quantizers at every component)");
  }
  if (range_cert_ == nullptr) {
    return Status::InvalidArgument(
        "plan has no value-range certificate (range analysis did not "
        "accept it); int8 serving is disabled — use Predict");
  }
  // Proven, per-step graph pairing: the certificate's symbolic SpMM depth
  // budget (refined by this operator's actual value range) replaces the
  // coarse global Int8DepthSafeOperator cut.
  Status paired =
      CheckGraphAgainstCertificate(*range_cert_, ComputeGraphRangeBounds(*op));
  if (!paired.ok()) return paired;
  return RunContained("int8 forward", [&]() -> Result<Tensor> {
    Tensor logits = Tensor::Zeros(Shape(features.rows(), info_.out_dim));
    plan_->ExecuteInt8(features.data().data(), features.rows(), *op,
                       &scratch->plan, logits.data().data());
    return logits;
  });
}

std::unique_ptr<FrontierProgram> CompiledModel::BuildFrontierProgram(
    const SparseOperatorPtr& op, std::vector<int64_t> targets, bool int8,
    FrontierWorkspace* ws, double max_cost_fraction) const {
  if (op == nullptr || plan_ == nullptr) return nullptr;
  if (int8 && !plan_->SupportsInt8()) return nullptr;
  return FrontierProgram::Build(*plan_, int8, *op, std::move(targets), ws,
                                max_cost_fraction);
}

Result<Tensor> CompiledModel::PredictPruned(const Tensor& features,
                                            const FrontierProgram& program,
                                            PredictScratch* scratch) const {
  if (!features.defined()) {
    return Status::InvalidArgument("features tensor is undefined");
  }
  if (features.cols() != info_.in_features) {
    return Status::InvalidArgument(
        "feature dimension mismatch: model expects " +
        std::to_string(info_.in_features) + ", got " +
        std::to_string(features.cols()));
  }
  // The program's gathers index features by global node id: a row-count
  // mismatch would read out of bounds, so reject it like every sibling
  // Predict API rejects operator/feature mismatches.
  if (features.rows() != program.graph_nodes()) {
    return Status::InvalidArgument(
        "features/program mismatch: program was built for a graph with " +
        std::to_string(program.graph_nodes()) + " nodes, features have " +
        std::to_string(features.rows()) + " rows");
  }
  if (plan_ == nullptr) {
    return Status::NotImplemented("scheme '" + info_.scheme_label +
                                  "' is not lowered; pruned serving needs the "
                                  "flat execution plan");
  }
  return RunContained("pruned forward", [&]() -> Result<Tensor> {
    Tensor logits = Tensor::Zeros(
        Shape(static_cast<int64_t>(program.targets().size()), info_.out_dim));
    if (program.int8()) {
      plan_->ExecutePrunedInt8(features.data().data(), program, &scratch->plan,
                               logits.data().data());
    } else {
      plan_->ExecutePruned(features.data().data(), program, &scratch->plan,
                           logits.data().data());
    }
    return logits;
  });
}

Result<Tensor> CompiledModel::PredictReference(const Tensor& features,
                                               const SparseOperatorPtr& op) const {
  Status valid = ValidateRequest(features, op);
  if (!valid.ok()) return valid;
  // Bundle-loaded models carry only the frozen plan — the live network and
  // scheme stayed in the training process, so there is no pipeline to replay.
  if (scheme_ == nullptr) {
    return Status::NotImplemented(
        "model was loaded from a bundle; the pipeline-replay reference path "
        "needs the live training network (use Predict)");
  }

  // Serialize forwards: replays the training pipeline's eval path exactly
  // (BeginStep(false) then a training=false forward), which is what makes
  // this path — and the lowered plan that must match it bitwise — reproduce
  // the experiment's eval logits.
  return RunContained("reference forward", [&]() -> Result<Tensor> {
    std::lock_guard<std::mutex> lock(*forward_mu_);
    scheme_->BeginStep(false);
    if (model_kind_ == NodeModelKind::kGcn) {
      return gcn_->Forward(features, op, scheme_.get(), nullptr);
    }
    return sage_->Forward(features, op, scheme_.get(), nullptr);
  });
}

}  // namespace engine
}  // namespace mixq
