// Copyright 2026 MixQ-GNN Authors
// Compile-time lowering of a frozen (net, scheme) pair into a flat,
// autograd-free ExecutionPlan — the hot serving path behind
// CompiledModel::Predict.
//
// Lowering walks the network's eval-mode forward once, asking the scheme to
// freeze every quantization point via QuantScheme::TryLowerComponent, and
// emits a step list over a small set of reusable scratch buffers. Weights
// are quantized once at compile time (integer codes + the exactly matching
// fake-quantized float view); per-request work is reduced to the kernels
// themselves. Execution holds no lock: concurrent requests share nothing but
// the immutable plan.
//
// Two execution modes:
//   * Execute()     — float kernels over pre-quantized constants. Performs
//     the same per-element arithmetic in the same order as the training
//     pipeline's eval forward, so logits are bitwise identical to
//     PredictReference. This is the default serving mode.
//   * ExecuteInt8() — the paper's point made real: every activation lives as
//     int8 codes, dense layers run on the int8-blocked GEMM, message passing
//     on the Theorem-1 fused integer SpMM, with a single requantization per
//     component. Logits agree with the reference up to rounding ties on each
//     requantization (one quantization step), not bitwise — which is why it
//     is a separate opt-in mode (PredictQuantized) rather than the default.
//
// Schemes whose eval behaviour is not a fixed per-tensor transform (A2Q's
// per-node learned scales, the relaxed search mixture) cannot be lowered;
// CompileModel keeps the pipeline-replay path as a fallback for them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/models.h"
#include "quant/quant_params.h"
#include "quant/requant.h"
#include "quant/scheme.h"
#include "sparse/spmm.h"

namespace mixq {
namespace engine {

class FrontierProgram;

/// One dense linear transformation frozen at compile time.
struct LoweredLinear {
  int64_t in = 0;
  int64_t out = 0;
  /// Columns padded up to the GEMM vector width with zero weights (the
  /// executor compacts rows afterwards); == out when no padding was needed.
  int64_t out_padded = 0;
  /// Fake-quantized weights (bitwise what the reference forward multiplies
  /// by), or the raw weights for identity components. Row-major
  /// [in, out_padded].
  std::vector<float> weight_fq;
  std::vector<float> bias;  ///< empty = no bias
  /// Integer view for ExecuteInt8 (empty when the int8 plan is unavailable):
  /// the raw codes plus the pair-interleaved packing GemmInt8PackedB consumes.
  std::vector<int8_t> weight_q8;
  std::vector<int16_t> weight_packed;
  QuantParams weight_params;
  /// Quad-interleaved packing + per-column corrections for the VNNI kernel.
  /// DERIVED state: recomputed from weight_q8 by FinalizeDerived() after
  /// lowering or bundle load, never serialized (bundle format unchanged).
  std::vector<int8_t> weight_quad;
  std::vector<int32_t> weight_corr;
};

class ExecutionPlan {
 public:
  /// Buffer id denoting the caller's feature matrix (read-only).
  static constexpr int kInput = -1;

  enum class Op {
    kQuantize,  ///< dst = FakeQuant(src)
    kMatMul,    ///< dst = src · W (+ bias) via linears[linear]
    kSpmm,      ///< dst = Â · src with adjacency lowered per adj_quants[adj]
    kAdd,       ///< dst = src + src2
    kRelu,      ///< dst = max(src, 0)
  };
  struct Step {
    Op op = Op::kRelu;
    int src = 0, src2 = 0, dst = 0;  ///< scratch buffer ids (or kInput)
    int linear = -1;                 ///< kMatMul
    int adj = -1;                    ///< kSpmm
    LoweredComponent quant;          ///< kQuantize
    int64_t cols = 0;                ///< feature width of dst after the step
  };

  enum class IntOp {
    kQuantizeInput,  ///< codes(dst) = Quantize(features)
    kGemmRequant,    ///< codes(dst) = Requant(Sx·Sw · (q_src · Wq) + bias)
    kSpmmRequant,    ///< codes(dst) = Requant(Sa·Sx · (Âq · q_src))
    kAddRequant,     ///< codes(dst) = Requant(S1·q_src + S2·q_src2)
    kRelu,           ///< codes(dst) = max(codes(src), 0)  [symmetric]
  };
  struct IntStep {
    IntOp op = IntOp::kRelu;
    int src = 0, src2 = 0, dst = 0;
    int linear = -1;
    int adj = -1;
    QuantParams src_params;   ///< params of src codes
    QuantParams src2_params;  ///< params of src2 codes (kAddRequant)
    QuantParams out_params;   ///< requantization target of dst
    /// bias / out scale, precomputed at lowering (kGemmRequant with bias);
    /// keeps the per-forward requant free of allocations.
    std::vector<double> bias_over;
    int64_t cols = 0;
    /// DERIVED requantization constants, frozen by FinalizeDerived() so the
    /// hot path neither recomputes scale ratios nor rebuilds the emitter per
    /// call (never serialized). `total` is the folded scale ratio of
    /// kGemmRequant/kSpmmRequant; `s1`/`s2` are kAddRequant's operand
    /// ratios; `emitter` rounds into out_params' grid.
    double total = 0.0;
    double s1 = 0.0, s2 = 0.0;
    CodeEmitter emitter;
    /// DERIVED per-step VNNI certificate (kGemmRequant only): every
    /// unsigned-shifted partial sum Σ (aᵢ+128)·bᵢ of this step provably fits
    /// int32, computed by FinalizeDerived() from the source grid's code
    /// bound and the linear's ACTUAL frozen weight codes (same arithmetic as
    /// engine/plan_analysis.h's prover). Consumed by the GemmInt8Requant
    /// dispatch in place of the coarse global Int8VnniDepthOk(k).
    bool vnni_safe = false;
  };

  /// Reusable per-request workspace. Callers (or serving threads) keep one
  /// around to amortize allocations; a default-constructed one works.
  struct Scratch {
    std::vector<std::vector<float>> f;   ///< float activation buffers
    std::vector<std::vector<int8_t>> q;  ///< int8 code buffers
    std::vector<float> adj_f;            ///< fake-quantized adjacency values
    std::vector<int8_t> adj_q;           ///< int8 adjacency codes
    std::vector<int32_t> acc;            ///< int32 GEMM/SpMM accumulator
    std::vector<float> gather_f;         ///< pruned-path row gather staging
    std::vector<int8_t> gather_q;        ///< ... and its int8 counterpart
  };

  /// Lowers a frozen net + scheme. Returns nullptr when any component is not
  /// expressible as a fixed per-tensor transform (the caller keeps the
  /// pipeline-replay fallback).
  static std::unique_ptr<ExecutionPlan> Lower(const GcnNet& net,
                                              const QuantScheme& scheme);
  static std::unique_ptr<ExecutionPlan> Lower(const SageNet& net,
                                              const QuantScheme& scheme);

  /// True when the all-integer mode is available (every quantization point is
  /// a symmetric <= 8-bit quantizer).
  bool SupportsInt8() const { return has_int8_; }

  /// Whether the int8 executors run the fused GEMM/SpMM requant epilogues
  /// (the default) or the two-pass accumulate-then-requant shape. Both
  /// produce bitwise-identical codes — the switch exists for parity tests
  /// and epilogue A/B benchmarks. Resolved once from MIXQ_FUSED ("0"
  /// disables); SetFusedEpilogues overrides, process-wide, thread-safe.
  static bool FusedEpilogues();
  static void SetFusedEpilogues(bool fused);

  /// True when every row of `op` is shallow enough for the int8 SpMM's int32
  /// accumulators (max row nnz * 127^2 < 2^31). The dense depth is checked at
  /// compile time; the operator arrives per request, so PredictQuantized
  /// rejects graphs with deeper hub nodes instead of overflowing silently.
  static bool Int8DepthSafeOperator(const SparseOperator& op);

  int64_t in_features() const { return in_features_; }
  int64_t out_dim() const { return out_dim_; }

  // ---- Introspection ---------------------------------------------------------
  // Read-only views of the lowered program, exposed for the static verifier
  // (engine/plan_verifier.h) and tooling. The step lists and tables are
  // immutable once Lower()/LoadBundle return.
  int num_buffers() const { return num_buffers_; }
  const std::vector<Step>& steps() const { return steps_; }
  int final_buffer() const { return final_buffer_; }
  const std::vector<LoweredLinear>& linears() const { return linears_; }
  const std::vector<LoweredComponent>& adj_quants() const { return adj_quants_; }
  const std::vector<IntStep>& int_steps() const { return int_steps_; }
  int int_final_buffer() const { return int_final_buffer_; }
  const QuantParams& int_final_params() const { return int_final_params_; }

  /// Runs the exact float plan over `x` [n, in_features] and the request's
  /// sparse operator, writing logits [n, out_dim] into `out`. Thread-safe
  /// and lock-free; each concurrent caller passes its own scratch.
  void Execute(const float* x, int64_t n, const SparseOperator& op, Scratch* scratch,
               float* out) const;

  /// Runs the integer plan (requires SupportsInt8()).
  void ExecuteInt8(const float* x, int64_t n, const SparseOperator& op,
                   Scratch* scratch, float* out) const;

  /// Receptive-field-pruned float forward: computes only the per-layer
  /// frontiers of `program` (built over this plan with int8=false against
  /// the request's operator) and writes logits
  /// [program.targets().size(), out_dim] into `out`, row i = node
  /// targets()[i]. Bitwise identical to the same rows of Execute(). `x` is
  /// the FULL feature matrix — the program gathers the rows it needs.
  void ExecutePruned(const float* x, const FrontierProgram& program,
                     Scratch* scratch, float* out) const;

  /// Integer counterpart (program built with int8=true; requires
  /// SupportsInt8()). Codes — and hence logits — are bitwise identical to
  /// the same rows of ExecuteInt8().
  void ExecutePrunedInt8(const float* x, const FrontierProgram& program,
                         Scratch* scratch, float* out) const;

 private:
  ExecutionPlan() = default;

  /// Recomputes every DERIVED field — linears' VNNI quad packing and the int
  /// steps' requant constants/emitters — from the serialized state. Called
  /// after lowering (PlanBuilder::Finish) and after bundle load (before
  /// verification), idempotent, defensive against out-of-range step indices
  /// (skips them; the plan verifier rejects such plans afterwards).
  void FinalizeDerived();

  int64_t in_features_ = 0;
  int64_t out_dim_ = 0;
  int num_buffers_ = 0;
  std::vector<Step> steps_;
  std::vector<LoweredLinear> linears_;
  std::vector<LoweredComponent> adj_quants_;
  int final_buffer_ = 0;

  bool has_int8_ = false;
  std::vector<IntStep> int_steps_;
  int int_final_buffer_ = 0;
  QuantParams int_final_params_;

  friend class PlanBuilder;
  friend class FrontierProgram;
  /// Bundle (de)serialization — engine/model_bundle.cc.
  friend class ExecutionPlanCodec;
};

}  // namespace engine
}  // namespace mixq
