// Copyright 2026 MixQ-GNN Authors
// Dynamic micro-batching for the serving engine, and the request/response
// vocabulary of the asynchronous API.
//
// The serving observation behind this file: a GNN forward computes logits
// for *every* node of the graph, so N concurrent requests for single nodes
// of the same (model, graph, precision) are N copies of the same work. The
// Batcher turns them into one: requests are admitted into a bounded queue
// (immediate kResourceExhausted on overflow — overload degrades into cheap
// rejections, not latency collapse), a dispatcher thread drains whatever has
// accumulated while the previous forward ran, coalesces the drained set by
// (model, graph, resolved precision), runs one lowered forward per group on
// the persistent thread pool, gathers each requester's rows, and fulfills
// the futures. Requests whose deadline passed while queued are expired with
// kDeadlineExceeded instead of wasting a forward.
//
// Full logits of each batch forward are cached per (model, graph, precision)
// keyed by the model/graph *versions* — ReplaceModel/ReplaceGraph bump the
// version, so a stale entry can never be served. On a static graph a repeat
// query is therefore a row gather, no forward at all.
//
// Groups that ask for a FEW rows of a LARGE graph skip the full forward
// entirely: the dispatcher unions the group's node ids, expands their L-hop
// receptive field against the pinned GraphContext (engine/frontier_plan.h),
// and — when the frontier is a small fraction of the graph — runs a pruned
// forward that computes only those rows (bitwise identical to the full
// fp32 forward for the same rows). Pruned forwards produce no full logits,
// so they never populate the result cache; a valid cache entry always wins
// over pruning, and groups whose receptive field covers most of the graph
// (or that ask for all rows) take the cached/full path as before.
//
// The Batcher talks to the engine through a narrow Backend interface
// (lookup by name, a failure tick) so it has no dependency on
// InferenceEngine itself and can be driven standalone in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/latency_histogram.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/compiled_model.h"
#include "engine/plan_analysis.h"

namespace mixq {
namespace engine {

/// Clock used for deadlines and latency metadata.
using ServingClock = std::chrono::steady_clock;

/// Numeric path a request is served on. kAuto resolves to the cheapest mode
/// the model supports for the target graph: int8 when the model carries the
/// all-integer lowering (and the operator fits its accumulators), exact fp32
/// otherwise. Responses always report the resolved value.
enum class Precision { kAuto = 0, kFp32, kInt8 };

const char* PrecisionName(Precision p);

/// How RegisterGraph orders the pinned adjacency/features for SpMM locality
/// (sparse/reorder.h). kAuto defers to the MIXQ_REORDER env var
/// ("none" | "degree" | "rcm"; unset means rcm). The chosen order is a
/// GraphContext-internal detail — requests, responses, caches and bundles
/// all speak original node ids, and served values are bitwise identical
/// across modes.
enum class GraphReorder { kAuto = 0, kNone, kDegree, kRcm };

/// A named, immutable, engine-pinned graph: requests reference it by name
/// instead of shipping tensors. `version` comes from the engine's global
/// monotonic counter (never reused, even across Unregister + Register of
/// the same name) and is part of the result-cache key. `int8_depth_safe`
/// is the operator's int8-accumulator depth check, precomputed once at
/// registration so precision resolution is O(1) per request.
struct GraphContext {
  std::string name;
  Tensor features;        ///< [n, in_features] node features (internal order)
  SparseOperatorPtr op;   ///< matching normalized operator (internal order)
  uint64_t version = 0;
  bool int8_depth_safe = false;
  /// Graph-side facts for the per-plan pairing check (max row nnz, adjacency
  /// value range — engine/plan_analysis.h), precomputed once at registration
  /// so precision resolution checks the model's range certificate in O(steps)
  /// per request instead of rescanning the operator.
  GraphRangeBounds range_bounds;
  /// Locality reorder applied at registration: when non-empty, `features`
  /// and `op` live in an INTERNAL row order chosen for SpMM cache locality,
  /// and these maps translate node ids (new_of_old[original] = internal row;
  /// old_of_new is the inverse). Empty = identity, graph served exactly as
  /// registered. The invariant the batcher maintains: the reorder is
  /// invisible outside the GraphContext — every id crossing the API is an
  /// original id, and logits come back in original row order.
  std::vector<int64_t> new_of_old;
  std::vector<int64_t> old_of_new;
  bool reordered() const { return !new_of_old.empty(); }
  /// Original node id -> row of `features` / `op`. `id` must be in range.
  int64_t ToInternal(int64_t id) const {
    return new_of_old.empty() ? id : new_of_old[static_cast<size_t>(id)];
  }
  /// Graph-sized scratch for receptive-field expansion / induced slicing,
  /// allocated once at registration so pruned routing never pays an O(N)
  /// allocation per request. NOT thread-safe: touched only by the
  /// batcher's single dispatcher thread.
  std::shared_ptr<FrontierWorkspace> frontier_ws;
};
using GraphContextPtr = std::shared_ptr<const GraphContext>;

/// One prediction request against registered names. `node_ids` selects which
/// logit rows come back; empty means all nodes. `deadline` is absolute;
/// requests still queued past it are expired, never served late.
struct PredictRequest {
  std::string model;
  std::string graph;
  std::vector<int64_t> node_ids;
  Precision precision = Precision::kAuto;
  ServingClock::time_point deadline = ServingClock::time_point::max();
};

/// The requested rows plus enough metadata to reason about tail latency.
struct PredictResponse {
  Tensor rows;                     ///< [node_ids.size() (or n), out_dim]
  std::vector<int64_t> node_ids;   ///< echo of the request (empty = all)
  Precision precision = Precision::kFp32;  ///< resolved serving mode
  int64_t batch_size = 0;   ///< requests coalesced into the same forward
  bool cache_hit = false;   ///< served from cached logits (no forward)
  bool pruned = false;      ///< receptive-field-pruned forward (no cache fill)
  /// Activation rows the pruned forward computed across all layers (0 when
  /// !pruned) — the receptive-field size the group actually paid for.
  int64_t frontier_rows = 0;
  double queue_us = 0.0;    ///< admission -> dispatch
  double forward_us = 0.0;  ///< the shared forward (0 on cache hit)
  double total_us = 0.0;    ///< admission -> fulfillment
};

/// Per-model monitoring counters, shared between the engine and in-flight
/// batches so a just-unregistered model's requests still have somewhere to
/// count. All fields are hot-path-safe (atomics / lock-free histogram).
struct ModelCounters {
  std::atomic<int64_t> successes{0};
  std::atomic<int64_t> failures{0};
  LatencyHistogram latency;
  /// Shared-forward wall time split by the precision the forward actually
  /// ran at — recorded once per forward (full or pruned), never on cache
  /// hits, so the two histograms compare kernel paths, not queueing.
  LatencyHistogram forward_fp32;
  LatencyHistogram forward_int8;
};
using ModelCountersPtr = std::shared_ptr<ModelCounters>;

/// Snapshot of one registered model as the batcher needs it: the immutable
/// compiled model, its registry version (bumped by ReplaceModel; part of the
/// cache key), and its counters.
struct ModelHandle {
  CompiledModelPtr model;
  uint64_t version = 0;
  ModelCountersPtr counters;
};

struct BatcherOptions {
  /// Admission queue bound; TryPush past it is a kResourceExhausted reject.
  size_t queue_capacity = 1024;
  /// Cache full batch logits per (model, graph, precision) version.
  bool enable_cache = true;
  /// Route small-receptive-field groups through the pruned forward
  /// (lowered models only; a valid cache entry still wins).
  bool enable_pruning = true;
  /// Graphs below this node count always take the full forward: on small
  /// graphs the forward is already cheap and the full logits feed the
  /// result cache.
  int64_t pruned_min_graph_nodes = 1024;
  /// Prune only while the frontier's total step-row count stays under this
  /// fraction of the full forward's (steps x N). Bench-calibrated: pruned
  /// wall time tracks ~2x the full forward's per step-row across graph
  /// sizes and target counts (per-request analysis + poor small-n parallel
  /// efficiency), so 0.2 routes pruned only when it is >= ~2.4x faster.
  double pruned_max_cost_fraction = 0.2;
  /// Row order RegisterGraph pins graphs in (see GraphReorder). Consumed by
  /// the engine's graph registry, not the batcher itself.
  GraphReorder graph_reorder = GraphReorder::kAuto;

  // --- Overload degradation ladder -----------------------------------------
  // kAuto already serves the cheapest correct mode when healthy: cache hit,
  // else pruned, else int8, else full fp32. These two ABSOLUTE drained-batch
  // thresholds add the overload rungs. At `degrade_batch_threshold` the
  // pruned router's cost gate relaxes to `degraded_max_cost_fraction`, so
  // more groups take the partial forward; at `shed_batch_threshold` kAuto
  // groups that would still need a full fp32 forward (no cache entry, no
  // pruned program, no int8 lowering) are shed with kUnavailable instead of
  // collapsing latency for everyone behind them. Explicitly-requested
  // precisions are never degraded or shed — the ladder only bends kAuto,
  // which asked the engine to choose.
  /// Drained-batch size at which the pruned cost gate relaxes. 0 disables.
  int64_t degrade_batch_threshold = 256;
  /// Relaxed pruned_max_cost_fraction while degraded (see above).
  double degraded_max_cost_fraction = 0.5;
  /// Drained-batch size at which unpayable kAuto fp32 groups shed. 0 disables.
  int64_t shed_batch_threshold = 1024;

  // --- Per-(model, graph) circuit breaker (InferenceEngine) ----------------
  // Lives here so one options struct configures the whole serving stack; the
  // batcher itself only sees the Backend breaker callbacks.
  /// Consecutive forward failures that trip the breaker open; 0 disables.
  int breaker_failure_threshold = 3;
  /// How long a tripped breaker fast-fails (kUnavailable) before letting a
  /// single half-open probe forward through.
  std::chrono::milliseconds breaker_open_duration{250};

  // --- Stalled-forward watchdog --------------------------------------------
  /// Watchdog poll period; zero disables the watchdog thread entirely.
  std::chrono::milliseconds watchdog_poll{20};
  /// Once the dispatcher has been inside one forward for longer than this,
  /// the watchdog starts expiring queued past-deadline requests on its
  /// behalf (they would otherwise only be expired at the next drain, which
  /// a wedged forward delays indefinitely).
  std::chrono::milliseconds max_forward_stall{500};
};

/// Resolves the requested precision against what `model` can serve over
/// `graph`'s operator (see Precision). kNotImplemented when int8 is asked of
/// a model without the integer lowering.
Result<Precision> ResolvePrecision(const CompiledModel& model,
                                   const GraphContext& graph,
                                   Precision requested);

/// One full-graph forward at an already-resolved precision — the unit of
/// work the batcher amortizes, also used by the synchronous Predict wrapper.
Result<Tensor> ForwardFullGraph(const CompiledModel& model,
                                const GraphContext& graph, Precision resolved,
                                PredictScratch* scratch);

class Batcher {
 public:
  /// How the batcher reaches the registries that own names. Lookups happen
  /// at dispatch time, so a ReplaceModel between admission and dispatch is
  /// honoured. `count_failure` ticks the engine-wide failure counter.
  struct Backend {
    std::function<Result<ModelHandle>(const std::string&)> lookup_model;
    std::function<Result<GraphContextPtr>(const std::string&)> lookup_graph;
    std::function<void()> count_failure;
    /// Circuit-breaker gate, consulted immediately before a group forward
    /// (cache hits never ask). Non-OK (kUnavailable while the breaker is
    /// open) fails the whole group without running the forward. Null = no
    /// breaker.
    std::function<Status(const std::string& model, const std::string& graph)>
        breaker_admit;
    /// Outcome report paired with every granted breaker_admit. Null = no
    /// breaker.
    std::function<void(const std::string& model, const std::string& graph,
                       bool ok)>
        breaker_report;
  };

  /// Monitoring counters; `queue_depth`/`in_dispatch` are racy snapshots.
  struct Stats {
    int64_t submitted = 0;   ///< requests admitted into the queue
    int64_t rejected = 0;    ///< kResourceExhausted at admission
    int64_t expired = 0;     ///< kDeadlineExceeded (queued past deadline)
    int64_t forwards = 0;    ///< coalesced forwards actually run (both kinds)
    int64_t pruned_forwards = 0;  ///< ... of which receptive-field-pruned
    int64_t full_forwards = 0;    ///< ... of which full-graph
    int64_t cache_hits = 0;  ///< requests served from cached logits
    int64_t shed = 0;        ///< kUnavailable load sheds (degradation ladder)
    int64_t contained_faults = 0;  ///< forwards that failed with kInternal
    int64_t watchdog_expired = 0;  ///< queued requests the watchdog expired
    int64_t queue_depth = 0;     ///< requests currently queued
    int64_t in_dispatch = 0;     ///< requests currently being dispatched
  };

  /// Starts the dispatcher thread immediately.
  Batcher(Backend backend, BatcherOptions options);

  /// Closes admission, serves every already-admitted request, joins.
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits one request. Always returns a valid future; overflow, a closed
  /// batcher, and an already-expired deadline come back as ready error
  /// futures (kResourceExhausted / kDeadlineExceeded).
  std::future<Result<PredictResponse>> Submit(PredictRequest request);

  Stats GetStats() const;

 private:
  struct Pending {
    PredictRequest request;
    std::promise<Result<PredictResponse>> promise;
    ServingClock::time_point admitted;
  };

  /// Cached full logits of one (model, graph, precision) group; valid only
  /// while both versions still match the registries. Names are kept so the
  /// periodic sweep can drop entries whose registrations are gone.
  struct CacheEntry {
    std::string model_name;
    std::string graph_name;
    uint64_t model_version = 0;
    uint64_t graph_version = 0;
    Tensor logits;
  };

  void DispatcherLoop();
  void WatchdogLoop();
  void Dispatch(std::vector<Pending> batch) MIXQ_REQUIRES(dispatcher_role_);
  void Fail(Pending* pending, Status status, const ModelCountersPtr& counters);
  /// Evicts cache entries whose model/graph was unregistered or replaced,
  /// so transient names don't pin full logits tensors forever.
  void SweepCache() MIXQ_REQUIRES(dispatcher_role_);

  const Backend backend_;
  const BatcherOptions options_;
  BoundedQueue<Pending> queue_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> forwards_{0};
  std::atomic<int64_t> pruned_forwards_{0};
  std::atomic<int64_t> full_forwards_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> contained_faults_{0};
  std::atomic<int64_t> watchdog_expired_{0};
  std::atomic<int64_t> in_dispatch_{0};

  /// ServingClock tick count when the dispatcher entered its current group
  /// forward; 0 = not in a forward. Written by the dispatcher around each
  /// forward, read by the watchdog to detect a stall.
  std::atomic<int64_t> forward_start_ticks_{0};

  /// Watchdog shutdown handshake. Plain std::mutex (not the annotated
  /// wrapper): the only guarded state is the stop flag, and the condvar
  /// needs the std type.
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  /// Dispatcher-thread-private state (single consumer): the result cache and
  /// the reusable forward scratch. No lock — nothing else touches them; the
  /// confinement is machine-checked as a fake capability the dispatcher
  /// thread holds for its whole loop (common/thread_annotations.h).
  ThreadRole dispatcher_role_;
  std::map<std::string, CacheEntry> cache_ MIXQ_GUARDED_BY(dispatcher_role_);
  PredictScratch scratch_ MIXQ_GUARDED_BY(dispatcher_role_);
  int64_t cycles_since_sweep_ MIXQ_GUARDED_BY(dispatcher_role_) = 0;

  std::thread watchdog_;    ///< empty when options.watchdog_poll is zero
  std::thread dispatcher_;  ///< last member: started once state is ready
};

}  // namespace engine
}  // namespace mixq
