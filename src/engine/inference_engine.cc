// Copyright 2026 MixQ-GNN Authors
#include "engine/inference_engine.h"

namespace mixq {
namespace engine {

Status InferenceEngine::RegisterModel(const std::string& name,
                                      CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!models_.emplace(name, std::move(model)).second) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered (use ReplaceModel)");
  }
  return Status::OK();
}

Status InferenceEngine::ReplaceModel(const std::string& name,
                                     CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  models_[name] = std::move(model);
  return Status::OK();
}

Status InferenceEngine::UnregisterModel(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<CompiledModelPtr> InferenceEngine::GetModel(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second;
}

std::vector<std::string> InferenceEngine::ModelNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

Result<Tensor> InferenceEngine::Predict(const std::string& name,
                                        const Tensor& features,
                                        const SparseOperatorPtr& op) const {
  Result<CompiledModelPtr> model = GetModel(name);
  if (!model.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.failures;
    return model.status();
  }
  Result<Tensor> logits = model.ValueOrDie()->Predict(features, op);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    if (logits.ok()) {
      ++stats_.per_model[name];
    } else {
      ++stats_.failures;
    }
  }
  return logits;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace engine
}  // namespace mixq
