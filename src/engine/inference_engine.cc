// Copyright 2026 MixQ-GNN Authors
#include "engine/inference_engine.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "engine/model_bundle.h"
#include "sparse/reorder.h"

namespace mixq {
namespace engine {

namespace {

/// kAuto defers to MIXQ_REORDER ("none" | "degree" | "rcm"); unset or
/// unrecognized means rcm — the default is to reorder, because the order is
/// invisible in served values and RCM's banded neighbourhoods win on every
/// graph large enough for locality to matter.
GraphReorder ResolveGraphReorder(GraphReorder requested) {
  if (requested != GraphReorder::kAuto) return requested;
  const char* v = std::getenv("MIXQ_REORDER");
  if (v != nullptr) {
    if (std::strcmp(v, "none") == 0 || std::strcmp(v, "0") == 0) {
      return GraphReorder::kNone;
    }
    if (std::strcmp(v, "degree") == 0) return GraphReorder::kDegree;
  }
  return GraphReorder::kRcm;
}

/// Shape/consistency checks shared by RegisterGraph and ReplaceGraph.
Status ValidateGraph(const std::string& name, const Tensor& features,
                     const SparseOperatorPtr& op) {
  if (name.empty()) return Status::InvalidArgument("graph name must be non-empty");
  if (!features.defined()) {
    return Status::InvalidArgument("graph '" + name + "' has undefined features");
  }
  if (op == nullptr) {
    return Status::InvalidArgument("graph '" + name + "' has a null operator");
  }
  if (op->matrix().cols() != features.rows()) {
    return Status::InvalidArgument(
        "graph '" + name + "': operator has " +
        std::to_string(op->matrix().cols()) + " columns but features have " +
        std::to_string(features.rows()) + " rows");
  }
  // A pinned serving graph needs one logit row per node: a rectangular
  // operator would make forwards produce fewer rows than node ids admission
  // accepts (and would abort, rather than fail, the pruned analysis).
  if (op->matrix().rows() != op->matrix().cols()) {
    return Status::InvalidArgument(
        "graph '" + name + "': serving operator must be square, got " +
        std::to_string(op->matrix().rows()) + "x" +
        std::to_string(op->matrix().cols()));
  }
  return Status::OK();
}

}  // namespace

InferenceEngine::InferenceEngine(BatcherOptions options)
    : breaker_failure_threshold_(options.breaker_failure_threshold),
      breaker_open_duration_(options.breaker_open_duration),
      graph_reorder_(ResolveGraphReorder(options.graph_reorder)) {
  Batcher::Backend backend;
  backend.lookup_model = [this](const std::string& name) {
    return LookupModel(name);
  };
  backend.lookup_graph = [this](const std::string& name) {
    return LookupGraph(name);
  };
  backend.count_failure = [this] {
    failures_.fetch_add(1, std::memory_order_relaxed);
  };
  if (options.breaker_failure_threshold > 0) {
    backend.breaker_admit = [this](const std::string& model,
                                   const std::string& graph) {
      return BreakerAdmit(model, graph);
    };
    backend.breaker_report = [this](const std::string& model,
                                    const std::string& graph, bool ok) {
      BreakerReport(model, graph, ok);
    };
  }
  batcher_ = std::make_unique<Batcher>(std::move(backend), options);
}

InferenceEngine::~InferenceEngine() = default;

// ---- Model registry --------------------------------------------------------

Status InferenceEngine::RegisterModel(const std::string& name,
                                      CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  ModelEntry entry{std::move(model), /*version=*/0,
                   std::make_shared<ModelCounters>()};
  WriterLock lock(&mu_);
  auto [it, inserted] = models_.emplace(name, std::move(entry));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered (use ReplaceModel)");
  }
  it->second.version = next_version_++;
  return Status::OK();
}

Status InferenceEngine::ReplaceModel(const std::string& name,
                                     CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  WriterLock lock(&mu_);
  ModelEntry& entry = models_[name];
  entry.model = std::move(model);
  entry.version = next_version_++;  // invalidates cached results for it
  if (entry.counters == nullptr) {
    entry.counters = std::make_shared<ModelCounters>();
  }
  return Status::OK();
}

Status InferenceEngine::UnregisterModel(const std::string& name) {
  {
    WriterLock lock(&mu_);
    if (models_.erase(name) == 0) {
      return Status::NotFound("model '" + name + "' is not registered");
    }
  }
  EraseBreakers(name, "");
  return Status::OK();
}

Result<CompiledModelPtr> InferenceEngine::GetModel(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second.model;
}

std::vector<std::string> InferenceEngine::ModelNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

Status InferenceEngine::LoadModelFromFile(const std::string& name,
                                          const std::string& path) {
  Result<CompiledModelPtr> model = LoadBundle(path);
  if (!model.ok()) return model.status();
  return RegisterModel(name, model.MoveValueOrDie());
}

// ---- Graph registry --------------------------------------------------------

namespace {

/// Builds the immutable context for one registered graph; the operator's
/// int8 depth check (O(nnz) row scan), the locality reorder, and the
/// frontier workspace's O(N) allocations run once here, not per request.
///
/// With `reorder` != kNone the pinned operator and features are re-rowed by
/// DegreeSortOrder/RcmOrder (sparse/reorder.h) so the thousands of SpMMs
/// served against this graph gather topologically-close X rows from close
/// addresses. PermuteSquare keeps each row's entries in original order, so
/// internal row p computes bitwise what original row old_of_new[p] computes
/// — the batcher translates ids on the way in and un-permutes full logits
/// on the way out, and nothing outside the GraphContext can observe the
/// order. The depth check runs on the original operator: a permutation
/// preserves every row's nnz, so the verdict is identical.
std::shared_ptr<GraphContext> MakeGraphContext(const std::string& name,
                                               Tensor features,
                                               SparseOperatorPtr op,
                                               GraphReorder reorder) {
  auto context = std::make_shared<GraphContext>();
  context->name = name;
  context->int8_depth_safe = ExecutionPlan::Int8DepthSafeOperator(*op);
  // Graph-side facts for per-plan certificate pairing. Computed on the
  // ORIGINAL operator: a permutation preserves every row's nnz and stored
  // values, so the bounds are identical either way.
  context->range_bounds = ComputeGraphRangeBounds(*op);
  context->frontier_ws = std::make_shared<FrontierWorkspace>();
  context->frontier_ws->EnsureSize(op->rows());
  if (reorder != GraphReorder::kNone) {
    const CsrMatrix& m = op->matrix();
    std::vector<int64_t> old_of_new = reorder == GraphReorder::kDegree
                                          ? DegreeSortOrder(m)
                                          : RcmOrder(m);
    bool identity = true;
    for (size_t p = 0; p < old_of_new.size(); ++p) {
      if (old_of_new[p] != static_cast<int64_t>(p)) {
        identity = false;
        break;
      }
    }
    if (!identity) {
      const int64_t n = features.rows();
      const int64_t f = features.cols();
      std::vector<float> permuted(static_cast<size_t>(n) *
                                  static_cast<size_t>(f));
      const float* src = features.data().data();
      for (int64_t p = 0; p < n; ++p) {
        std::memcpy(permuted.data() + static_cast<size_t>(p) *
                                          static_cast<size_t>(f),
                    src + static_cast<size_t>(old_of_new[static_cast<size_t>(p)]) *
                              static_cast<size_t>(f),
                    static_cast<size_t>(f) * sizeof(float));
      }
      context->features = Tensor::FromVector(features.shape(), permuted);
      context->op = MakeOperator(PermuteSquare(m, old_of_new));
      context->new_of_old.assign(static_cast<size_t>(n), 0);
      for (int64_t p = 0; p < n; ++p) {
        context->new_of_old[static_cast<size_t>(old_of_new[static_cast<size_t>(p)])] = p;
      }
      context->old_of_new = std::move(old_of_new);
      return context;
    }
  }
  context->features = std::move(features);
  context->op = std::move(op);
  return context;
}

}  // namespace

Status InferenceEngine::RegisterGraph(const std::string& name, Tensor features,
                                      SparseOperatorPtr op) {
  MIXQ_RETURN_NOT_OK(ValidateGraph(name, features, op));
  std::shared_ptr<GraphContext> context =
      MakeGraphContext(name, std::move(features), std::move(op), graph_reorder_);
  WriterLock lock(&mu_);
  auto [it, inserted] = graphs_.emplace(name, nullptr);
  if (!inserted) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already registered (use ReplaceGraph)");
  }
  context->version = next_version_++;
  it->second = std::move(context);
  return Status::OK();
}

Status InferenceEngine::ReplaceGraph(const std::string& name, Tensor features,
                                     SparseOperatorPtr op) {
  MIXQ_RETURN_NOT_OK(ValidateGraph(name, features, op));
  std::shared_ptr<GraphContext> context =
      MakeGraphContext(name, std::move(features), std::move(op), graph_reorder_);
  WriterLock lock(&mu_);
  // invalidates cached results against the old graph
  context->version = next_version_++;
  graphs_[name] = std::move(context);
  return Status::OK();
}

Status InferenceEngine::UnregisterGraph(const std::string& name) {
  {
    WriterLock lock(&mu_);
    if (graphs_.erase(name) == 0) {
      return Status::NotFound("graph '" + name + "' is not registered");
    }
  }
  EraseBreakers("", name);
  return Status::OK();
}

Result<GraphContextPtr> InferenceEngine::GetGraph(const std::string& name) const {
  return LookupGraph(name);
}

std::vector<std::string> InferenceEngine::GraphNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, context] : graphs_) names.push_back(name);
  return names;
}

Status InferenceEngine::LoadGraphFromFile(const std::string& name,
                                          const std::string& path) {
  Result<GraphBundle> bundle = LoadGraph(path);
  if (!bundle.ok()) return bundle.status();
  GraphBundle& loaded = bundle.ValueOrDie();
  return RegisterGraph(name, std::move(loaded.features), std::move(loaded.op));
}

std::map<std::string, InferenceEngine::ModelIntrospection>
InferenceEngine::ListModels() const {
  std::map<std::string, ModelIntrospection> out;
  ReaderLock lock(&mu_);
  for (const auto& [name, entry] : models_) {
    out[name] = ModelIntrospection{entry.model->info(), entry.version};
  }
  return out;
}

std::map<std::string, InferenceEngine::GraphIntrospection>
InferenceEngine::ListGraphs() const {
  std::map<std::string, GraphIntrospection> out;
  ReaderLock lock(&mu_);
  for (const auto& [name, context] : graphs_) {
    GraphIntrospection g;
    g.nodes = context->features.rows();
    g.feature_dim = context->features.cols();
    g.nnz = context->op->nnz();
    g.int8_depth_safe = context->int8_depth_safe;
    g.reordered = context->reordered();
    g.version = context->version;
    out[name] = g;
  }
  return out;
}

Result<ModelHandle> InferenceEngine::LookupModel(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return ModelHandle{it->second.model, it->second.version, it->second.counters};
}

Result<GraphContextPtr> InferenceEngine::LookupGraph(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not registered");
  }
  return it->second;
}

// ---- Circuit breaker -------------------------------------------------------

namespace {

std::string BreakerKey(const std::string& model, const std::string& graph) {
  return model + '|' + graph;
}

const char* BreakerStateName(InferenceEngine::BreakerState state) {
  switch (state) {
    case InferenceEngine::BreakerState::kClosed: return "closed";
    case InferenceEngine::BreakerState::kOpen: return "open";
    case InferenceEngine::BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

}  // namespace

Status InferenceEngine::BreakerAdmit(const std::string& model,
                                     const std::string& graph) {
  MutexLock lock(&breaker_mu_);
  auto it = breakers_.find(BreakerKey(model, graph));
  if (it == breakers_.end()) return Status::OK();  // closed, never failed
  BreakerEntry& entry = it->second;
  switch (entry.state) {
    case BreakerState::kClosed:
      return Status::OK();
    case BreakerState::kOpen: {
      if (ServingClock::now() < entry.open_until) {
        breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("circuit breaker open for model '" + model +
                                   "' on graph '" + graph +
                                   "' after repeated forward failures; "
                                   "retry later");
      }
      // Cooldown elapsed: half-open, let exactly one probe forward through.
      entry.state = BreakerState::kHalfOpen;
      entry.probe_in_flight = true;
      breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    case BreakerState::kHalfOpen: {
      if (entry.probe_in_flight) {
        breaker_fast_fails_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("circuit breaker half-open for model '" +
                                   model + "' on graph '" + graph +
                                   "'; a probe is already in flight");
      }
      entry.probe_in_flight = true;
      breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return Status::OK();
}

void InferenceEngine::BreakerReport(const std::string& model,
                                    const std::string& graph, bool ok) {
  MutexLock lock(&breaker_mu_);
  const std::string key = BreakerKey(model, graph);
  auto it = breakers_.find(key);
  if (ok) {
    // Success closes from any state and resets the failure streak; a pair
    // with no entry IS the closed state, so just drop it.
    if (it == breakers_.end()) return;
    if (it->second.state != BreakerState::kClosed) {
      breaker_closes_.fetch_add(1, std::memory_order_relaxed);
    }
    breakers_.erase(it);
    return;
  }
  BreakerEntry& entry =
      it == breakers_.end() ? breakers_[key] : it->second;
  entry.probe_in_flight = false;
  ++entry.consecutive_failures;
  // A failed half-open probe re-opens immediately; a closed breaker opens
  // once the streak reaches the threshold.
  if (entry.state == BreakerState::kHalfOpen ||
      entry.consecutive_failures >= breaker_failure_threshold_) {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    entry.state = BreakerState::kOpen;
    entry.open_until = ServingClock::now() + breaker_open_duration_;
  }
}

void InferenceEngine::EraseBreakers(const std::string& model,
                                    const std::string& graph) {
  MutexLock lock(&breaker_mu_);
  for (auto it = breakers_.begin(); it != breakers_.end();) {
    const std::string& key = it->first;
    const size_t sep = key.find('|');
    const bool model_matches = model.empty() || key.compare(0, sep, model) == 0;
    const bool graph_matches =
        graph.empty() || key.compare(sep + 1, std::string::npos, graph) == 0;
    it = model_matches && graph_matches ? breakers_.erase(it) : std::next(it);
  }
}

// ---- Serving ---------------------------------------------------------------

std::future<Result<PredictResponse>> InferenceEngine::Submit(
    PredictRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  return batcher_->Submit(std::move(request));
}

Result<Tensor> InferenceEngine::Predict(const std::string& name,
                                        const Tensor& features,
                                        const SparseOperatorPtr& op) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<ModelHandle> handle = LookupModel(name);
  if (!handle.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return handle.status();
  }
  // Same forward the batcher runs, minus the queue: an ephemeral (uncached,
  // unversioned) graph context at exact fp32. One scratch per serving
  // thread, reused across requests and models (buffers only ever grow).
  GraphContext context;
  context.features = features;
  context.op = op;
  static thread_local PredictScratch scratch;
  const ServingClock::time_point start = ServingClock::now();
  Result<Tensor> logits = ForwardFullGraph(*handle.ValueOrDie().model, context,
                                           Precision::kFp32, &scratch);
  const ModelCountersPtr& counters = handle.ValueOrDie().counters;
  if (logits.ok()) {
    counters->successes.fetch_add(1, std::memory_order_relaxed);
    const double us = std::chrono::duration<double, std::micro>(
                          ServingClock::now() - start)
                          .count();
    counters->latency.Record(us);
    counters->forward_fp32.Record(us);  // sync Predict is always exact fp32
  } else {
    counters->failures.fetch_add(1, std::memory_order_relaxed);
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return logits;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.batcher = batcher_->GetStats();
  stats.breaker.trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.breaker.fast_fails =
      breaker_fast_fails_.load(std::memory_order_relaxed);
  stats.breaker.probes = breaker_probes_.load(std::memory_order_relaxed);
  stats.breaker.closes = breaker_closes_.load(std::memory_order_relaxed);
  {
    MutexLock block(&breaker_mu_);
    for (const auto& [key, entry] : breakers_) {
      stats.breaker.state[key] = BreakerStateName(entry.state);
    }
  }
  ReaderLock lock(&mu_);
  for (const auto& [name, entry] : models_) {
    ModelStats& m = stats.per_model[name];
    m.successes = entry.counters->successes.load(std::memory_order_relaxed);
    m.failures = entry.counters->failures.load(std::memory_order_relaxed);
    m.p50_us = entry.counters->latency.p50();
    m.p99_us = entry.counters->latency.p99();
    m.fp32_forwards = entry.counters->forward_fp32.count();
    m.int8_forwards = entry.counters->forward_int8.count();
    m.fp32_forward_p50_us = entry.counters->forward_fp32.p50();
    m.fp32_forward_p99_us = entry.counters->forward_fp32.p99();
    m.int8_forward_p50_us = entry.counters->forward_int8.p50();
    m.int8_forward_p99_us = entry.counters->forward_int8.p99();
  }
  return stats;
}

}  // namespace engine
}  // namespace mixq
