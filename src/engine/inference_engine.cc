// Copyright 2026 MixQ-GNN Authors
#include "engine/inference_engine.h"

namespace mixq {
namespace engine {

Status InferenceEngine::RegisterModel(const std::string& name,
                                      CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  Entry entry{std::move(model), std::make_shared<std::atomic<int64_t>>(0)};
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!models_.emplace(name, std::move(entry)).second) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered (use ReplaceModel)");
  }
  return Status::OK();
}

Status InferenceEngine::ReplaceModel(const std::string& name,
                                     CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = models_[name];
  entry.model = std::move(model);
  if (entry.successes == nullptr) {
    entry.successes = std::make_shared<std::atomic<int64_t>>(0);
  }
  return Status::OK();
}

Status InferenceEngine::UnregisterModel(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<CompiledModelPtr> InferenceEngine::GetModel(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second.model;
}

std::vector<std::string> InferenceEngine::ModelNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

Result<Tensor> InferenceEngine::Predict(const std::string& name,
                                        const Tensor& features,
                                        const SparseOperatorPtr& op) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  CompiledModelPtr model;
  std::shared_ptr<std::atomic<int64_t>> successes;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = models_.find(name);
    if (it != models_.end()) {
      model = it->second.model;
      successes = it->second.successes;
    }
  }
  if (model == nullptr) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("model '" + name + "' is not registered");
  }
  // Hot path: no lock. One scratch per serving thread, reused across
  // requests and models (buffers only ever grow).
  static thread_local PredictScratch scratch;
  Result<Tensor> logits = model->Predict(features, op, &scratch);
  if (logits.ok()) {
    successes->fetch_add(1, std::memory_order_relaxed);
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return logits;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, entry] : models_) {
    stats.per_model[name] = entry.successes->load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace engine
}  // namespace mixq
