// Copyright 2026 MixQ-GNN Authors
#include "engine/inference_engine.h"

#include <utility>

#include "engine/model_bundle.h"

namespace mixq {
namespace engine {

namespace {

/// Shape/consistency checks shared by RegisterGraph and ReplaceGraph.
Status ValidateGraph(const std::string& name, const Tensor& features,
                     const SparseOperatorPtr& op) {
  if (name.empty()) return Status::InvalidArgument("graph name must be non-empty");
  if (!features.defined()) {
    return Status::InvalidArgument("graph '" + name + "' has undefined features");
  }
  if (op == nullptr) {
    return Status::InvalidArgument("graph '" + name + "' has a null operator");
  }
  if (op->matrix().cols() != features.rows()) {
    return Status::InvalidArgument(
        "graph '" + name + "': operator has " +
        std::to_string(op->matrix().cols()) + " columns but features have " +
        std::to_string(features.rows()) + " rows");
  }
  // A pinned serving graph needs one logit row per node: a rectangular
  // operator would make forwards produce fewer rows than node ids admission
  // accepts (and would abort, rather than fail, the pruned analysis).
  if (op->matrix().rows() != op->matrix().cols()) {
    return Status::InvalidArgument(
        "graph '" + name + "': serving operator must be square, got " +
        std::to_string(op->matrix().rows()) + "x" +
        std::to_string(op->matrix().cols()));
  }
  return Status::OK();
}

}  // namespace

InferenceEngine::InferenceEngine(BatcherOptions options) {
  Batcher::Backend backend;
  backend.lookup_model = [this](const std::string& name) {
    return LookupModel(name);
  };
  backend.lookup_graph = [this](const std::string& name) {
    return LookupGraph(name);
  };
  backend.count_failure = [this] {
    failures_.fetch_add(1, std::memory_order_relaxed);
  };
  batcher_ = std::make_unique<Batcher>(std::move(backend), options);
}

InferenceEngine::~InferenceEngine() = default;

// ---- Model registry --------------------------------------------------------

Status InferenceEngine::RegisterModel(const std::string& name,
                                      CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  ModelEntry entry{std::move(model), /*version=*/0,
                   std::make_shared<ModelCounters>()};
  WriterLock lock(&mu_);
  auto [it, inserted] = models_.emplace(name, std::move(entry));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered (use ReplaceModel)");
  }
  it->second.version = next_version_++;
  return Status::OK();
}

Status InferenceEngine::ReplaceModel(const std::string& name,
                                     CompiledModelPtr model) {
  if (name.empty()) return Status::InvalidArgument("model name must be non-empty");
  if (model == nullptr) {
    return Status::InvalidArgument("model '" + name + "' is null");
  }
  WriterLock lock(&mu_);
  ModelEntry& entry = models_[name];
  entry.model = std::move(model);
  entry.version = next_version_++;  // invalidates cached results for it
  if (entry.counters == nullptr) {
    entry.counters = std::make_shared<ModelCounters>();
  }
  return Status::OK();
}

Status InferenceEngine::UnregisterModel(const std::string& name) {
  WriterLock lock(&mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<CompiledModelPtr> InferenceEngine::GetModel(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second.model;
}

std::vector<std::string> InferenceEngine::ModelNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

Status InferenceEngine::LoadModelFromFile(const std::string& name,
                                          const std::string& path) {
  Result<CompiledModelPtr> model = LoadBundle(path);
  if (!model.ok()) return model.status();
  return RegisterModel(name, model.MoveValueOrDie());
}

// ---- Graph registry --------------------------------------------------------

namespace {

/// Builds the immutable context for one registered graph; the operator's
/// int8 depth check (O(nnz) row scan) and the frontier workspace's O(N)
/// allocations run once here, not per request.
std::shared_ptr<GraphContext> MakeGraphContext(const std::string& name,
                                               Tensor features,
                                               SparseOperatorPtr op) {
  auto context = std::make_shared<GraphContext>();
  context->name = name;
  context->int8_depth_safe = ExecutionPlan::Int8DepthSafeOperator(*op);
  context->frontier_ws = std::make_shared<FrontierWorkspace>();
  context->frontier_ws->EnsureSize(op->rows());
  context->features = std::move(features);
  context->op = std::move(op);
  return context;
}

}  // namespace

Status InferenceEngine::RegisterGraph(const std::string& name, Tensor features,
                                      SparseOperatorPtr op) {
  MIXQ_RETURN_NOT_OK(ValidateGraph(name, features, op));
  std::shared_ptr<GraphContext> context =
      MakeGraphContext(name, std::move(features), std::move(op));
  WriterLock lock(&mu_);
  auto [it, inserted] = graphs_.emplace(name, nullptr);
  if (!inserted) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already registered (use ReplaceGraph)");
  }
  context->version = next_version_++;
  it->second = std::move(context);
  return Status::OK();
}

Status InferenceEngine::ReplaceGraph(const std::string& name, Tensor features,
                                     SparseOperatorPtr op) {
  MIXQ_RETURN_NOT_OK(ValidateGraph(name, features, op));
  std::shared_ptr<GraphContext> context =
      MakeGraphContext(name, std::move(features), std::move(op));
  WriterLock lock(&mu_);
  // invalidates cached results against the old graph
  context->version = next_version_++;
  graphs_[name] = std::move(context);
  return Status::OK();
}

Status InferenceEngine::UnregisterGraph(const std::string& name) {
  WriterLock lock(&mu_);
  if (graphs_.erase(name) == 0) {
    return Status::NotFound("graph '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<GraphContextPtr> InferenceEngine::GetGraph(const std::string& name) const {
  return LookupGraph(name);
}

std::vector<std::string> InferenceEngine::GraphNames() const {
  ReaderLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, context] : graphs_) names.push_back(name);
  return names;
}

Status InferenceEngine::LoadGraphFromFile(const std::string& name,
                                          const std::string& path) {
  Result<GraphBundle> bundle = LoadGraph(path);
  if (!bundle.ok()) return bundle.status();
  GraphBundle& loaded = bundle.ValueOrDie();
  return RegisterGraph(name, std::move(loaded.features), std::move(loaded.op));
}

std::map<std::string, InferenceEngine::ModelIntrospection>
InferenceEngine::ListModels() const {
  std::map<std::string, ModelIntrospection> out;
  ReaderLock lock(&mu_);
  for (const auto& [name, entry] : models_) {
    out[name] = ModelIntrospection{entry.model->info(), entry.version};
  }
  return out;
}

std::map<std::string, InferenceEngine::GraphIntrospection>
InferenceEngine::ListGraphs() const {
  std::map<std::string, GraphIntrospection> out;
  ReaderLock lock(&mu_);
  for (const auto& [name, context] : graphs_) {
    GraphIntrospection g;
    g.nodes = context->features.rows();
    g.feature_dim = context->features.cols();
    g.nnz = context->op->nnz();
    g.int8_depth_safe = context->int8_depth_safe;
    g.version = context->version;
    out[name] = g;
  }
  return out;
}

Result<ModelHandle> InferenceEngine::LookupModel(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return ModelHandle{it->second.model, it->second.version, it->second.counters};
}

Result<GraphContextPtr> InferenceEngine::LookupGraph(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not registered");
  }
  return it->second;
}

// ---- Serving ---------------------------------------------------------------

std::future<Result<PredictResponse>> InferenceEngine::Submit(
    PredictRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  return batcher_->Submit(std::move(request));
}

Result<Tensor> InferenceEngine::Predict(const std::string& name,
                                        const Tensor& features,
                                        const SparseOperatorPtr& op) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<ModelHandle> handle = LookupModel(name);
  if (!handle.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return handle.status();
  }
  // Same forward the batcher runs, minus the queue: an ephemeral (uncached,
  // unversioned) graph context at exact fp32. One scratch per serving
  // thread, reused across requests and models (buffers only ever grow).
  GraphContext context;
  context.features = features;
  context.op = op;
  static thread_local PredictScratch scratch;
  const ServingClock::time_point start = ServingClock::now();
  Result<Tensor> logits = ForwardFullGraph(*handle.ValueOrDie().model, context,
                                           Precision::kFp32, &scratch);
  const ModelCountersPtr& counters = handle.ValueOrDie().counters;
  if (logits.ok()) {
    counters->successes.fetch_add(1, std::memory_order_relaxed);
    counters->latency.Record(std::chrono::duration<double, std::micro>(
                                 ServingClock::now() - start)
                                 .count());
  } else {
    counters->failures.fetch_add(1, std::memory_order_relaxed);
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return logits;
}

InferenceEngine::Stats InferenceEngine::GetStats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.batcher = batcher_->GetStats();
  ReaderLock lock(&mu_);
  for (const auto& [name, entry] : models_) {
    ModelStats& m = stats.per_model[name];
    m.successes = entry.counters->successes.load(std::memory_order_relaxed);
    m.failures = entry.counters->failures.load(std::memory_order_relaxed);
    m.p50_us = entry.counters->latency.p50();
    m.p99_us = entry.counters->latency.p99();
  }
  return stats;
}

}  // namespace engine
}  // namespace mixq
