// Copyright 2026 MixQ-GNN Authors
// Value-range analysis of lowered serving programs.
//
// The structural verifier (engine/plan_verifier.h) proves a plan's dataflow,
// shapes, and quantizer chaining; this pass proves its *values*: an abstract
// interpretation that propagates integer/float intervals through both step
// lists and turns "accumulation is exact" (DESIGN.md §2) from a convention
// into a per-plan theorem. Per integer step it establishes that
//
//   (a) no int32 accumulator can overflow — the GEMM bound is the interval
//       of Σ aᵢbᵢ with aᵢ ranging over the source grid and bᵢ the *actual*
//       frozen weight codes (max column |·|-sum), far tighter than the
//       coarse k·127² depth cut;
//   (b) the vpmaddwd int16 pairwise intermediate (a₀b₀ + a₁b₁) and the VNNI
//       kernel's unsigned-shifted partial sums Σ (aᵢ+128)·bᵢ stay in range —
//       the VNNI verdict is a per-step certificate consumed by kernel
//       dispatch in place of the global Int8VnniDepthOk predicate;
//   (c) requant epilogues are consistent with the target grid: clamp bounds
//       match the grid exactly, codes stay within int8 storage, and every
//       folded constant (total, s1/s2, bias/scale) is finite, so the double
//       epilogue arithmetic can never emit codes off the grid.
//
// SpMM accumulation depends on the graph, which arrives later: the plan
// carries a SYMBOLIC certificate — `max_spmm_nnz`, the largest per-row
// stored-entry count any registered graph may have — derived from the
// per-step source/adjacency code bounds. Graph-dependent bounds (max row
// nnz, adjacency value range) are computed once at RegisterGraph and checked
// against the certificate at pairing time (batcher precision resolution,
// PredictQuantized), falling back to fp32 with a typed, step-indexed
// diagnostic instead of overflowing silently.
//
// Trust boundaries mirror the structural verifier: CompileModel analyzes
// after lowering (rejecting under MIXQ_VERIFY=1/debug), LoadBundle analyzes
// UNCONDITIONALLY (bundle bytes are attacker-chosen), and tools/mixq_lint
// drives the same pass over bundle files for CI.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mixq {

class SparseOperator;

namespace engine {

class ExecutionPlan;

/// Proven accumulator bounds of one integer GEMM step. `step` indexes
/// plan.int_steps(). All peaks are magnitudes of exact integer quantities.
struct GemmRangeCert {
  size_t step = 0;
  /// Bound on every signed int32 partial sum: src_code_max · max column
  /// |w|-sum. Proven <= INT32_MAX (the analysis rejects otherwise).
  int64_t acc_peak = 0;
  /// Bound on the vpmaddwd pairwise intermediate |a₀b₀ + a₁b₁|. Proven to
  /// fit int16 — with <= 8-bit grids the worst case is 2·127² = 32258.
  int64_t pair_peak = 0;
  /// Bound on the VNNI kernel's unsigned-shifted partial sums
  /// Σᵢ (aᵢ+128)·|bᵢ| <= (src_code_max + 128) · max column |w|-sum.
  int64_t vnni_peak = 0;
  /// vnni_peak <= INT32_MAX: the per-step certificate the vpdpbusd dispatch
  /// consumes (an unsafe step is served by the vpmaddwd/scalar kernels whose
  /// bound is acc_peak — not a plan rejection).
  bool vnni_safe = false;
};

/// Symbolic (graph-independent) accumulator bounds of one integer SpMM step.
struct SpmmRangeCert {
  size_t step = 0;
  int64_t src_code_max = 0;  ///< |source codes| bound from the walked interval
  int64_t adj_code_max = 0;  ///< |adjacency codes| bound from the grid
  float adj_scale = 1.0f;    ///< adjacency grid scale (for value-range refinement)
  /// Largest per-row stored-entry count for which every int32 partial sum
  /// Σ adjᵢ·srcᵢ provably fits: floor(INT32_MAX / (adj_code_max ·
  /// src_code_max)); INT64_MAX when either bound is 0.
  int64_t max_nnz = 0;
};

/// The range prover's output: per-step certificates plus the plan-level
/// symbolic graph bound. A plan with no int8 lowering (or no int8 SpMM)
/// yields max_spmm_nnz == INT64_MAX — any graph pairs with it.
struct PlanRangeCertificate {
  int64_t max_spmm_nnz = INT64_MAX;  ///< min over spmms[].max_nnz
  std::vector<GemmRangeCert> gemms;
  std::vector<SpmmRangeCert> spmms;
};

/// Runs the abstract-interpretation pass over `plan`. Returns the
/// certificate when every per-step proof obligation holds; otherwise a
/// typed, step-indexed kInvalidArgument ("int8 step 2 (GemmRequant): int32
/// accumulator can overflow: ..."). Assumes the plan already passed the
/// structural verifier (callers run VerifyPlan first); the analysis is
/// defensive about indices regardless.
Result<PlanRangeCertificate> AnalyzePlanRanges(const ExecutionPlan& plan);

/// The graph-side facts the symbolic certificate is checked against,
/// computed once per registered graph (O(nnz) scan).
struct GraphRangeBounds {
  int64_t max_row_nnz = 0;    ///< deepest row's stored-entry count
  float value_abs_max = 0.0f; ///< max |aᵢⱼ| over stored adjacency entries
  bool values_finite = true;  ///< no NaN/Inf stored entries
};

GraphRangeBounds ComputeGraphRangeBounds(const SparseOperator& op);

/// Checks one concrete graph against a plan's symbolic certificate: OK when
/// bounds.max_row_nnz <= cert.max_spmm_nnz, else retries each violated SpMM
/// step with the adjacency code bound REFINED by the graph's actual value
/// range (values far below the grid's clip point quantize to small codes,
/// buying depth). kInvalidArgument naming the first step whose int32
/// accumulator the graph could overflow; also rejects non-finite adjacency
/// values (they would quantize through UB).
Status CheckGraphAgainstCertificate(const PlanRangeCertificate& cert,
                                    const GraphRangeBounds& bounds);

// ---- shared per-step arithmetic --------------------------------------------
// One implementation serves the prover, FinalizeDerived's per-step VNNI
// flags, and the boundary tests, so dispatch can never disagree with the
// certificate.

/// max_j Σᵢ |w[i·n + j]| over a row-major [k, n] code matrix: the exact
/// per-output-column magnitude budget of an integer GEMM.
int64_t MaxColumnAbsSum(const int8_t* w, int64_t k, int64_t n);

/// True when every VNNI partial sum Σᵢ (aᵢ+128)·|bᵢ| <= (src_code_max+128) ·
/// col_abs_sum fits int32. Implied by Int8VnniDepthOk(k) (which assumes
/// full-scale 255·127 products); never weaker than it.
inline bool VnniAccumulationSafe(int64_t src_code_max, int64_t col_abs_sum) {
  return (src_code_max + 128) * col_abs_sum <=
         static_cast<int64_t>(INT32_MAX);
}

/// Magnitude bound of the vpmaddwd pairwise intermediate for codes bounded
/// by a_max/w_max: |a₀b₀ + a₁b₁| <= 2·a_max·w_max.
inline int64_t PairIntermediatePeak(int64_t a_max, int64_t w_max) {
  return 2 * a_max * w_max;
}

}  // namespace engine
}  // namespace mixq
