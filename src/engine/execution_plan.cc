// Copyright 2026 MixQ-GNN Authors
#include "engine/execution_plan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "engine/frontier_plan.h"
#include "engine/plan_analysis.h"
#include "quant/requant.h"
#include "sparse/csr.h"
#include "tensor/gemm.h"

namespace mixq {
namespace engine {

namespace {

// The round-and-clip code emitter lives in quant/requant.h (shared with the
// fused GEMM/SpMM epilogue kernels); see there for why its rounding stays
// bitwise identical to the reference quantizers' std::lround.

// Code-emitting loops write int32 lanes into a small block buffer and narrow
// to int8 in a second sweep: a direct scalar-narrowing store defeats the
// vectorizer and costs ~8x on these passes.
constexpr int64_t kNarrowBlock = 256;

// -1 = unresolved; 0/1 once MIXQ_FUSED or SetFusedEpilogues picked a side.
std::atomic<int> g_fused_epilogues{-1};

// Chaos hooks shared by every executor entry point: a slow kernel (exercises
// the batcher watchdog), a throwing kernel (exercises containment), and a
// scratch-growth allocation failure. One relaxed load when injection is off.
void ForwardFaultHooks() {
  if (!fault::FaultInjector::Armed()) return;
  fault::MaybeDelay("plan.forward.delay");
  fault::MaybeThrow("plan.forward.throw");
  if (fault::ShouldFail("plan.alloc")) throw std::bad_alloc();
}

// Buffer-level fake quantization, mirroring FakeQuantOp (quant/fake_quant.cc)
// value for value: multiply by the double reciprocal, round, clip,
// reconstruct in float. Bitwise parity of the lowered path hinges on this
// computing the identical grid point.
void FakeQuantBuffer(const float* x, float* out, int64_t n, const QuantParams& p) {
  const double inv_scale = 1.0 / p.scale;
  const int32_t zp = p.zero_point;
  const float scale = p.scale;
  const CodeEmitter em(p);
  ParallelFor(
      n,
      [=](int64_t i0, int64_t i1) {
        const float* __restrict xp = x;
        float* __restrict op = out;
        const CodeEmitter e = em;
        for (int64_t i = i0; i < i1; ++i) {
          const int32_t q = e.Code(static_cast<double>(xp[i]) * inv_scale);
          op[i] = static_cast<float>(q - zp) * scale;
        }
      },
      /*grain=*/4096);
}

// Integer codes on the same grid as FakeQuantBuffer: dequantizing a code
// ((code - Z) * S) reproduces the fake-quantized float exactly.
void QuantizeCodes8(const float* x, int8_t* out, int64_t n, const QuantParams& p) {
  const double inv_scale = 1.0 / p.scale;
  const CodeEmitter em(p);
  ParallelFor(
      n,
      [=](int64_t i0, int64_t i1) {
        // int8 stores alias everything (signed char); restrict-qualified
        // locals keep the vectorizer from reloading closure state per lane.
        const float* __restrict xp = x;
        int8_t* __restrict op = out;
        const CodeEmitter e = em;
        int32_t tmp[kNarrowBlock];
        for (int64_t b0 = i0; b0 < i1; b0 += kNarrowBlock) {
          const int64_t bn = std::min<int64_t>(kNarrowBlock, i1 - b0);
          for (int64_t j = 0; j < bn; ++j) {
            tmp[j] = e.Code(static_cast<double>(xp[b0 + j]) * inv_scale);
          }
          for (int64_t j = 0; j < bn; ++j) {
            op[b0 + j] = static_cast<int8_t>(tmp[j]);
          }
        }
      },
      /*grain=*/4096);
}

// ---- kernels shared by the full and pruned executors ----------------------
// Each helper below is the SINGLE implementation of its per-element loop:
// the pruned executors' bitwise-parity contracts (fp32 identical to
// Execute, int8 codes identical to ExecuteInt8) depend on both row
// universes flowing through exactly the same code.

/// Strips zero-weight GEMM padding columns in place. Serial on purpose: row
/// i's destination overlaps the unread source of much-earlier rows (i*out
/// falls inside j*out_padded spans), so only the ascending order is safe —
/// and n tiny memmoves are cheap.
template <typename T>
void StripPaddedColumns(T* data, int64_t n, int64_t out, int64_t out_padded) {
  for (int64_t i = 1; i < n; ++i) {
    std::memmove(data + i * out, data + i * out_padded,
                 sizeof(T) * static_cast<size_t>(out));
  }
}

void AddBiasRows(float* dst, const float* bias, int64_t n, int64_t w) {
  ParallelFor(
      n,
      [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = dst + i * w;
          for (int64_t j = 0; j < w; ++j) row[j] = row[j] + bias[j];
        }
      },
      /*grain=*/256);
}

/// Requantizes a GEMM accumulator into int8 codes, one multiply per
/// element: (Sx·Sw/Sy)·acc (+ bias/Sy). `bias` is the step's precomputed
/// bias/Sy vector (nullptr = no bias) and `em` the step's precomputed
/// emitter — both frozen at lowering (FinalizeDerived) so the hot path
/// allocates and constructs nothing.
void GemmRequantRows(const int32_t* acc, int8_t* dst, int64_t n, int64_t w,
                     double total, const double* bias, const CodeEmitter& em) {
  ParallelFor(
      n,
      [=](int64_t r0, int64_t r1) {
        const int32_t* __restrict ap = acc;
        int8_t* __restrict dp = dst;
        const double* __restrict bp = bias;
        const CodeEmitter e = em;
        int32_t tmp[kNarrowBlock];
        for (int64_t i = r0; i < r1; ++i) {
          for (int64_t b0 = 0; b0 < w; b0 += kNarrowBlock) {
            const int64_t bn = std::min<int64_t>(kNarrowBlock, w - b0);
            const int64_t base = i * w + b0;
            if (bp != nullptr) {
              for (int64_t j = 0; j < bn; ++j) {
                tmp[j] = e.Code(total * static_cast<double>(ap[base + j]) +
                                bp[b0 + j]);
              }
            } else {
              for (int64_t j = 0; j < bn; ++j) {
                tmp[j] = e.Code(total * static_cast<double>(ap[base + j]));
              }
            }
            for (int64_t j = 0; j < bn; ++j) {
              dp[base + j] = static_cast<int8_t>(tmp[j]);
            }
          }
        }
      },
      /*grain=*/64);
}

/// Requantizes a flat accumulator (SpMM output): codes = Requant(total·acc).
void RequantFlat(const int32_t* acc, int8_t* dst, int64_t count, double total,
                 const CodeEmitter& em) {
  ParallelFor(
      count,
      [=](int64_t i0, int64_t i1) {
        const int32_t* __restrict ap = acc;
        int8_t* __restrict dp = dst;
        const CodeEmitter e = em;
        int32_t tmp[kNarrowBlock];
        for (int64_t b0 = i0; b0 < i1; b0 += kNarrowBlock) {
          const int64_t bn = std::min<int64_t>(kNarrowBlock, i1 - b0);
          for (int64_t j = 0; j < bn; ++j) {
            tmp[j] = e.Code(total * static_cast<double>(ap[b0 + j]));
          }
          for (int64_t j = 0; j < bn; ++j) {
            dp[b0 + j] = static_cast<int8_t>(tmp[j]);
          }
        }
      },
      /*grain=*/4096);
}

/// codes(dst) = Requant(s1·a + s2·c) — the integer residual add.
void AddRequantFlat(const int8_t* a, const int8_t* c, int8_t* dst, int64_t count,
                    double s1, double s2, const CodeEmitter& em) {
  ParallelFor(
      count,
      [=](int64_t i0, int64_t i1) {
        const int8_t* __restrict a1p = a;
        const int8_t* __restrict a2p = c;
        int8_t* __restrict dp = dst;
        const CodeEmitter e = em;
        int32_t tmp[kNarrowBlock];
        for (int64_t b0 = i0; b0 < i1; b0 += kNarrowBlock) {
          const int64_t bn = std::min<int64_t>(kNarrowBlock, i1 - b0);
          for (int64_t j = 0; j < bn; ++j) {
            tmp[j] = e.Code(s1 * static_cast<double>(a1p[b0 + j]) +
                            s2 * static_cast<double>(a2p[b0 + j]));
          }
          for (int64_t j = 0; j < bn; ++j) {
            dp[b0 + j] = static_cast<int8_t>(tmp[j]);
          }
        }
      },
      /*grain=*/4096);
}

/// ReLU directly on symmetric codes.
void ReluCodes(const int8_t* src, int8_t* dst, int64_t count) {
  ParallelFor(
      count,
      [=](int64_t i0, int64_t i1) {
        const int8_t* __restrict sp = src;
        int8_t* __restrict dp = dst;
        for (int64_t i = i0; i < i1; ++i) dp[i] = sp[i] > 0 ? sp[i] : 0;
      },
      /*grain=*/4096);
}

/// Final dequantization of logit codes into float output.
void DequantizeCodes(const int8_t* codes, float* out, int64_t count,
                     const QuantParams& p) {
  const float scale = p.scale;
  const int32_t zp = p.zero_point;
  ParallelFor(
      count,
      [=](int64_t i0, int64_t i1) {
        const int8_t* __restrict cp = codes;
        float* __restrict op = out;
        for (int64_t i = i0; i < i1; ++i) {
          op[i] = static_cast<float>(cp[i] - zp) * scale;
        }
      },
      /*grain=*/4096);
}

/// True when a lowered component fits the all-integer executor: a symmetric
/// quantizer of width <= 8 bits, whose codes fit int8 and whose zero point
/// vanishes (making ReLU exact on codes and the Theorem-1 corrections free).
bool Int8able(const LoweredComponent& lc) {
  return !lc.identity && lc.params.symmetric && lc.params.zero_point == 0 &&
         lc.params.bits >= 1 && lc.params.bits <= 8;
}

/// Same quantization grid: quantizing identical inputs yields identical
/// outputs. Used to reuse per-request adjacency quantizations across layers.
bool SameParams(const QuantParams& a, const QuantParams& b) {
  return a.scale == b.scale && a.zero_point == b.zero_point && a.bits == b.bits &&
         a.symmetric == b.symmetric;
}

// int8 GEMM accumulators stay within int32 as long as k products of two
// 7-bit-magnitude codes fit: k * 127^2 < 2^31.
bool Int8DepthOk(int64_t k) {
  return k < std::numeric_limits<int32_t>::max() / (127 * 127);
}

// Views over frozen derived state for the fused epilogue kernels; pure
// pointer/value plumbing, nothing computed per forward. The step supplies
// its prover-derived VNNI certificate so dispatch never consults the coarse
// global depth predicate.
Int8PackedWeights PackedWeights(const LoweredLinear& lin,
                                const ExecutionPlan::IntStep& st) {
  Int8PackedWeights w;
  w.pair = lin.weight_packed.data();
  if (!lin.weight_quad.empty()) {
    w.quad = lin.weight_quad.data();
    w.corr = lin.weight_corr.data();
    w.vnni_ok = st.vnni_safe;
  }
  return w;
}

RequantEpilogue GemmEpilogue(const ExecutionPlan::IntStep& st) {
  RequantEpilogue ep;
  ep.total = st.total;
  ep.bias = st.bias_over.empty() ? nullptr : st.bias_over.data();
  ep.emitter = st.emitter;
  return ep;
}

RequantEpilogue SpmmEpilogue(const ExecutionPlan::IntStep& st) {
  RequantEpilogue ep;
  ep.total = st.total;
  ep.emitter = st.emitter;
  return ep;
}

}  // namespace

bool ExecutionPlan::Int8DepthSafeOperator(const SparseOperator& op) {
  const std::vector<int64_t>& row_ptr = op.matrix().row_ptr();
  int64_t max_nnz = 0;
  for (size_t r = 1; r < row_ptr.size(); ++r) {
    max_nnz = std::max(max_nnz, row_ptr[r] - row_ptr[r - 1]);
  }
  return Int8DepthOk(max_nnz);
}

bool ExecutionPlan::FusedEpilogues() {
  int v = g_fused_epilogues.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  bool fused = true;
  if (const char* env = std::getenv("MIXQ_FUSED")) {
    if (std::strcmp(env, "0") == 0) fused = false;
  }
  g_fused_epilogues.store(fused ? 1 : 0, std::memory_order_relaxed);
  return fused;
}

void ExecutionPlan::SetFusedEpilogues(bool fused) {
  g_fused_epilogues.store(fused ? 1 : 0, std::memory_order_relaxed);
}

void ExecutionPlan::FinalizeDerived() {
  for (LoweredLinear& lin : linears_) {
    if (!lin.weight_q8.empty() && lin.weight_quad.empty()) {
      lin.weight_quad.resize(
          static_cast<size_t>(PackedQuadSize(lin.in, lin.out_padded)));
      lin.weight_corr.resize(static_cast<size_t>(lin.out_padded));
      PackInt8QuadB(lin.weight_q8.data(), lin.in, lin.out_padded,
                    lin.weight_quad.data(), lin.weight_corr.data());
    }
  }
  for (IntStep& st : int_steps_) {
    st.emitter = CodeEmitter(st.out_params);
    switch (st.op) {
      case IntOp::kGemmRequant: {
        if (st.linear < 0 ||
            st.linear >= static_cast<int>(linears_.size())) {
          break;  // crafted bundle; the plan verifier rejects it
        }
        const LoweredLinear& lin = linears_[static_cast<size_t>(st.linear)];
        st.total = static_cast<double>(st.src_params.scale) *
                   lin.weight_params.scale / st.out_params.scale;
        // Per-step VNNI overflow certificate from the ACTUAL frozen codes.
        // src_params.qmax() equals the prover's walked source-code bound
        // (every int8 producer clamps into its grid), so dispatch and
        // certificate can never disagree.
        if (lin.weight_q8.size() ==
            static_cast<size_t>(lin.in) * static_cast<size_t>(lin.out_padded)) {
          st.vnni_safe = VnniAccumulationSafe(
              st.src_params.qmax(),
              MaxColumnAbsSum(lin.weight_q8.data(), lin.in, lin.out_padded));
        }
        break;
      }
      case IntOp::kSpmmRequant: {
        if (st.adj < 0 || st.adj >= static_cast<int>(adj_quants_.size())) {
          break;
        }
        const LoweredComponent& aq = adj_quants_[static_cast<size_t>(st.adj)];
        st.total = static_cast<double>(aq.params.scale) * st.src_params.scale /
                   st.out_params.scale;
        break;
      }
      case IntOp::kAddRequant: {
        st.s1 = static_cast<double>(st.src_params.scale) / st.out_params.scale;
        st.s2 = static_cast<double>(st.src2_params.scale) / st.out_params.scale;
        break;
      }
      case IntOp::kQuantizeInput:
      case IntOp::kRelu:
        break;
    }
  }
}

// Collects lowered components and emits plan steps; named (rather than
// file-local) so it can be befriended by ExecutionPlan.
class PlanBuilder {
 public:
  explicit PlanBuilder(const QuantScheme& scheme) : scheme_(scheme) {
    plan_ = std::unique_ptr<ExecutionPlan>(new ExecutionPlan());
  }

  bool ok() const { return ok_; }
  std::unique_ptr<ExecutionPlan> Finish(int cur_buffer, bool int8_ok,
                                        int int_cur_buffer,
                                        const QuantParams& final_params) {
    if (!ok_) return nullptr;
    plan_->final_buffer_ = cur_buffer;
    plan_->has_int8_ = int8_ok && !plan_->int_steps_.empty();
    if (!plan_->has_int8_) {
      plan_->int_steps_.clear();
    } else {
      plan_->int_final_buffer_ = int_cur_buffer;
      plan_->int_final_params_ = final_params;
    }
    plan_->FinalizeDerived();
    return std::move(plan_);
  }

  LoweredComponent Component(const std::string& id) {
    LoweredComponent lc;
    if (!scheme_.TryLowerComponent(id, &lc)) ok_ = false;
    return lc;
  }

  // Quantizes the weight once: the float view feeds Execute() (bitwise what
  // the reference forward multiplies by), the int8 codes feed ExecuteInt8().
  // Narrow outputs (e.g. the class-count-wide logit layer) are zero-padded to
  // the GEMM vector width so the micro-kernel's full path applies; padded
  // columns are dead weight the executor strips after each product.
  int AddLinear(const Tensor& weight, const Tensor& bias,
                const LoweredComponent& wq) {
    constexpr int64_t kPad = 16;  // gemm.cc micro-kernel column width
    LoweredLinear lin;
    lin.in = weight.rows();
    lin.out = weight.cols();
    lin.out_padded = lin.out % kPad == 0 ? lin.out : (lin.out / kPad + 1) * kPad;
    const std::vector<float>& wd = weight.data();
    // Gather the fake-quantized (or raw) weights row-major at padded width.
    std::vector<float> fq_rows(wd.size());
    if (wq.identity) {
      fq_rows = wd;
    } else {
      lin.weight_params = wq.params;
      FakeQuantBuffer(wd.data(), fq_rows.data(), static_cast<int64_t>(wd.size()),
                      wq.params);
    }
    lin.weight_fq.assign(static_cast<size_t>(lin.in * lin.out_padded), 0.0f);
    for (int64_t r = 0; r < lin.in; ++r) {
      std::memcpy(lin.weight_fq.data() + r * lin.out_padded,
                  fq_rows.data() + r * lin.out,
                  sizeof(float) * static_cast<size_t>(lin.out));
    }
    if (!wq.identity && Int8able(wq)) {
      std::vector<int8_t> codes(wd.size());
      QuantizeCodes8(wd.data(), codes.data(), static_cast<int64_t>(wd.size()),
                     wq.params);
      lin.weight_q8.assign(static_cast<size_t>(lin.in * lin.out_padded), 0);
      for (int64_t r = 0; r < lin.in; ++r) {
        std::memcpy(lin.weight_q8.data() + r * lin.out_padded,
                    codes.data() + r * lin.out,
                    sizeof(int8_t) * static_cast<size_t>(lin.out));
      }
      lin.weight_packed.resize(
          static_cast<size_t>(PackedPairSize(lin.in, lin.out_padded)));
      PackInt8PairB(lin.weight_q8.data(), lin.in, lin.out_padded,
                    lin.weight_packed.data());
    }
    if (bias.defined()) lin.bias = bias.data();
    plan_->linears_.push_back(std::move(lin));
    return static_cast<int>(plan_->linears_.size()) - 1;
  }

  int AddAdj(const LoweredComponent& adjq) {
    plan_->adj_quants_.push_back(adjq);
    return static_cast<int>(plan_->adj_quants_.size()) - 1;
  }

  // ---- float step emission -------------------------------------------------
  void Quantize(int src, int dst, const LoweredComponent& lc, int64_t cols) {
    ExecutionPlan::Step st;
    st.op = ExecutionPlan::Op::kQuantize;
    st.src = src;
    st.dst = dst;
    st.quant = lc;
    st.cols = cols;
    plan_->steps_.push_back(st);
  }
  void MatMul(int src, int dst, int linear, int64_t cols) {
    ExecutionPlan::Step st;
    st.op = ExecutionPlan::Op::kMatMul;
    st.src = src;
    st.dst = dst;
    st.linear = linear;
    st.cols = cols;
    plan_->steps_.push_back(st);
  }
  void Spmm(int src, int dst, int adj, int64_t cols) {
    ExecutionPlan::Step st;
    st.op = ExecutionPlan::Op::kSpmm;
    st.src = src;
    st.dst = dst;
    st.adj = adj;
    st.cols = cols;
    plan_->steps_.push_back(st);
  }
  void Add(int src, int src2, int dst, int64_t cols) {
    ExecutionPlan::Step st;
    st.op = ExecutionPlan::Op::kAdd;
    st.src = src;
    st.src2 = src2;
    st.dst = dst;
    st.cols = cols;
    plan_->steps_.push_back(st);
  }
  void Relu(int buf, int64_t cols) {
    ExecutionPlan::Step st;
    st.op = ExecutionPlan::Op::kRelu;
    st.src = buf;
    st.dst = buf;
    st.cols = cols;
    plan_->steps_.push_back(st);
  }

  // ---- int step emission ---------------------------------------------------
  void IntQuantizeInput(int dst, const QuantParams& p, int64_t cols) {
    ExecutionPlan::IntStep st;
    st.op = ExecutionPlan::IntOp::kQuantizeInput;
    st.src = ExecutionPlan::kInput;
    st.dst = dst;
    st.out_params = p;
    st.cols = cols;
    plan_->int_steps_.push_back(st);
  }
  void IntGemm(int src, int dst, int linear, const QuantParams& src_p,
               const QuantParams& out_p, int64_t cols) {
    ExecutionPlan::IntStep st;
    st.op = ExecutionPlan::IntOp::kGemmRequant;
    st.src = src;
    st.dst = dst;
    st.linear = linear;
    st.src_params = src_p;
    st.out_params = out_p;
    st.cols = cols;
    const LoweredLinear& lin = plan_->linears_[static_cast<size_t>(linear)];
    if (!lin.bias.empty()) {
      st.bias_over.resize(lin.bias.size());
      const double inv_out = 1.0 / out_p.scale;
      for (size_t j = 0; j < lin.bias.size(); ++j) {
        st.bias_over[j] = static_cast<double>(lin.bias[j]) * inv_out;
      }
    }
    plan_->int_steps_.push_back(st);
  }
  void IntSpmm(int src, int dst, int adj, const QuantParams& src_p,
               const QuantParams& out_p, int64_t cols) {
    ExecutionPlan::IntStep st;
    st.op = ExecutionPlan::IntOp::kSpmmRequant;
    st.src = src;
    st.dst = dst;
    st.adj = adj;
    st.src_params = src_p;
    st.out_params = out_p;
    st.cols = cols;
    plan_->int_steps_.push_back(st);
  }
  void IntAdd(int src, int src2, int dst, const QuantParams& p1,
              const QuantParams& p2, const QuantParams& out_p, int64_t cols) {
    ExecutionPlan::IntStep st;
    st.op = ExecutionPlan::IntOp::kAddRequant;
    st.src = src;
    st.src2 = src2;
    st.dst = dst;
    st.src_params = p1;
    st.src2_params = p2;
    st.out_params = out_p;
    st.cols = cols;
    plan_->int_steps_.push_back(st);
  }
  void IntRelu(int buf, int64_t cols) {
    ExecutionPlan::IntStep st;
    st.op = ExecutionPlan::IntOp::kRelu;
    st.src = buf;
    st.dst = buf;
    st.cols = cols;
    plan_->int_steps_.push_back(st);
  }

  ExecutionPlan* plan() { return plan_.get(); }

 private:
  const QuantScheme& scheme_;
  std::unique_ptr<ExecutionPlan> plan_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

std::unique_ptr<ExecutionPlan> ExecutionPlan::Lower(const GcnNet& net,
                                                    const QuantScheme& scheme) {
  PlanBuilder b(scheme);
  ExecutionPlan* plan = b.plan();
  plan->in_features_ = net.config().in_features;
  plan->out_dim_ = net.config().num_classes;
  plan->num_buffers_ = 2;

  const LoweredComponent input_q = b.Component("model/x");
  int cur = kInput;
  if (!input_q.identity) {
    b.Quantize(kInput, 0, input_q, plan->in_features_);
    cur = 0;
  }

  struct Layer {
    LoweredComponent lin_out, adj, agg;
    int widx = -1, aidx = -1;
    int64_t in = 0, out = 0;
    bool int8 = true;
  };
  std::vector<Layer> lowered;
  bool int8_ok = Int8able(input_q);
  const auto& layers = net.layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const GcnConv& conv = *layers[l];
    const std::string& id = conv.id();
    Layer lay;
    const LoweredComponent wq = b.Component(id + "/weight");
    lay.lin_out = b.Component(id + "/linear_out");
    lay.adj = b.Component(id + "/adj");
    lay.agg = b.Component(id + "/agg");
    if (!b.ok()) return nullptr;
    lay.in = conv.in_features();
    lay.out = conv.out_features();
    lay.widx = b.AddLinear(conv.weight(), Tensor(), wq);
    lay.aidx = b.AddAdj(lay.adj);
    lay.int8 = Int8able(wq) && Int8able(lay.lin_out) && Int8able(lay.adj) &&
               Int8able(lay.agg) && Int8DepthOk(lay.in);
    int8_ok = int8_ok && lay.int8;

    const bool last = l + 1 == layers.size();
    b.MatMul(cur, 1, lay.widx, lay.out);
    if (!lay.lin_out.identity) b.Quantize(1, 1, lay.lin_out, lay.out);
    b.Spmm(1, 0, lay.aidx, lay.out);
    if (!lay.agg.identity) b.Quantize(0, 0, lay.agg, lay.out);
    if (!last) b.Relu(0, lay.out);
    cur = 0;
    lowered.push_back(lay);
  }

  QuantParams final_params = input_q.params;
  int int_cur = 0;
  if (int8_ok) {
    b.IntQuantizeInput(0, input_q.params, plan->in_features_);
    QuantParams curp = input_q.params;
    for (size_t l = 0; l < lowered.size(); ++l) {
      const Layer& lay = lowered[l];
      b.IntGemm(int_cur, 1, lay.widx, curp, lay.lin_out.params, lay.out);
      b.IntSpmm(1, 0, lay.aidx, lay.lin_out.params, lay.agg.params, lay.out);
      if (l + 1 < lowered.size()) b.IntRelu(0, lay.out);
      int_cur = 0;
      curp = lay.agg.params;
    }
    final_params = curp;
  }
  return b.Finish(cur, int8_ok, int_cur, final_params);
}

std::unique_ptr<ExecutionPlan> ExecutionPlan::Lower(const SageNet& net,
                                                    const QuantScheme& scheme) {
  PlanBuilder b(scheme);
  ExecutionPlan* plan = b.plan();
  plan->in_features_ = net.config().in_features;
  plan->out_dim_ = net.config().num_classes;
  plan->num_buffers_ = 4;

  const LoweredComponent input_q = b.Component("model/x");
  int cur = kInput;
  if (!input_q.identity) {
    b.Quantize(kInput, 0, input_q, plan->in_features_);
    cur = 0;
  }

  struct Layer {
    LoweredComponent adj, agg, root_out, neigh_out, out;
    int root_idx = -1, neigh_idx = -1, aidx = -1;
    int64_t in = 0, width = 0;
    bool int8 = true;
  };
  std::vector<Layer> lowered;
  bool int8_ok = Int8able(input_q);
  const auto& layers = net.layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const SageConv& conv = *layers[l];
    const std::string& id = conv.id();
    const Linear& root = conv.root_linear();
    const Linear& neigh = conv.neighbor_linear();
    Layer lay;
    lay.adj = b.Component(id + "/adj");
    lay.agg = b.Component(id + "/agg");
    const LoweredComponent root_w = b.Component(root.weight_component());
    lay.root_out = b.Component(root.out_component());
    const LoweredComponent neigh_w = b.Component(neigh.weight_component());
    lay.neigh_out = b.Component(neigh.out_component());
    lay.out = b.Component(id + "/out");
    if (!b.ok()) return nullptr;
    lay.in = root.in_features();
    lay.width = root.out_features();
    lay.aidx = b.AddAdj(lay.adj);
    lay.root_idx = b.AddLinear(root.weight(), root.bias(), root_w);
    lay.neigh_idx = b.AddLinear(neigh.weight(), neigh.bias(), neigh_w);
    lay.int8 = Int8able(lay.adj) && Int8able(lay.agg) && Int8able(root_w) &&
               Int8able(lay.root_out) && Int8able(neigh_w) &&
               Int8able(lay.neigh_out) && Int8able(lay.out) && Int8DepthOk(lay.in);
    int8_ok = int8_ok && lay.int8;

    const bool last = l + 1 == layers.size();
    b.Spmm(cur, 1, lay.aidx, lay.in);
    if (!lay.agg.identity) b.Quantize(1, 1, lay.agg, lay.in);
    b.MatMul(cur, 2, lay.root_idx, lay.width);
    if (!lay.root_out.identity) b.Quantize(2, 2, lay.root_out, lay.width);
    b.MatMul(1, 3, lay.neigh_idx, lay.width);
    if (!lay.neigh_out.identity) b.Quantize(3, 3, lay.neigh_out, lay.width);
    b.Add(2, 3, 0, lay.width);
    if (!lay.out.identity) b.Quantize(0, 0, lay.out, lay.width);
    if (!last) b.Relu(0, lay.width);
    cur = 0;
    lowered.push_back(lay);
  }

  QuantParams final_params = input_q.params;
  int int_cur = 0;
  if (int8_ok) {
    b.IntQuantizeInput(0, input_q.params, plan->in_features_);
    QuantParams curp = input_q.params;
    for (size_t l = 0; l < lowered.size(); ++l) {
      const Layer& lay = lowered[l];
      b.IntSpmm(int_cur, 1, lay.aidx, curp, lay.agg.params, lay.in);
      b.IntGemm(int_cur, 2, lay.root_idx, curp, lay.root_out.params, lay.width);
      b.IntGemm(1, 3, lay.neigh_idx, lay.agg.params, lay.neigh_out.params,
                lay.width);
      b.IntAdd(2, 3, 0, lay.root_out.params, lay.neigh_out.params, lay.out.params,
               lay.width);
      if (l + 1 < lowered.size()) b.IntRelu(0, lay.width);
      int_cur = 0;
      curp = lay.out.params;
    }
    final_params = curp;
  }
  return b.Finish(cur, int8_ok, int_cur, final_params);
}

// ---------------------------------------------------------------------------
// Exact float executor
// ---------------------------------------------------------------------------

void ExecutionPlan::Execute(const float* x, int64_t n, const SparseOperator& op,
                            Scratch* scratch, float* out) const {
  ForwardFaultHooks();
  scratch->f.resize(static_cast<size_t>(num_buffers_));
  auto ensure = [&](int id, int64_t cols) -> float* {
    std::vector<float>& buf = scratch->f[static_cast<size_t>(id)];
    const size_t need = static_cast<size_t>(n * cols);
    if (buf.size() < need) buf.resize(need);
    return buf.data();
  };
  auto read = [&](int id) -> const float* {
    return id == kInput ? x : scratch->f[static_cast<size_t>(id)].data();
  };
  // Which adjacency quantization scratch->adj_f currently holds (this call
  // only; the operator is fixed for the duration of one Execute).
  const LoweredComponent* adj_cached = nullptr;

  for (const Step& st : steps_) {
    switch (st.op) {
      case Op::kQuantize: {
        // ensure() before read(): in-place steps must not capture a pointer
        // a resize could invalidate.
        float* dst = ensure(st.dst, st.cols);
        const float* src = read(st.src);
        FakeQuantBuffer(src, dst, n * st.cols, st.quant.params);
        break;
      }
      case Op::kMatMul: {
        const LoweredLinear& lin = linears_[static_cast<size_t>(st.linear)];
        const float* src = read(st.src);
        float* dst = ensure(st.dst, lin.out_padded);
        GemmNN(src, lin.weight_fq.data(), dst, n, lin.in, lin.out_padded);
        if (lin.out_padded != lin.out) {
          StripPaddedColumns(dst, n, lin.out, lin.out_padded);
        }
        if (!lin.bias.empty()) {
          AddBiasRows(dst, lin.bias.data(), n, lin.out);
        }
        break;
      }
      case Op::kSpmm: {
        const LoweredComponent& aq = adj_quants_[static_cast<size_t>(st.adj)];
        float* dst = ensure(st.dst, st.cols);
        const float* src = read(st.src);
        if (aq.identity) {
          SpmmRaw(op.matrix(), src, st.cols, dst);
        } else {
          // Consecutive layers usually freeze identical adjacency params
          // (same values, same observer); reuse this request's quantized
          // copy instead of re-running the O(nnz) pass per layer.
          if (adj_cached == nullptr || !SameParams(adj_cached->params, aq.params)) {
            const std::vector<float>& values = op.matrix().values();
            if (scratch->adj_f.size() < values.size()) {
              scratch->adj_f.resize(values.size());
            }
            FakeQuantBuffer(values.data(), scratch->adj_f.data(),
                            static_cast<int64_t>(values.size()), aq.params);
            adj_cached = &aq;
          }
          SpmmPattern(op.matrix(), scratch->adj_f.data(), src, st.cols, dst);
        }
        break;
      }
      case Op::kAdd: {
        float* dst = ensure(st.dst, st.cols);
        const float* a = read(st.src);
        const float* c = read(st.src2);
        ParallelFor(
            n * st.cols,
            [=](int64_t i0, int64_t i1) {
              for (int64_t i = i0; i < i1; ++i) dst[i] = a[i] + c[i];
            },
            /*grain=*/4096);
        break;
      }
      case Op::kRelu: {
        float* dst = ensure(st.dst, st.cols);
        const float* src = read(st.src);
        ParallelFor(
            n * st.cols,
            [=](int64_t i0, int64_t i1) {
              for (int64_t i = i0; i < i1; ++i) {
                dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
              }
            },
            /*grain=*/4096);
        break;
      }
    }
  }
  std::memcpy(out, read(final_buffer_),
              sizeof(float) * static_cast<size_t>(n * out_dim_));
}

// ---------------------------------------------------------------------------
// Pruned float executor
// ---------------------------------------------------------------------------

// The pruned executors mirror Execute/ExecuteInt8 step for step; only the
// row universe changes. Each step runs with n = its frontier size, inputs
// come either contiguously from the src buffer (when its frontier already
// equals this step's rows) or through a row gather, and SpMM steps run on
// the program's pre-sliced induced CSR whose columns are remapped into the
// src frontier. Every kernel involved computes each output row from its own
// input row(s) with the same per-element accumulation order as the full
// forward, which is what makes pruned fp32 rows bitwise identical to
// Execute()'s and pruned int8 codes bitwise identical to ExecuteInt8()'s.

namespace {

/// Stages `rows.size()` rows of `width` from `base` into `staging` (grown as
/// needed) and returns the staged pointer; `rows` are row indices into
/// `base`'s row-major storage.
template <typename T>
const T* GatherRows(const T* base, const std::vector<int64_t>& rows,
                    int64_t width, std::vector<T>* staging) {
  const size_t need = rows.size() * static_cast<size_t>(width);
  if (staging->size() < need) staging->resize(need);
  T* dst = staging->data();
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(dst + i * static_cast<size_t>(width),
                base + static_cast<size_t>(rows[i]) * static_cast<size_t>(width),
                sizeof(T) * static_cast<size_t>(width));
  }
  return dst;
}

}  // namespace

void ExecutionPlan::ExecutePruned(const float* x, const FrontierProgram& fp,
                                  Scratch* scratch, float* out) const {
  MIXQ_CHECK(!fp.int8_) << "program was built for the int8 step list";
  MIXQ_CHECK_EQ(static_cast<int64_t>(fp.steps_.size()),
                static_cast<int64_t>(steps_.size()));
  ForwardFaultHooks();
  scratch->f.resize(static_cast<size_t>(num_buffers_));
  auto ensure = [&](int id, int64_t rows, int64_t cols) -> float* {
    std::vector<float>& buf = scratch->f[static_cast<size_t>(id)];
    const size_t need = static_cast<size_t>(rows * cols);
    if (buf.size() < need) buf.resize(need);
    return buf.data();
  };
  // Resolves a row-parallel step's input: the feature matrix or a scratch
  // buffer, staged through the gather list when the source holds a wider
  // frontier than this step consumes. ensure() the destination FIRST — the
  // staging copy also protects in-place steps from resize invalidation.
  auto read = [&](const FrontierProgram::StepExec& se, int src,
                  int64_t width) -> const float* {
    const float* base =
        se.src_is_input ? x : scratch->f[static_cast<size_t>(src)].data();
    if (se.gather.empty()) return base;
    return GatherRows(base, se.gather, width, &scratch->gather_f);
  };

  for (size_t si = 0; si < steps_.size(); ++si) {
    const Step& st = steps_[si];
    const FrontierProgram::StepExec& se = fp.steps_[si];
    const int64_t n = static_cast<int64_t>(se.rows.size());
    if (n == 0) continue;  // dead for these targets
    switch (st.op) {
      case Op::kQuantize: {
        float* dst = ensure(st.dst, n, st.cols);
        const float* src = read(se, st.src, st.cols);
        FakeQuantBuffer(src, dst, n * st.cols, st.quant.params);
        break;
      }
      case Op::kMatMul: {
        const LoweredLinear& lin = linears_[static_cast<size_t>(st.linear)];
        float* dst = ensure(st.dst, n, lin.out_padded);
        const float* src = read(se, st.src, lin.in);
        GemmNN(src, lin.weight_fq.data(), dst, n, lin.in, lin.out_padded);
        if (lin.out_padded != lin.out) {
          StripPaddedColumns(dst, n, lin.out, lin.out_padded);
        }
        if (!lin.bias.empty()) {
          AddBiasRows(dst, lin.bias.data(), n, lin.out);
        }
        break;
      }
      case Op::kSpmm: {
        const LoweredComponent& aq = adj_quants_[static_cast<size_t>(st.adj)];
        float* dst = ensure(st.dst, n, st.cols);
        const float* src =
            se.src_is_input ? x : scratch->f[static_cast<size_t>(st.src)].data();
        if (aq.identity) {
          SpmmRaw(se.induced, src, st.cols, dst);
        } else {
          // Each layer's slice has its own value array, so (unlike the
          // full path) the quantized copy cannot be reused across layers.
          const std::vector<float>& values = se.induced.values();
          if (scratch->adj_f.size() < values.size()) {
            scratch->adj_f.resize(values.size());
          }
          FakeQuantBuffer(values.data(), scratch->adj_f.data(),
                          static_cast<int64_t>(values.size()), aq.params);
          SpmmPattern(se.induced, scratch->adj_f.data(), src, st.cols, dst);
        }
        break;
      }
      case Op::kAdd: {
        float* dst = ensure(st.dst, n, st.cols);
        const float* a = read(se, st.src, st.cols);
        const float* c = scratch->f[static_cast<size_t>(st.src2)].data();
        ParallelFor(
            n * st.cols,
            [=](int64_t i0, int64_t i1) {
              for (int64_t i = i0; i < i1; ++i) dst[i] = a[i] + c[i];
            },
            /*grain=*/4096);
        break;
      }
      case Op::kRelu: {
        float* dst = ensure(st.dst, n, st.cols);
        const float* src = read(se, st.src, st.cols);
        ParallelFor(
            n * st.cols,
            [=](int64_t i0, int64_t i1) {
              for (int64_t i = i0; i < i1; ++i) {
                dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
              }
            },
            /*grain=*/4096);
        break;
      }
    }
  }
  std::memcpy(out, scratch->f[static_cast<size_t>(final_buffer_)].data(),
              sizeof(float) *
                  static_cast<size_t>(static_cast<int64_t>(fp.targets_.size()) *
                                      out_dim_));
}

// ---------------------------------------------------------------------------
// Integer executor
// ---------------------------------------------------------------------------

void ExecutionPlan::ExecuteInt8(const float* x, int64_t n, const SparseOperator& op,
                                Scratch* scratch, float* out) const {
  MIXQ_CHECK(has_int8_) << "plan has no int8 lowering";
  ForwardFaultHooks();
  scratch->q.resize(static_cast<size_t>(num_buffers_));
  auto ensure = [&](int id, int64_t cols) -> int8_t* {
    std::vector<int8_t>& buf = scratch->q[static_cast<size_t>(id)];
    const size_t need = static_cast<size_t>(n * cols);
    if (buf.size() < need) buf.resize(need);
    return buf.data();
  };
  auto ensure_acc = [&](int64_t cols) -> int32_t* {
    const size_t need = static_cast<size_t>(n * cols);
    if (scratch->acc.size() < need) scratch->acc.resize(need);
    return scratch->acc.data();
  };
  const LoweredComponent* adj_cached = nullptr;
  const bool fused = FusedEpilogues();

  for (const IntStep& st : int_steps_) {
    switch (st.op) {
      case IntOp::kQuantizeInput: {
        int8_t* dst = ensure(st.dst, st.cols);
        QuantizeCodes8(x, dst, n * st.cols, st.out_params);
        break;
      }
      case IntOp::kGemmRequant: {
        const LoweredLinear& lin = linears_[static_cast<size_t>(st.linear)];
        // ensure() before reading src: GEMM steps never write their own
        // source buffer, but the resize discipline stays uniform.
        int8_t* dst = ensure(st.dst, lin.out);
        const int8_t* src = scratch->q[static_cast<size_t>(st.src)].data();
        if (fused) {
          // Codes come straight out of the register tiles at the unpadded
          // stride: no int32 scratch round-trip, no padding strip pass.
          GemmInt8Requant(src, PackedWeights(lin, st), n, lin.in, lin.out_padded,
                          lin.out, GemmEpilogue(st), dst);
          break;
        }
        int32_t* acc = ensure_acc(lin.out_padded);
        GemmInt8PackedB(src, lin.weight_packed.data(), acc, n, lin.in,
                        lin.out_padded);
        if (lin.out_padded != lin.out) {
          StripPaddedColumns(acc, n, lin.out, lin.out_padded);
        }
        GemmRequantRows(acc, dst, n, lin.out, st.total,
                        st.bias_over.empty() ? nullptr : st.bias_over.data(),
                        st.emitter);
        break;
      }
      case IntOp::kSpmmRequant: {
        const LoweredComponent& aq = adj_quants_[static_cast<size_t>(st.adj)];
        if (adj_cached == nullptr || !SameParams(adj_cached->params, aq.params)) {
          const std::vector<float>& values = op.matrix().values();
          if (scratch->adj_q.size() < values.size()) {
            scratch->adj_q.resize(values.size());
          }
          QuantizeCodes8(values.data(), scratch->adj_q.data(),
                         static_cast<int64_t>(values.size()), aq.params);
          adj_cached = &aq;
        }
        int8_t* dst = ensure(st.dst, st.cols);
        const int8_t* src = scratch->q[static_cast<size_t>(st.src)].data();
        if (fused) {
          SpmmInt8Requant(op.matrix(), scratch->adj_q.data(), src, st.cols,
                          SpmmEpilogue(st), dst);
          break;
        }
        int32_t* acc = ensure_acc(st.cols);
        SpmmInt8(op.matrix(), scratch->adj_q.data(), src, st.cols, acc);
        RequantFlat(acc, dst, n * st.cols, st.total, st.emitter);
        break;
      }
      case IntOp::kAddRequant: {
        int8_t* dst = ensure(st.dst, st.cols);
        const int8_t* a = scratch->q[static_cast<size_t>(st.src)].data();
        const int8_t* c = scratch->q[static_cast<size_t>(st.src2)].data();
        AddRequantFlat(a, c, dst, n * st.cols, st.s1, st.s2, st.emitter);
        break;
      }
      case IntOp::kRelu: {
        int8_t* dst = ensure(st.dst, st.cols);
        const int8_t* src = scratch->q[static_cast<size_t>(st.src)].data();
        ReluCodes(src, dst, n * st.cols);
        break;
      }
    }
  }
  DequantizeCodes(scratch->q[static_cast<size_t>(int_final_buffer_)].data(), out,
                  n * out_dim_, int_final_params_);
}

// ---------------------------------------------------------------------------
// Pruned integer executor
// ---------------------------------------------------------------------------

void ExecutionPlan::ExecutePrunedInt8(const float* x, const FrontierProgram& fp,
                                      Scratch* scratch, float* out) const {
  MIXQ_CHECK(has_int8_) << "plan has no int8 lowering";
  MIXQ_CHECK(fp.int8_) << "program was built for the float step list";
  MIXQ_CHECK_EQ(static_cast<int64_t>(fp.steps_.size()),
                static_cast<int64_t>(int_steps_.size()));
  ForwardFaultHooks();
  scratch->q.resize(static_cast<size_t>(num_buffers_));
  auto ensure = [&](int id, int64_t rows, int64_t cols) -> int8_t* {
    std::vector<int8_t>& buf = scratch->q[static_cast<size_t>(id)];
    const size_t need = static_cast<size_t>(rows * cols);
    if (buf.size() < need) buf.resize(need);
    return buf.data();
  };
  auto ensure_acc = [&](int64_t rows, int64_t cols) -> int32_t* {
    const size_t need = static_cast<size_t>(rows * cols);
    if (scratch->acc.size() < need) scratch->acc.resize(need);
    return scratch->acc.data();
  };
  auto read_codes = [&](const FrontierProgram::StepExec& se, int src,
                        int64_t width) -> const int8_t* {
    const int8_t* base = scratch->q[static_cast<size_t>(src)].data();
    if (se.gather.empty()) return base;
    return GatherRows(base, se.gather, width, &scratch->gather_q);
  };
  const bool fused = FusedEpilogues();

  for (size_t si = 0; si < int_steps_.size(); ++si) {
    const IntStep& st = int_steps_[si];
    const FrontierProgram::StepExec& se = fp.steps_[si];
    const int64_t n = static_cast<int64_t>(se.rows.size());
    if (n == 0) continue;
    switch (st.op) {
      case IntOp::kQuantizeInput: {
        // The input quantize reads the float feature matrix: stage the
        // frontier's rows (se.gather holds global feature-row ids).
        const float* src =
            se.gather.empty()
                ? x
                : GatherRows(x, se.gather, st.cols, &scratch->gather_f);
        int8_t* dst = ensure(st.dst, n, st.cols);
        QuantizeCodes8(src, dst, n * st.cols, st.out_params);
        break;
      }
      case IntOp::kGemmRequant: {
        const LoweredLinear& lin = linears_[static_cast<size_t>(st.linear)];
        // ensure() before read_codes(): the gather stages into gather_q, a
        // separate buffer, but keep the resize discipline uniform anyway.
        int8_t* dst = ensure(st.dst, n, lin.out);
        const int8_t* src = read_codes(se, st.src, lin.in);
        if (fused) {
          GemmInt8Requant(src, PackedWeights(lin, st), n, lin.in, lin.out_padded,
                          lin.out, GemmEpilogue(st), dst);
          break;
        }
        int32_t* acc = ensure_acc(n, lin.out_padded);
        GemmInt8PackedB(src, lin.weight_packed.data(), acc, n, lin.in,
                        lin.out_padded);
        if (lin.out_padded != lin.out) {
          StripPaddedColumns(acc, n, lin.out, lin.out_padded);
        }
        GemmRequantRows(acc, dst, n, lin.out, st.total,
                        st.bias_over.empty() ? nullptr : st.bias_over.data(),
                        st.emitter);
        break;
      }
      case IntOp::kSpmmRequant: {
        const LoweredComponent& aq = adj_quants_[static_cast<size_t>(st.adj)];
        const std::vector<float>& values = se.induced.values();
        if (scratch->adj_q.size() < values.size()) {
          scratch->adj_q.resize(values.size());
        }
        QuantizeCodes8(values.data(), scratch->adj_q.data(),
                       static_cast<int64_t>(values.size()), aq.params);
        int8_t* dst = ensure(st.dst, n, st.cols);
        const int8_t* src = scratch->q[static_cast<size_t>(st.src)].data();
        if (fused) {
          SpmmInt8Requant(se.induced, scratch->adj_q.data(), src, st.cols,
                          SpmmEpilogue(st), dst);
          break;
        }
        int32_t* acc = ensure_acc(n, st.cols);
        SpmmInt8(se.induced, scratch->adj_q.data(), src, st.cols, acc);
        RequantFlat(acc, dst, n * st.cols, st.total, st.emitter);
        break;
      }
      case IntOp::kAddRequant: {
        int8_t* dst = ensure(st.dst, n, st.cols);
        const int8_t* a = read_codes(se, st.src, st.cols);
        const int8_t* c = scratch->q[static_cast<size_t>(st.src2)].data();
        AddRequantFlat(a, c, dst, n * st.cols, st.s1, st.s2, st.emitter);
        break;
      }
      case IntOp::kRelu: {
        int8_t* dst = ensure(st.dst, n, st.cols);
        const int8_t* src = read_codes(se, st.src, st.cols);
        ReluCodes(src, dst, n * st.cols);
        break;
      }
    }
  }
  DequantizeCodes(scratch->q[static_cast<size_t>(int_final_buffer_)].data(), out,
                  static_cast<int64_t>(fp.targets_.size()) * out_dim_,
                  int_final_params_);
}

}  // namespace engine
}  // namespace mixq
